"""Ablation: keyed-dict LP assembly vs the array-backed COO fast path.

FC-FR (LP (1)) on Deltacom builds hundreds of thousands of constraint
coefficients: one flow variable per (request, edge) pair plus conservation
rows per (request, node).  The keyed ``assembly="dict"`` path hashes every
coefficient into per-row dicts before scipy ever sees them; the
``assembly="array"`` path registers whole variable blocks and emits COO
triplet batches straight from numpy index arithmetic.  Both materialize the
same canonical CSR, so HiGHS returns bit-identical optimal objectives — this
bench measures the assembly gap (and checks the objectives really are equal
where we solve).

LP (7) of Algorithm 1 is assembled the same two ways for reference.
"""

import time

from repro.core.algorithm1 import assemble_lp7
from repro.core.fcfr import assemble_fcfr_lp
from repro.experiments import build_zipf_scenario, format_sweep

#: Catalog sizes swept; the LP is solved (not just assembled) up to
#: ``MAX_SOLVE_ITEMS`` — beyond that HiGHS dominates wall-clock and tells us
#: nothing new about assembly.
ITEM_SIZES = (50, 100, 200)
MAX_SOLVE_ITEMS = 100

#: Deltacom has 88 edge (requester) nodes; with the full set FC-FR at 100+
#: items is a multi-minute solve.  Eight requesters keep the LP shape
#: representative (hundreds of requests, |E| flow columns each) and the bench
#: under a minute.
NUM_EDGE_NODES = 8


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _problem(num_items: int):
    return build_zipf_scenario(
        topology="deltacom",
        num_items=num_items,
        cache_capacity=10.0,
        link_capacity_fraction=0.05,
        num_edge_nodes=NUM_EDGE_NODES,
        seed=0,
    ).planning_problem()


def _build_row(lp_name, num_items, assemble):
    """Assemble + materialize both ways; solve the materialized LPs when small."""
    problem = _problem(num_items)

    def build(assembly):
        lp = assemble(problem, assembly=assembly)
        lp.materialize()
        return lp

    lp_dict, dict_seconds = _timed(lambda: build("dict"))
    lp_array, array_seconds = _timed(lambda: build("array"))
    row = {
        "lp": lp_name,
        "items": num_items,
        "rows": lp_dict.num_constraints,
        "cols": lp_dict.num_variables,
        "dict_build_s": dict_seconds,
        "array_build_s": array_seconds,
        "speedup": dict_seconds / array_seconds,
        "obj_dict": "-",
        "obj_array": "-",
    }
    if num_items <= MAX_SOLVE_ITEMS:
        row["obj_dict"] = lp_dict.solve().objective
        row["obj_array"] = lp_array.solve().objective
    return row


def test_ablation_lp_assembly(benchmark, report):
    def run():
        rows = []
        for n in ITEM_SIZES:
            rows.append(_build_row("FC-FR (1)", n, assemble_fcfr_lp))
        rows.append(_build_row("LP (7)", ITEM_SIZES[-1], assemble_lp7))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_lp_assembly",
        format_sweep(
            rows,
            [
                "lp",
                "items",
                "rows",
                "cols",
                "dict_build_s",
                "array_build_s",
                "speedup",
                "obj_dict",
                "obj_array",
            ],
            title=(
                "Ablation: LP assembly, keyed dict rows vs array/COO batches "
                f"(Deltacom, {NUM_EDGE_NODES} edge nodes; build = assemble + "
                f"materialize; solved up to {MAX_SOLVE_ITEMS} items)"
            ),
        ),
    )
    for row in rows:
        # Canonical CSR on both paths -> bit-identical optima where solved.
        if row["obj_dict"] != "-":
            assert row["obj_dict"] == row["obj_array"]
    fcfr_100 = next(r for r in rows if r["lp"] == "FC-FR (1)" and r["items"] == 100)
    # Acceptance bar: >= 3x faster FC-FR assembly at 100 items.
    assert fcfr_100["dict_build_s"] >= 3.0 * fcfr_100["array_build_s"], (
        f"array assembly only {fcfr_100['speedup']:.2f}x faster"
    )
