"""Shared fixtures for the reproduction benchmarks.

Every bench regenerates one table or figure of the paper at laptop scale
(fewer Monte Carlo runs, same protocol), prints the resulting rows, and
writes them under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Write a text report next to the benches and echo it to stdout."""

    def _report(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return _report


@pytest.fixture
def bench_json(results_dir):
    """Write a machine-readable ``BENCH_<name>.json`` artifact.

    The payload must be JSON-serializable (plain dicts/lists/numbers); CI
    uploads every ``BENCH_*.json`` under ``benchmarks/results/`` so runs can
    be compared across commits without scraping the text reports.
    """

    def _write(name: str, payload) -> Path:
        path = results_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\n[bench-json] wrote {path}")
        return path

    return _write
