"""Figs. 3 & 14 / Table 5: the evaluation topologies themselves.

Regenerates the structural facts those figures and Table 5 convey: node and
link counts, the degree-1 origin gateway, and the number/identity of
low-degree edge nodes, for the Abovenet map and the three Table-5 networks.
"""

import networkx as nx

from repro.experiments import format_sweep
from repro.graph import abovenet, abvt, deltacom, edge_caching_roles, tinet


def test_fig3_14_table5_topology_inventory(benchmark, report):
    def run():
        rows = []
        for name, factory, expected in (
            ("abovenet", abovenet, None),
            ("abvt", abvt, (23, 31)),
            ("tinet", tinet, (53, 89)),
            ("deltacom", deltacom, (113, 161)),
        ):
            net = factory()
            origin, edge_nodes = edge_caching_roles(
                net, num_edge_nodes=None if name == "abovenet" else 5
            )
            rows.append(
                {
                    "topology": name,
                    "nodes": net.num_nodes,
                    "links": net.num_edges // 2,
                    "origin_degree": net.undirected_degree(origin),
                    "edge_nodes": len(edge_nodes),
                    "connected": nx.is_strongly_connected(net.graph),
                    "table5": str(expected) if expected else "-",
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig3_14_table5_topologies",
        format_sweep(
            rows,
            ["topology", "nodes", "links", "origin_degree", "edge_nodes",
             "connected", "table5"],
            title="Figs 3/14 + Table 5: topology inventory",
        ),
    )
    by_name = {r["topology"]: r for r in rows}
    assert (by_name["abvt"]["nodes"], by_name["abvt"]["links"]) == (23, 31)
    assert (by_name["tinet"]["nodes"], by_name["tinet"]["links"]) == (53, 89)
    assert (by_name["deltacom"]["nodes"], by_name["deltacom"]["links"]) == (113, 161)
    # The Abovenet origin is (the gateway to) a degree-1 node (Fig 3).
    assert by_name["abovenet"]["origin_degree"] == 1
    assert all(r["connected"] for r in rows)
