"""Ablation: Algorithm 1's rounding pipeline, piece by piece.

DESIGN.md calls out the LP's degenerate optima: raw pipage output lacks
cross-node coordination, the 1-swap local-search polish recovers it, and
plain lazy greedy is the cheap alternative.  This bench quantifies each
stage on the default uncapacitated chunk-level scenario.
"""

from repro.core import route_to_nearest_replica
from repro.core.algorithm1 import algorithm1
from repro.core.solution import Solution
from repro.core.submodular import greedy_rnr_placement, local_search_swap
from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    aggregate,
    format_sweep,
    run_monte_carlo,
)

MC = MonteCarloConfig(n_runs=3)


def _lp_pipage_only(scenario):
    return algorithm1(scenario.planning_problem(), polish=False).solution


def _lp_pipage_polish(scenario):
    return algorithm1(scenario.planning_problem(), polish=True).solution


def _greedy(scenario):
    problem = scenario.planning_problem()
    placement = greedy_rnr_placement(problem)
    return Solution(placement, route_to_nearest_replica(problem, placement))


def _greedy_polish(scenario):
    problem = scenario.planning_problem()
    placement = local_search_swap(
        problem, greedy_rnr_placement(problem), max_sweeps=8
    )
    return Solution(placement, route_to_nearest_replica(problem, placement))


def test_ablation_alg1_rounding(benchmark, report):
    config = ScenarioConfig(level="chunk", link_capacity_fraction=None)

    def run():
        records = run_monte_carlo(
            config,
            {
                "LP+pipage (raw)": _lp_pipage_only,
                "LP+pipage+polish (Alg1)": _lp_pipage_polish,
                "greedy": _greedy,
                "greedy+polish": _greedy_polish,
            },
            MC,
        )
        return [
            {"variant": a.algorithm, "cost": a.mean_cost, "seconds": a.mean_seconds}
            for a in aggregate(records)
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_rounding",
        format_sweep(
            rows,
            ["variant", "cost", "seconds"],
            title="Ablation: Algorithm 1 rounding variants (uncapacitated, chunk level)",
        ),
    )
    by_name = {r["variant"]: r["cost"] for r in rows}
    # The polish is what makes pipage competitive.
    assert by_name["LP+pipage+polish (Alg1)"] < by_name["LP+pipage (raw)"]
    # Polished greedy is at least as good as plain greedy.
    assert by_name["greedy+polish"] <= by_name["greedy"] + 1e-6
