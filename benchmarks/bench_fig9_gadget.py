"""Fig. 9 / Proposition 4.8: the bad Nash equilibrium of alternating optimization.

Reconstructs the paper's 4-node gadget — client s requesting item 1 (rate
lambda) and item 2 (rate eps), caches v1/v2 of size 1 — and measures the
ratio between the bad equilibrium's cost (lambda*w + eps^2) and the optimal
cost (eps*(lambda + w)) as eps shrinks: the approximation ratio of the bad
NE grows without bound, exactly as Proposition 4.8 states.
"""

import networkx as nx
import numpy as np

from repro.core import (
    Placement,
    ProblemInstance,
    mmufp_routing,
    optimize_placement,
    pin_full_catalog,
    routing_cost,
)
from repro.experiments import format_sweep
from repro.graph import CacheNetwork


def gadget(lam: float, eps: float, w: float) -> ProblemInstance:
    g = nx.DiGraph()
    g.add_edge("vs", "v1", cost=w, capacity=lam)
    g.add_edge("vs", "v2", cost=w, capacity=lam)
    g.add_edge("v1", "s", cost=eps, capacity=lam)
    g.add_edge("v2", "s", cost=w, capacity=lam)
    net = CacheNetwork(g, {"v1": 1, "v2": 1, "vs": 2})
    catalog = ("item1", "item2")
    demand = {("item1", "s"): lam, ("item2", "s"): eps}
    return ProblemInstance(net, catalog, demand, pinned=pin_full_catalog(catalog, ["vs"]))


def test_fig9_unbounded_ratio(benchmark, report):
    lam, w = 10.0, 5.0

    def run():
        rows = []
        rng = np.random.default_rng(0)
        for eps in (0.1, 0.01, 0.001):
            prob = gadget(lam, eps, w)
            bad = Placement({("v2", "item1"): 1.0, ("v1", "item2"): 1.0})
            bad_routing = mmufp_routing(prob, bad, rng=rng, n_samples=4)
            bad_cost = routing_cost(prob, bad_routing)
            good = Placement({("v1", "item1"): 1.0, ("v2", "item2"): 1.0})
            good_routing = mmufp_routing(prob, good, rng=rng, n_samples=4)
            good_cost = routing_cost(prob, good_routing)
            # One alternation round from the bad NE cannot improve it.
            replacement = optimize_placement(prob, bad_routing)
            rerouted = mmufp_routing(prob, replacement, rng=rng, n_samples=4)
            escaped = routing_cost(prob, rerouted) < bad_cost - 1e-9
            rows.append(
                {
                    "eps": eps,
                    "bad_NE_cost": bad_cost,
                    "optimal_cost": good_cost,
                    "ratio": bad_cost / good_cost,
                    "escaped": escaped,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig9_gadget",
        format_sweep(
            rows,
            ["eps", "bad_NE_cost", "optimal_cost", "ratio", "escaped"],
            title="Prop 4.8 gadget: the bad NE's approximation ratio diverges",
        ),
    )
    ratios = [r["ratio"] for r in rows]
    assert ratios == sorted(ratios)  # grows as eps -> 0
    assert ratios[-1] > 100
    assert not any(r["escaped"] for r in rows)
