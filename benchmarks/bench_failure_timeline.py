"""Failure timeline replay: incremental degraded contexts vs full rebuilds.

Not a figure of the paper — the dynamic counterpart of the survivability
bench: generate a ~250-event failure timeline over Deltacom (link flaps,
node outages, repairs), replay the greedy placement through the online
recovery controller twice — once deriving each re-optimization's context
incrementally from the healthy parent (partial distance-matrix repair over
the rows recovery actually reads), once rebuilding a fresh context per
re-optimization — and check the two produce the *identical* report at lower
wall-clock for the incremental path.

Wall-clock is reported two ways: end-to-end replay time (dominated by RNR
routing, so the gap is modest) and pure context-derivation time over every
composed fault set the controller saw (the part the partial repair actually
accelerates, ~2x on Deltacom's 113 nodes).
"""

import time

from repro.core.context import SolverContext
from repro.experiments import ScenarioConfig, build_scenario, format_sweep
from repro.experiments.algorithms import greedy
from repro.robustness import (
    CapacityDegradation,
    FailureEvent,
    FailureScenario,
    LinkFailure,
    RecoveryPolicy,
    TimelineConfig,
    apply_failure,
    degraded_context,
    generate_timeline,
    rebuild_context,
    replay_timeline,
)

ROUNDS = 3


def composed_scenarios(timeline):
    """The composed active-fault set after every failure event.

    Each is what the controller would hand to ``apply_failure`` if it reacted
    right then: currently-active faults deduplicated (an SRLG and a link
    process can cover the same link) and ordered caps -> links -> nodes so
    no fault references an element an earlier one already removed.
    """
    active = []
    out = []
    for event in timeline.events:
        if isinstance(event, FailureEvent):
            active.append(event.fault)
            faults = list(dict.fromkeys(active))
            rank = {CapacityDegradation: 0, LinkFailure: 1}
            faults.sort(key=lambda f: (rank.get(type(f), 2), repr(f)))
            out.append(
                FailureScenario(name=f"t={event.time:g}", faults=tuple(faults))
            )
        else:
            active.remove(event.fault)
    return out


def _replay(problem, placement, timeline, policy, context, incremental):
    best = None
    wall = float("inf")
    for _ in range(ROUNDS):
        report = replay_timeline(
            problem,
            placement,
            timeline,
            policy,
            context=context,
            incremental=incremental,
        )
        if report.wall_seconds < wall:
            wall = report.wall_seconds
            best = report
    return best, wall


def _derivation_times(problem, context, scenarios, sources):
    """Best-of-rounds derivation time over all composed fault sets."""
    inc = reb = float("inf")
    degraded = [apply_failure(problem, s) for s in scenarios]
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        for dp in degraded:
            degraded_context(context, dp, sources=sources)
        inc = min(inc, time.perf_counter() - t0)
        t0 = time.perf_counter()
        for dp in degraded:
            rebuild_context(dp)
        reb = min(reb, time.perf_counter() - t0)
    return inc, reb


def test_failure_timeline(benchmark, report, bench_json):
    config = ScenarioConfig(
        topology="deltacom",
        num_videos=5,
        cache_capacity=4,
        link_capacity_fraction=None,
        num_edge_nodes=5,
        seed=0,
    )
    scenario = build_scenario(config)
    problem = scenario.problem
    placement = greedy(scenario).placement
    context = SolverContext.from_problem(problem)

    timeline = generate_timeline(
        problem,
        TimelineConfig(
            horizon=50.0,
            link_mtbf=80.0,
            link_mttr=3.0,
            node_mtbf=400.0,
            node_mttr=6.0,
            flap_probability=0.2,
            flap_mttr=0.05,
            exclude_nodes=(scenario.origin,),
        ),
        seed=7,
        name="deltacom-timeline",
    )
    assert len(timeline.events) >= 100
    policy = RecoveryPolicy(detection_delay=0.5, flap_backoff=0.25, max_retries=2)

    def run():
        incremental, inc_wall = _replay(
            problem, placement, timeline, policy, context, True
        )
        rebuilt, reb_wall = _replay(
            problem, placement, timeline, policy, context, False
        )
        # Re-derive every composed fault set standalone to isolate the
        # matrix-repair cost from the RNR routing that dominates a replay.
        scenarios = composed_scenarios(timeline)
        sources = sorted(
            set(problem.network.cache_nodes()) | {v for (v, _i) in problem.pinned},
            key=repr,
        )
        inc_derive, reb_derive = _derivation_times(
            problem, context, scenarios, sources
        )
        return incremental, rebuilt, {
            "events": len(timeline.events),
            "reoptimizations": incremental.reoptimizations,
            "fault_sets": len(scenarios),
            "availability": incremental.availability,
            "incremental_wall_s": inc_wall,
            "rebuild_wall_s": reb_wall,
            "incremental_derive_s": inc_derive,
            "rebuild_derive_s": reb_derive,
        }

    incremental, rebuilt, stats = benchmark.pedantic(run, rounds=1, iterations=1)

    # Bit-identical replay: incremental derivation must not change a single
    # number (wall_seconds/incremental are compare=False fields).
    assert incremental == rebuilt

    # The partial-row repair is where the speedup lives; end-to-end replay
    # (dominated by RNR routing) must at least not regress.
    assert stats["incremental_derive_s"] < stats["rebuild_derive_s"]
    assert stats["incremental_wall_s"] < stats["rebuild_wall_s"] * 1.05

    rows = [
        {
            "mode": "incremental",
            "wall_s": stats["incremental_wall_s"],
            "derive_s": stats["incremental_derive_s"],
            "reopts": incremental.reoptimizations,
            "availability": incremental.availability,
        },
        {
            "mode": "rebuild",
            "wall_s": stats["rebuild_wall_s"],
            "derive_s": stats["rebuild_derive_s"],
            "reopts": rebuilt.reoptimizations,
            "availability": rebuilt.availability,
        },
    ]
    report(
        "failure_timeline",
        format_sweep(
            rows,
            ["mode", "wall_s", "derive_s", "reopts", "availability"],
            title=(
                f"deltacom failure timeline ({stats['events']} events, "
                f"horizon 50, best of {ROUNDS})"
            ),
        ),
    )
    bench_json(
        "failure_timeline",
        {
            "topology": config.topology,
            "seed": 7,
            "horizon": 50.0,
            **stats,
            "reports_identical": incremental == rebuilt,
        },
    )
