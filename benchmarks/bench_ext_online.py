"""Extension: online hourly re-optimization vs a static one-shot solution.

The paper's conclusion notes the one-shot optimization "work[s] well in an
online setting when combined with reasonable demand prediction"; this bench
runs the hourly loop over a 6-hour window and compares adapting every hour
(oracle rates) against freezing the hour-0 solution, plus the event-driven
simulator's view of one hour.
"""

from repro.experiments import ScenarioConfig, algorithms as alg, format_sweep
from repro.experiments.online import run_online
from repro.simulation import SimulationConfig, scale_problem, simulate
from repro.experiments import build_scenario

HOURS = 6


def _static_policy():
    cache = {}

    def run(scenario):
        if "solution" not in cache:
            cache["solution"] = alg.alternating(mmufp_method="best")(scenario)
        return cache["solution"]

    return run


def test_ext_online_adaptation(benchmark, report):
    config = ScenarioConfig(seed=0)

    def run():
        hourly = run_online(
            config,
            alg.alternating(mmufp_method="best"),
            name="hourly",
            hours=HOURS,
        )
        static = run_online(config, _static_policy(), name="static", hours=HOURS)
        return [
            {
                "policy": result.algorithm,
                "total_cost": result.total_cost,
                "mean_congestion": result.mean_congestion,
                "worst_congestion": result.worst_congestion,
            }
            for result in (hourly, static)
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ext_online",
        format_sweep(
            rows,
            ["policy", "total_cost", "mean_congestion", "worst_congestion"],
            title=f"Extension: hourly re-optimization vs static over {HOURS}h",
        ),
    )
    by_name = {r["policy"]: r for r in rows}
    assert by_name["hourly"]["total_cost"] <= by_name["static"]["total_cost"] * 1.02
    assert (
        by_name["hourly"]["worst_congestion"]
        <= by_name["static"]["worst_congestion"] + 1e-9
    )


def test_ext_simulated_validation(benchmark, report):
    """Event-driven check: simulated utilization tracks analytic congestion."""
    from repro.core import congestion

    def run():
        scenario = build_scenario(ScenarioConfig(seed=0))
        rows = []
        for name, solver in (
            ("alternating", alg.alternating(mmufp_method="best")),
            ("SP + RNR [3]", alg.ksp(1)),
        ):
            solution = solver(scenario)
            scaled = scale_problem(scenario.problem, 1e-3)
            sim = simulate(
                scaled, solution.routing, SimulationConfig(horizon=2.0, seed=1)
            )
            rows.append(
                {
                    "algorithm": name,
                    "analytic_congestion": congestion(
                        scenario.problem, solution.routing
                    ),
                    "simulated_utilization": sim.max_utilization,
                    "p95_latency_h": sim.p95_latency,
                    "backlog": sim.late_deliveries,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ext_simulation",
        format_sweep(
            rows,
            [
                "algorithm",
                "analytic_congestion",
                "simulated_utilization",
                "p95_latency_h",
                "backlog",
            ],
            title="Extension: event-driven validation of analytic congestion",
        ),
    )
    import pytest

    # Utilization is windowed at the horizon, so the severely congested
    # benchmark saturates its worst link (~1.0) and the analytic excess
    # shows up as backlog and latency blow-up instead.
    assert rows[1]["analytic_congestion"] > 1.0
    assert rows[1]["simulated_utilization"] == pytest.approx(1.0, abs=0.1)
    assert rows[1]["backlog"] > 0
    assert rows[0]["simulated_utilization"] <= 1.0 + 1e-9
    assert rows[1]["p95_latency_h"] > 10 * rows[0]["p95_latency_h"]
