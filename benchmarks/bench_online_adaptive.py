"""Online adaptive serving on Deltacom: one stream, eight policies.

Replays >= 1M requests of a seeded Zipf stream on the Deltacom topology
through every online policy — the engine-backed reactive strategies (LCE,
LCD, ProbCache, CacheLessForMore, hash routing), the static Algorithm-1
placement, the adaptive projected-gradient placement, and the periodic
Algorithm 1 + GPR prediction loop — and writes their cost-over-time series
to ``BENCH_online_adaptive.json``.

Two gates ride along:

- the engine's LCE replay at chunk size 1 must match the fixed legacy
  ``simulate_reactive_caching`` loop *exactly* on the same stream, and an
  independently seeded per-request replay must land on the same
  steady-state cost rate within statistical tolerance (the big-chunk
  replay's frozen-lookup lag is reported, not gated);
- the periodic planner (stationary stream, so the GPR forecasts the true
  rates) must land within tolerance of the static Algorithm-1 cost.

Environment knobs for quick local iterations (the defaults are the
committed protocol): ``ONLINE_BENCH_REQUESTS``, ``ONLINE_BENCH_ITEMS``,
``ONLINE_BENCH_REPLAN_EVERY``.
"""

import os
import time

import numpy as np

from repro.adaptive import ALL_POLICIES, build_reactive_tables, replay_reactive, run_online_adaptive
from repro.baselines.reactive import simulate_reactive_caching
from repro.experiments import build_zipf_scenario, format_sweep

N_REQUESTS = int(os.environ.get("ONLINE_BENCH_REQUESTS", 1_000_000))
NUM_ITEMS = int(os.environ.get("ONLINE_BENCH_ITEMS", 30))
REPLAN_EVERY = int(os.environ.get("ONLINE_BENCH_REPLAN_EVERY", 24))
CHUNK_SIZE = 8192
LEGACY_REQUESTS = 20_000
SEED = 0


def test_online_adaptive(benchmark, report, bench_json):
    scenario = build_zipf_scenario(
        topology="deltacom",
        num_items=NUM_ITEMS,
        alpha=0.8,
        total_rate=500.0,
        cache_capacity=4.0,
        link_capacity_fraction=None,
        seed=SEED,
    )
    problem = scenario.problem
    rt = build_reactive_tables(problem)

    def run():
        start = time.perf_counter()
        rep = run_online_adaptive(
            problem,
            n_requests=N_REQUESTS,
            chunk_size=CHUNK_SIZE,
            seed=SEED,
            replan_every=REPLAN_EVERY,
            reactive=rt,
        )
        elapsed = time.perf_counter() - start

        # -- gate 1: engine LCE vs the fixed legacy reactive loop ------
        legacy_rng = np.random.default_rng(SEED + 100)
        requests = problem.requests
        rates = np.array([problem.demand[r] for r in requests])
        legacy_stream = np.random.default_rng(SEED + 100).choice(
            len(requests), size=LEGACY_REQUESTS, p=rates / rates.sum()
        )
        legacy = simulate_reactive_caching(
            problem,
            policy="lru",
            n_requests=LEGACY_REQUESTS,
            rng=legacy_rng,
        )
        engine_serial = replay_reactive(
            problem,
            strategy="lce",
            type_ids=legacy_stream,
            chunk_size=1,
            reactive=rt,
        )
        serial_rel = abs(engine_serial.cost_rate - legacy.cost_rate) / legacy.cost_rate
        assert serial_rel < 1e-9, f"serial LCE off legacy by {serial_rel:.2e}"
        # Statistical tolerance: an *independent* stream served per-request
        # (chunk 1) must land on the same steady-state rate.
        engine_stat = replay_reactive(
            problem,
            strategy="lce",
            n_requests=LEGACY_REQUESTS,
            chunk_size=1,
            seed=SEED + 200,
            reactive=rt,
        )
        stat_rel = abs(engine_stat.cost_rate - legacy.cost_rate) / legacy.cost_rate
        assert stat_rel < 0.10, f"engine LCE off legacy by {stat_rel:.1%}"
        # The big-chunk replay freezes lookups at chunk start; with caches
        # this small the lag is a known, reported bias — not a parity gate.
        lce_rel = abs(rep.traces["lce"].cost_rate - legacy.cost_rate) / legacy.cost_rate

        # -- gate 2: the prediction loop recovers the static optimum ----
        periodic = rep.traces["periodic_alg1_gpr"].cost_rate
        static = rep.traces["static_alg1"].cost_rate
        assert periodic <= 1.10 * static, (
            f"periodic Alg1+GPR {periodic:.1f} vs static {static:.1f}"
        )

        return rep, elapsed, legacy.cost_rate, lce_rel, serial_rel, stat_rel

    rep, elapsed, legacy_rate, lce_rel, serial_rel, stat_rel = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = [
        {
            "policy": name,
            "cost_rate": trace.cost_rate,
            "vs_static": trace.cost_rate / rep.traces["static_alg1"].cost_rate,
            "edge_hit_ratio": trace.edge_hit_ratio,
            "updates": trace.updates,
        }
        for name, trace in rep.traces.items()
    ]
    report(
        "online_adaptive",
        format_sweep(
            rows,
            ["policy", "cost_rate", "vs_static", "edge_hit_ratio", "updates"],
            title=(
                f"Online adaptive serving (Deltacom, {rep.n_requests:,} "
                f"requests, chunk {rep.chunk_size})"
            ),
        ),
    )
    bench_json(
        "online_adaptive",
        {
            "topology": "deltacom",
            "n_requests": int(rep.n_requests),
            "chunk_size": int(rep.chunk_size),
            "seed": int(rep.seed),
            "num_items": NUM_ITEMS,
            "replan_every": REPLAN_EVERY,
            "total_rate": float(rep.total_rate),
            "elapsed_seconds": float(elapsed),
            "legacy_lce_cost_rate": float(legacy_rate),
            "serial_lce_rel_error": float(serial_rel),
            "statistical_lce_rel_error": float(stat_rel),
            "chunked_lce_rel_error": float(lce_rel),
            "static_lp_objective": float(rep.static_lp_objective),
            "static_constant": float(rep.static_constant),
            "chunk_requests": rep.chunk_requests.tolist(),
            "policies": {
                name: {
                    "cost_rate": float(trace.cost_rate),
                    "edge_hit_ratio": float(trace.edge_hit_ratio),
                    "updates": int(trace.updates),
                    "chunk_costs": [float(c) for c in trace.chunk_costs],
                    "cumulative_cost": [float(c) for c in trace.cumulative()],
                }
                for name, trace in rep.traces.items()
            },
            "regret_vs_static": {
                name: [float(r) for r in rep.regret(name)]
                for name in rep.traces
                if name != "static_alg1"
            },
        },
    )
    assert rep.n_requests == N_REQUESTS
    assert set(rep.traces) == set(ALL_POLICIES)
