"""Ablation: LP vs combinatorial (SSP) engine for Algorithm 2's line 1.

Algorithm 2 spends its exact phase computing a minimum-cost splittable
flow.  Both engines are exact, so the downstream bicriteria guarantees are
identical; this bench compares runtime and confirms the costs agree on the
paper's binary-cache scenario.
"""

import time

from repro.core.msufp import MSUFPCommodity, build_auxiliary_graph, solve_msufp
from repro.experiments import (
    ScenarioConfig,
    binary_cache_servers,
    build_scenario,
    format_sweep,
    pin_servers,
)
from repro.core.msufp import VIRTUAL_SOURCE


def test_ablation_flow_engine(benchmark, report):
    config = ScenarioConfig(level="chunk", link_capacity_fraction=0.035)

    def run():
        rows = []
        for seed in (0, 1):
            scenario = build_scenario(
                ScenarioConfig(
                    level="chunk", link_capacity_fraction=0.035, seed=seed
                )
            )
            servers = binary_cache_servers(scenario)
            problem = pin_servers(scenario, servers)
            aux = build_auxiliary_graph(problem, servers)
            commodities = [
                MSUFPCommodity(id=(i, s), sink=s, demand=rate)
                for (i, s), rate in problem.demand.items()
            ]
            for engine in ("lp", "ssp"):
                start = time.perf_counter()
                result = solve_msufp(
                    aux, VIRTUAL_SOURCE, commodities, K=100, engine=engine
                )
                elapsed = time.perf_counter() - start
                rows.append(
                    {
                        "seed": seed,
                        "engine": engine,
                        "splittable_cost": result.splittable_cost,
                        "unsplittable_cost": result.unsplittable_cost,
                        "seconds": elapsed,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_flow_engine",
        format_sweep(
            rows,
            ["seed", "engine", "splittable_cost", "unsplittable_cost", "seconds"],
            title="Ablation: LP vs successive-shortest-paths inside Algorithm 2",
        ),
    )
    for seed in (0, 1):
        sub = {r["engine"]: r for r in rows if r["seed"] == seed}
        # Both engines are exact: identical splittable optima.
        assert abs(
            sub["lp"]["splittable_cost"] - sub["ssp"]["splittable_cost"]
        ) <= 1e-5 * sub["lp"]["splittable_cost"]
