"""Ablation: MMUFP rounding heuristics inside the alternating optimization.

Section 4.3.2 leaves integral routing to heuristics; this bench compares
LP-relaxation randomized rounding, capacity-aware greedy assignment, and
the best-of combination on the default general-case scenario, plus the
effect of the randomized-rounding sample budget.
"""

from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    aggregate,
    algorithms as alg,
    format_sweep,
    run_monte_carlo,
)

MC = MonteCarloConfig(n_runs=3)


def test_ablation_mmufp_methods(benchmark, report):
    config = ScenarioConfig(level="chunk")

    def run():
        records = run_monte_carlo(
            config,
            {
                "randomized (16)": alg.alternating(
                    mmufp_method="randomized", n_samples=16
                ),
                "randomized (2)": alg.alternating(
                    mmufp_method="randomized", n_samples=2
                ),
                "greedy": alg.alternating(mmufp_method="greedy"),
                "best-of": alg.alternating(mmufp_method="best"),
            },
            MC,
        )
        return [
            {
                "mmufp_variant": a.algorithm,
                "cost": a.mean_cost,
                "congestion": a.mean_congestion,
                "seconds": a.mean_seconds,
            }
            for a in aggregate(records)
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_mmufp",
        format_sweep(
            rows,
            ["mmufp_variant", "cost", "congestion", "seconds"],
            title="Ablation: MMUFP rounding inside alternating optimization",
        ),
    )
    by_name = {r["mmufp_variant"]: r for r in rows}
    # best-of is never more congested than pure randomized rounding.
    assert (
        by_name["best-of"]["congestion"]
        <= by_name["randomized (16)"]["congestion"] + 1e-9
    )
    # greedy respects capacities by construction.
    assert by_name["greedy"]["congestion"] <= 1.05
