"""Tables 3-4: execution time of every algorithm at the default setting.

One run per algorithm under IC-IR (the most computationally challenging
case), chunk level (Table 3) and file level (Table 4).  Absolute times
differ from the authors' machine; the useful reproduction targets are the
orderings (candidate-path enumeration for [3] k=10 dominates; [38]'s SP
placement is the fastest; Algorithm 2's cost is insensitive to K).
"""

from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    aggregate,
    algorithms as alg,
    binary_cache_servers,
    build_scenario,
    format_sweep,
    run_monte_carlo,
)

MC = MonteCarloConfig(n_runs=3)


def _rows_for(level: str, cache: float):
    rows = []
    unlimited = ScenarioConfig(
        level=level, cache_capacity=cache, link_capacity_fraction=None
    )
    proposed = alg.alg1 if level == "chunk" else alg.greedy
    proposed_name = "Alg1" if level == "chunk" else "greedy"
    records = run_monte_carlo(
        unlimited,
        {proposed_name: proposed, "k-SP [3]": alg.ksp(10), "SP [38]": alg.sp},
        MC,
    )
    for a in aggregate(records):
        rows.append(
            {"scenario": "unlimited", "algorithm": a.algorithm, "seconds": a.mean_seconds}
        )

    binary = ScenarioConfig(
        level=level, cache_capacity=cache, link_capacity_fraction=0.035
    )
    servers = binary_cache_servers(build_scenario(binary))
    records = run_monte_carlo(
        binary,
        {
            "Alg2 K=1000": alg.alg2_binary(servers, 1000),
            "[33] K=2": alg.alg2_binary(servers, 2),
            "RNR [3]": alg.rnr_binary(servers),
        },
        MC,
    )
    for a in aggregate(records):
        rows.append(
            {"scenario": "binary", "algorithm": a.algorithm, "seconds": a.mean_seconds}
        )

    general = ScenarioConfig(level=level, cache_capacity=cache)
    records = run_monte_carlo(
        general,
        {
            "alternating": alg.alternating(mmufp_method="best"),
            "SP [38]": alg.sp,
            "SP + RNR [3]": alg.ksp(1),
            "k-SP + RNR [3]": alg.ksp(10),
        },
        MC,
    )
    for a in aggregate(records):
        rows.append(
            {"scenario": "general", "algorithm": a.algorithm, "seconds": a.mean_seconds}
        )
    return rows


def test_table3_runtime_chunk_level(benchmark, report):
    rows = benchmark.pedantic(lambda: _rows_for("chunk", 12), rounds=1, iterations=1)
    report(
        "table3_runtime_chunk",
        format_sweep(
            rows,
            ["scenario", "algorithm", "seconds"],
            title="Table 3: average execution time, chunk level (IC-IR)",
        ),
    )
    by_key = {(r["scenario"], r["algorithm"]): r["seconds"] for r in rows}
    # [3] with k=10 pays candidate-path enumeration; [38]'s SP is cheap.
    assert by_key[("general", "k-SP + RNR [3]")] > by_key[("general", "SP [38]")]
    # Everything is fast enough for hourly re-optimization.
    assert all(r["seconds"] < 60 for r in rows)


def test_table4_runtime_file_level(benchmark, report):
    rows = benchmark.pedantic(lambda: _rows_for("file", 2), rounds=1, iterations=1)
    report(
        "table4_runtime_file",
        format_sweep(
            rows,
            ["scenario", "algorithm", "seconds"],
            title="Table 4: average execution time, file level (IC-IR)",
        ),
    )
    assert all(r["seconds"] < 60 for r in rows)
