"""Solver-state reuse layer: derived contexts, LP templates, shm broadcast.

Not a figure of the paper — the acceptance bench for the reuse layer built
on top of its solvers.  Three independent measurements:

1. **Degraded-context sweep** — a Deltacom single-link failure sweep with
   one parent :class:`~repro.core.context.SolverContext` threaded through
   ``survivability_report`` (incremental distance-matrix repair + dense
   recovery) against the per-scenario-rebuild path.  The reports must match
   record for record and the reuse path must be >= 5x faster.
2. **FC-FR template sweep** — capacity scenarios solved by patching one
   frozen LP (:class:`~repro.core.fcfr.FCFRTemplate`) against re-assembling
   and re-solving from scratch; costs must be bit-identical.
3. **Broadcast payload** — the per-pool pickle payload of a shared-memory
   distance-matrix handle must stay an order of magnitude below the
   O(|V|^2) matrix it replaces.

Every measurement lands in ``BENCH_reuse_layer.json`` for CI artifact
comparison; parity failures fail the bench, not just the numbers.
"""

import pickle
import time

from repro.core import FCFRTemplate, solve_fcfr
from repro.core.context import SolverContext
from repro.core.problem import ProblemInstance
from repro.core.submodular import greedy_rnr_placement
from repro.experiments import ScenarioConfig, build_scenario, format_sweep
from repro.graph import build_distance_matrix, deltacom
from repro.graph.shm import MatrixBroadcast, graph_signature
from repro.robustness import single_link_failures, survivability_report

SWEEP_SCENARIOS = 40
SPEEDUP_FLOOR = 5.0


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def test_degraded_context_sweep(benchmark, report, bench_json):
    scenario = build_scenario(
        ScenarioConfig(
            seed=0, topology="deltacom", num_videos=5, link_capacity_fraction=None
        )
    )
    problem = scenario.problem
    context = SolverContext.from_problem(problem)
    placement = greedy_rnr_placement(problem, context=context)
    scenarios = single_link_failures(problem)[:SWEEP_SCENARIOS]

    def run():
        rebuild, rebuild_seconds = _timed(
            lambda: survivability_report(problem, placement, scenarios, repair=True)
        )
        reuse, reuse_seconds = _timed(
            lambda: survivability_report(
                problem, placement, scenarios, repair=True, context=context
            )
        )
        return rebuild, rebuild_seconds, reuse, reuse_seconds

    rebuild, rebuild_seconds, reuse, reuse_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = rebuild_seconds / reuse_seconds
    identical = (
        rebuild.healthy_cost == reuse.healthy_cost
        and rebuild.records == reuse.records
    )
    rows = [
        {"variant": "per-scenario rebuild", "seconds": rebuild_seconds},
        {"variant": "derived contexts (reuse)", "seconds": reuse_seconds},
    ]
    report(
        "reuse_degraded_sweep",
        format_sweep(
            rows,
            ["variant", "seconds"],
            title=(
                f"Deltacom single-link sweep, {len(scenarios)} scenarios, "
                f"repair on — speedup {speedup:.2f}x"
            ),
        ),
    )
    bench_json(
        "reuse_layer",
        {
            "degraded_sweep": {
                "topology": "deltacom",
                "scenarios": len(scenarios),
                "rebuild_seconds": rebuild_seconds,
                "reuse_seconds": reuse_seconds,
                "speedup": speedup,
                "reports_identical": identical,
            }
        },
    )
    assert identical, "context-threaded sweep changed the survivability report"
    assert speedup >= SPEEDUP_FLOOR, (
        f"derived-context sweep only {speedup:.2f}x faster "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


def _rescaled(problem: ProblemInstance, factor: float) -> ProblemInstance:
    network = problem.network.copy()
    for (u, v), cap in problem.network.capacities().items():
        if cap != float("inf"):
            network.set_link_capacity(u, v, cap * factor)
    return ProblemInstance(
        network=network,
        catalog=problem.catalog,
        demand=dict(problem.demand),
        item_sizes=dict(problem.item_sizes) if problem.item_sizes else None,
        pinned=frozenset(problem.pinned),
    )


def test_fcfr_template_capacity_sweep(benchmark, report, bench_json):
    scenario = build_scenario(ScenarioConfig(seed=0, num_videos=4))
    problem = scenario.problem
    finite = {
        e: c
        for e, c in problem.network.capacities().items()
        if c != float("inf")
    }
    factors = [1.0, 0.9, 0.8, 0.7]

    def run():
        def fresh_sweep():
            return [solve_fcfr(_rescaled(problem, f)).cost for f in factors]

        def template_sweep():
            template = FCFRTemplate(problem)
            return [
                template.solve(
                    link_capacities={e: c * f for e, c in finite.items()}
                ).cost
                for f in factors
            ]

        fresh, fresh_seconds = _timed(fresh_sweep)
        patched, template_seconds = _timed(template_sweep)
        return fresh, fresh_seconds, patched, template_seconds

    fresh, fresh_seconds, patched, template_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = fresh_seconds / template_seconds
    rows = [
        {"variant": "fresh assembly per scenario", "seconds": fresh_seconds},
        {"variant": "frozen template, patched rhs", "seconds": template_seconds},
    ]
    report(
        "reuse_fcfr_template",
        format_sweep(
            rows,
            ["variant", "seconds"],
            title=(
                f"FC-FR capacity sweep, {len(factors)} scenarios — "
                f"speedup {speedup:.2f}x, costs identical: {fresh == patched}"
            ),
        ),
    )
    bench_json(
        "reuse_fcfr_template",
        {
            "scenarios": len(factors),
            "fresh_seconds": fresh_seconds,
            "template_seconds": template_seconds,
            "speedup": speedup,
            "costs_identical": fresh == patched,
            "costs": patched,
        },
    )
    # Patching may only change speed, never the answer.
    assert fresh == patched


def test_broadcast_payload(report, bench_json):
    graph = deltacom().graph
    dm = build_distance_matrix(graph)
    with MatrixBroadcast(dm, graph_signature(graph)) as broadcast:
        handle_bytes = len(pickle.dumps(broadcast.handle))
        matrix_bytes = len(pickle.dumps(dm))
    report(
        "reuse_broadcast_payload",
        format_sweep(
            [
                {"payload": "pickled DistanceMatrix", "bytes": matrix_bytes},
                {"payload": "pickled shm handle", "bytes": handle_bytes},
            ],
            ["payload", "bytes"],
            title=f"Deltacom (|V|={len(dm)}) per-pool broadcast payload",
        ),
    )
    bench_json(
        "broadcast_payload",
        {
            "topology": "deltacom",
            "nodes": len(dm),
            "matrix_nbytes": int(dm.matrix.nbytes),
            "pickled_matrix_bytes": matrix_bytes,
            "pickled_handle_bytes": handle_bytes,
        },
    )
    # The O(|V|^2) payload never crosses a pool boundary — only the handle.
    assert handle_bytes < dm.matrix.nbytes / 10
