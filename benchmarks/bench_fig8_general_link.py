"""Fig. 8: the general case vs link capacity (kappa sweep).

Same algorithms as Fig. 7; the link capacity kappa runs over multiples of
the paper's 0.7%-of-total-rate default.  Tighter links widen the congestion
gap between the alternating optimization (capacity-aware) and the
benchmarks (capacity-oblivious).
"""

from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    aggregate,
    algorithms as alg,
    format_sweep,
    run_monte_carlo,
)

MC = MonteCarloConfig(n_runs=2)

ALGOS = {
    "alternating": alg.alternating(mmufp_method="best"),
    "SP [38]": alg.sp,
    "SP + RNR [3]": alg.ksp(1),
    "k-SP + RNR [3]": alg.ksp(10),
}


def test_fig8_chunk_level_vary_link_capacity(benchmark, report):
    def run():
        rows = []
        for fraction in (0.0035, 0.007, 0.014, 0.028):
            config = ScenarioConfig(level="chunk", link_capacity_fraction=fraction)
            records = run_monte_carlo(config, ALGOS, MC)
            for a in aggregate(records):
                rows.append(
                    {
                        "capacity_fraction": fraction,
                        "algorithm": a.algorithm,
                        "cost": a.mean_cost,
                        "congestion": a.mean_congestion,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig8_chunk",
        format_sweep(
            rows,
            ["capacity_fraction", "algorithm", "cost", "congestion"],
            title="Fig 8 (chunk level): general case, varying link capacity",
        ),
    )
    for fraction in (0.0035, 0.007, 0.014, 0.028):
        sub = {r["algorithm"]: r for r in rows if r["capacity_fraction"] == fraction}
        assert sub["alternating"]["congestion"] < sub["SP [38]"]["congestion"]
        assert sub["alternating"]["congestion"] < sub["k-SP + RNR [3]"]["congestion"]
    # Benchmarks' congestion shrinks as links widen (ratio to capacity).
    bench = [r for r in rows if r["algorithm"] == "SP [38]"]
    assert bench[0]["congestion"] > bench[-1]["congestion"]


def test_fig8_file_level_vary_link_capacity(benchmark, report):
    def run():
        rows = []
        for fraction in (0.007, 0.028):
            config = ScenarioConfig(
                level="file", cache_capacity=2, link_capacity_fraction=fraction
            )
            records = run_monte_carlo(config, ALGOS, MC)
            for a in aggregate(records):
                rows.append(
                    {
                        "capacity_fraction": fraction,
                        "algorithm": a.algorithm,
                        "cost": a.mean_cost,
                        "congestion": a.mean_congestion,
                        "occupancy": a.mean_occupancy,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig8_file",
        format_sweep(
            rows,
            ["capacity_fraction", "algorithm", "cost", "congestion", "occupancy"],
            title="Fig 8 (file level): varying link capacity",
        ),
    )
    for r in rows:
        if r["algorithm"] == "alternating":
            assert r["occupancy"] <= 1 + 1e-6
