"""Table 2: qualitative summary of the chunk-level IC-IR comparison.

Runs all three scenarios of the paper's evaluation at the default setting
and re-derives the qualitative verdicts of Table 2:

- unlimited links: Alg 1 lowest cost, [3] k-SP highest, [38] in between;
- binary caches: Alg 2 (large K) <= optimal cost at low congestion, [33]
  (K=2) moderate, RNR severely congested;
- general case: alternating ~ IC-FR with low congestion; SP / SP+RNR /
  k-SP+RNR severely congested.
"""

from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    aggregate,
    algorithms as alg,
    binary_cache_servers,
    build_scenario,
    format_sweep,
    run_monte_carlo,
)

MC = MonteCarloConfig(n_runs=3)


def test_table2_summary(benchmark, report):
    def run():
        rows = []

        unlimited = ScenarioConfig(level="chunk", link_capacity_fraction=None)
        records = run_monte_carlo(
            unlimited,
            {"Alg1": alg.alg1, "k-SP [3]": alg.ksp(10), "SP [38]": alg.sp},
            MC,
        )
        for a in aggregate(records):
            rows.append(
                {
                    "scenario": "unlimited links",
                    "algorithm": a.algorithm,
                    "cost": a.mean_cost,
                    "congestion": float("nan"),
                }
            )

        binary = ScenarioConfig(level="chunk", link_capacity_fraction=0.035)
        servers = binary_cache_servers(build_scenario(binary))
        records = run_monte_carlo(
            binary,
            {
                "Alg2 K=1000": alg.alg2_binary(servers, 1000),
                "[33] K=2": alg.alg2_binary(servers, 2),
                "RNR [3]": alg.rnr_binary(servers),
                "splittable": alg.splittable_binary(servers),
            },
            MC,
        )
        for a in aggregate(records):
            rows.append(
                {
                    "scenario": "binary caches",
                    "algorithm": a.algorithm,
                    "cost": a.mean_cost,
                    "congestion": a.mean_congestion,
                }
            )

        general = ScenarioConfig(level="chunk")
        records = run_monte_carlo(
            general,
            {
                "alternating": alg.alternating(mmufp_method="best"),
                "IC-FR (alt-frac)": alg.alternating(integral_routing=False),
                "SP [38]": alg.sp,
                "SP + RNR [3]": alg.ksp(1),
                "k-SP + RNR [3]": alg.ksp(10),
            },
            MC,
        )
        for a in aggregate(records):
            rows.append(
                {
                    "scenario": "general",
                    "algorithm": a.algorithm,
                    "cost": a.mean_cost,
                    "congestion": a.mean_congestion,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "table2_summary",
        format_sweep(
            rows,
            ["scenario", "algorithm", "cost", "congestion"],
            title="Table 2: qualitative summary (chunk level, IC-IR)",
        ),
    )

    unlimited = {r["algorithm"]: r for r in rows if r["scenario"] == "unlimited links"}
    assert unlimited["Alg1"]["cost"] < unlimited["SP [38]"]["cost"]
    assert unlimited["Alg1"]["cost"] < unlimited["k-SP [3]"]["cost"]

    binary = {r["algorithm"]: r for r in rows if r["scenario"] == "binary caches"}
    assert binary["Alg2 K=1000"]["cost"] <= binary["splittable"]["cost"] * 1.001
    assert binary["Alg2 K=1000"]["congestion"] <= binary["[33] K=2"]["congestion"] + 1e-9
    assert binary["RNR [3]"]["congestion"] > 10 * binary["Alg2 K=1000"]["congestion"]

    general = {r["algorithm"]: r for r in rows if r["scenario"] == "general"}
    ic_fr = general["IC-FR (alt-frac)"]["cost"]
    assert general["alternating"]["cost"] < 1.5 * ic_fr  # ~ IC-FR
    for bench in ("SP [38]", "SP + RNR [3]", "k-SP + RNR [3]"):
        assert general[bench]["congestion"] > 3 * general["alternating"]["congestion"]
