"""Failure survivability: Algorithm 1 / alternating placements vs baselines.

Not a figure of the paper — the operational follow-up to its congestion
constraints: inject every single-link failure into the default Abovenet
scenario, re-route each placement's stranded requests to the next-nearest
surviving replica (the graceful-degradation policy of ``repro.robustness``),
and compare how much cost inflation and unserved demand each algorithm's
placement absorbs.  Placements that spread replicas (Alg 1, greedy) should
both serve everything and inflate less than the single-path shortest-path
baseline's cache allocation.
"""

import networkx as nx

from repro.core.context import SolverContext
from repro.experiments import ScenarioConfig, build_scenario, format_sweep
from repro.experiments.algorithms import alg1, greedy, sp
from repro.robustness import apply_failure, single_link_failures, survivability_report

ALGORITHMS = {"alg1": alg1, "greedy": greedy, "sp": sp}


def test_failure_survivability(benchmark, report, bench_json):
    config = ScenarioConfig(
        seed=0, num_videos=5, link_capacity_fraction=None, num_edge_nodes=5
    )
    scenario = build_scenario(config)
    problem = scenario.problem
    scenarios = single_link_failures(problem)

    # Scenarios where the pinned origin still reaches every requester —
    # those must end up fully served regardless of the placement.  (Abovenet
    # has one bridge, so a couple of link failures genuinely strand demand.)
    requesters = {s for (_i, s) in problem.demand}
    survivable = set()
    for fail in scenarios:
        degraded = apply_failure(problem, fail)
        reach = nx.descendants(degraded.problem.network.graph, scenario.origin)
        reach.add(scenario.origin)
        if requesters <= reach:
            survivable.add(fail.name)

    # One parent context serves the whole sweep: every failure scenario
    # derives its degraded context incrementally instead of rebuilding the
    # dense matrix and path caches from scratch (see repro.robustness.degraded).
    context = SolverContext.from_problem(problem)

    def run():
        rows = []
        for name, algorithm in ALGORITHMS.items():
            placement = algorithm(scenario).placement
            surv = survivability_report(
                problem, placement, scenarios, repair=True, context=context
            )
            rows.append(
                {
                    "algorithm": name,
                    "healthy_cost": surv.healthy_cost,
                    "worst_inflation": surv.worst_cost_inflation,
                    "worst_unserved": surv.worst_unserved_fraction,
                    "served": surv.fully_served_scenarios,
                    "survivable": sum(
                        1
                        for r in surv.records
                        if r.scenario in survivable and r.fully_served
                    ),
                    "scenarios": len(surv.records),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "failure_survivability",
        format_sweep(
            rows,
            [
                "algorithm",
                "healthy_cost",
                "worst_inflation",
                "worst_unserved",
                "served",
                "survivable",
                "scenarios",
            ],
            title="single-link failure survivability (Abovenet, 5 videos, repair on)",
        ),
    )
    bench_json(
        "failure_survivability",
        {
            "topology": config.topology,
            "num_videos": config.num_videos,
            "scenarios": len(scenarios),
            "rows": rows,
        },
    )
    for row in rows:
        # All servable demand is served...
        assert row["survivable"] == len(survivable)
        # ...and detours around a failure never beat the healthy routing.
        assert row["worst_inflation"] >= 1.0
