"""Fig. 4: hourly views, ground truth vs GPR prediction.

The paper plots #views/hour of the top videos against the prediction of a
Gaussian-process regressor (white + periodic + RBF kernels, refit every 5
hours on the cumulative history).  This bench predicts a 10-hour window for
the top videos and reports the per-video mean absolute percentage error —
the quantitative content of Fig. 4.
"""

import numpy as np

from repro.experiments import format_sweep
from repro.prediction import DemandPredictor
from repro.workload import TraceConfig, synthesize_trace, top_videos

EVAL_HOURS = 10


def test_fig4_gpr_prediction(benchmark, report):
    def run():
        config = TraceConfig(seed=0)
        trace = synthesize_trace(config=config)
        predictor = DemandPredictor(
            train_hours=config.train_hours,
            batch_hours=5,
            history_window=150,
            n_restarts=0,
        )
        rows = []
        for video in top_videos(6):
            series = trace.series(video.video_id)
            predicted = predictor.predict_series(series, eval_hours=EVAL_HOURS)
            truth = series[config.train_hours : config.train_hours + EVAL_HOURS]
            mape = float(np.mean(np.abs(predicted - truth) / truth))
            rows.append(
                {
                    "video_id": video.video_id,
                    "truth_h0": float(truth[0]),
                    "pred_h0": float(predicted[0]),
                    "mape_10h": mape,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig4_prediction",
        format_sweep(
            rows,
            ["video_id", "truth_h0", "pred_h0", "mape_10h"],
            title="Fig 4: GPR demand prediction, truth vs predicted (10h window)",
        ),
    )
    # Realistic but informative prediction: errors well below a naive 100%.
    assert all(row["mape_10h"] < 0.5 for row in rows)
