"""Fig. 12 (Appendix D): varying the chunk size (25 / 50 / 100 MB).

Smaller chunks mean a finer-grained catalog (|C| = 199 / 103 / 54 for the
top-10 videos) and more flexible caching/routing: the alternating
optimization's cost (per MB moved) should not degrade — the paper reports a
slight improvement — while the capacity-oblivious benchmarks get greedier
and more congested.
"""

from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    aggregate,
    algorithms as alg,
    format_sweep,
    run_monte_carlo,
)

MC = MonteCarloConfig(n_runs=2)


def test_fig12_vary_chunk_size(benchmark, report):
    def run():
        rows = []
        for chunk_mb in (100.0, 50.0, 25.0):
            scale = 100.0 / chunk_mb
            config = ScenarioConfig(
                level="chunk",
                chunk_mb=chunk_mb,
                # Same physical cache (1200 MB) regardless of chunk size.
                cache_capacity=12 * scale,
            )
            algorithms = {
                "alternating": alg.alternating(
                    mmufp_method="best", max_iterations=6
                ),
                "SP [38]": alg.sp,
            }
            records = run_monte_carlo(config, algorithms, MC)
            for a in aggregate(records):
                rows.append(
                    {
                        "chunk_mb": chunk_mb,
                        "algorithm": a.algorithm,
                        # Scale to a MB basis so different chunk sizes compare.
                        "cost_mb_basis": a.mean_cost * chunk_mb,
                        "congestion": a.mean_congestion,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig12_chunksize",
        format_sweep(
            rows,
            ["chunk_mb", "algorithm", "cost_mb_basis", "congestion"],
            title="Fig 12: varying chunk size (top-10 videos, general case)",
        ),
    )
    ours = {r["chunk_mb"]: r for r in rows if r["algorithm"] == "alternating"}
    # Finer chunks never hurt the capacity-aware optimization much.
    assert ours[25.0]["cost_mb_basis"] <= 1.2 * ours[100.0]["cost_mb_basis"]
    for r in rows:
        if r["algorithm"] == "alternating":
            assert r["congestion"] < 2.0
