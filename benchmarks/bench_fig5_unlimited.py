"""Fig. 5: the uncapacitated case — Algorithm 1 / greedy vs [3] and [38].

Three panels, as in the paper:

- chunk level (homogeneous 100-MB chunks), routing cost vs cache capacity:
  Algorithm 1 vs [38] ('shortest path') vs [3] ('k shortest paths', k=10);
- file level (heterogeneous sizes), cost AND max cache occupancy vs cache
  capacity: the benchmarks' equal-swap rounding overfills caches (>1);
- file level, cost vs the number of candidate paths k for [3].

Also reruns the default point on GPR-predicted demand (the paper's dark
bars) to confirm the ordering survives realistic prediction error.
"""

from dataclasses import replace

from repro.core import max_cache_occupancy, routing_cost
from repro.experiments import (
    MonteCarloConfig,
    PredictionConfig,
    ScenarioConfig,
    aggregate,
    algorithms as alg,
    build_scenario,
    format_sweep,
    predicted_rates_for_hour,
    run_monte_carlo,
)
from repro.workload import TraceConfig, synthesize_trace, top_videos

MC = MonteCarloConfig(n_runs=3)


def _chunk_config(cache: float) -> ScenarioConfig:
    return ScenarioConfig(
        level="chunk", cache_capacity=cache, link_capacity_fraction=None
    )


def _file_config(cache: float) -> ScenarioConfig:
    return ScenarioConfig(
        level="file", cache_capacity=cache, link_capacity_fraction=None
    )


def test_fig5_chunk_level_cost_vs_cache(benchmark, report):
    algorithms = {
        "Alg1": alg.alg1,
        "SP [38]": alg.sp,
        "k-SP [3]": alg.ksp(10),
    }

    def run():
        rows = []
        for cache in (6, 12, 18):
            records = run_monte_carlo(_chunk_config(cache), algorithms, MC)
            for agg in aggregate(records):
                rows.append(
                    {
                        "cache (chunks)": cache,
                        "algorithm": agg.algorithm,
                        "cost": agg.mean_cost,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig5_chunk_cost",
        format_sweep(
            rows,
            ["cache (chunks)", "algorithm", "cost"],
            title="Fig 5 (row 1): chunk level, unlimited links — cost vs cache size",
        ),
    )
    for cache in (6, 12, 18):
        costs = {r["algorithm"]: r["cost"] for r in rows if r["cache (chunks)"] == cache}
        assert costs["Alg1"] < costs["SP [38]"]
        assert costs["Alg1"] < costs["k-SP [3]"]


def test_fig5_file_level_cost_and_occupancy(benchmark, report):
    algorithms = {
        "greedy": alg.greedy,
        "SP [38]": alg.sp,
        "k-SP [3]": alg.ksp(10),
    }

    def run():
        rows = []
        for cache in (1, 2, 3):
            records = run_monte_carlo(_file_config(cache), algorithms, MC)
            for agg in aggregate(records):
                rows.append(
                    {
                        "cache (files)": cache,
                        "algorithm": agg.algorithm,
                        "cost": agg.mean_cost,
                        "occupancy": agg.mean_occupancy,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig5_file_cost_occupancy",
        format_sweep(
            rows,
            ["cache (files)", "algorithm", "cost", "occupancy"],
            title="Fig 5 (row 2): file level — cost and max cache occupancy",
        ),
    )
    # Our greedy stays feasible; the benchmarks' equal-swap rounding overfills.
    for row in rows:
        if row["algorithm"] == "greedy":
            assert row["occupancy"] <= 1 + 1e-6
    assert any(
        row["occupancy"] > 1.0 for row in rows if row["algorithm"] != "greedy"
    )


def test_fig5_file_level_vs_candidate_paths(benchmark, report):
    def run():
        rows = []
        algorithms = {"greedy": alg.greedy}
        for k in (2, 10, 20):
            algorithms[f"k-SP k={k}"] = alg.ksp(k)
        records = run_monte_carlo(_file_config(2), algorithms, MC)
        for agg in aggregate(records):
            rows.append(
                {
                    "algorithm": agg.algorithm,
                    "cost": agg.mean_cost,
                    "occupancy": agg.mean_occupancy,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig5_file_vs_k",
        format_sweep(
            rows,
            ["algorithm", "cost", "occupancy"],
            title="Fig 5 (row 3): file level — varying #candidate paths for [3]",
        ),
    )


def test_fig5_predicted_demand(benchmark, report):
    """Dark bars of Fig 5: same comparison on GPR-predicted demand."""

    def run():
        trace_config = TraceConfig(seed=0)
        trace = synthesize_trace(videos=top_videos(10), config=trace_config)
        predicted = predicted_rates_for_hour(
            trace, hour=0, prediction=PredictionConfig()
        )
        rows = []
        for seed in range(2):
            config = replace(_chunk_config(12), seed=seed)
            scenario = build_scenario(
                config,
                trace=trace,
                trace_config=trace_config,
                predicted_rates=predicted,
            )
            for name, solver in (
                ("Alg1", alg.alg1),
                ("SP [38]", alg.sp),
                ("k-SP [3]", alg.ksp(10)),
            ):
                solution = solver(scenario)
                rows.append(
                    {
                        "seed": seed,
                        "algorithm": name,
                        "cost_true_demand": routing_cost(
                            scenario.problem, solution.routing
                        ),
                        "occupancy": max_cache_occupancy(
                            scenario.problem, solution.placement
                        ),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig5_predicted",
        format_sweep(
            rows,
            ["seed", "algorithm", "cost_true_demand", "occupancy"],
            title="Fig 5 (dark bars): planning on GPR-predicted demand",
        ),
    )
    for seed in (0, 1):
        costs = {r["algorithm"]: r["cost_true_demand"] for r in rows if r["seed"] == seed}
        assert costs["Alg1"] < costs["SP [38]"]
