"""Fig. 7: the general case (limited caches AND links) vs cache capacity.

Compares the paper's alternating optimization with [38] ('SP'), [3] with one
candidate path ('SP + RNR'), and [3] with k=10 ('k-SP + RNR'), at chunk and
file level, sweeping the cache size.  Expected shape: the benchmarks congest
severely (they ignore link capacities); alternating stays near-feasible at
competitive cost; at file level the benchmarks' placements additionally
overfill caches (occupancy > 1).
"""

from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    aggregate,
    algorithms as alg,
    format_sweep,
    run_monte_carlo,
)

MC = MonteCarloConfig(n_runs=2)

ALGOS = {
    "alternating": alg.alternating(mmufp_method="best"),
    "SP [38]": alg.sp,
    "SP + RNR [3]": alg.ksp(1),
    "k-SP + RNR [3]": alg.ksp(10),
}


def test_fig7_chunk_level(benchmark, report):
    def run():
        rows = []
        for cache in (6, 12, 18):
            config = ScenarioConfig(level="chunk", cache_capacity=cache)
            records = run_monte_carlo(config, ALGOS, MC)
            for a in aggregate(records):
                rows.append(
                    {
                        "cache (chunks)": cache,
                        "algorithm": a.algorithm,
                        "cost": a.mean_cost,
                        "congestion": a.mean_congestion,
                        "occupancy": a.mean_occupancy,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig7_chunk",
        format_sweep(
            rows,
            ["cache (chunks)", "algorithm", "cost", "congestion", "occupancy"],
            title="Fig 7 (chunk level): general case, varying cache capacity",
        ),
    )
    for cache in (6, 12, 18):
        sub = {r["algorithm"]: r for r in rows if r["cache (chunks)"] == cache}
        # Benchmarks ignore link capacities -> severe congestion.
        assert sub["alternating"]["congestion"] < sub["SP [38]"]["congestion"]
        assert sub["alternating"]["congestion"] < sub["k-SP + RNR [3]"]["congestion"]
        assert sub["alternating"]["congestion"] < 2.0


def test_fig7_file_level(benchmark, report):
    algos = dict(ALGOS)
    algos["alternating"] = alg.alternating(mmufp_method="best")

    def run():
        rows = []
        for cache in (1, 2, 3):
            config = ScenarioConfig(level="file", cache_capacity=cache)
            records = run_monte_carlo(config, algos, MC)
            for a in aggregate(records):
                rows.append(
                    {
                        "cache (files)": cache,
                        "algorithm": a.algorithm,
                        "cost": a.mean_cost,
                        "congestion": a.mean_congestion,
                        "occupancy": a.mean_occupancy,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig7_file",
        format_sweep(
            rows,
            ["cache (files)", "algorithm", "cost", "congestion", "occupancy"],
            title="Fig 7 (file level): benchmarks' placements are cache-infeasible",
        ),
    )
    for cache in (1, 2, 3):
        sub = {r["algorithm"]: r for r in rows if r["cache (files)"] == cache}
        # Alternating (greedy placement) respects cache capacities...
        assert sub["alternating"]["occupancy"] <= 1 + 1e-6
    # ... while at least one benchmark configuration overfills a cache.
    assert any(
        r["occupancy"] > 1.0 for r in rows if r["algorithm"] != "alternating"
    )
