"""Fig. 13 (Appendix D): sensitivity to synthetic prediction error.

Demand fed to the algorithms is perturbed by N(0, sigma^2) relative noise
(sigma = 0 is the true demand); solutions are always evaluated on the true
demand.  The alternating optimization should degrade gracefully and keep
its advantage over the benchmarks across a wide sigma range.
"""

from dataclasses import replace

import numpy as np

from repro.core import congestion, routing_cost
from repro.experiments import (
    ScenarioConfig,
    algorithms as alg,
    build_scenario,
    format_sweep,
)
from repro.workload import perturb_demand

SIGMAS = (0.0, 0.2, 0.5, 1.0)
SEEDS = (0, 1)


def test_fig13_prediction_error(benchmark, report):
    algorithms = {
        "alternating": alg.alternating(mmufp_method="best", max_iterations=8),
        "SP [38]": alg.sp,
        "k-SP + RNR [3]": alg.ksp(10),
    }

    def run():
        rows = []
        for sigma in SIGMAS:
            sums = {name: [0.0, 0.0] for name in algorithms}
            for seed in SEEDS:
                config = replace(ScenarioConfig(level="chunk"), seed=seed)
                scenario = build_scenario(config)
                rng = np.random.default_rng(1000 + seed)
                noisy = perturb_demand(scenario.problem.demand, sigma, rng)
                scenario.predicted_problem = scenario.problem.with_demand(noisy)
                for name, solver in algorithms.items():
                    solution = solver(scenario)
                    sums[name][0] += routing_cost(scenario.problem, solution.routing)
                    sums[name][1] += congestion(scenario.problem, solution.routing)
            for name, (cost_sum, cong_sum) in sums.items():
                rows.append(
                    {
                        "sigma": sigma,
                        "algorithm": name,
                        "cost": cost_sum / len(SEEDS),
                        "congestion": cong_sum / len(SEEDS),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig13_prediction_error",
        format_sweep(
            rows,
            ["sigma", "algorithm", "cost", "congestion"],
            title="Fig 13: sensitivity to synthetic prediction error sigma",
        ),
    )
    for sigma in SIGMAS:
        sub = {r["algorithm"]: r for r in rows if r["sigma"] == sigma}
        # Advantage in congestion persists across the sigma range.
        assert sub["alternating"]["congestion"] < sub["SP [38]"]["congestion"]
    ours = {r["sigma"]: r["cost"] for r in rows if r["algorithm"] == "alternating"}
    # Graceful degradation: even sigma = 1 costs < 3x the perfect-knowledge run.
    assert ours[1.0] < 3.0 * ours[0.0]
