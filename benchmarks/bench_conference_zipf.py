"""Conference-version evaluation: synthetic Zipf workloads.

The ICDCS'22 version ran "extensive synthetic simulations based on requests
generated according to the Zipf distribution as in [3]" (Section 6).  This
bench sweeps the Zipf skew alpha on the Abovenet general case: the ordering
of Table 2 must persist, and skewed catalogs should be easier for everyone
(popular items fit in the caches).
"""

from repro.core import congestion, routing_cost
from repro.experiments import algorithms as alg, build_zipf_scenario, format_sweep

ALPHAS = (0.4, 0.8, 1.2)
SEEDS = (0, 1)


def test_conference_zipf_alpha_sweep(benchmark, report):
    algorithms = {
        "alternating": alg.alternating(mmufp_method="best", max_iterations=8),
        "SP [38]": alg.sp,
        "k-SP + RNR [3]": alg.ksp(10),
    }

    def run():
        rows = []
        for alpha in ALPHAS:
            sums = {name: [0.0, 0.0] for name in algorithms}
            for seed in SEEDS:
                scenario = build_zipf_scenario(alpha=alpha, seed=seed)
                for name, solver in algorithms.items():
                    solution = solver(scenario)
                    sums[name][0] += routing_cost(scenario.problem, solution.routing)
                    sums[name][1] += congestion(scenario.problem, solution.routing)
            for name, (cost, cong) in sums.items():
                rows.append(
                    {
                        "alpha": alpha,
                        "algorithm": name,
                        "cost": cost / len(SEEDS),
                        "congestion": cong / len(SEEDS),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "conference_zipf",
        format_sweep(
            rows,
            ["alpha", "algorithm", "cost", "congestion"],
            title="Conference version: Zipf(alpha) synthetic workload sweep",
        ),
    )
    for alpha in ALPHAS:
        sub = {r["algorithm"]: r for r in rows if r["alpha"] == alpha}
        assert sub["alternating"]["congestion"] <= 1.1
        assert sub["alternating"]["congestion"] < sub["SP [38]"]["congestion"]
    # Skewed demand is easier: our cost decreases with alpha.
    ours = [r["cost"] for r in rows if r["algorithm"] == "alternating"]
    assert ours[-1] < ours[0]
