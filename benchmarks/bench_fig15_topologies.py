"""Fig. 15 (Appendix D): varying the network topology.

Repeats the general-case comparison on the Table-5 topologies — Abvt
(23 nodes / 31 links), Tinet (53/89) and Deltacom (113/161) — with the
origin at the lowest-degree node and the next 5 lowest-degree nodes as edge
caches, uniform link capacity (the dataset's 1 Gbps), as in Appendix D.
The proposed algorithm should outperform the benchmarks on every topology.
"""

from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    aggregate,
    algorithms as alg,
    format_sweep,
    run_monte_carlo,
)

MC = MonteCarloConfig(n_runs=1)

ALGOS = {
    "alternating": alg.alternating(mmufp_method="best", max_iterations=6),
    "SP [38]": alg.sp,
    "k-SP + RNR [3]": alg.ksp(10),
}


def test_fig15_topologies(benchmark, report):
    def run():
        rows = []
        for topology in ("abvt", "tinet", "deltacom"):
            config = ScenarioConfig(
                topology=topology,
                level="chunk",
                num_edge_nodes=5,
                link_capacity_fraction=0.02,
            )
            records = run_monte_carlo(config, ALGOS, MC)
            for a in aggregate(records):
                rows.append(
                    {
                        "topology": topology,
                        "algorithm": a.algorithm,
                        "cost": a.mean_cost,
                        "congestion": a.mean_congestion,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig15_topologies",
        format_sweep(
            rows,
            ["topology", "algorithm", "cost", "congestion"],
            title="Fig 15: varying topology (Abvt / Tinet / Deltacom)",
        ),
    )
    for topology in ("abvt", "tinet", "deltacom"):
        sub = {r["algorithm"]: r for r in rows if r["topology"] == topology}
        # Ours is the cheapest feasible solution on every topology; the
        # benchmarks either cost more or congest (usually both).
        assert sub["alternating"]["cost"] < sub["SP [38]"]["cost"]
        assert sub["alternating"]["cost"] < sub["k-SP + RNR [3]"]["cost"]
        assert sub["alternating"]["congestion"] <= 1.05
