"""Throughput: streaming serving engine vs the event-driven simulator.

Replays >= 1M requests of a solved Deltacom scenario through the
vectorized engine and a ~20k-request slice through the event-driven
``simulate()`` oracle, then gates on the engine being at least 10x faster
in requests/second.  Both sides replay the same routing against the same
demand, so their delivered cost *rates* must also agree.
"""

import time

from repro.experiments import ScenarioConfig, algorithms as alg, build_scenario, format_sweep
from repro.serving import (
    ServingConfig,
    compile_tables,
    horizon_for_requests,
    replay,
)
from repro.simulation import SimulationConfig, simulate

VEC_REQUESTS = 1_000_000
EVENT_REQUESTS = 20_000


def test_serving_throughput(benchmark, report, bench_json):
    config = ScenarioConfig(
        topology="deltacom", num_videos=5, link_capacity_fraction=None
    )
    scenario = build_scenario(config)
    solution = alg.sp(scenario)
    tables = compile_tables(scenario.problem, solution.routing)

    def run():
        serving = replay(
            tables,
            ServingConfig(
                horizon=horizon_for_requests(tables, VEC_REQUESTS),
                seed=0,
                n_shards=4,
            ),
        )
        event_horizon = horizon_for_requests(tables, EVENT_REQUESTS)
        start = time.perf_counter()
        sim = simulate(
            scenario.problem,
            solution.routing,
            SimulationConfig(
                horizon=event_horizon, seed=0, max_requests=2_000_000
            ),
        )
        event_elapsed = time.perf_counter() - start
        return {
            "vec_requests": serving.generated,
            "vec_seconds": serving.elapsed_seconds,
            "vec_rps": serving.requests_per_sec,
            "vec_cost_rate": serving.delivered_cost / serving.horizon,
            "event_requests": sim.generated,
            "event_seconds": event_elapsed,
            "event_rps": sim.generated / event_elapsed,
            "event_cost_rate": sim.delivered_cost / event_horizon,
            "speedup": serving.requests_per_sec
            / (sim.generated / event_elapsed),
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "serving_throughput",
        format_sweep(
            [row],
            ["vec_requests", "vec_rps", "event_requests", "event_rps", "speedup"],
            title="Serving engine vs event simulator (Deltacom, sp routing)",
        ),
    )
    bench_json(
        "serving_throughput",
        {
            "topology": "deltacom",
            "algorithm": "sp",
            "request_types": tables.num_types,
            **{k: float(v) for k, v in row.items()},
        },
    )
    # Acceptance gates: >= 1M requests replayed, >= 10x the event loop.
    assert row["vec_requests"] >= 1_000_000
    assert row["speedup"] >= 10.0
    # Same routing, same demand: cost rates agree statistically.
    assert abs(row["vec_cost_rate"] - row["event_cost_rate"]) <= (
        0.1 * row["event_cost_rate"]
    )
