"""Fig. 11 (Appendix D): varying the number of videos (catalog size).

General case, chunk level; more videos mean more demand contending for the
same caches and links, so cost and congestion both rise while the relative
ordering of Table 2 persists.
"""

from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    aggregate,
    algorithms as alg,
    format_sweep,
    run_monte_carlo,
)

MC = MonteCarloConfig(n_runs=2)

ALGOS = {
    "alternating": alg.alternating(mmufp_method="best"),
    "SP [38]": alg.sp,
    "k-SP + RNR [3]": alg.ksp(10),
}


def test_fig11_vary_num_videos(benchmark, report):
    def run():
        rows = []
        for num_videos in (4, 7, 10, 12):
            config = ScenarioConfig(level="chunk", num_videos=num_videos)
            records = run_monte_carlo(config, ALGOS, MC)
            for a in aggregate(records):
                rows.append(
                    {
                        "num_videos": num_videos,
                        "algorithm": a.algorithm,
                        "cost": a.mean_cost,
                        "congestion": a.mean_congestion,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig11_catalog",
        format_sweep(
            rows,
            ["num_videos", "algorithm", "cost", "congestion"],
            title="Fig 11: varying #videos (chunk level, general case)",
        ),
    )
    for n in (4, 7, 10, 12):
        sub = {r["algorithm"]: r for r in rows if r["num_videos"] == n}
        assert sub["alternating"]["congestion"] < sub["SP [38]"]["congestion"]
    # Cost grows with the catalog for the capacity-aware algorithm.
    ours = [r["cost"] for r in rows if r["algorithm"] == "alternating"]
    assert ours[0] < ours[-1]
