"""Ablation: dict-based shortest-path cache vs the dense SolverContext.

The greedy submodular placement evaluates F_RNR marginal gains millions of
times on a 100-item catalog; with the dict-based ``ShortestPathCache`` every
gain walks per-requester hash lookups, while ``SolverContext`` reads one
row slice of the dense all-pairs distance matrix and reduces with BLAS.
This bench measures both paths on Deltacom (113 nodes, the paper's largest
topology) and checks they return the same placement cost, then verifies
the parallel Monte Carlo runner reproduces serial records bit-identically.
"""

import time

from repro.core import route_to_nearest_replica, routing_cost
from repro.core.context import SolverContext
from repro.core.submodular import greedy_rnr_placement
from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    build_zipf_scenario,
    format_sweep,
    run_monte_carlo,
)
from repro.experiments.algorithms import greedy, ksp, sp

NUM_ITEMS = 100


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def test_ablation_context_speedup(benchmark, report, bench_json):
    scenario = build_zipf_scenario(
        topology="deltacom",
        num_items=NUM_ITEMS,
        cache_capacity=10.0,
        link_capacity_fraction=None,
        seed=0,
    )
    problem = scenario.planning_problem()

    def run():
        placement_dict, dict_seconds = _timed(
            lambda: greedy_rnr_placement(problem)
        )
        context, build_seconds = _timed(
            lambda: SolverContext.from_problem(problem)
        )
        placement_ctx, ctx_seconds = _timed(
            lambda: greedy_rnr_placement(problem, context=context)
        )
        cost_dict = routing_cost(
            problem, route_to_nearest_replica(problem, placement_dict)
        )
        cost_ctx = routing_cost(
            problem,
            route_to_nearest_replica(problem, placement_ctx, context=context),
        )
        return [
            {"variant": "dict ShortestPathCache", "cost": cost_dict, "seconds": dict_seconds},
            {
                "variant": "dense SolverContext (incl. build)",
                "cost": cost_ctx,
                "seconds": ctx_seconds + build_seconds,
            },
            {"variant": "dense SolverContext (greedy only)", "cost": cost_ctx, "seconds": ctx_seconds},
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_context",
        format_sweep(
            rows,
            ["variant", "cost", "seconds"],
            title=(
                "Ablation: greedy F_RNR placement, dict cache vs dense context "
                f"(Deltacom, {NUM_ITEMS}-item Zipf catalog)"
            ),
        ),
    )
    by_name = {r["variant"]: r for r in rows}
    dict_row = by_name["dict ShortestPathCache"]
    ctx_row = by_name["dense SolverContext (incl. build)"]
    bench_json(
        "ablation_context",
        {
            "topology": "deltacom",
            "num_items": NUM_ITEMS,
            "rows": rows,
            "speedup_incl_build": dict_row["seconds"] / ctx_row["seconds"],
            "costs_identical": ctx_row["cost"] == dict_row["cost"],
        },
    )
    # Same optimization, same answer.
    assert ctx_row["cost"] == dict_row["cost"]
    # Acceptance bar: >= 3x even when charging the context for matrix build.
    assert dict_row["seconds"] >= 3.0 * ctx_row["seconds"], (
        f"dense context only {dict_row['seconds'] / ctx_row['seconds']:.2f}x faster"
    )


def test_parallel_runner_bit_identical(benchmark, report, bench_json):
    config = ScenarioConfig(link_capacity_fraction=None, seed=0)
    mc = MonteCarloConfig(n_runs=4, base_seed=3, spawn_seeds=True)
    algorithms = {"greedy": greedy, "sp": sp, "ksp_5": ksp(5)}

    def run():
        serial, serial_seconds = _timed(
            lambda: run_monte_carlo(config, algorithms, mc)
        )
        parallel, parallel_seconds = _timed(
            lambda: run_monte_carlo(
                config, algorithms, mc, parallel=True, max_workers=4
            )
        )
        return serial, serial_seconds, parallel, parallel_seconds

    serial, serial_seconds, parallel, parallel_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        {"mode": "serial", "records": len(serial), "seconds": serial_seconds},
        {"mode": "parallel(4)", "records": len(parallel), "seconds": parallel_seconds},
    ]
    report(
        "parallel_runner",
        format_sweep(
            rows,
            ["mode", "records", "seconds"],
            title="Monte Carlo runner: serial vs ProcessPoolExecutor (4 workers)",
        ),
    )
    bench_json(
        "parallel_runner",
        {
            "n_runs": mc.n_runs,
            "algorithms": sorted(algorithms),
            "rows": rows,
        },
    )
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        # Everything except wall-clock timing must match exactly.
        assert (a.algorithm, a.seed) == (b.algorithm, b.seed)
        assert a.cost == b.cost
        assert a.congestion == b.congestion
        assert a.occupancy == b.occupancy
        assert a.extra == b.extra
        assert a.failed == b.failed
