"""Extension: optimized placement vs reactive on-path caching (LRU / LFU).

Not a paper figure — it quantifies the paper's premise that *optimizing*
caching and routing beats the reactive schemes of ICN deployments.  All
schemes run on the default uncapacitated chunk-level scenario; reactive
caches sit at the same edge nodes with the same capacity, requests travel
the shortest path toward the origin with leave-copy-everywhere insertion.
"""

import numpy as np

from repro.baselines import simulate_reactive_caching
from repro.core import routing_cost
from repro.experiments import ScenarioConfig, algorithms as alg, build_scenario, format_sweep


def test_ext_reactive_vs_optimized(benchmark, report):
    def run():
        rows = []
        for seed in (0, 1):
            scenario = build_scenario(
                ScenarioConfig(seed=seed, link_capacity_fraction=None)
            )
            problem = scenario.problem
            optimized = routing_cost(problem, alg.alg1(scenario).routing)
            rows.append(
                {"seed": seed, "scheme": "Alg1 (optimized)", "cost_rate": optimized}
            )
            for policy in ("lru", "lfu"):
                result = simulate_reactive_caching(
                    problem,
                    policy=policy,
                    n_requests=20_000,
                    rng=np.random.default_rng(100 + seed),
                )
                rows.append(
                    {
                        "seed": seed,
                        "scheme": f"reactive {policy.upper()}"
                        f" (hit {result.edge_hit_ratio:.0%})",
                        "cost_rate": result.cost_rate,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ext_reactive",
        format_sweep(
            rows,
            ["seed", "scheme", "cost_rate"],
            title="Extension: optimized (Alg 1) vs reactive LRU/LFU caching",
        ),
    )
    for seed in (0, 1):
        sub = {r["scheme"].split(" (")[0]: r["cost_rate"] for r in rows if r["seed"] == seed}
        assert sub["Alg1"] < sub["reactive LRU"]
        assert sub["Alg1"] < sub["reactive LFU"]
