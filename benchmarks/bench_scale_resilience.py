"""Scale gate: failure resilience on the lazy tier at 1k–10k nodes.

Backs the last open bullet of ROADMAP item 3 ("robustness at 10k nodes"):
the whole failure stack — degraded-context derivation, recovery, timeline
replay, chaos — must run on :class:`~repro.graph.backends.LazyRowBackend`
contexts without ever materializing the dense O(|V|²) matrix, and must
stay bit-identical to the dense tier where both exist.  Four measurements
land in one ``BENCH_scale_resilience.json``:

1. **Scaled timeline replay** — a 100+-event seeded failure timeline on a
   PoP/core/edge hierarchy replays through the controller on a lazy
   context with cluster-local re-optimization.  Gate: at sizes ≥ 5000 the
   tracemalloc peak of (context build + full replay) stays below 10% of
   :func:`~repro.graph.distance_matrix.estimate_dense_bytes` for the same
   node count; the replay wall-clock is recorded alongside.
2. **Dense/lazy replay parity** — on embedded mid-size ISP topologies the
   same timeline replayed on a dense context and on a lazy context yields
   equal :class:`~repro.robustness.controller.TimelineReport`'s (dataclass
   equality already excludes wall-clock).  Gate: parity on every topology.
3. **Chaos at scale** — a seeded :func:`~repro.robustness.chaos.
   run_scale_chaos` campaign on ≥1k-node hierarchies with the full
   invariant checker.  Gate: zero violations.
4. **Cluster-local vs global recovery** — one sampled failure re-optimized
   both ways; the cluster-local path must serve the same demand (the
   decomposed model replaces placements only inside source-reachable parts
   of touched clusters) and its wall-clock is recorded next to the global
   re-solve's.

``SCALE_RESILIENCE_SIZES`` (comma-separated node counts, default
``1000,10000``) reduces the sweep for CI smoke runs; the memory gate then
applies to the largest size actually measured.
"""

import os
import time
import tracemalloc

import numpy as np

from repro.core import (
    ProblemInstance,
    partition_graph,
    pin_full_catalog,
    touched_clusters,
)
from repro.core.context import SolverContext
from repro.graph import CacheNetwork, abovenet, tinet
from repro.graph.distance_matrix import estimate_dense_bytes
from repro.experiments import format_sweep
from repro.robustness import (
    FailureScenario,
    RecoveryPolicy,
    ScaleChaosConfig,
    TimelineConfig,
    apply_failure,
    canonical_links,
    cluster_local_recover,
    degraded_context,
    generate_timeline,
    hierarchy_problem,
    recover,
    replay_timeline,
    run_scale_chaos,
)
from repro.robustness.chaos import random_placement

#: Acceptance: lazy replay peaks below this fraction of the dense estimate.
LAZY_PEAK_FRACTION = 0.10
#: The largest hierarchy's timeline must carry at least this many events.
MIN_EVENTS = 100

DEFAULT_SIZES = (1000, 10000)


def bench_sizes() -> tuple[int, ...]:
    raw = os.environ.get("SCALE_RESILIENCE_SIZES", "")
    if not raw.strip():
        return DEFAULT_SIZES
    return tuple(int(tok) for tok in raw.split(",") if tok.strip())


def _traced(fn, *args):
    """(value, seconds, tracemalloc peak bytes) of ``fn(*args)``."""
    tracemalloc.start()
    start = time.perf_counter()
    value = fn(*args)
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return value, seconds, peak


def _event_timeline(problem, *, horizon: float, target_events: int, seed: int):
    """A seeded timeline regenerated (halving MTBF) until dense enough."""
    links = canonical_links(problem)
    link_mtbf = max(1.0, len(links) * horizon / max(1, target_events))
    for _ in range(8):
        timeline = generate_timeline(
            problem,
            TimelineConfig(
                horizon=horizon,
                link_mtbf=link_mtbf,
                link_mttr=horizon / 12.0,
                node_mtbf=4.0 * link_mtbf,
                node_mttr=horizon / 8.0,
                flap_probability=0.2,
                flap_mttr=0.05,
            ),
            seed=seed,
            name=f"scale:{seed}",
        )
        if len(timeline) >= target_events:
            return timeline
        link_mtbf /= 2.0
    return timeline


def _midsize_problem(factory, seed: int) -> ProblemInstance:
    net = factory()
    nodes = list(net.nodes)
    rng = np.random.default_rng(seed)
    items = [f"it{k}" for k in range(5)]
    demand = {}
    for it in items:
        for s in rng.choice(len(nodes), size=min(8, len(nodes)), replace=False):
            demand[(it, nodes[int(s)])] = round(float(rng.uniform(0.5, 2.0)), 3)
    return ProblemInstance(
        network=CacheNetwork(net.graph, {v: 2.0 for v in nodes}),
        catalog=tuple(items),
        demand=demand,
        pinned=pin_full_catalog(items, [nodes[0]]),
    )


def test_scale_resilience(benchmark, report, bench_json):
    sizes = bench_sizes()
    largest = max(sizes)

    def run():
        # -- 1. scaled timeline replay on the lazy tier ----------------
        replay_rows = []
        for n_total in sizes:
            problem = hierarchy_problem(
                n_total, n_items=20, n_caches=150, n_requesters=250, seed=0
            )
            rng = np.random.default_rng(1)
            placement = random_placement(rng, problem)
            target = MIN_EVENTS if n_total == largest else 40
            timeline = _event_timeline(
                problem, horizon=60.0, target_events=target, seed=n_total
            )
            policy = RecoveryPolicy(detection_delay=0.25, min_dwell=6.0, repair=False)

            def lazy_replay():
                ctx = SolverContext.from_problem(problem, backend="lazy")
                partition = partition_graph(problem.network, seed=0)
                return replay_timeline(
                    problem,
                    placement.copy(),
                    timeline,
                    policy,
                    context=ctx,
                    partition=partition,
                )

            rep, seconds, peak = _traced(lazy_replay)
            dense_bytes = estimate_dense_bytes(problem.network.num_nodes)
            replay_rows.append(
                {
                    "nodes": problem.network.num_nodes,
                    "events": rep.events,
                    "reopts": rep.reoptimizations,
                    "availability": round(rep.availability, 4),
                    "replay_seconds": round(seconds, 2),
                    "lazy_peak_mb": round(peak / 2**20, 1),
                    "dense_estimate_mb": round(dense_bytes / 2**20, 1),
                    "peak_ratio": round(peak / dense_bytes, 4),
                }
            )

        # -- 2. dense/lazy replay parity on embedded topologies --------
        parity_rows = []
        for name, factory in [("abovenet", abovenet), ("tinet", tinet)]:
            prob = _midsize_problem(factory, seed=3)
            rng = np.random.default_rng(4)
            placement = random_placement(rng, prob)
            timeline = _event_timeline(
                prob, horizon=30.0, target_events=25, seed=11
            )
            policy = RecoveryPolicy(detection_delay=0.2)
            reports = {}
            for tier in ("dense", "lazy"):
                ctx = SolverContext.from_problem(prob, backend=tier)
                reports[tier] = replay_timeline(
                    prob, placement.copy(), timeline, policy, context=ctx
                )
            parity_rows.append(
                {
                    "topology": name,
                    "nodes": prob.network.num_nodes,
                    "events": reports["dense"].events,
                    "reports_equal": reports["dense"] == reports["lazy"],
                }
            )

        # -- 3. chaos campaigns at >= 1k nodes -------------------------
        chaos = run_scale_chaos(
            ScaleChaosConfig(
                campaigns=2,
                n_total=min(1000, largest),
                horizon=30.0,
                min_events=30,
            )
        )
        chaos_row = dict(chaos.summary())
        chaos_row["ok"] = chaos.ok

        # -- 4. cluster-local vs global re-optimization ----------------
        problem = hierarchy_problem(
            min(1000, largest), n_items=20, n_caches=150, n_requesters=250, seed=0
        )
        ctx = SolverContext.from_problem(problem, backend="lazy")
        partition = partition_graph(problem.network, seed=0)
        rng = np.random.default_rng(5)
        placement = random_placement(rng, problem)
        timeline = _event_timeline(
            problem, horizon=60.0, target_events=40, seed=min(1000, largest)
        )
        scenario = FailureScenario(
            "bench-sample", (timeline.failures[0].fault,)
        )
        degraded = apply_failure(problem, scenario)
        dctx = degraded_context(ctx, degraded)
        touched = touched_clusters(
            partition,
            failed_nodes=degraded.failed_nodes,
            failed_links=degraded.failed_links,
        )
        t0 = time.perf_counter()
        local = cluster_local_recover(degraded, placement, partition, context=dctx)
        local_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        global_result = recover(degraded, placement, repair=False, context=dctx)
        global_seconds = time.perf_counter() - t0
        recovery_row = {
            "nodes": problem.network.num_nodes,
            "touched_clusters": len(touched),
            "total_clusters": partition.n_clusters,
            "local_seconds": round(local_seconds, 3),
            "global_seconds": round(global_seconds, 3),
            "local_unserved": round(local.unserved_fraction, 6),
            "global_unserved": round(global_result.unserved_fraction, 6),
        }
        return replay_rows, parity_rows, chaos_row, recovery_row

    replay_rows, parity_rows, chaos_row, recovery_row = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    report(
        "scale_resilience",
        format_sweep(
            replay_rows,
            list(replay_rows[0]),
            title="Lazy-tier timeline replay on PoP/core/edge hierarchies",
        )
        + "\n\n"
        + format_sweep(
            parity_rows,
            list(parity_rows[0]),
            title="Dense vs lazy TimelineReport parity (mid-size topologies)",
        )
        + "\n\n"
        + format_sweep(
            [chaos_row],
            list(chaos_row),
            title="Scale chaos campaigns (lazy tier, cluster recovery)",
        )
        + "\n\n"
        + format_sweep(
            [recovery_row],
            list(recovery_row),
            title="Cluster-local vs global re-optimization (one failure)",
        ),
    )
    bench_json(
        "scale_resilience",
        {
            "sizes": list(sizes),
            "replay": replay_rows,
            "parity": parity_rows,
            "chaos": chaos_row,
            "recovery": recovery_row,
            "lazy_peak_fraction_bound": LAZY_PEAK_FRACTION,
            "min_events_largest": MIN_EVENTS,
        },
    )

    # --- gates -------------------------------------------------------
    largest_row = max(replay_rows, key=lambda r: r["nodes"])
    if largest_row["nodes"] >= 5000:
        assert largest_row["events"] >= MIN_EVENTS, largest_row
        assert largest_row["peak_ratio"] < LAZY_PEAK_FRACTION, largest_row
    else:
        # The 10% ratio is a scale property: the replay peak is dominated
        # by O(events + demand) controller state, which dwarfs a small
        # topology's dense estimate but is noise against a 10k-node one.
        # Reduced CI sweeps only sanity-check the replay itself.
        assert largest_row["events"] > 0 and largest_row["reopts"] > 0
    for row in parity_rows:
        assert row["reports_equal"], row
    assert chaos_row["ok"], chaos_row
    assert chaos_row["total_violations"] == 0, chaos_row
    assert abs(
        recovery_row["local_unserved"] - recovery_row["global_unserved"]
    ) < 1e-6, recovery_row
