"""Table 1: statistics of the (synthetic) YouTube trace.

Regenerates the exact columns of the paper's Table 1 — video id, size (MB),
#100-MB chunks, total #views over the 100 evaluation hours — from the
synthetic trace, verifying the generator reproduces the published marginals.
"""

from repro.experiments import format_sweep
from repro.workload import TABLE1_VIDEOS, TraceConfig, split_train_eval, synthesize_trace


def test_table1_trace_statistics(benchmark, report):
    def run():
        config = TraceConfig(seed=0)
        trace = synthesize_trace(config=config)
        _train, evaluation = split_train_eval(trace, config)
        rows = []
        for video in TABLE1_VIDEOS:
            rows.append(
                {
                    "video_id": video.video_id,
                    "size_mb": video.size_mb,
                    "chunks_100mb": video.num_chunks(100.0),
                    "total_views": evaluation.total_views(video.video_id),
                    "paper_views": float(video.total_views),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "table1_trace",
        format_sweep(
            rows,
            ["video_id", "size_mb", "chunks_100mb", "total_views", "paper_views"],
            title="Table 1: trace statistics (synthetic trace vs paper)",
        ),
    )
    for row in rows:
        assert abs(row["total_views"] - row["paper_views"]) < 1.0
