"""Fig. 6: binary cache capacities — Algorithm 2 vs [33] vs splittable vs RNR.

The catalog is fully replicated at the origin and one edge node; only
source selection and integral routing are optimized (MSUFP after the
virtual-source reduction of Lemma 4.5).  Panels:

- cost + congestion vs Algorithm 2's rounding granularity K (K=2 is the
  state of the art of [33]);
- cost + congestion vs link capacity, comparing Alg 2 (large K), [33],
  the splittable LP bound, and the capacity-oblivious RNR of [3];
- chunk level vs file level (the paper's 5-6x cost gap from chunking).
"""

from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    aggregate,
    algorithms as alg,
    binary_cache_servers,
    build_scenario,
    format_sweep,
    run_monte_carlo,
)

MC = MonteCarloConfig(n_runs=3)
#: Fig 6 tunes K at ~15 Gbps, five times the 3 Gbps default.
FIG6_FRACTION = 0.035


def _servers(config: ScenarioConfig):
    return binary_cache_servers(build_scenario(config))


def test_fig6_vary_k(benchmark, report):
    config = ScenarioConfig(level="chunk", link_capacity_fraction=FIG6_FRACTION)
    servers = _servers(config)

    def run():
        algorithms = {f"Alg2 K={k}": alg.alg2_binary(servers, k) for k in (2, 10, 100, 1000)}
        algorithms["splittable"] = alg.splittable_binary(servers)
        records = run_monte_carlo(config, algorithms, MC)
        return [
            {
                "algorithm": a.algorithm,
                "cost": a.mean_cost,
                "congestion": a.mean_congestion,
            }
            for a in aggregate(records)
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig6_vary_k",
        format_sweep(
            rows,
            ["algorithm", "cost", "congestion"],
            title="Fig 6 (vary K): Alg 2 congestion shrinks with K at <= optimal cost",
        ),
    )
    by_name = {r["algorithm"]: r for r in rows}
    # (ii) larger K reduces congestion vs the K=2 state of the art of [33].
    assert by_name["Alg2 K=1000"]["congestion"] <= by_name["Alg2 K=2"]["congestion"] + 1e-9
    # Cost never exceeds the splittable optimum (Theorem 4.7(i)).
    for k in (2, 10, 100, 1000):
        assert by_name[f"Alg2 K={k}"]["cost"] <= by_name["splittable"]["cost"] * 1.001


def test_fig6_vary_link_capacity(benchmark, report):
    def run():
        rows = []
        for fraction in (0.02, 0.035, 0.07):
            config = ScenarioConfig(level="chunk", link_capacity_fraction=fraction)
            servers = _servers(config)
            algorithms = {
                "Alg2 K=1000": alg.alg2_binary(servers, 1000),
                "[33] K=2": alg.alg2_binary(servers, 2),
                "splittable": alg.splittable_binary(servers),
                "RNR [3]": alg.rnr_binary(servers),
            }
            records = run_monte_carlo(config, algorithms, MC)
            for a in aggregate(records):
                rows.append(
                    {
                        "capacity_fraction": fraction,
                        "algorithm": a.algorithm,
                        "cost": a.mean_cost,
                        "congestion": a.mean_congestion,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig6_vary_capacity",
        format_sweep(
            rows,
            ["capacity_fraction", "algorithm", "cost", "congestion"],
            title="Fig 6 (vary link capacity): RNR congests severely; Alg 2 stays near-feasible",
        ),
    )
    for fraction in (0.02, 0.035, 0.07):
        sub = {r["algorithm"]: r for r in rows if r["capacity_fraction"] == fraction}
        # RNR ignores capacities: far cheaper, far more congested.
        assert sub["RNR [3]"]["congestion"] > 5 * sub["Alg2 K=1000"]["congestion"]
        assert sub["RNR [3]"]["cost"] < sub["splittable"]["cost"]


def test_fig6_chunk_vs_file(benchmark, report):
    def run():
        rows = []
        for level, cache in (("chunk", 12), ("file", 2)):
            config = ScenarioConfig(
                level=level,
                cache_capacity=cache,
                link_capacity_fraction=FIG6_FRACTION,
            )
            servers = _servers(config)
            algorithms = {
                "Alg2 K=1000": alg.alg2_binary(servers, 1000),
                "splittable": alg.splittable_binary(servers),
            }
            records = run_monte_carlo(config, algorithms, MC)
            for a in aggregate(records):
                rows.append(
                    {
                        "level": level,
                        "algorithm": a.algorithm,
                        # Chunk-level cost is per 100-MB chunk moved, file-level
                        # per MB; scale chunks by 100 so both are MB * w / hour.
                        "cost_mb_basis": a.mean_cost
                        * (100.0 if level == "chunk" else 1.0),
                        "congestion": a.mean_congestion,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig6_chunk_vs_file",
        format_sweep(
            rows,
            ["level", "algorithm", "cost_mb_basis", "congestion"],
            title="Fig 6 (chunk vs file): chunking cuts cost without extra congestion",
        ),
    )
    chunk = next(r for r in rows if r["level"] == "chunk" and "Alg2" in r["algorithm"])
    file_ = next(r for r in rows if r["level"] == "file" and "Alg2" in r["algorithm"])
    # Chunking turns each video into many small commodities that Algorithm 2
    # can spread over paths: congestion drops markedly.  In consistent MB
    # units the cost difference is bounded by the chunk-padding overhead
    # (the paper's 5-6x figure reflects its per-item unit convention; see
    # EXPERIMENTS.md), so we assert cost parity within ~30% instead.
    assert chunk["congestion"] < file_["congestion"]
    assert chunk["cost_mb_basis"] < 1.3 * file_["cost_mb_basis"]
