"""Failure-aware streaming replay: request throughput through a long
Deltacom fault timeline, and its overhead over a static (single-segment)
replay of the same request volume.

Not a figure of the paper — the serving-layer counterpart of the failure
timeline bench: generate a 200+ event Deltacom timeline (link flaps, node
outages, repairs), stream a few million Poisson arrivals through the
segmented engine (tables degraded in place at every boundary), and gate

- **exact parity**: the analytic side of the streaming replay must equal
  the plain ``replay_timeline`` report, and the segments' piecewise rates
  must integrate back to its cost/unserved integrals within 1e-9;
- **statistical parity**: generated / served counts and delivered cost
  within 6 sigma of their compound-Poisson expectations, so the streamed
  cost integral is a certified estimator of the analytic one.

``SERVING_DEGRADED_BENCH_REQUESTS`` scales the request budget (CI uses a
reduced budget; the default streams ~2M arrivals).
"""

import math
import os
import time

import numpy as np

from repro.experiments import ScenarioConfig, build_scenario, format_sweep
from repro.experiments.algorithms import greedy
from repro.robustness import (
    RecoveryPolicy,
    TimelineConfig,
    generate_timeline,
    replay_timeline,
    replay_timeline_streaming,
)
from repro.serving import ServingConfig
from repro.serving.engine import generate_requests, serve_batch

REQUESTS = int(os.environ.get("SERVING_DEGRADED_BENCH_REQUESTS", 2_000_000))
_TOL = 1e-9


def _static_baseline(tables, horizon, rate_scale, seed):
    """Single-segment replay of the same volume: the overhead yardstick."""
    rng = np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0])
    t0 = time.perf_counter()
    batch = generate_requests(tables, horizon, rng, rate_scale=rate_scale)
    acc = serve_batch(tables, batch, rng)
    elapsed = time.perf_counter() - t0
    return int(acc.generated.sum()), elapsed


def test_serving_degraded(benchmark, report, bench_json):
    config = ScenarioConfig(
        topology="deltacom",
        num_videos=5,
        cache_capacity=4,
        link_capacity_fraction=None,
        num_edge_nodes=5,
        seed=0,
    )
    scenario = build_scenario(config)
    problem = scenario.problem
    placement = greedy(scenario).placement

    timeline = generate_timeline(
        problem,
        TimelineConfig(
            horizon=50.0,
            link_mtbf=60.0,
            link_mttr=3.0,
            node_mtbf=300.0,
            node_mttr=6.0,
            flap_probability=0.2,
            flap_mttr=0.05,
            exclude_nodes=(scenario.origin,),
        ),
        seed=7,
        name="deltacom-serving-timeline",
    )
    assert len(timeline.events) >= 200
    policy = RecoveryPolicy(detection_delay=0.5, flap_backoff=0.25, max_retries=2)

    rate_scale = REQUESTS / (problem.total_demand * timeline.horizon)
    serving = ServingConfig(horizon=timeline.horizon, seed=11, n_shards=1)

    def run():
        streamed = replay_timeline_streaming(
            problem, placement, timeline, policy,
            config=serving, rate_scale=rate_scale,
        )
        static_generated, static_elapsed = _static_baseline(
            streamed.segments[0].tables, timeline.horizon, rate_scale, 11
        )
        plain = replay_timeline(problem, placement, timeline, policy)
        return streamed, plain, static_generated, static_elapsed

    streamed, plain, static_generated, static_elapsed = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    analytic = streamed.analytic

    # --- Exact parity: the analytic side IS the plain replay, and the
    # segments' piecewise-constant rates integrate back to its integrals.
    assert analytic == plain
    seg_cost = sum(s.cost_rate * s.duration for s in streamed.segments)
    seg_served = sum(s.served_rate * s.duration for s in streamed.segments)
    assert math.isclose(seg_cost, analytic.cost_integral, rel_tol=_TOL)
    assert math.isclose(
        seg_served,
        analytic.total_demand * analytic.horizon - analytic.unserved_integral,
        rel_tol=_TOL,
    )

    # --- Statistical parity: 6 sigma on every sampled aggregate.
    assert abs(streamed.generated - streamed.expected_generated) <= 6 * math.sqrt(
        streamed.expected_generated
    )
    assert abs(streamed.served - streamed.expected_served) <= 6 * math.sqrt(
        streamed.expected_served
    )
    cost_sigma = math.sqrt(streamed.cost_variance)
    assert abs(streamed.delivered_cost - streamed.expected_cost) <= 6 * cost_sigma
    estimator_sigma = cost_sigma / streamed.rate_scale
    assert (
        abs(streamed.streamed_cost_integral - analytic.cost_integral)
        <= 6 * estimator_sigma
    )

    overhead = (
        streamed.elapsed_seconds / static_elapsed
        if static_elapsed > 0
        else float("nan")
    )
    rows = [
        {
            "mode": "timeline-streamed",
            "requests": streamed.generated,
            "wall_s": streamed.elapsed_seconds,
            "req_per_s": streamed.requests_per_sec,
            "segments": len(streamed.segments),
        },
        {
            "mode": "static",
            "requests": static_generated,
            "wall_s": static_elapsed,
            "req_per_s": (
                static_generated / static_elapsed
                if static_elapsed > 0
                else float("nan")
            ),
            "segments": 1,
        },
    ]
    report(
        "serving_degraded",
        format_sweep(
            rows,
            ["mode", "requests", "wall_s", "req_per_s", "segments"],
            title=(
                f"deltacom degraded serving ({len(timeline.events)} events, "
                f"{len(streamed.segments)} segments, "
                f"overhead {overhead:.2f}x)"
            ),
        ),
    )
    bench_json(
        "serving_degraded",
        {
            "topology": config.topology,
            "seed": 7,
            "horizon": timeline.horizon,
            "events": len(timeline.events),
            "segments": len(streamed.segments),
            "requests_generated": streamed.generated,
            "requests_served": streamed.served,
            "requests_dropped": streamed.dropped,
            "requests_per_sec": streamed.requests_per_sec,
            "streamed_wall_s": streamed.elapsed_seconds,
            "static_wall_s": static_elapsed,
            "overhead_vs_static": overhead,
            "rate_scale": streamed.rate_scale,
            "availability": analytic.availability,
            "analytic_cost_integral": analytic.cost_integral,
            "streamed_cost_integral": streamed.streamed_cost_integral,
            "estimator_sigma": estimator_sigma,
            "reports_identical": analytic == plain,
        },
    )
