"""Scale gate: tiered distance backends + cluster-decomposed solving.

Three measurements back ROADMAP item 3 ("10k nodes without the dense
O(|V|²) wall") and are written to one ``BENCH_scale_decomposition.json``:

1. **Backend tiers** — wall time and tracemalloc peak of building the dense
   all-pairs matrix vs. priming a :class:`LazyRowBackend` with exactly the
   rows a solve consults (cache nodes + pinned holders + requesters), on
   PoP/core/edge hierarchies of growing size.  Gate: at the largest size
   the lazy build peaks below 10% of the dense peak, and the primed rows
   are bit-identical to the dense matrix rows.
2. **End-to-end decomposed solve** — :func:`repro.core.decomposed_solve`
   runs Algorithm 1 per cluster and composes a feasible global solution on
   the largest hierarchy.  Gate: it completes, the composed solution is
   feasible, and the cost is finite.
3. **Optimality gap** — on mid-size topologies where the exact Algorithm 1
   is still tractable, the decomposed cost stays within the documented
   bound (≤ 20% above exact; often *below*, since Algorithm 1 is itself
   (1 - 1/e)-approximate).

``SCALE_BENCH_SIZES`` (comma-separated node counts, default
``1000,5000,10000``) reduces the sweep for CI smoke runs: the gates then
apply to the largest size actually measured.
"""

import os
import time
import tracemalloc

import numpy as np

from repro.core import (
    ProblemInstance,
    check_feasibility,
    decomposed_solve,
    decomposition_gap,
    pin_full_catalog,
)
from repro.core.context import relevant_sources
from repro.graph import (
    CacheNetwork,
    LazyRowBackend,
    build_distance_matrix,
    deltacom,
    pop_core_edge_hierarchy,
    tinet,
)
from repro.experiments import format_sweep

#: Documented decomposition bound (also asserted in tests/core/test_decomposed.py).
GAP_BOUND = 0.20
#: Acceptance: lazy peak memory below this fraction of the dense peak.
LAZY_PEAK_FRACTION = 0.10

DEFAULT_SIZES = (1000, 5000, 10000)


def bench_sizes() -> tuple[int, ...]:
    raw = os.environ.get("SCALE_BENCH_SIZES", "")
    if not raw.strip():
        return DEFAULT_SIZES
    return tuple(int(tok) for tok in raw.split(",") if tok.strip())


def scale_problem(n_total: int) -> ProblemInstance:
    """A cache-placement instance on a hierarchy of ~``n_total`` nodes.

    ``(n_core, 9, 10)`` gives exactly ``100 * n_core`` nodes; caches sit on
    a sample of PoPs, demand comes from a sample of edge leaves, and the
    whole catalog is pinned at the highest-degree core node (the origin).
    """
    n_core = max(2, n_total // 100)
    net = pop_core_edge_hierarchy(n_core, 9, 10, seed=0)
    nodes = list(net.nodes)
    pops = [v for v in nodes if str(v).startswith("p")]
    leaves = [v for v in nodes if str(v).startswith("e")]
    origin = max(
        (v for v in nodes if str(v).startswith("c")),
        key=lambda v: (net.undirected_degree(v), str(v)),
    )
    rng = np.random.default_rng(0)
    cache_nodes = [pops[i] for i in rng.choice(len(pops), size=min(150, len(pops)), replace=False)]
    items = [f"it{k}" for k in range(20)]
    demand = {}
    requesters = rng.choice(len(leaves), size=min(250, len(leaves)), replace=False)
    for s in requesters:
        for it in rng.choice(items, size=2, replace=False):
            demand[(str(it), leaves[int(s)])] = float(rng.uniform(0.5, 2.0))
    capped = CacheNetwork(net.graph, {v: 4.0 for v in cache_nodes})
    return ProblemInstance(
        network=capped,
        catalog=tuple(items),
        demand=demand,
        pinned=pin_full_catalog(items, [origin]),
    )


def _traced(fn, *args):
    """(value, seconds, tracemalloc peak bytes) of ``fn(*args)``."""
    tracemalloc.start()
    start = time.perf_counter()
    value = fn(*args)
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return value, seconds, peak


def _prime_lazy(graph, scope):
    backend = LazyRowBackend(graph)
    backend.ensure_rows(backend.index[v] for v in scope)
    return backend


def test_backend_tiers_and_decomposed_solve(benchmark, report, bench_json):
    sizes = bench_sizes()

    def run():
        tier_rows = []
        parity_checked = 0
        for n_total in sizes:
            problem = scale_problem(n_total)
            graph = problem.network.graph
            n = graph.number_of_nodes()
            scope = relevant_sources(problem)

            dm, dense_seconds, dense_peak = _traced(build_distance_matrix, graph)
            lazy, lazy_seconds, lazy_peak = _traced(_prime_lazy, graph, scope)

            # bit-parity of every primed row against the dense matrix
            for v in scope[:50]:
                i = lazy.index[v]
                assert np.array_equal(lazy.row(i), dm.matrix[i]), v
                parity_checked += 1
            tier_rows.append(
                {
                    "nodes": n,
                    "scope_rows": len(scope),
                    "dense_seconds": round(dense_seconds, 3),
                    "dense_peak_mb": round(dense_peak / 2**20, 1),
                    "lazy_seconds": round(lazy_seconds, 3),
                    "lazy_peak_mb": round(lazy_peak / 2**20, 1),
                    "peak_ratio": round(lazy_peak / dense_peak, 4),
                }
            )
            del dm, lazy

        largest = max(sizes)
        problem = scale_problem(largest)
        t0 = time.perf_counter()
        dec = decomposed_solve(problem, seed=0, parallel=True)
        solve_seconds = time.perf_counter() - t0
        feas = check_feasibility(problem, dec.solution)
        solve_row = {
            "nodes": problem.network.num_nodes,
            "n_clusters": dec.partition.n_clusters,
            "clusters_solved": len(dec.reports),
            "cost": round(dec.cost, 4),
            "feasible": feas.feasible,
            "ran_parallel": dec.ran_parallel,
            "seconds": round(solve_seconds, 2),
        }

        gap_rows = []
        sweep_prob = None
        sweep_exact = float("nan")
        for name, factory in [("tinet", tinet), ("deltacom", deltacom)]:
            net = factory()
            nodes = list(net.nodes)
            rng = np.random.default_rng(7)
            items = [f"it{k}" for k in range(6)]
            demand = {}
            for it in items:
                for s in rng.choice(len(nodes), size=10, replace=False):
                    demand[(it, nodes[int(s)])] = float(rng.uniform(0.5, 2.0))
            prob = ProblemInstance(
                network=CacheNetwork(net.graph, {v: 2.0 for v in nodes}),
                catalog=tuple(items),
                demand=demand,
                pinned=pin_full_catalog(items, [nodes[0]]),
            )
            gap = decomposition_gap(prob, seed=0)
            gap_rows.append(
                {
                    "topology": name,
                    "nodes": net.num_nodes,
                    "n_clusters": gap.n_clusters,
                    "exact_cost": round(gap.exact_cost, 4),
                    "decomposed_cost": round(gap.decomposed_cost, 4),
                    "relative_gap": round(gap.relative_gap, 4),
                }
            )
            if name == "deltacom":
                sweep_prob, sweep_exact = prob, gap.exact_cost

        # Gap-vs-speed frontier: sweep the cluster count around the
        # default heuristic (~sqrt(|V|)/2) on the largest mid-size
        # topology.  More clusters = smaller sub-LPs (faster) but more
        # boundary stitching (worse gap) — the frontier documents the
        # trade so callers can tune n_clusters deliberately.
        sweep_rows = []
        for k in (2, 4, 6, 8, 12, 16):
            t0 = time.perf_counter()
            dec = decomposed_solve(sweep_prob, n_clusters=k, seed=0)
            secs = time.perf_counter() - t0
            sweep_rows.append(
                {
                    "n_clusters": k,
                    "decomposed_cost": round(dec.cost, 4),
                    "relative_gap": round((dec.cost - sweep_exact) / sweep_exact, 4),
                    "seconds": round(secs, 3),
                }
            )
        return tier_rows, solve_row, gap_rows, sweep_rows, parity_checked

    tier_rows, solve_row, gap_rows, sweep_rows, parity_checked = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    report(
        "scale_decomposition",
        format_sweep(
            tier_rows,
            [
                "nodes",
                "scope_rows",
                "dense_seconds",
                "dense_peak_mb",
                "lazy_seconds",
                "lazy_peak_mb",
                "peak_ratio",
            ],
            title="Distance tiers: dense all-pairs vs lazy consulted rows",
        )
        + "\n\n"
        + format_sweep(
            [solve_row],
            list(solve_row),
            title="End-to-end cluster-decomposed Algorithm 1 (largest size)",
        )
        + "\n\n"
        + format_sweep(
            gap_rows,
            list(gap_rows[0]),
            title=f"Decomposition gap vs exact Algorithm 1 (bound {GAP_BOUND:.0%})",
        )
        + "\n\n"
        + format_sweep(
            sweep_rows,
            list(sweep_rows[0]),
            title="Cluster-count frontier on deltacom (gap vs speed)",
        ),
    )
    bench_json(
        "scale_decomposition",
        {
            "sizes": list(sizes),
            "tiers": tier_rows,
            "decomposed_solve": solve_row,
            "gaps": gap_rows,
            "cluster_sweep": sweep_rows,
            "gap_bound": GAP_BOUND,
            "lazy_peak_fraction_bound": LAZY_PEAK_FRACTION,
            "parity_rows_checked": parity_checked,
        },
    )

    # --- gates -------------------------------------------------------
    assert parity_checked > 0
    largest_tier = max(tier_rows, key=lambda r: r["nodes"])
    if largest_tier["nodes"] >= 5000:
        # the 10% bound is a scale property: the consulted-row scope is
        # O(demand), so the ratio falls as 1/|V| — reduced CI sweeps only
        # check the tier ordering
        assert largest_tier["peak_ratio"] < LAZY_PEAK_FRACTION, largest_tier
    else:
        assert largest_tier["lazy_peak_mb"] < largest_tier["dense_peak_mb"]
    assert solve_row["feasible"], solve_row
    assert np.isfinite(solve_row["cost"]) and solve_row["cost"] > 0
    for row in gap_rows:
        assert row["relative_gap"] <= GAP_BOUND, row
    # The frontier must contain at least one in-bound point (the default
    # heuristic sits inside the swept range); extreme counts may exceed it.
    assert min(r["relative_gap"] for r in sweep_rows) <= GAP_BOUND, sweep_rows
