"""Event-driven validation of caching/routing solutions.

The paper evaluates solutions analytically: routing cost (1a), and
congestion as the worst load-to-capacity ratio.  This simulator *replays* a
solution at the request level to validate those analytic quantities and to
expose what congestion means operationally:

- requests of each type ``(i, s)`` arrive as independent Poisson processes
  with the instance's rates;
- each request draws one serving path from the routing's path fractions;
- the response is transferred store-and-forward: every link is a FIFO
  server whose service time is ``item_size / link_capacity`` (zero for
  uncapacitated links);
- delivery latency, per-link utilization (the fraction of the horizon the
  link spent transferring, windowed at the horizon for overloaded and
  stalled links alike), empirical loads, and delivered routing cost are
  recorded.  Latency statistics are NaN when nothing was delivered.

By the law of large numbers the empirical per-link load converges to the
analytic ``sum_r lambda_r * f`` of constraint (1b), and latency diverges
precisely on solutions whose analytic congestion exceeds 1 — the property
tests pin both facts down.  The vectorized engine in :mod:`repro.serving`
treats this simulator as its parity oracle on small instances.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from collections.abc import Hashable
from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import ProblemInstance
from repro.core.solution import Routing
from repro.exceptions import InvalidProblemError

Node = Hashable
Edge = tuple[Node, Node]


@dataclass(frozen=True)
class SimulationConfig:
    """Simulation horizon and safety limits.

    Time is measured in the instance's rate unit (rates per hour -> hours).
    """

    horizon: float = 1.0
    seed: int = 0
    #: Hard cap on simulated requests (guards against accidental huge rates).
    max_requests: int = 500_000
    #: With ``True``, requests whose type has no routing (e.g. demand
    #: stranded by a failure scenario) are skipped and counted in
    #: :attr:`SimulationReport.unrouted_types` instead of raising.
    allow_unrouted: bool = False

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise InvalidProblemError("horizon must be positive")


@dataclass
class SimulationReport:
    """Aggregated outcome of one simulation run."""

    generated: int
    delivered: int
    #: Latency statistics over *delivered* requests.  NaN when nothing was
    #: delivered — "everything stalled" must stay distinguishable from
    #: "instant delivery" (which reports 0.0).
    mean_latency: float
    p95_latency: float
    max_latency: float
    #: Sum of path costs over delivered requests; ``delivered_cost /
    #: horizon`` estimates the routing cost (1a) the solvers optimize.
    delivered_cost: float = 0.0
    #: Fraction of the horizon each capacitated link spent transferring.
    utilization: dict[Edge, float] = field(default_factory=dict)
    #: Empirical traffic (size per unit time) per link.
    empirical_loads: dict[Edge, float] = field(default_factory=dict)
    #: The analytic loads of constraint (1b), for comparison.
    analytic_loads: dict[Edge, float] = field(default_factory=dict)
    #: Requests whose delivery completed only after the horizon (backlog —
    #: nonzero exactly when some link is overloaded).
    late_deliveries: int = 0
    #: Request types skipped because they had no (or zero-fraction) routing
    #: (only with ``SimulationConfig.allow_unrouted``).
    unrouted_types: int = 0
    #: Transfers stuck forever on a zero-capacity link (failed-link
    #: instances whose edge attributes were degraded in place).
    stalled_transfers: int = 0

    @property
    def max_utilization(self) -> float:
        return max(self.utilization.values(), default=0.0)


def scale_problem(problem: ProblemInstance, factor: float) -> ProblemInstance:
    """Scale demand AND link capacities jointly by ``factor``.

    Utilizations and congestion are invariant under this scaling, so a
    paper-sized instance (~2M requests/hour) can be simulated at a
    manageable request count without changing what is being validated.
    """
    if factor <= 0:
        raise InvalidProblemError("factor must be positive")
    network = problem.network.copy()
    for (u, v), cap in network.capacities().items():
        if not math.isinf(cap):
            network.set_link_capacity(u, v, cap * factor)
    return ProblemInstance(
        network=network,
        catalog=problem.catalog,
        demand={r: rate * factor for r, rate in problem.demand.items()},
        item_sizes=None if problem.item_sizes is None else dict(problem.item_sizes),
        pinned=problem.pinned,
    )


@dataclass
class _Transfer:
    request_id: int
    item: Hashable
    path: tuple[Node, ...]
    hop: int
    start_time: float


def simulate(
    problem: ProblemInstance,
    routing: Routing,
    config: SimulationConfig | None = None,
) -> SimulationReport:
    """Replay ``routing`` under Poisson arrivals; see the module docstring."""
    config = config or SimulationConfig()
    rng = np.random.default_rng(config.seed)

    # --- generate arrivals -------------------------------------------------
    arrivals: list[tuple[float, int, Hashable, tuple[Node, ...]]] = []
    counter = itertools.count()
    unrouted_types = 0
    for (item, s), rate in problem.demand.items():
        pfs = routing.paths.get((item, s))
        amounts = np.array([pf.amount for pf in pfs], dtype=float) if pfs else np.zeros(0)
        if not pfs or amounts.sum() <= 0:
            if config.allow_unrouted:
                unrouted_types += 1
                continue
            raise InvalidProblemError(f"request {(item, s)!r} has no routing")
        probs = amounts / amounts.sum()
        expected = rate * config.horizon
        if expected > config.max_requests:
            raise InvalidProblemError(
                f"request {(item, s)!r} would generate ~{expected:.0f} arrivals;"
                " scale the instance down with scale_problem()"
            )
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= config.horizon:
                break
            choice = int(rng.choice(len(pfs), p=probs))
            arrivals.append((t, next(counter), item, pfs[choice].path))
            if len(arrivals) > config.max_requests:
                raise InvalidProblemError(
                    "simulation exceeds max_requests; scale the instance down"
                )

    # --- event loop ---------------------------------------------------------
    # Event kinds: ("arrival", transfer) request enters its first queue;
    # ("done", edge) a link finished its current transfer.
    events: list[tuple[float, int, str, object]] = []
    seq = itertools.count()
    for t, _, item, path in arrivals:
        transfer = _Transfer(
            request_id=next(seq), item=item, path=path, hop=0, start_time=t
        )
        heapq.heappush(events, (t, transfer.request_id, "arrival", transfer))

    queues: dict[Edge, deque] = {}
    busy_until: dict[Edge, float] = {}
    busy_time: dict[Edge, float] = {}
    transferred: dict[Edge, float] = {}
    completions: list[tuple[float, float]] = []  # (finish_time, latency)
    path_costs: dict[tuple[Node, ...], float] = {}
    delivered_cost = 0.0

    stalled = 0

    def service_time(edge: Edge, item: Hashable) -> float:
        cap = problem.network.capacity(*edge)
        if math.isinf(cap):
            return 0.0
        if cap <= 0:
            # A link degraded to zero capacity (failure instances mutate edge
            # attributes in place) can never finish a transfer: model it as
            # an infinite service time instead of a ZeroDivisionError.
            return math.inf
        return problem.size_of(item) / cap

    def enter_link(now: float, transfer: _Transfer) -> None:
        nonlocal delivered_cost
        if transfer.hop >= len(transfer.path) - 1:
            completions.append((now, now - transfer.start_time))
            if transfer.path not in path_costs:
                path_costs[transfer.path] = sum(
                    problem.network.cost(u, v)
                    for u, v in zip(transfer.path[:-1], transfer.path[1:])
                )
            delivered_cost += path_costs[transfer.path]
            return
        edge = (transfer.path[transfer.hop], transfer.path[transfer.hop + 1])
        queue = queues.setdefault(edge, deque())
        if now >= busy_until.get(edge, 0.0) and not queue:
            _start_service(now, edge, transfer)
        else:
            queue.append(transfer)

    def _start_service(now: float, edge: Edge, transfer: _Transfer) -> None:
        nonlocal stalled
        duration = service_time(edge, transfer.item)
        if math.isinf(duration):
            # The transfer stalls forever; the link stays busy to the end of
            # the horizon and everything queued behind it is never served.
            stalled += 1
            busy_until[edge] = math.inf
            busy_time[edge] = busy_time.get(edge, 0.0) + max(
                0.0, config.horizon - now
            )
            return
        finish = now + duration
        busy_until[edge] = finish
        # Busy time is windowed to the horizon for stalled AND finite links
        # alike (utilization is "fraction of the horizon spent transferring"
        # in both failure modes); service running past the horizon shows up
        # as late_deliveries, not as utilization > 1.
        busy_time[edge] = busy_time.get(edge, 0.0) + max(
            0.0, min(finish, config.horizon) - now
        )
        transferred[edge] = transferred.get(edge, 0.0) + problem.size_of(transfer.item)
        heapq.heappush(events, (finish, transfer.request_id, "done", (edge, transfer)))

    while events:
        now, _, kind, payload = heapq.heappop(events)
        if kind == "arrival":
            enter_link(now, payload)  # type: ignore[arg-type]
        else:
            edge, transfer = payload  # type: ignore[misc]
            queue = queues.get(edge)
            if queue:
                _start_service(now, edge, queue.popleft())
            transfer.hop += 1
            enter_link(now, transfer)

    # --- reporting -----------------------------------------------------------
    analytic: dict[Edge, float] = {}
    for (item, s), rate in problem.demand.items():
        for pf in routing.paths.get((item, s), []):
            for edge in pf.edges():
                analytic[edge] = (
                    analytic.get(edge, 0.0)
                    + rate * pf.amount * problem.size_of(item)
                )
    utilization = {
        edge: busy_time.get(edge, 0.0) / config.horizon
        for edge in busy_time
        if not math.isinf(problem.network.capacity(*edge))
    }
    if completions:
        latencies_arr = np.array([lat for _t, lat in completions])
        mean_latency = float(latencies_arr.mean())
        p95_latency = float(np.percentile(latencies_arr, 95))
        max_latency = float(latencies_arr.max())
    else:
        # Nothing delivered: latency is undefined, not zero — a fully
        # stalled replay must not look like instant delivery.
        mean_latency = p95_latency = max_latency = float("nan")
    late = sum(1 for t, _lat in completions if t > config.horizon)
    return SimulationReport(
        generated=len(arrivals),
        delivered=len(completions),
        mean_latency=mean_latency,
        p95_latency=p95_latency,
        max_latency=max_latency,
        delivered_cost=delivered_cost,
        utilization=utilization,
        empirical_loads={
            edge: volume / config.horizon for edge, volume in transferred.items()
        },
        analytic_loads=analytic,
        late_deliveries=late,
        unrouted_types=unrouted_types,
        stalled_transfers=stalled,
    )
