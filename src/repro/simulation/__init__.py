"""Discrete-event validation simulator for caching/routing solutions."""

from repro.simulation.simulator import (
    SimulationConfig,
    SimulationReport,
    scale_problem,
    simulate,
)

__all__ = [
    "SimulationConfig",
    "SimulationReport",
    "simulate",
    "scale_problem",
]
