"""Periodic Algorithm-1 re-optimization driven by rolling GPR refits.

The closed prediction loop of the online experiment: observed per-type
request counts accumulate chunk by chunk; every re-planning epoch the
:class:`PredictivePlanner` refits the demand predictor
(:class:`~repro.prediction.gpr.GaussianProcessRegressor`) on the observed
rate series and re-runs Algorithm 1 under the predicted rates.

Re-solving is cheap because LP (7)'s constraint structure is independent of
the request rates — only the z-block objective ``rate * w_max`` carries
them — so the LP is frozen once into a PR-4 :class:`~repro.flow.lp.LPTemplate`
and every re-optimization is a single objective patch plus a warm
re-solve (:class:`Algorithm1Template`).  The post-LP stage (source
concentration, pipage rounding, polish, RNR routing) is shared with the
one-shot solver via :func:`repro.core.algorithm1.finish_from_lp`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adaptive.strategies import ReactiveTables
from repro.core.algorithm1 import (
    Algorithm1Result,
    _assemble_lp7_array,
    _prepare,
    finish_from_lp,
)
from repro.core.problem import ProblemInstance, Request
from repro.exceptions import InvalidProblemError
from repro.prediction.gpr import GaussianProcessRegressor
from repro.prediction.kernels import paper_kernel

#: Rates below this are floored before entering the LP (demand must stay
#: positive for the instance to remain valid).
_RATE_FLOOR = 1e-6


class Algorithm1Template:
    """Algorithm 1 with a frozen LP (7), re-solvable under new demand rates.

    The template is built once from ``problem``; :meth:`solve` accepts any
    demand over the *same* request support (same ``(item, s)`` keys) and
    patches only the z-block objective before re-solving.  An unpatched
    solve is bit-identical to ``algorithm1(problem, assembly="array")``.
    """

    def __init__(self, problem: ProblemInstance, *, polish: bool = True) -> None:
        self.problem = problem
        self.polish = polish
        (
            self._distance,
            self._sp,
            self._cache_nodes,
            _requested,
            self._w_max,
            self._x_pairs,
            self._request_rows,
            _constant,
        ) = _prepare(problem, None)
        lp = _assemble_lp7_array(
            problem, self._cache_nodes, self._x_pairs, self._request_rows,
            self._w_max,
        )
        self._template = lp.freeze()
        self._row_keys: list[Request] = [key for key, *_ in self._request_rows]
        self._sources_per_row = np.array(
            [len(sources) for _key, _rate, sources, _c in self._request_rows],
            dtype=np.int64,
        )

    @property
    def request_keys(self) -> list[Request]:
        """The demand support the template accepts, in row order."""
        return list(self._row_keys)

    def solve(self, demand: dict[Request, float] | None = None) -> Algorithm1Result:
        """Re-run Algorithm 1 under ``demand`` (defaults to the original)."""
        if demand is None:
            demand = self.problem.demand
        if set(demand) != set(self.problem.demand):
            raise InvalidProblemError(
                "template demand must cover exactly the original request support"
            )
        rates = np.array(
            [max(float(demand[key]), _RATE_FLOOR) for key in self._row_keys]
        )
        rate_of = np.repeat(rates, self._sources_per_row)
        self._template.set_block_objective("z", rate_of * self._w_max)
        lp_solution = self._template.solve()
        constant = float((rates * self._sources_per_row).sum() * self._w_max)
        swapped = self.problem.with_demand(
            {key: max(float(demand[key]), _RATE_FLOOR) for key in self.problem.demand}
        )
        rows = [
            (key, rate, sources, coefs)
            for (key, _old, sources, coefs), rate in zip(self._request_rows, rates)
        ]
        return finish_from_lp(
            swapped,
            distance=self._distance,
            sp=self._sp,
            cache_nodes=self._cache_nodes,
            w_max=self._w_max,
            x_pairs=self._x_pairs,
            request_rows=rows,
            constant=constant,
            lp_objective=lp_solution.objective,
            x_values=lp_solution.block("x").tolist(),
            polish=self.polish,
            context=None,
        )


# ----------------------------------------------------------------------


@dataclass
class PlannerConfig:
    """Prediction-loop knobs of the :class:`PredictivePlanner`."""

    #: Chunks of observed-rate history kept for the predictor (rolling).
    history_window: int = 64
    #: Minimum observed chunks before the GPR is trusted; earlier replans
    #: use the empirical mean rates.
    min_history: int = 4
    #: GPR refits are restricted to the busiest types (by cumulative
    #: observed count); the long tail uses its empirical mean — the per-type
    #: O(n^3) Cholesky would otherwise dominate the replan.
    max_gpr_types: int = 16
    #: Random restarts per GPR refit (0 = optimize from current theta only).
    n_restarts: int = 0
    #: Polish the re-optimized placement with the 1-swap local search.
    polish: bool = True
    seed: int = 0


class PredictivePlanner:
    """Observed counts -> GPR rate forecasts -> template re-optimization.

    ``observe`` records one chunk's per-type counts; ``replan`` refits the
    rolling predictors and re-solves Algorithm 1 under the forecast rates,
    returning the fresh result (also kept as ``self.current``).
    """

    def __init__(
        self,
        reactive: ReactiveTables,
        config: PlannerConfig | None = None,
    ) -> None:
        self.rt = reactive
        self.config = config or PlannerConfig()
        if self.config.history_window < 2:
            raise InvalidProblemError("history_window must be >= 2")
        self.template = Algorithm1Template(
            reactive.problem, polish=self.config.polish
        )
        #: Map template row order -> tables type order (both are over the
        #: same request keys; tables use the deterministic sorted order).
        type_index = {key: t for t, key in enumerate(reactive.tables.types)}
        self._row_to_type = np.array(
            [type_index[key] for key in self.template.request_keys],
            dtype=np.int64,
        )
        self._history: list[np.ndarray] = []  # per-chunk observed rates (R,)
        self._cumulative = np.zeros(reactive.num_types)
        self._rng = np.random.default_rng(self.config.seed)
        self.current: Algorithm1Result | None = None
        self.replans = 0

    def observe(self, counts: np.ndarray, elapsed: float) -> None:
        """Record one chunk's observed per-type counts over ``elapsed``."""
        counts = np.asarray(counts, dtype=float)
        if elapsed <= 0:
            raise InvalidProblemError("elapsed must be positive")
        rates = counts / elapsed
        self._history.append(rates)
        if len(self._history) > self.config.history_window:
            self._history.pop(0)
        self._cumulative += counts

    def forecast(self) -> np.ndarray:
        """Predicted per-type rates (tables' type order) for the next epoch."""
        if not self._history:
            # Nothing observed yet: fall back to the instance's own rates.
            return self.rt.tables.rates.copy()
        hist = np.stack(self._history)  # (n, R)
        predicted = hist.mean(axis=0)
        n = len(self._history)
        if n >= self.config.min_history and self.config.max_gpr_types > 0:
            busiest = np.argsort(-self._cumulative, kind="stable")[
                : self.config.max_gpr_types
            ]
            x_train = np.arange(n, dtype=float)
            for t in busiest:
                series = hist[:, t]
                if series.std() <= 1e-12:
                    continue  # constant series: the mean is already exact
                gpr = GaussianProcessRegressor(
                    kernel=paper_kernel(),
                    n_restarts=self.config.n_restarts,
                    rng=np.random.default_rng(int(self._rng.integers(2**31))),
                )
                try:
                    gpr.fit(x_train, series)
                    predicted[t] = float(gpr.predict(np.array([float(n)]))[0])
                except Exception:
                    # A degenerate refit falls back to the empirical mean.
                    pass
        return np.maximum(predicted, _RATE_FLOOR)

    def replan(self) -> Algorithm1Result:
        """Refit the predictors and re-solve Algorithm 1 (template patch)."""
        predicted = self.forecast()
        demand = {
            key: float(predicted[self._row_to_type[row]])
            for row, key in enumerate(self.template.request_keys)
        }
        self.current = self.template.solve(demand)
        self.replans += 1
        return self.current
