"""Adaptive projected-gradient placement (Ioannidis–Yeh, arXiv 1604.03175).

"Adaptive Caching Networks with Optimality Guarantees" shows that the
expected caching gain along fixed request paths is concave in the relaxed
placement ``y`` and that a projected (sub)gradient ascent driven only by
*observed* requests converges to the optimum of the relaxation; periodic
randomized/deterministic rounding recovers an integral placement within the
usual ``1 - 1/e`` factor.

For a request of type ``t`` traveling its path ``p_0 (requester) .. p_K
(origin)`` with request-direction edge costs ``w_k`` (edge into position
``k``), the expected serving cost under relaxed placement ``y`` is

    C_t(y) = sum_k w_k * prod_{l < k} (1 - y_{p_l, i_t}),

interpreting ``y`` as independent rounding probabilities.  The partial
derivative of the expected *saving* with respect to ``y_{p_m, i_t}`` is

    G_m = prod_{l < m} (1 - y_{p_l, i}) * T_m,
    T_m = w_{m+1} + (1 - y_{p_{m+1}, i}) * T_{m+1},   T_K = 0,

computed here with an exclusive prefix product and a backward suffix
recursion — no division by ``1 - y``, so ``y -> 1`` is safe.  Each
measurement chunk contributes its observed per-type counts as the rate
estimate, giving the stochastic subgradient of the paper; the state then
takes a diminishing step and is projected back onto the per-node capacity
simplex ``{0 <= y <= 1, sum_i b_i y_{v,i} <= c_v}`` (Euclidean projection
via bisection on the dual variable).  ``placement()`` rounds the state
deterministically (greedy by fractional value) for online scoring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adaptive.strategies import ReactiveTables
from repro.core.solution import Placement
from repro.exceptions import InvalidProblemError

_EPS = 1e-12


def project_box_capacity(
    z: np.ndarray,
    sizes: np.ndarray,
    capacity: float,
    *,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> np.ndarray:
    """Euclidean projection of ``z`` onto ``{0<=y<=1, sizes @ y <= capacity}``.

    The KKT solution is ``y = clip(z - tau * sizes, 0, 1)`` with ``tau >= 0``
    chosen so the capacity constraint holds with equality when the clipped
    ``z`` alone violates it; ``sizes @ y(tau)`` is nonincreasing in ``tau``,
    so bisection converges geometrically.
    """
    z = np.asarray(z, dtype=float)
    sizes = np.asarray(sizes, dtype=float)
    if capacity < 0:
        raise InvalidProblemError("capacity must be nonnegative")
    y = np.clip(z, 0.0, 1.0)
    if float(sizes @ y) <= capacity + tol:
        return y
    lo, hi = 0.0, float(np.max(z / np.maximum(sizes, _EPS))) + 1.0
    for _ in range(max_iter):
        tau = 0.5 * (lo + hi)
        y = np.clip(z - tau * sizes, 0.0, 1.0)
        load = float(sizes @ y)
        if abs(load - capacity) <= tol:
            break
        if load > capacity:
            lo = tau
        else:
            hi = tau
    return np.clip(z - hi * sizes, 0.0, 1.0) if float(sizes @ y) > capacity + tol else y


@dataclass
class GradientConfig:
    """Step-size schedule and rounding cadence of the adaptive ascent."""

    #: Base step size; step ``k`` uses ``gamma0 / k**power`` (diminishing,
    #: square-summable-but-not-summable for ``0.5 < power <= 1``).
    gamma0: float = 0.1
    power: float = 0.6
    #: Round the relaxed state into an integral placement every this many
    #: steps (the placement used for online scoring between roundings).
    round_every: int = 10


class AdaptiveGradientPlacement:
    """Online projected-gradient state over ``(cache node, item)``.

    ``observe(counts, elapsed)`` performs one stochastic ascent step from a
    chunk's observed per-type request counts; ``placement()`` returns the
    current deterministically-rounded integral placement as the shared
    :class:`~repro.core.solution.Placement` type.
    """

    def __init__(
        self,
        reactive: ReactiveTables,
        config: GradientConfig | None = None,
    ) -> None:
        self.rt = reactive
        self.config = config or GradientConfig()
        if self.config.gamma0 <= 0 or not 0 < self.config.power <= 1:
            raise InvalidProblemError("need gamma0 > 0 and 0 < power <= 1")
        if self.config.round_every <= 0:
            raise InvalidProblemError("round_every must be positive")
        v, c = len(reactive.nodes), len(reactive.item_size)
        #: Relaxed placement state; rows of cache-less nodes stay zero.
        self.y = np.zeros((v, c))
        self._cache_rows = np.flatnonzero(reactive.capacities > 0)
        self.steps = 0
        self._rounded: Placement | None = None

    # ------------------------------------------------------------------

    def expected_cost_rate(self, rates: np.ndarray) -> float:
        """Relaxed objective: expected cost per unit time at rates ``rates``."""
        rt = self.rt
        ybar, pad_w = self._path_arrays()
        prefix = self._exclusive_prefix(ybar)
        return float((rates[:, None] * pad_w * prefix).sum())

    def observe(self, counts: np.ndarray, elapsed: float) -> None:
        """One projected ascent step from a chunk's observed type counts."""
        counts = np.asarray(counts, dtype=float)
        if elapsed <= 0:
            raise InvalidProblemError("elapsed must be positive")
        if len(counts) != self.rt.num_types:
            raise InvalidProblemError("counts must have one entry per type")
        lam_hat = counts / elapsed
        grad = self._subgradient(lam_hat)
        self.steps += 1
        gamma = self.config.gamma0 / self.steps**self.config.power
        self.y += gamma * grad
        self._project()
        if self._rounded is None or self.steps % self.config.round_every == 0:
            self._rounded = self._round()

    def placement(self) -> Placement:
        """The integral placement currently used for online scoring."""
        if self._rounded is None:
            self._rounded = self._round()
        return self._rounded

    # ------------------------------------------------------------------

    def _path_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-position survival ``1 - y`` and request-direction edge costs.

        Pinned holders have survival 0 (a copy is always there); invalid
        (padded) positions have survival 0 and edge cost 0, so they never
        contribute to prefixes, suffixes, or gradients.
        """
        rt = self.rt
        y_here = self.y[np.maximum(rt.pad_nodes, 0), rt.type_item[:, None]]
        ybar = np.where(rt.pad_valid, 1.0 - y_here, 0.0)
        ybar = np.where(rt.pad_pinned, 0.0, ybar)
        pad_w = np.diff(rt.pad_prefix_cost, axis=1, prepend=0.0)
        return ybar, pad_w

    @staticmethod
    def _exclusive_prefix(ybar: np.ndarray) -> np.ndarray:
        """``prefix[:, k] = prod_{l < k} ybar[:, l]`` (ones at ``k = 0``)."""
        prefix = np.ones_like(ybar)
        np.cumprod(ybar[:, :-1], axis=1, out=prefix[:, 1:])
        return prefix

    def _subgradient(self, lam_hat: np.ndarray) -> np.ndarray:
        """Rate-weighted saving gradient, scattered to ``(node, item)``."""
        rt = self.rt
        ybar, pad_w = self._path_arrays()
        prefix = self._exclusive_prefix(ybar)
        L = ybar.shape[1]
        # T[:, m] = w_{m+1} + ybar_{m+1} T[:, m+1]; T at the last column = 0.
        T = np.zeros_like(ybar)
        for m in range(L - 2, -1, -1):
            T[:, m] = pad_w[:, m + 1] + ybar[:, m + 1] * T[:, m + 1]
        per_pos = lam_hat[:, None] * prefix * T
        # Only true cache positions can increase y (pinned contributes no
        # gradient: its survival is already 0).
        mask = rt.pad_cache & rt.pad_valid & ~rt.pad_pinned
        grad = np.zeros_like(self.y)
        np.add.at(
            grad,
            (rt.pad_nodes[mask], np.broadcast_to(rt.type_item[:, None], mask.shape)[mask]),
            per_pos[mask],
        )
        return grad

    def _project(self) -> None:
        rt = self.rt
        for v in self._cache_rows:
            self.y[v] = project_box_capacity(
                self.y[v], rt.item_size, float(rt.capacities[v])
            )

    def _round(self) -> Placement:
        """Greedy deterministic rounding of the relaxed state.

        Per cache node, items enter in decreasing fractional value (ties by
        item index) while they fit; pinned copies are free and omitted.
        """
        rt = self.rt
        entries: list[tuple] = []
        pinned = rt.problem.pinned
        for v in self._cache_rows:
            row = self.y[v]
            order = np.argsort(-row, kind="stable")
            budget = float(rt.capacities[v])
            node = rt.nodes[v]
            for i in order:
                if row[i] <= 1e-6:
                    break
                item = rt.items[i]
                if (node, item) in pinned:
                    continue
                size = float(rt.item_size[i])
                if size <= budget + 1e-12:
                    entries.append((node, item))
                    budget -= size
        return Placement.from_set(entries)
