"""Array-backed per-node LRU/LFU cache state for chunked streaming replay.

The legacy reactive baseline (:mod:`repro.baselines.reactive`) keeps one
``OrderedDict`` per cache and dispatches every request through Python; this
module stores the same dynamics as dense numpy arrays over ``(node, item)``
so the engine-backed strategies (:mod:`repro.adaptive.strategies`) can apply
a whole chunk of requests with a handful of scatter ops:

- ``resident``: bool occupancy matrix ``(V, C)``;
- ``last_used``: a global event clock per ``(node, item)`` — the LRU order;
- ``freq``: hit counts per ``(node, item)`` — the LFU order (reset on
  eviction, exactly like the legacy ``_hits`` dict);
- ``used``: per-node occupied capacity under heterogeneous item sizes.

State is *frozen within a chunk*: lookups during a chunk see the state left
by the previous chunk, and all touches/insertions of the chunk are applied
at once by :meth:`CacheArrayState.apply_chunk` (recency = within-chunk
order, evictions afterwards).  With ``chunk_size == 1`` this reproduces the
legacy per-request dynamics exactly; larger chunks trade a bounded state
lag for vectorized throughput.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidProblemError

_EPS = 1e-9


class CacheArrayState:
    """Vectorized LRU/LFU cache state over ``V`` nodes and ``C`` items.

    Parameters
    ----------
    capacities:
        Per-node cache capacities ``c_v`` (0 = no cache), shape ``(V,)``.
    item_sizes:
        Per-item sizes ``b_i``, shape ``(C,)``.
    policy:
        ``"lru"`` or ``"lfu"`` (least frequently used, ties by LRU order).
    """

    def __init__(
        self,
        capacities: np.ndarray,
        item_sizes: np.ndarray,
        policy: str = "lru",
    ) -> None:
        if policy not in ("lru", "lfu"):
            raise InvalidProblemError("policy must be 'lru' or 'lfu'")
        self.capacities = np.asarray(capacities, dtype=float)
        self.item_sizes = np.asarray(item_sizes, dtype=float)
        if (self.capacities < 0).any():
            raise InvalidProblemError("capacities must be nonnegative")
        if (self.item_sizes <= 0).any():
            raise InvalidProblemError("item sizes must be positive")
        self.policy = policy
        v, c = len(self.capacities), len(self.item_sizes)
        self.resident = np.zeros((v, c), dtype=bool)
        self.last_used = np.zeros((v, c), dtype=np.int64)
        self.freq = np.zeros((v, c), dtype=np.int64)
        self.used = np.zeros(v)
        self.clock = 0
        #: Nodes currently failed: they hold nothing and accept nothing.
        self.down = np.zeros(v, dtype=bool)

    @property
    def num_nodes(self) -> int:
        return len(self.capacities)

    @property
    def num_items(self) -> int:
        return len(self.item_sizes)

    def items_at(self, node: int) -> np.ndarray:
        """Indices of the items resident at ``node`` (ascending)."""
        return np.flatnonzero(self.resident[node])

    # ------------------------------------------------------------------
    # Failure hooks (degraded streaming replay)
    # ------------------------------------------------------------------

    def wipe_nodes(self, node_ids) -> None:
        """Erase the cached contents of ``node_ids`` (a cache wipe/flap).

        Residency, recency, and frequency state vanish as if the caches
        were fresh; capacities and the global clock are untouched.
        """
        ids = np.asarray(node_ids, dtype=np.int64)
        if ids.size == 0:
            return
        self.resident[ids] = False
        self.last_used[ids] = 0
        self.freq[ids] = 0
        self.used[ids] = 0.0

    def set_down(self, node_ids) -> None:
        """Mark exactly ``node_ids`` as failed (the rest come back up).

        Nodes *entering* the down set lose their contents immediately
        (a dead cache holds nothing); nodes leaving it come back empty —
        the wipe happened at failure time.  While down, a node ignores
        every touch/insert routed at it (dead-node skipping).
        """
        ids = np.asarray(node_ids, dtype=np.int64)
        down = np.zeros(self.num_nodes, dtype=bool)
        down[ids] = True
        entering = down & ~self.down
        if entering.any():
            self.wipe_nodes(np.flatnonzero(entering))
        self.down = down

    # ------------------------------------------------------------------

    def apply_chunk(
        self,
        touch_nodes: np.ndarray,
        touch_items: np.ndarray,
        touch_seq: np.ndarray,
        insert_nodes: np.ndarray,
        insert_items: np.ndarray,
        insert_seq: np.ndarray,
        chunk_len: int,
    ) -> None:
        """Apply one chunk's touches and insertions, then evict overflows.

        ``*_seq`` are within-chunk request indices (``0 .. chunk_len-1``)
        establishing recency order; events later in the chunk win.  Per
        ``(node, item)`` pair the update is:

        - recency ``last_used = clock + 1 + max(seq)`` over its events;
        - frequency ``+= #events`` for pairs already resident (a re-insert
          counts as a touch, like the legacy baseline), ``= #events`` for
          newly inserted pairs (the legacy ``_hits`` entry was popped on
          eviction, so a fresh insert restarts at its chunk count);
        - items larger than the whole cache are rejected (never inserted).

        Eviction runs per over-capacity node in policy order (LRU:
        ascending ``last_used``; LFU: ascending ``(freq, last_used)``),
        preferring items *not* inserted in this chunk — the legacy loop
        picks victims before inserting the new item, so a fresh insert is
        never its own victim unless the stale items alone cannot make room.
        """
        touch_nodes = np.asarray(touch_nodes, dtype=np.int64)
        touch_items = np.asarray(touch_items, dtype=np.int64)
        touch_seq = np.asarray(touch_seq, dtype=np.int64)
        insert_nodes = np.asarray(insert_nodes, dtype=np.int64)
        insert_items = np.asarray(insert_items, dtype=np.int64)
        insert_seq = np.asarray(insert_seq, dtype=np.int64)

        if self.down.any():
            # Dead-node skipping: failed caches neither record touches
            # nor accept copies.  (No-op on the healthy fast path above.)
            alive = ~self.down[touch_nodes]
            touch_nodes = touch_nodes[alive]
            touch_items = touch_items[alive]
            touch_seq = touch_seq[alive]
            alive = ~self.down[insert_nodes]
            insert_nodes = insert_nodes[alive]
            insert_items = insert_items[alive]
            insert_seq = insert_seq[alive]

        # Reject inserts that can never fit (size > whole cache).
        fits = self.item_sizes[insert_items] <= (
            self.capacities[insert_nodes] + _EPS
        )
        if not fits.all():
            insert_nodes = insert_nodes[fits]
            insert_items = insert_items[fits]
            insert_seq = insert_seq[fits]

        nodes = np.concatenate([touch_nodes, insert_nodes])
        items = np.concatenate([touch_items, insert_items])
        seq = np.concatenate([touch_seq, insert_seq])
        if len(nodes):
            # Collapse events per (node, item): count and latest seq.
            flat = nodes * np.int64(self.num_items) + items
            uniq, inverse, counts = np.unique(
                flat, return_inverse=True, return_counts=True
            )
            latest = np.zeros(len(uniq), dtype=np.int64)
            np.maximum.at(latest, inverse, seq)
            u_nodes = uniq // self.num_items
            u_items = uniq % self.num_items
            was_resident = self.resident[u_nodes, u_items]
            # Pairs receiving at least one insert event become resident.
            if len(insert_nodes):
                ins_flat = insert_nodes * np.int64(self.num_items) + insert_items
                inserted = np.isin(uniq, ins_flat)
            else:
                inserted = np.zeros(len(uniq), dtype=bool)
            fresh = inserted & ~was_resident

            self.last_used[u_nodes, u_items] = self.clock + 1 + latest
            self.freq[u_nodes, u_items] = np.where(
                was_resident, self.freq[u_nodes, u_items] + counts, counts
            )
            self.resident[u_nodes[fresh], u_items[fresh]] = True
            if fresh.any():
                np.add.at(
                    self.used, u_nodes[fresh], self.item_sizes[u_items[fresh]]
                )
                self._evict_overflows(
                    np.unique(u_nodes[fresh]),
                    fresh_nodes=u_nodes[fresh],
                    fresh_items=u_items[fresh],
                )
        self.clock += int(chunk_len)

    # ------------------------------------------------------------------

    def _evict_overflows(
        self,
        candidate_nodes: np.ndarray,
        *,
        fresh_nodes: np.ndarray,
        fresh_items: np.ndarray,
    ) -> None:
        over = candidate_nodes[
            self.used[candidate_nodes] > self.capacities[candidate_nodes] + _EPS
        ]
        if not len(over):
            return
        fresh_mask = np.zeros_like(self.resident)
        fresh_mask[fresh_nodes, fresh_items] = True
        for v in over:
            idx = np.flatnonzero(self.resident[v])
            fresh = fresh_mask[v, idx]
            # Policy order, stale items first (fresh inserts evict last).
            if self.policy == "lru":
                order = np.lexsort((self.last_used[v, idx], fresh))
            else:
                order = np.lexsort(
                    (self.last_used[v, idx], self.freq[v, idx], fresh)
                )
            sizes = self.item_sizes[idx[order]]
            need = self.used[v] - self.capacities[v]
            cum = np.cumsum(sizes)
            k = int(np.searchsorted(cum, need - _EPS, side="left")) + 1
            victims = idx[order[:k]]
            self.resident[v, victims] = False
            self.last_used[v, victims] = 0
            self.freq[v, victims] = 0
            # Recompute from the occupancy row: no float drift across evictions.
            self.used[v] = float(
                self.item_sizes[self.resident[v]].sum()
            )
