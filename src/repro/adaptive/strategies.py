"""Engine-backed reactive caching strategies (ICN strawmen, vectorized).

The legacy baseline (:func:`repro.baselines.reactive.simulate_reactive_caching`)
dispatches every request through Python; here the classic strategies run
against the streaming serving engine of PR 6: requests arrive as numpy
batches from :func:`repro.serving.engine.generate_requests` over compiled
:class:`~repro.serving.tables.RoutingTables`, and cache state advances in
*chunked* steps against the array-backed
:class:`~repro.adaptive.state.CacheArrayState`.

Strategies (shapes follow Icarus):

- ``lce`` — leave copy everywhere: the response populates every on-path
  cache between the serving node and the requester;
- ``lcd`` — leave copy down: only the cache one hop downstream of the
  serving node stores a copy;
- ``probcache`` — ProbCache [Psaras et al.]: each on-path cache stores the
  response with probability ``N / (t_tw * c_v) * (x / c)^c`` where ``c``
  counts caches on the traveled path, ``x`` the caches between the node and
  the serving node, and ``N`` the remaining cache budget toward the
  requester;
- ``cl4m`` — cache less for more [Chai et al.]: only the traveled node with
  maximum betweenness centrality stores a copy;
- ``hashrouting`` — symmetric hash routing [Ross / Saino et al.]: each item
  has one authoritative cache (by content hash); requests detour through
  it, and only it stores the item on a miss.

Within a chunk the cache state is frozen (all lookups see chunk-start
state) and the chunk's touches/insertions apply at the boundary, so
``chunk_size=1`` reproduces the per-request dynamics of the legacy loop
exactly while large chunks amortize everything into O(types) work.

All on-path strategies travel the cost-shortest request path ``s ->
origin`` and charge request-direction edge costs up to the first hit,
matching the (fixed) legacy accounting.  Hash routing charges the request
path ``s -> authoritative cache`` plus, on a miss, the fetch path
``authoritative cache -> origin``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.adaptive.state import CacheArrayState
from repro.baselines.candidate_paths import origin_server
from repro.core.problem import Item, Node, ProblemInstance
from repro.core.rnr import ShortestPathCache, route_to_nearest_replica
from repro.core.solution import Placement
from repro.exceptions import InvalidProblemError
from repro.serving.engine import generate_requests, horizon_for_requests
from repro.serving.tables import RoutingTables, compile_tables

STRATEGIES = ("lce", "lcd", "probcache", "cl4m", "hashrouting")

#: ProbCache target time window (Icarus default).
_T_TW = 10.0


@dataclass
class ReactiveTables:
    """Request-path geometry and arrival tables for the reactive strategies.

    ``tables`` carries the arrival process (rates in the deterministic
    ``ProblemInstance.requests`` type order); the padded rectangles below
    carry, per request type, the node sequence of its cost-shortest request
    path ``s -> origin`` and everything the strategies derive from it.
    Rectangles are ``(R, L)`` with ``L`` the longest path; positions past a
    type's path length are masked out.
    """

    problem: ProblemInstance
    tables: RoutingTables
    nodes: tuple[Node, ...]
    items: tuple[Item, ...]
    origin: Node

    # -- per node id -----------------------------------------------------
    capacities: np.ndarray  # float64, 0 for cache-less nodes
    centrality: np.ndarray  # float64 betweenness (for cl4m)

    # -- per item id -----------------------------------------------------
    item_size: np.ndarray

    # -- per type --------------------------------------------------------
    type_item: np.ndarray  # int64 item id
    path_len: np.ndarray  # int64 number of nodes on the request path

    # -- padded (R, L) rectangles ---------------------------------------
    pad_nodes: np.ndarray  # int64 node ids, -1 past the path
    pad_valid: np.ndarray  # bool
    pad_prefix_cost: np.ndarray  # float64 cost s -> position k
    pad_pinned: np.ndarray  # bool: type's item pinned at that node
    pad_cache: np.ndarray  # bool: node has positive cache capacity
    pad_cache_count: np.ndarray  # int64 inclusive prefix count of caches
    pad_cap_sum: np.ndarray  # float64 inclusive prefix sum of capacities
    pad_best_prefix: np.ndarray  # int64 argmax-centrality cache pos < k, -1

    # -- hash routing ----------------------------------------------------
    hash_node: np.ndarray = field(default=None)  # int64 per type, -1 if none
    hash_request_cost: np.ndarray = field(default=None)  # cost s -> a
    hash_fetch_cost: np.ndarray = field(default=None)  # cost a -> origin
    hash_pinned: np.ndarray = field(default=None)  # item pinned at a

    @property
    def num_types(self) -> int:
        return self.tables.num_types


def _betweenness(problem: ProblemInstance, nodes: tuple[Node, ...]) -> np.ndarray:
    import networkx as nx

    scores = nx.betweenness_centrality(problem.network.graph, normalized=True)
    return np.array([scores.get(v, 0.0) for v in nodes])


def build_reactive_tables(problem: ProblemInstance) -> ReactiveTables:
    """Compile the reactive substrate: serving tables + request-path arrays.

    The :class:`RoutingTables` are compiled from the serve-from-origin RNR
    routing (empty placement), which fixes the arrival process and the type
    order; request-path geometry is derived independently along the
    cost-shortest ``s -> origin`` direction.
    """
    sp = ShortestPathCache(problem)
    origin = origin_server(problem)
    routing = route_to_nearest_replica(problem, Placement(), sp_cache=sp)
    tables = compile_tables(problem, routing)

    nodes = tuple(problem.network.nodes)
    node_id = {v: k for k, v in enumerate(nodes)}
    items = tuple(problem.catalog)
    item_id = {i: k for k, i in enumerate(items)}

    capacities = np.array(
        [problem.network.cache_capacity(v) for v in nodes], dtype=float
    )
    item_size = np.array([problem.size_of(i) for i in items], dtype=float)
    centrality = _betweenness(problem, nodes)

    paths = []
    type_item = np.empty(tables.num_types, dtype=np.int64)
    for t, (item, s) in enumerate(tables.types):
        type_item[t] = item_id[item]
        paths.append(sp.path(s, origin))
    path_len = np.array([len(p) for p in paths], dtype=np.int64)
    R, L = tables.num_types, int(path_len.max())

    pad_nodes = np.full((R, L), -1, dtype=np.int64)
    pad_valid = np.zeros((R, L), dtype=bool)
    pad_prefix_cost = np.zeros((R, L))
    pad_pinned = np.zeros((R, L), dtype=bool)
    network = problem.network
    pinned = problem.pinned
    for t, path in enumerate(paths):
        item = tables.types[t][0]
        acc = 0.0
        for k, v in enumerate(path):
            pad_nodes[t, k] = node_id[v]
            pad_valid[t, k] = True
            if k > 0:
                acc += network.cost(path[k - 1], path[k])
            pad_prefix_cost[t, k] = acc
            pad_pinned[t, k] = (v, item) in pinned
    if not pad_pinned[np.arange(R), path_len - 1].all():
        raise InvalidProblemError(
            "request paths must terminate at a pinned holder"
        )

    pad_cache = np.where(pad_valid, capacities[np.maximum(pad_nodes, 0)] > 0, False)
    pad_cache_count = np.cumsum(pad_cache, axis=1, dtype=np.int64)
    pad_cap_sum = np.cumsum(
        np.where(pad_cache, capacities[np.maximum(pad_nodes, 0)], 0.0), axis=1
    )

    pad_best_prefix = _best_prefix_positions(pad_nodes, pad_cache, centrality, R, L)

    rt = ReactiveTables(
        problem=problem,
        tables=tables,
        nodes=nodes,
        items=items,
        origin=origin,
        capacities=capacities,
        centrality=centrality,
        item_size=item_size,
        type_item=type_item,
        path_len=path_len,
        pad_nodes=pad_nodes,
        pad_valid=pad_valid,
        pad_prefix_cost=pad_prefix_cost,
        pad_pinned=pad_pinned,
        pad_cache=pad_cache,
        pad_cache_count=pad_cache_count,
        pad_cap_sum=pad_cap_sum,
        pad_best_prefix=pad_best_prefix,
    )
    _attach_hash_routing(rt, problem, sp, node_id, origin)
    return rt


def _best_prefix_positions(
    pad_nodes: np.ndarray,
    pad_cache: np.ndarray,
    centrality: np.ndarray,
    R: int,
    L: int,
) -> np.ndarray:
    """``best[t, k]`` = position of the max-centrality cache in ``[0, k)``.

    Ties resolve to the *earliest* position (closest to the requester),
    matching a strict ``>`` running maximum.
    """
    best = np.full((R, L), -1, dtype=np.int64)
    best_pos = np.full(R, -1, dtype=np.int64)
    best_val = np.full(R, -np.inf)
    for k in range(L):
        if k > 0:
            best[:, k] = best_pos
        val = np.where(
            pad_cache[:, k], centrality[np.maximum(pad_nodes[:, k], 0)], -np.inf
        )
        better = val > best_val
        best_pos = np.where(better, k, best_pos)
        best_val = np.maximum(best_val, val)
    return best


def _attach_hash_routing(
    rt: ReactiveTables,
    problem: ProblemInstance,
    sp: ShortestPathCache,
    node_id: dict[Node, int],
    origin: Node,
) -> None:
    cache_nodes = sorted(
        (v for v in problem.network.cache_nodes() if problem.network.cache_capacity(v) > 0),
        key=repr,
    )
    R = rt.num_types
    rt.hash_node = np.full(R, -1, dtype=np.int64)
    rt.hash_request_cost = np.zeros(R)
    rt.hash_fetch_cost = np.zeros(R)
    rt.hash_pinned = np.zeros(R, dtype=bool)
    if not cache_nodes:
        return
    auth_of: dict[Item, Node] = {}
    for t, (item, s) in enumerate(rt.tables.types):
        a = auth_of.get(item)
        if a is None:
            # Deterministic item -> cache assignment (salted ``hash`` would
            # change across interpreter runs; crc32 of the repr does not).
            digest = zlib.crc32(repr(item).encode())
            a = cache_nodes[digest % len(cache_nodes)]
            auth_of[item] = a
        rt.hash_node[t] = node_id[a]
        rt.hash_request_cost[t] = sp.distance(s, a)
        rt.hash_fetch_cost[t] = sp.distance(a, origin)
        rt.hash_pinned[t] = (a, item) in problem.pinned


# ----------------------------------------------------------------------


@dataclass
class ChunkMetrics:
    """Per-request outcome arrays of one engine step."""

    costs: np.ndarray  # float64 per request of the chunk
    edge_hits: np.ndarray  # bool per request: served before the origin


class ReactiveStrategyEngine:
    """Stateful chunked executor for one reactive strategy.

    ``step`` consumes one chunk of request type ids (from
    :func:`repro.serving.engine.generate_requests` batches or an explicit
    replayed stream), scores every request against the frozen chunk-start
    cache state, and advances the state at the chunk boundary.
    """

    def __init__(
        self,
        reactive: ReactiveTables,
        *,
        strategy: str = "lce",
        policy: str = "lru",
        seed: int = 0,
        t_tw: float = _T_TW,
    ) -> None:
        if strategy not in STRATEGIES:
            raise InvalidProblemError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        if strategy == "hashrouting" and (reactive.hash_node < 0).any():
            raise InvalidProblemError(
                "hash routing needs at least one positive-capacity cache node"
            )
        self.rt = reactive
        self.strategy = strategy
        self.t_tw = float(t_tw)
        self.state = CacheArrayState(
            reactive.capacities, reactive.item_size, policy
        )
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------

    def step(self, type_ids: np.ndarray) -> ChunkMetrics:
        """Score one chunk against frozen state, then apply its events."""
        type_ids = np.asarray(type_ids, dtype=np.int64)
        if self.strategy == "hashrouting":
            return self._step_hashrouting(type_ids)
        return self._step_on_path(type_ids)

    # -- on-path strategies ---------------------------------------------

    def _hit_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """First hit position per type under frozen state, and whether the
        hit is a cache residency (vs a pinned copy)."""
        rt = self.rt
        item_col = rt.type_item[:, None]
        occ = self.state.resident[np.maximum(rt.pad_nodes, 0), item_col]
        occ &= rt.pad_cache  # non-cache nodes can never hold a copy
        hit_mask = (occ | rt.pad_pinned) & rt.pad_valid
        hit_pos = hit_mask.argmax(axis=1)  # first True (origin guarantees one)
        rows = np.arange(rt.num_types)
        hit_is_cache = occ[rows, hit_pos]
        return hit_pos, hit_is_cache

    def _candidate_csr(
        self, cand_mask: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flatten a per-type candidate-position mask into CSR arrays."""
        rt = self.rt
        cand_len = cand_mask.sum(axis=1).astype(np.int64)
        cand_ptr = np.zeros(rt.num_types + 1, dtype=np.int64)
        np.cumsum(cand_len, out=cand_ptr[1:])
        cand_nodes = rt.pad_nodes[cand_mask]
        cand_items = np.repeat(rt.type_item, cand_len)
        return cand_len, cand_ptr, cand_nodes, cand_items

    def _expand(
        self,
        type_ids: np.ndarray,
        cand_len: np.ndarray,
        cand_ptr: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-request expansion of per-type candidate lists.

        Returns ``(event_seq, flat_idx)``: for every (request, candidate)
        pair, the request's within-chunk index and the candidate's index
        into the CSR value arrays.
        """
        m = cand_len[type_ids]
        total = int(m.sum())
        seq = np.arange(len(type_ids), dtype=np.int64)
        event_seq = np.repeat(seq, m)
        offsets = np.zeros(len(type_ids) + 1, dtype=np.int64)
        np.cumsum(m, out=offsets[1:])
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], m)
        flat_idx = cand_ptr[type_ids[event_seq]] + within
        return event_seq, flat_idx

    def _step_on_path(self, type_ids: np.ndarray) -> ChunkMetrics:
        rt = self.rt
        hit_pos, hit_is_cache = self._hit_positions()
        rows = np.arange(rt.num_types)
        type_cost = rt.pad_prefix_cost[rows, hit_pos]
        type_edge_hit = hit_pos < rt.path_len - 1

        costs = type_cost[type_ids]
        edge_hits = type_edge_hit[type_ids]

        # Touch events: requests whose hit was an actual cache residency.
        touch_types = hit_is_cache[type_ids]
        seq = np.arange(len(type_ids), dtype=np.int64)
        touch_seq = seq[touch_types]
        touch_nodes = rt.pad_nodes[type_ids[touch_seq], hit_pos[type_ids[touch_seq]]]
        touch_items = rt.type_item[type_ids[touch_seq]]

        # Insert candidates per type (cache positions strictly before hit).
        col = np.arange(rt.pad_nodes.shape[1])[None, :]
        before_hit = rt.pad_cache & (col < hit_pos[:, None])
        if self.strategy == "lce":
            cand_mask = before_hit
        elif self.strategy == "lcd":
            # First cache-capable node downstream of the serving node (the
            # highest cache position below the hit).  Unlike Icarus we let
            # the requester itself qualify: in the edge-caching scenarios
            # the requesters are exactly the cache-capable nodes.
            lcd_pos = np.where(before_hit, col, -1).max(axis=1)
            cand_mask = before_hit & (col == lcd_pos[:, None])
        elif self.strategy == "cl4m":
            best = rt.pad_best_prefix[rows, hit_pos]
            cand_mask = before_hit & (col == best[:, None])
        else:  # probcache: keep the full mask; thin per request below
            cand_mask = before_hit

        cand_len, cand_ptr, cand_nodes, cand_items = self._candidate_csr(cand_mask)
        event_seq, flat_idx = self._expand(type_ids, cand_len, cand_ptr)
        insert_nodes = cand_nodes[flat_idx]
        insert_items = cand_items[flat_idx]
        insert_seq = event_seq

        if self.strategy == "probcache":
            cand_prob = self._probcache_probs(cand_mask, hit_pos)
            keep = self._rng.random(len(flat_idx)) < cand_prob[flat_idx]
            insert_nodes = insert_nodes[keep]
            insert_items = insert_items[keep]
            insert_seq = insert_seq[keep]

        self.state.apply_chunk(
            touch_nodes,
            touch_items,
            touch_seq,
            insert_nodes,
            insert_items,
            insert_seq,
            len(type_ids),
        )
        return ChunkMetrics(costs=costs, edge_hits=edge_hits)

    def _probcache_probs(
        self, cand_mask: np.ndarray, hit_pos: np.ndarray
    ) -> np.ndarray:
        """ProbCache acceptance probability per CSR candidate.

        With position 0 the requester and ``h`` the serving position:
        ``c``   = caches on the traveled path ``[0, h]``;
        ``x_k`` = caches in ``[k, h-1]`` (seen since the serving node);
        ``N_k`` = cache budget in ``[0, k+1]`` (remaining toward requester);
        ``p_k  = N_k / (t_tw * c_v) * (x_k / c)^c``, clipped to 1.
        """
        rt = self.rt
        rows = np.arange(rt.num_types)
        L = rt.pad_nodes.shape[1]
        c = rt.pad_cache_count[rows, hit_pos].astype(float)  # >= 1 if any cand
        caches_below_hit = np.where(
            hit_pos > 0,
            rt.pad_cache_count[rows, np.maximum(hit_pos - 1, 0)],
            0,
        ).astype(float)
        col = np.arange(L)[None, :]
        count_before = np.where(
            col > 0, rt.pad_cache_count[:, np.maximum(col - 1, 0)[0]], 0
        )
        # x at position k: caches in [k, h-1] = count(<=h-1) - count(<=k-1).
        x = caches_below_hit[:, None] - np.asarray(count_before, dtype=float)
        nxt = np.minimum(col + 1, L - 1)
        n_budget = rt.pad_cap_sum[:, nxt[0]]
        cap_v = np.where(rt.pad_cache, rt.capacities[np.maximum(rt.pad_nodes, 0)], 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(c[:, None] > 0, x / np.maximum(c[:, None], 1.0), 0.0)
            p = (
                n_budget
                / (self.t_tw * cap_v)
                * np.power(np.clip(ratio, 0.0, 1.0), c[:, None])
            )
        p = np.clip(np.nan_to_num(p, nan=0.0, posinf=1.0), 0.0, 1.0)
        return p[cand_mask]

    # -- hash routing ----------------------------------------------------

    def _step_hashrouting(self, type_ids: np.ndarray) -> ChunkMetrics:
        rt = self.rt
        auth = rt.hash_node
        resident = self.state.resident[auth, rt.type_item]
        type_hit = resident | rt.hash_pinned
        type_cost = rt.hash_request_cost + np.where(type_hit, 0.0, rt.hash_fetch_cost)

        costs = type_cost[type_ids]
        edge_hits = type_hit[type_ids]

        seq = np.arange(len(type_ids), dtype=np.int64)
        touch_mask = resident[type_ids]
        touch_seq = seq[touch_mask]
        touch_nodes = auth[type_ids[touch_seq]]
        touch_items = rt.type_item[type_ids[touch_seq]]

        miss_mask = ~type_hit[type_ids]
        insert_seq = seq[miss_mask]
        insert_nodes = auth[type_ids[insert_seq]]
        insert_items = rt.type_item[type_ids[insert_seq]]

        self.state.apply_chunk(
            touch_nodes,
            touch_items,
            touch_seq,
            insert_nodes,
            insert_items,
            insert_seq,
            len(type_ids),
        )
        return ChunkMetrics(costs=costs, edge_hits=edge_hits)


# ----------------------------------------------------------------------


@dataclass
class EngineReplayResult:
    """Steady-state metrics of one engine-backed reactive replay."""

    strategy: str
    policy: str
    requests: int
    #: Average measured cost per request scaled by the total demand rate —
    #: directly comparable with ``ReactiveResult.cost_rate`` and with
    #: optimized solutions' routing cost.
    cost_rate: float
    edge_hit_ratio: float
    chunk_size: int
    #: Per-chunk total cost / request count over the *whole* stream
    #: (including warmup), for cost-over-time plots.
    chunk_costs: np.ndarray = field(default_factory=lambda: np.zeros(0))
    chunk_requests: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )


def stream_type_ids(
    tables: RoutingTables, n_requests: int, rng: np.random.Generator
) -> np.ndarray:
    """At least ``n_requests`` arrivals via the engine's batch generator.

    Batches are drawn through :func:`generate_requests` (Poisson counts,
    time-ordered) and concatenated until the target count is reached, then
    truncated to exactly ``n_requests`` — one deterministic seeded stream
    every policy of a comparison can replay.
    """
    if n_requests <= 0:
        raise InvalidProblemError("n_requests must be positive")
    horizon = horizon_for_requests(tables, n_requests)
    chunks = []
    total = 0
    while total < n_requests:
        batch = generate_requests(tables, horizon, rng)
        chunks.append(batch.type_ids)
        total += len(batch.type_ids)
        horizon = max(horizon * 0.1, horizon_for_requests(tables, 1024))
    return np.concatenate(chunks)[:n_requests]


def replay_reactive(
    problem: ProblemInstance,
    *,
    strategy: str = "lce",
    policy: str = "lru",
    n_requests: int = 100_000,
    chunk_size: int = 8192,
    warmup_fraction: float = 0.25,
    seed: int = 0,
    type_ids: np.ndarray | None = None,
    reactive: ReactiveTables | None = None,
) -> EngineReplayResult:
    """Replay a seeded request stream through one engine-backed strategy.

    ``type_ids`` may carry an explicit pre-drawn stream (indices into
    ``reactive.tables.types``) — the parity tests feed the legacy
    simulator's exact draw; otherwise the stream comes from
    :func:`stream_type_ids` under ``seed``.
    """
    if chunk_size <= 0:
        raise InvalidProblemError("chunk_size must be positive")
    rt = reactive or build_reactive_tables(problem)
    rng = np.random.default_rng(seed)
    if type_ids is None:
        type_ids = stream_type_ids(rt.tables, n_requests, rng)
    else:
        type_ids = np.asarray(type_ids, dtype=np.int64)
    n = len(type_ids)
    engine = ReactiveStrategyEngine(
        rt, strategy=strategy, policy=policy, seed=seed + 1
    )
    warmup = int(n * warmup_fraction)
    measured_cost = 0.0
    measured = 0
    hits = 0
    chunk_costs: list[float] = []
    chunk_requests: list[int] = []
    for start in range(0, n, chunk_size):
        chunk = type_ids[start : start + chunk_size]
        metrics = engine.step(chunk)
        chunk_costs.append(float(metrics.costs.sum()))
        chunk_requests.append(len(chunk))
        cut = max(0, warmup - start)
        if cut < len(chunk):
            measured += len(chunk) - cut
            measured_cost += float(metrics.costs[cut:].sum())
            hits += int(metrics.edge_hits[cut:].sum())
    total_rate = rt.tables.total_rate
    return EngineReplayResult(
        strategy=strategy,
        policy=policy,
        requests=measured,
        cost_rate=measured_cost / measured * total_rate if measured else 0.0,
        edge_hit_ratio=hits / measured if measured else 0.0,
        chunk_size=chunk_size,
        chunk_costs=np.asarray(chunk_costs),
        chunk_requests=np.asarray(chunk_requests, dtype=np.int64),
    )
