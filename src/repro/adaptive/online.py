"""Online adaptive serving: every policy replayed against one seeded stream.

The driver draws a single request stream from the serving engine
(:func:`repro.adaptive.strategies.stream_type_ids`) and feeds identical
chunks to every competing policy:

- the engine-backed reactive strategies (LCE / LCD / ProbCache / CL4M /
  hash routing) pay their *realized* on-path costs and mutate cache state;
- placement-based policies (static Algorithm 1, adaptive projected
  gradient, periodic Algorithm 1 + GPR) pay, per request, the RNR serving
  cost of the placement in force when the chunk starts — adaptive policies
  update their state from the chunk's observed counts *after* being scored
  on it, so no policy sees the future.

The result is a per-chunk cost series per policy, from which cost-over-time
and regret-vs-static curves are derived (``bench_online_adaptive.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adaptive.gradient import AdaptiveGradientPlacement, GradientConfig
from repro.adaptive.periodic import PlannerConfig, PredictivePlanner
from repro.adaptive.strategies import (
    STRATEGIES,
    ReactiveStrategyEngine,
    ReactiveTables,
    build_reactive_tables,
    stream_type_ids,
)
from repro.core.algorithm1 import algorithm1
from repro.core.evaluation import path_cost
from repro.core.problem import ProblemInstance
from repro.core.rnr import ShortestPathCache, route_to_nearest_replica
from repro.core.solution import Placement
from repro.exceptions import InvalidProblemError

#: All policies the driver knows, in reporting order.
ALL_POLICIES = (
    "lce",
    "lcd",
    "probcache",
    "cl4m",
    "hashrouting",
    "static_alg1",
    "adaptive_gradient",
    "periodic_alg1_gpr",
)


def placement_type_costs(
    reactive: ReactiveTables,
    placement: Placement,
    *,
    sp: ShortestPathCache | None = None,
) -> np.ndarray:
    """Per-type RNR serving cost under ``placement`` (tables' type order)."""
    problem = reactive.problem
    sp = sp or ShortestPathCache(problem)
    routing = route_to_nearest_replica(problem, placement, sp_cache=sp)
    costs = np.zeros(reactive.num_types)
    network = problem.network
    for t, request in enumerate(reactive.tables.types):
        costs[t] = sum(
            pf.amount * path_cost(network, pf.path)
            for pf in routing.paths.get(request, [])
        )
    return costs


@dataclass
class PolicyTrace:
    """One policy's cost series over the shared stream."""

    name: str
    #: Total cost per chunk (sum of per-request serving costs).
    chunk_costs: np.ndarray
    #: Post-warmup average cost per request scaled to the total demand
    #: rate — comparable with ``routing_cost`` / ``ReactiveResult.cost_rate``.
    cost_rate: float
    #: Post-warmup requests served before reaching the origin (reactive
    #: strategies only; NaN for placement-based policies).
    edge_hit_ratio: float = float("nan")
    #: Number of placement updates taken (adaptive policies).
    updates: int = 0

    def cumulative(self) -> np.ndarray:
        return np.cumsum(self.chunk_costs)


@dataclass
class OnlineAdaptiveReport:
    """All policies' traces over one seeded stream."""

    n_requests: int
    chunk_size: int
    seed: int
    total_rate: float
    chunk_requests: np.ndarray
    traces: dict[str, PolicyTrace] = field(default_factory=dict)
    #: LP bound data of the static Algorithm-1 run (when it participated).
    static_lp_objective: float = float("nan")
    static_constant: float = float("nan")

    def regret(self, name: str, *, base: str = "static_alg1") -> np.ndarray:
        """Cumulative cost of ``name`` minus cumulative cost of ``base``."""
        return self.traces[name].cumulative() - self.traces[base].cumulative()


def run_online_adaptive(
    problem: ProblemInstance,
    *,
    n_requests: int = 100_000,
    chunk_size: int = 8192,
    warmup_fraction: float = 0.25,
    seed: int = 0,
    policies: tuple[str, ...] = ALL_POLICIES,
    eviction_policy: str = "lru",
    gradient_config: GradientConfig | None = None,
    planner_config: PlannerConfig | None = None,
    replan_every: int = 8,
    reactive: ReactiveTables | None = None,
) -> OnlineAdaptiveReport:
    """Replay one seeded stream through every requested policy.

    ``replan_every`` is the periodic planner's epoch length in chunks; the
    gradient policy updates every chunk and re-rounds per its own config.
    """
    unknown = set(policies) - set(ALL_POLICIES)
    if unknown:
        raise InvalidProblemError(f"unknown policies: {sorted(unknown)}")
    if chunk_size <= 0 or n_requests <= 0:
        raise InvalidProblemError("n_requests and chunk_size must be positive")
    if replan_every <= 0:
        raise InvalidProblemError("replan_every must be positive")

    rt = reactive or build_reactive_tables(problem)
    rng = np.random.default_rng(seed)
    type_ids = stream_type_ids(rt.tables, n_requests, rng)
    n = len(type_ids)
    warmup = int(n * warmup_fraction)
    total_rate = rt.tables.total_rate
    starts = list(range(0, n, chunk_size))
    chunk_requests = np.array(
        [min(chunk_size, n - s) for s in starts], dtype=np.int64
    )
    sp = ShortestPathCache(problem)

    report = OnlineAdaptiveReport(
        n_requests=n,
        chunk_size=chunk_size,
        seed=seed,
        total_rate=total_rate,
        chunk_requests=chunk_requests,
    )

    # -- reactive strategies -------------------------------------------
    for strategy in (p for p in policies if p in STRATEGIES):
        engine = ReactiveStrategyEngine(
            rt, strategy=strategy, policy=eviction_policy, seed=seed + 1
        )
        chunk_costs = np.zeros(len(starts))
        measured_cost = measured = hits = 0
        for k, s in enumerate(starts):
            chunk = type_ids[s : s + chunk_size]
            metrics = engine.step(chunk)
            chunk_costs[k] = float(metrics.costs.sum())
            cut = max(0, warmup - s)
            if cut < len(chunk):
                measured += len(chunk) - cut
                measured_cost += float(metrics.costs[cut:].sum())
                hits += int(metrics.edge_hits[cut:].sum())
        report.traces[strategy] = PolicyTrace(
            name=strategy,
            chunk_costs=chunk_costs,
            cost_rate=measured_cost / measured * total_rate if measured else 0.0,
            edge_hit_ratio=hits / measured if measured else float("nan"),
        )

    # -- placement-based policies --------------------------------------
    def score_placement_series(cost_fn, observe_fn=None) -> tuple[np.ndarray, float, int]:
        """Walk the stream scoring each chunk with ``cost_fn()`` (the
        per-type cost vector in force at chunk start), then letting
        ``observe_fn(counts, elapsed, chunk_index)`` update state."""
        chunk_costs = np.zeros(len(starts))
        measured_cost = 0.0
        measured = 0
        updates = 0
        for k, s in enumerate(starts):
            chunk = type_ids[s : s + chunk_size]
            type_costs = cost_fn()
            req_costs = type_costs[chunk]
            chunk_costs[k] = float(req_costs.sum())
            cut = max(0, warmup - s)
            if cut < len(chunk):
                measured += len(chunk) - cut
                measured_cost += float(req_costs[cut:].sum())
            if observe_fn is not None:
                counts = np.bincount(chunk, minlength=rt.num_types)
                elapsed = len(chunk) / total_rate
                updates += int(bool(observe_fn(counts, elapsed, k)))
        rate = measured_cost / measured * total_rate if measured else 0.0
        return chunk_costs, rate, updates

    static_costs: np.ndarray | None = None
    if "static_alg1" in policies or "periodic_alg1_gpr" in policies:
        static_result = algorithm1(problem)
        static_costs = placement_type_costs(
            rt, static_result.solution.placement, sp=sp
        )
        report.static_lp_objective = static_result.lp_objective
        report.static_constant = static_result.constant

    if "static_alg1" in policies:
        chunk_costs, rate, _ = score_placement_series(lambda: static_costs)
        report.traces["static_alg1"] = PolicyTrace(
            name="static_alg1", chunk_costs=chunk_costs, cost_rate=rate
        )

    if "adaptive_gradient" in policies:
        grad = AdaptiveGradientPlacement(rt, gradient_config)
        cache = {"placement": None, "costs": None}

        def grad_costs() -> np.ndarray:
            placement = grad.placement()
            if placement is not cache["placement"]:
                cache["placement"] = placement
                cache["costs"] = placement_type_costs(rt, placement, sp=sp)
            return cache["costs"]

        def grad_observe(counts, elapsed, _k) -> bool:
            grad.observe(counts, elapsed)
            return True

        chunk_costs, rate, updates = score_placement_series(
            grad_costs, grad_observe
        )
        report.traces["adaptive_gradient"] = PolicyTrace(
            name="adaptive_gradient",
            chunk_costs=chunk_costs,
            cost_rate=rate,
            updates=updates,
        )

    if "periodic_alg1_gpr" in policies:
        planner = PredictivePlanner(rt, planner_config)
        cache = {"costs": static_costs}

        def planner_costs() -> np.ndarray:
            return cache["costs"]

        def planner_observe(counts, elapsed, k) -> bool:
            planner.observe(counts, elapsed)
            if (k + 1) % replan_every == 0:
                result = planner.replan()
                cache["costs"] = placement_type_costs(
                    rt, result.solution.placement, sp=sp
                )
                return True
            return False

        chunk_costs, rate, updates = score_placement_series(
            planner_costs, planner_observe
        )
        report.traces["periodic_alg1_gpr"] = PolicyTrace(
            name="periodic_alg1_gpr",
            chunk_costs=chunk_costs,
            cost_rate=rate,
            updates=updates,
        )

    return report
