"""Online adaptive serving on the streaming engine (ROADMAP item 2).

Three layers:

- :mod:`repro.adaptive.state` / :mod:`repro.adaptive.strategies` — the
  classic reactive strategies (LCE, LCD, ProbCache, CacheLessForMore, hash
  routing) as chunked vectorized replays over the serving tables, with
  array-backed LRU/LFU cache state;
- :mod:`repro.adaptive.gradient` — the Ioannidis–Yeh adaptive projected
  (sub)gradient placement with capacity-simplex projection and periodic
  rounding;
- :mod:`repro.adaptive.periodic` / :mod:`repro.adaptive.online` — the
  closed prediction loop (rolling GPR refits patching a frozen LP (7)
  template) and the single-stream online comparison driver.
"""

from repro.adaptive.gradient import (
    AdaptiveGradientPlacement,
    GradientConfig,
    project_box_capacity,
)
from repro.adaptive.online import (
    ALL_POLICIES,
    OnlineAdaptiveReport,
    PolicyTrace,
    placement_type_costs,
    run_online_adaptive,
)
from repro.adaptive.periodic import (
    Algorithm1Template,
    PlannerConfig,
    PredictivePlanner,
)
from repro.adaptive.state import CacheArrayState
from repro.adaptive.strategies import (
    STRATEGIES,
    EngineReplayResult,
    ReactiveStrategyEngine,
    ReactiveTables,
    build_reactive_tables,
    replay_reactive,
    stream_type_ids,
)

__all__ = [
    "ALL_POLICIES",
    "AdaptiveGradientPlacement",
    "Algorithm1Template",
    "CacheArrayState",
    "EngineReplayResult",
    "GradientConfig",
    "OnlineAdaptiveReport",
    "PlannerConfig",
    "PolicyTrace",
    "PredictivePlanner",
    "ReactiveStrategyEngine",
    "ReactiveTables",
    "STRATEGIES",
    "build_reactive_tables",
    "placement_type_costs",
    "project_box_capacity",
    "replay_reactive",
    "run_online_adaptive",
    "stream_type_ids",
]
