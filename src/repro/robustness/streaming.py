"""Timeline-driven segmented streaming replay (failures under load).

:func:`replay_timeline_streaming` couples two existing engines:

- the **analytic** side runs the ordinary
  :class:`~repro.robustness.controller.TimelineController` replay —
  exact piecewise-constant integration, detection delays, flap backoff,
  re-optimizations — and an observer captures the *installed* network
  state (routing, down nodes/links, wiped cached copies) at every
  boundary where that state changes;
- the **streaming** side splits the request stream at those boundaries
  (plus the breakpoints of an optional non-stationary
  :class:`~repro.workload.nonstationary.WorkloadRegime`) and replays
  each segment through the vectorized serving engine against tables
  degraded *in place* by :func:`~repro.serving.degraded.degrade_tables`
  — no recompilation between failure events of the same installed
  routing.

Request accounting matches :func:`repro.serving.engine.replay` exactly:
Poisson counts per (type, segment), uniform order-statistic timestamps,
one spawned :class:`numpy.random.SeedSequence` stream per shard
(materialized up front, consumed shard-major across segments in time
order), and the same ``serve_batch`` alias-table dispatch.  Because the
degraded tables keep the controller's offered-load semantics (arrival
rates untouched, dead paths carrying zero mass), the expected served /
cost rates of every segment equal the controller's instantaneous rates,
so the time-averaged streamed cost is an unbiased estimator of the
analytic ``cost_integral`` — the statistical-parity gate in the test
suite and ``benchmarks/bench_serving_degraded.py`` pins this.

Reactive strategies (:class:`~repro.adaptive.strategies.
ReactiveStrategyEngine`) can ride the same stream: each segment's
arrivals are fed in time order with the engine's cache state marked down
(:meth:`~repro.adaptive.state.CacheArrayState.set_down`) for the
segment's failed nodes — dead caches are wiped on failure and skipped
while down, and come back empty.
"""

from __future__ import annotations

import bisect
import math
import time as _time
from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import ProblemInstance
from repro.core.solution import Placement, Routing
from repro.exceptions import InvalidProblemError
from repro.robustness.controller import (
    RecoveryPolicy,
    StreamingSummary,
    TimelineController,
    TimelineReport,
)
from repro.robustness.timeline import FailureEvent, FailureTimeline
from repro.serving.degraded import TableDegradation, degrade_tables
from repro.serving.engine import (
    ServingConfig,
    ShardAccumulator,
    _empty_accumulator,
    generate_requests,
    serve_batch,
    shard_seed_sequences,
)
from repro.serving.tables import RoutingTables, compile_tables

__all__ = [
    "StreamSegment",
    "StreamingTimelineReport",
    "replay_timeline_streaming",
]


# ----------------------------------------------------------------------
# Boundary capture
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Snapshot:
    """Installed network state right after one controller boundary."""

    routing: Routing
    down_nodes: frozenset
    down_links: frozenset
    wiped: frozenset


def _wiped_pairs(ctl: TimelineController) -> frozenset:
    """(source, item) pairs the installed routing reads but that hold
    nothing — the exact clause ``TimelineController._rates`` skips."""
    pinned = ctl.problem.pinned
    placement = ctl.placement
    wiped: set = set()
    for (item, _s), pfs in ctl.routing.paths.items():
        for pf in pfs:
            key = (pf.source, item)
            if key in pinned or key in wiped:
                continue
            if placement[key] <= 0:
                wiped.add(key)
    return frozenset(wiped)


def _capture_observer(entries: list, chained):
    """Observer recording a state snapshot at init/event/action phases."""

    def observe(phase, t, ctl, detail):
        if phase in ("init", "event", "action"):
            if phase == "event":
                kind = "fail" if isinstance(detail, FailureEvent) else "repair"
            else:
                kind = phase
            entries.append(
                (
                    float(t),
                    kind,
                    _Snapshot(
                        routing=ctl.routing,
                        down_nodes=frozenset(ctl.down_nodes),
                        down_links=frozenset(ctl.down_links),
                        wiped=_wiped_pairs(ctl),
                    ),
                )
            )
        if chained is not None:
            chained(phase, t, ctl, detail)

    return observe


def _coalesce(entries: list) -> list:
    """Merge same-time snapshots: the last state wins, kinds union up.

    The controller's agenda is time-ordered, so entries arrive sorted;
    a batch of events/actions at one instant collapses into a single
    boundary carrying the state after the whole batch.
    """
    out: list[tuple[float, tuple[str, ...], _Snapshot]] = []
    for t, kind, snap in entries:
        if out and out[-1][0] == t:
            prev = out[-1]
            out[-1] = (t, prev[1] + (kind,), snap)
        else:
            out.append((t, (kind,), snap))
    return out


# ----------------------------------------------------------------------
# Segments
# ----------------------------------------------------------------------


@dataclass
class StreamSegment:
    """One constant-state slice of the segmented replay."""

    index: int
    start: float
    end: float
    #: What opened this segment: ``init`` / ``fail`` / ``repair`` /
    #: ``action`` (re-optimization installed) / ``workload`` (regime
    #: breakpoint with unchanged network state) — possibly several.
    kinds: tuple[str, ...]
    #: Degraded (and regime-scaled) serving tables of this segment.
    tables: RoutingTables
    down_nodes: frozenset = frozenset()
    down_links: frozenset = frozenset()
    #: Analytic rates of this segment's tables (per unit time, unscaled).
    offered_rate: float = 0.0
    served_rate: float = 0.0
    cost_rate: float = 0.0
    #: Merged request-level aggregates (all shards, this segment).
    accumulator: ShardAccumulator | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def generated(self) -> int:
        acc = self.accumulator
        return int(acc.generated.sum()) if acc is not None else 0

    @property
    def served(self) -> int:
        acc = self.accumulator
        return int(acc.served.sum()) if acc is not None else 0

    @property
    def dropped(self) -> int:
        return self.generated - self.served


def _build_segments(
    problem: ProblemInstance,
    entries: list,
    horizon: float,
    workload,
) -> list[StreamSegment]:
    boundaries = _coalesce(entries)
    if not boundaries or boundaries[0][0] != 0.0:
        raise InvalidProblemError(
            "controller produced no t=0 init snapshot"
        )  # pragma: no cover - init always fires
    if workload is not None:
        known = [b[0] for b in boundaries]
        extra = sorted(
            {
                float(t)
                for t in workload.breakpoints(horizon)
                if 0.0 < t < horizon
            }
            - set(known)
        )
        for t in extra:
            # The network state at a pure workload breakpoint is the one
            # installed at the latest controller boundary before it.
            i = bisect.bisect_right(known, t) - 1
            boundaries.append((t, ("workload",), boundaries[i][2]))
        boundaries.sort(key=lambda b: b[0])

    # Compile each installed routing once (against the *healthy* problem:
    # same type order and arrival rates in every segment), keyed by object
    # identity — the snapshots keep the routings alive.
    base_cache: dict[int, RoutingTables] = {}

    def base_tables(routing: Routing) -> RoutingTables:
        tab = base_cache.get(id(routing))
        if tab is None:
            tab = compile_tables(problem, routing, allow_unrouted=True)
            base_cache[id(routing)] = tab
        return tab

    segments: list[StreamSegment] = []
    for i, (t, kinds, snap) in enumerate(boundaries):
        end = boundaries[i + 1][0] if i + 1 < len(boundaries) else horizon
        if end <= t:
            continue  # zero-width boundary batch (coalesced already)
        tabs = degrade_tables(
            base_tables(snap.routing),
            TableDegradation(
                down_nodes=snap.down_nodes,
                down_links=snap.down_links,
                wiped=snap.wiped,
            ),
        )
        if workload is not None:
            tabs = workload.scale(tabs, t)
        segments.append(
            StreamSegment(
                index=len(segments),
                start=t,
                end=end,
                kinds=kinds,
                tables=tabs,
                down_nodes=snap.down_nodes,
                down_links=snap.down_links,
                offered_rate=tabs.total_rate,
                served_rate=tabs.expected_served_rate(),
                cost_rate=tabs.expected_cost_rate(),
            )
        )
    return segments


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------


@dataclass
class StreamingTimelineReport:
    """Analytic replay + the sampled request stream laid over it."""

    analytic: TimelineReport
    segments: list[StreamSegment]
    rate_scale: float
    n_shards: int
    generated: int
    served: int
    delivered_cost: float
    #: Per-type counts in the tables' (= ``problem.requests``) order —
    #: the type space is identical across segments and routings.
    per_type_generated: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    per_type_served: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    #: Expected arrival/served counts and delivered cost of the sampled
    #: stream (at ``rate_scale``), from the segments' analytic rates.
    expected_generated: float = 0.0
    expected_served: float = 0.0
    expected_cost: float = 0.0
    #: Variance of ``delivered_cost`` under the compound-Poisson stream.
    cost_variance: float = 0.0
    elapsed_seconds: float = 0.0
    #: Reactive riders (present when ``reactive`` engines were passed).
    reactive_costs: dict[str, float] = field(default_factory=dict)
    reactive_edge_hits: dict[str, int] = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        return self.generated - self.served

    @property
    def served_fraction(self) -> float:
        if self.generated == 0:
            return float("nan")
        return self.served / self.generated

    @property
    def streamed_cost_integral(self) -> float:
        """Unbiased estimator of ``analytic.cost_integral``."""
        return self.delivered_cost / self.rate_scale

    @property
    def requests_per_sec(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("nan")
        return self.generated / self.elapsed_seconds

    def summary(self) -> StreamingSummary:
        return StreamingSummary(
            segments=len(self.segments),
            generated=self.generated,
            served=self.served,
            dropped=self.dropped,
            rate_scale=self.rate_scale,
            delivered_cost=self.delivered_cost,
            streamed_cost_integral=self.streamed_cost_integral,
            segment_generated=tuple(s.generated for s in self.segments),
            segment_served=tuple(s.served for s in self.segments),
        )

    def format(self, *, title: str = "timeline") -> str:
        return self.analytic.format(title=title)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def replay_timeline_streaming(
    problem: ProblemInstance,
    placement: Placement,
    timeline: FailureTimeline,
    policy: RecoveryPolicy | None = None,
    *,
    config: ServingConfig | None = None,
    rate_scale: float = 1.0,
    workload=None,
    reactive: dict | None = None,
    context=None,
    incremental: bool = True,
    healthy_routing: Routing | None = None,
    observer=None,
) -> StreamingTimelineReport:
    """Replay ``timeline`` analytically *and* at the request level.

    Runs the analytic controller first (capturing installed-state
    snapshots), then streams Poisson arrivals segment by segment through
    degraded tables.  ``config.horizon`` must match the timeline's;
    ``rate_scale`` thins every arrival rate (use
    ``n / (total_demand * horizon)`` to target ``n`` requests).
    ``workload`` is an optional
    :class:`~repro.workload.nonstationary.WorkloadRegime`; ``reactive``
    an optional ``{name: ReactiveStrategyEngine}`` mapping fed the same
    stream with dead-node handling.  The returned report's ``analytic``
    field carries the ordinary :class:`TimelineReport` with its
    ``streaming`` summary attached.
    """
    config = config or ServingConfig(horizon=timeline.horizon)
    if abs(config.horizon - timeline.horizon) > 1e-12 * max(
        1.0, timeline.horizon
    ):
        raise InvalidProblemError(
            f"config.horizon={config.horizon:g} must equal the timeline "
            f"horizon {timeline.horizon:g}"
        )
    if not math.isfinite(rate_scale) or rate_scale <= 0:
        raise InvalidProblemError(
            f"rate_scale must be finite and > 0, got {rate_scale!r}"
        )

    entries: list = []
    controller = TimelineController(
        problem,
        placement,
        timeline,
        policy,
        context=context,
        incremental=incremental,
        healthy_routing=healthy_routing,
        observer=_capture_observer(entries, observer),
    )
    analytic = controller.run()

    segments = _build_segments(problem, entries, timeline.horizon, workload)
    expected_generated = rate_scale * sum(
        s.offered_rate * s.duration for s in segments
    )
    if expected_generated > config.max_requests:
        raise InvalidProblemError(
            f"streaming replay would generate ~{expected_generated:.0f} "
            f"arrivals > max_requests={config.max_requests}; lower "
            "rate_scale or the horizon"
        )

    # Shard-major, segment-minor: each shard owns one spawned stream and
    # walks the segments in time order — run_shard's exact discipline,
    # with the horizon split at the boundaries.
    accs = [_empty_accumulator(s.tables) for s in segments]
    type_chunks: list[list[np.ndarray]] | None = (
        [[] for _ in segments] if reactive else None
    )
    start = _time.perf_counter()
    for seed_seq in shard_seed_sequences(config):
        rng = np.random.default_rng(seed_seq)
        for seg in segments:
            batch = generate_requests(
                seg.tables,
                seg.duration,
                rng,
                rate_scale=rate_scale / config.n_shards,
            )
            accs[seg.index].merge(serve_batch(seg.tables, batch, rng))
            if type_chunks is not None:
                type_chunks[seg.index].append(batch.type_ids)
    elapsed = _time.perf_counter() - start

    num_types = len(problem.requests)
    per_type_generated = np.zeros(num_types, dtype=np.int64)
    per_type_served = np.zeros(num_types, dtype=np.int64)
    delivered_cost = 0.0
    expected_served = 0.0
    expected_cost = 0.0
    cost_variance = 0.0
    for seg, acc in zip(segments, accs):
        seg.accumulator = acc
        per_type_generated += acc.generated
        per_type_served += acc.served
        delivered_cost += acc.delivered_cost
        dt = seg.duration * rate_scale
        expected_served += seg.served_rate * dt
        expected_cost += seg.cost_rate * dt
        lam = seg.tables.rates[seg.tables.path_type] * seg.tables.path_amount
        cost_variance += float(
            (lam * dt) @ (seg.tables.path_cost * seg.tables.path_cost)
        )

    reactive_costs: dict[str, float] = {}
    reactive_edge_hits: dict[str, int] = {}
    if reactive:
        for name, engine in reactive.items():
            node_id = {v: k for k, v in enumerate(engine.rt.nodes)}
            total_cost = 0.0
            total_hits = 0
            for seg in segments:
                engine.state.set_down(
                    [node_id[v] for v in seg.down_nodes if v in node_id]
                )
                chunks = type_chunks[seg.index]
                ids = (
                    np.concatenate(chunks)
                    if chunks
                    else np.zeros(0, dtype=np.int64)
                )
                if len(ids) == 0:
                    continue
                metrics = engine.step(ids)
                total_cost += float(metrics.costs.sum())
                total_hits += int(metrics.edge_hits.sum())
            reactive_costs[name] = total_cost
            reactive_edge_hits[name] = total_hits

    report = StreamingTimelineReport(
        analytic=analytic,
        segments=segments,
        rate_scale=rate_scale,
        n_shards=config.n_shards,
        generated=int(per_type_generated.sum()),
        served=int(per_type_served.sum()),
        delivered_cost=delivered_cost,
        per_type_generated=per_type_generated,
        per_type_served=per_type_served,
        expected_generated=expected_generated,
        expected_served=expected_served,
        expected_cost=expected_cost,
        cost_variance=cost_variance,
        elapsed_seconds=elapsed,
        reactive_costs=reactive_costs,
        reactive_edge_hits=reactive_edge_hits,
    )
    analytic.streaming = report.summary()
    return report
