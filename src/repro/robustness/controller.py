"""Online recovery controller: replay a failure timeline against a placement.

:func:`replay_timeline` runs a discrete-event simulation of a
:class:`~repro.robustness.timeline.FailureTimeline` over one healthy
instance + placement.  Between events the network state is constant, so
availability, unserved demand, and routing cost integrate exactly as
piecewise-constant functions of time — no sampling error.

The controller mirrors how an operator's control loop behaves under churn:

- **detection delay** — it notices an event ``detection_delay`` after it
  happens; until it reacts, the *installed* routing keeps running and any
  path crossing a down element simply delivers nothing (charged as
  unserved time);
- **flap backoff** — on a failure it re-checks with exponential backoff
  (``flap_backoff * 2^k`` for ``max_retries`` checks) before committing to
  a re-route; a transient flap that clears in time never triggers
  re-optimization (counted in ``reroutes_avoided``);
- **hysteresis** — ``min_dwell`` spaces consecutive re-optimizations;
  actions landing inside the dwell window are deferred and coalesced;
- **placement repair** — with ``repair=True`` each re-optimization may
  greedily refill residual cache space
  (:func:`~repro.robustness.recovery.repair_placement`), gated on the
  oldest live outage being at least ``repair_after`` old.

Re-optimization recovers via the *same* code path as the static
survivability layer — ``apply_failure`` → ``degraded_context`` →
``recover`` → ``survivability_record`` — so a timeline holding a single
permanent failure at ``t=0`` reproduces the static record **bit-for-bit**
(the chaos harness asserts this).  The degraded solver state is maintained
incrementally: consecutive failures chain ``degraded_context`` child-on-
child (each step repairs only the distance rows the new faults touched),
while a repair event invalidates the chain and recomposes the full fault
set from the healthy root (itself an incremental derivation).  Passing
``incremental=False`` rebuilds a fresh context per action instead; both
modes produce identical :class:`TimelineReport`'s, which the parity tests
and ``benchmarks/bench_failure_timeline.py`` enforce.
"""

from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.evaluation import routing_cost
from repro.core.problem import Node, ProblemInstance
from repro.core.rnr import route_to_nearest_replica
from repro.core.solution import Placement, Routing
from repro.exceptions import InvalidProblemError
from repro.robustness.degraded import degraded_context, rebuild_context
from repro.robustness.faults import (
    CapacityDegradation,
    DegradedProblem,
    FailureScenario,
    Fault,
    LinkFailure,
    NodeFailure,
    apply_failure,
)
from repro.robustness.recovery import cluster_local_recover, recover
from repro.robustness.report import (
    SurvivabilityRecord,
    _from_json_float,
    _json_float,
    survivability_record,
)
from repro.robustness.timeline import FailureEvent, FailureTimeline, RepairEvent

if TYPE_CHECKING:
    from repro.core.context import SolverContext

Edge = tuple[Node, Node]

#: Observer callback: ``observer(phase, time, controller, detail)`` with
#: phase one of ``"init" | "event" | "action" | "end"``; ``detail`` is the
#: processed :class:`TimelineEvent` / :class:`TimelineAction` (or ``None``).
Observer = Callable[[str, float, "TimelineController", object], None]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Control-loop knobs of the online recovery controller.

    The zero default for every delay makes the controller react instantly —
    the configuration under which a single-failure timeline matches the
    static survivability path exactly.
    """

    #: Time between an event and the controller noticing it.
    detection_delay: float = 0.0
    #: Base backoff before committing a failure to re-route (0 = immediate).
    flap_backoff: float = 0.0
    #: Number of backoff re-checks (``flap_backoff * 2^k``, k < max_retries).
    max_retries: int = 0
    #: Minimum spacing between re-optimizations (hysteresis).
    min_dwell: float = 0.0
    #: Greedily refill residual cache space at re-optimization.
    repair: bool = False
    #: Only repair once the oldest live outage is at least this old.
    repair_after: float = 0.0
    #: Budget forwarded to :func:`repair_placement`.
    max_repairs: int | None = None

    def validate(self) -> None:
        for label, value in (
            ("detection_delay", self.detection_delay),
            ("flap_backoff", self.flap_backoff),
            ("min_dwell", self.min_dwell),
            ("repair_after", self.repair_after),
        ):
            if value < 0:
                raise InvalidProblemError(f"{label} must be >= 0")
        if self.max_retries < 0:
            raise InvalidProblemError("max_retries must be >= 0")


@dataclass(frozen=True)
class TimelineAction:
    """One committed re-optimization during a replay."""

    #: Simulation time the re-route was installed.
    time: float
    #: Time since the earliest event this action responds to.
    latency: float
    #: Static-survivability scoring of the recovered state.
    record: SurvivabilityRecord
    #: Demand rate served immediately after installation.
    served_rate: float


@dataclass(frozen=True)
class StreamingSummary:
    """Request-level aggregates of a segmented streaming replay.

    Attached to :class:`TimelineReport` by
    :func:`~repro.robustness.streaming.replay_timeline_streaming`; the
    analytic integrals stay exact, this carries what the sampled request
    stream actually did on top of them.
    """

    #: Number of replay segments (boundaries = events ∪ actions ∪ workload).
    segments: int
    #: Arrivals generated / served / dropped over the whole horizon.
    generated: int
    served: int
    dropped: int
    #: Demand thinning factor the stream ran under.
    rate_scale: float
    #: Sum of path costs over served requests (at ``rate_scale``).
    delivered_cost: float
    #: ``delivered_cost / rate_scale`` — the estimator of ``cost_integral``.
    streamed_cost_integral: float
    #: Per-segment arrival counts, in segment (time) order.
    segment_generated: tuple[int, ...] = ()
    segment_served: tuple[int, ...] = ()

    @property
    def segment_dropped(self) -> tuple[int, ...]:
        return tuple(
            g - s for g, s in zip(self.segment_generated, self.segment_served)
        )

    @property
    def served_fraction(self) -> float:
        """Served share of generated arrivals; NaN when nothing arrived."""
        if self.generated == 0:
            return float("nan")
        return self.served / self.generated

    def to_json_dict(self) -> dict:
        return {
            "segments": self.segments,
            "generated": self.generated,
            "served": self.served,
            "dropped": self.dropped,
            "rate_scale": _json_float(self.rate_scale),
            "delivered_cost": _json_float(self.delivered_cost),
            "streamed_cost_integral": _json_float(self.streamed_cost_integral),
            "segment_generated": list(self.segment_generated),
            "segment_served": list(self.segment_served),
            "segment_dropped": list(self.segment_dropped),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "StreamingSummary":
        return cls(
            segments=int(data["segments"]),
            generated=int(data["generated"]),
            served=int(data["served"]),
            dropped=int(data["dropped"]),
            rate_scale=_from_json_float(data["rate_scale"]),
            delivered_cost=_from_json_float(data["delivered_cost"]),
            streamed_cost_integral=_from_json_float(
                data["streamed_cost_integral"]
            ),
            segment_generated=tuple(
                int(x) for x in data["segment_generated"]
            ),
            segment_served=tuple(int(x) for x in data["segment_served"]),
        )


@dataclass
class TimelineReport:
    """Time-weighted outcome of replaying one timeline against a placement.

    Integrals are exact (piecewise-constant integration between events).
    ``incremental`` and ``wall_seconds`` are excluded from equality so the
    incremental-vs-rebuild parity tests can compare reports directly.
    """

    name: str
    horizon: float
    healthy_cost: float
    total_demand: float
    #: Time-weighted served-demand fraction over the horizon.
    availability: float
    #: ``∫ unserved_rate dt`` (demand × time units).
    unserved_integral: float
    #: ``∫ cost_rate dt`` of the traffic actually delivered.
    cost_integral: float
    #: ``cost_integral / (healthy_cost * horizon)`` — 1.0 means failures were free.
    cost_inflation_integral: float
    #: Timeline events processed (state-changing or not).
    events: int
    reoptimizations: int
    #: Failure detections that cleared during backoff (flaps absorbed).
    reroutes_avoided: int
    #: Re-optimizations pushed back by the ``min_dwell`` hysteresis.
    deferrals: int
    #: Total placement entries installed by repair across all actions.
    repaired_entries: int
    actions: list[TimelineAction] = field(default_factory=list)
    incremental: bool = field(default=True, compare=False)
    wall_seconds: float = field(default=0.0, compare=False)
    #: Request-level aggregates when a streaming replay produced this report
    #: (excluded from equality: the analytic integrals are seed-independent).
    streaming: StreamingSummary | None = field(default=None, compare=False)

    @property
    def recovery_latencies(self) -> list[float]:
        return [a.latency for a in self.actions]

    @property
    def mean_recovery_latency(self) -> float:
        lat = self.recovery_latencies
        return sum(lat) / len(lat) if lat else 0.0

    @property
    def final_record(self) -> SurvivabilityRecord | None:
        """The last action's record (the static-parity comparison point)."""
        return self.actions[-1].record if self.actions else None

    def to_json_dict(self) -> dict:
        """JSON-serializable summary (bench artifacts, RunRecord extras)."""
        return {
            "name": self.name,
            "horizon": self.horizon,
            "healthy_cost": self.healthy_cost,
            "availability": self.availability,
            "unserved_integral": self.unserved_integral,
            "cost_inflation_integral": self.cost_inflation_integral,
            "events": self.events,
            "reoptimizations": self.reoptimizations,
            "reroutes_avoided": self.reroutes_avoided,
            "deferrals": self.deferrals,
            "repaired_entries": self.repaired_entries,
            "mean_recovery_latency": self.mean_recovery_latency,
            "wall_seconds": self.wall_seconds,
            "streaming": (
                self.streaming.to_json_dict()
                if self.streaming is not None
                else None
            ),
        }

    def format(self, *, title: str = "timeline") -> str:
        from repro.experiments.reporting import format_sweep

        rows = [
            {
                "t": a.time,
                "latency": a.latency,
                "scenario": a.record.scenario,
                "cost": a.record.cost,
                "unserved": a.record.unserved_fraction,
                "repaired": a.record.repaired_entries,
            }
            for a in self.actions
        ]
        table = format_sweep(
            rows,
            ["t", "latency", "scenario", "cost", "unserved", "repaired"],
            title=title,
        )
        summary = (
            f"availability {self.availability:.4%} over horizon {self.horizon:g} | "
            f"{self.events} events, {self.reoptimizations} re-optimizations "
            f"({self.reroutes_avoided} flaps absorbed, {self.deferrals} deferred) | "
            f"cost inflation integral {self.cost_inflation_integral:.4g} | "
            f"mean recovery latency {self.mean_recovery_latency:.4g}"
        )
        if self.streaming is not None:
            s = self.streaming
            summary += (
                f"\nstreamed {s.generated} requests over {s.segments} segments"
                f" ({s.served} served, {s.dropped} dropped,"
                f" rate scale {s.rate_scale:g}) | "
                f"streamed cost integral {s.streamed_cost_integral:.6g}"
                f" vs analytic {self.cost_integral:.6g}"
            )
        return f"{table}\n{summary}"


class TimelineController:
    """Discrete-event replay engine (see module docstring for semantics).

    Instances are single-use: construct and call :meth:`run` once.  The
    public attributes (``placement``, ``routing``, ``down_nodes``,
    ``down_links``, ``active_faults``, ``last_result``) exist for the chaos
    harness's invariant observer.
    """

    def __init__(
        self,
        problem: ProblemInstance,
        placement: Placement,
        timeline: FailureTimeline,
        policy: RecoveryPolicy | None = None,
        *,
        context: "SolverContext | None" = None,
        incremental: bool = True,
        healthy_routing: Routing | None = None,
        observer: Observer | None = None,
        partition=None,
    ) -> None:
        self.problem = problem
        self.timeline = timeline
        self.policy = policy or RecoveryPolicy()
        self.policy.validate()
        self.context = context
        self.incremental = incremental
        self.observer = observer
        #: Optional :class:`~repro.core.decomposed.ClusterPartition` of the
        #: healthy topology.  When set, re-optimizations run
        #: :func:`~repro.robustness.recovery.cluster_local_recover` — only
        #: the clusters the cumulative fault set touches are re-solved and
        #: stitched — instead of :func:`recover`'s greedy repair (the
        #: ``repair``/``max_repairs`` policy knobs are superseded).
        self.partition = partition
        self.horizon = timeline.horizon

        if healthy_routing is None:
            healthy_routing = route_to_nearest_replica(
                problem, placement, context=context
            )
        self.healthy_cost = routing_cost(
            problem, healthy_routing, demand=problem.demand
        )
        self.placement = placement.copy()
        self.routing = healthy_routing
        self.last_result = None  # RecoveryResult of the latest action

        # --- element state ------------------------------------------------
        self.active_faults: dict[Fault, int] = {}
        self.down_links: dict[Edge, int] = {}
        self.down_nodes: dict[Node, int] = {}
        self._active_since: dict[Fault, float] = {}
        self._composed_faults: set[Fault] = set()

        # --- incremental solver state ------------------------------------
        self._cur_problem: ProblemInstance = problem
        self._cur_ctx: "SolverContext | None" = context
        self._have_degraded = False
        self._must_recompose = False
        self._pending_new: list[Fault] = []
        self._cum_failed_nodes: set[Node] = set()
        self._cum_failed_links: set[Edge] = set()
        self._dropped_pending: list[tuple] = []

        # --- control loop -------------------------------------------------
        #: (time, fault) of effective transitions not yet covered by a re-opt.
        self._uncovered: list[tuple[float, Fault]] = []
        self._deferred_scheduled = False
        self._last_reopt = -float("inf")
        self._agenda: list[tuple] = []
        self._seq = 0

        # --- metrics ------------------------------------------------------
        self._now = 0.0
        self._served_integral = 0.0
        self._cost_integral = 0.0
        self._events_processed = 0
        self.reoptimizations = 0
        self.reroutes_avoided = 0
        self.deferrals = 0
        self.repaired_entries = 0
        self.actions: list[TimelineAction] = []
        self._edge_costs: dict[Edge, float] = problem.network.costs()
        self._path_costs: dict[tuple, float] = {}
        self._cur_served, self._cur_cost = self._rates()

    # ------------------------------------------------------------------
    # Instantaneous state
    # ------------------------------------------------------------------

    def path_alive(self, path: tuple) -> bool:
        """True when every node and directed edge of ``path`` is up."""
        if self.down_nodes:
            for v in path:
                if self.down_nodes.get(v):
                    return False
        if self.down_links and len(path) > 1:
            for e in zip(path[:-1], path[1:]):
                if self.down_links.get(e):
                    return False
        return True

    def _path_cost(self, path: tuple) -> float:
        cost = self._path_costs.get(path)
        if cost is None:
            cost = sum(self._edge_costs[e] for e in zip(path[:-1], path[1:]))
            self._path_costs[path] = cost
        return cost

    def _rates(self) -> tuple[float, float]:
        """(served demand rate, delivered-traffic cost rate) right now.

        A path delivers only when it is alive *and* its source still holds
        the item: a node flap wipes the node's cache, so a stale routing
        that survives the flap (absorbed before the controller reacted)
        serves nothing from that source until a re-optimization re-routes.
        Pinned contents are permanent copies and come back with the node.
        """
        served = 0.0
        cost = 0.0
        paths = self.routing.paths
        pinned = self.problem.pinned
        for (item, s), rate in self.problem.demand.items():
            if self.down_nodes.get(s):
                continue
            for pf in paths.get((item, s), ()):
                src = pf.source
                if self.placement[(src, item)] <= 0 and (src, item) not in pinned:
                    continue
                if self.path_alive(pf.path):
                    amount = rate * pf.amount
                    served += amount
                    cost += amount * self._path_cost(pf.path)
        return served, cost

    def served_rate(self) -> float:
        """Demand rate currently delivered by the installed routing."""
        return self._cur_served

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------

    def _push_action(self, when: float, payload: tuple) -> None:
        self._seq += 1
        heapq.heappush(self._agenda, (when, 1, self._seq, payload))

    def _activate_element(self, fault: Fault, t: float) -> None:
        if isinstance(fault, LinkFailure):
            pairs = [(fault.u, fault.v)]
            if fault.both_directions:
                pairs.append((fault.v, fault.u))
            for e in pairs:
                self.down_links[e] = self.down_links.get(e, 0) + 1
        elif isinstance(fault, NodeFailure):
            node = fault.node
            self.down_nodes[node] = self.down_nodes.get(node, 0) + 1
            dead = [(v, i) for (v, i) in self.placement if v == node]
            for key in dead:
                self.placement[key] = 0.0
            self._dropped_pending.extend(dead)
        # CapacityDegradation leaves liveness untouched.

    def _deactivate_element(self, fault: Fault) -> None:
        if isinstance(fault, LinkFailure):
            pairs = [(fault.u, fault.v)]
            if fault.both_directions:
                pairs.append((fault.v, fault.u))
            for e in pairs:
                n = self.down_links.get(e, 0) - 1
                if n <= 0:
                    self.down_links.pop(e, None)
                else:
                    self.down_links[e] = n
        elif isinstance(fault, NodeFailure):
            n = self.down_nodes.get(fault.node, 0) - 1
            if n <= 0:
                self.down_nodes.pop(fault.node, None)
            else:
                self.down_nodes[fault.node] = n

    def _handle_failure(self, event: FailureEvent) -> None:
        fault = event.fault
        n = self.active_faults.get(fault, 0)
        self.active_faults[fault] = n + 1
        if n > 0:
            return  # already down through another process (e.g. SRLG overlap)
        self._activate_element(fault, event.time)
        self._active_since[fault] = event.time
        if fault not in self._composed_faults:
            self._pending_new.append(fault)
        self._uncovered.append((event.time, fault))
        self._push_action(
            event.time + self.policy.detection_delay, ("check", fault, 0)
        )

    def _handle_repair(self, event: RepairEvent) -> None:
        fault = event.fault
        n = self.active_faults.get(fault, 0)
        if n <= 0:
            raise InvalidProblemError(
                f"timeline {self.timeline.name!r} repairs inactive fault "
                f"{fault.describe()} at t={event.time:g}"
            )
        if n > 1:
            self.active_faults[fault] = n - 1
            return  # another process still holds the element down
        del self.active_faults[fault]
        self._deactivate_element(fault)
        self._active_since.pop(fault, None)
        if fault in self._composed_faults:
            # The current solver state includes this fault: the incremental
            # chain is invalid (repairs add elements back) — recompose from
            # the healthy root at the next action.
            self._must_recompose = True
            self._uncovered.append((event.time, fault))
            self._push_action(
                event.time + self.policy.detection_delay, ("repair",)
            )
        else:
            # Absorbed flap: it was never routed around, and its fail/repair
            # pair cancels out — scrub it from the pending ledgers.
            self._pending_new = [f for f in self._pending_new if f != fault]
            self._uncovered = [
                (tt, f) for (tt, f) in self._uncovered if f != fault
            ]

    def _handle_action(self, payload: tuple) -> None:
        kind = payload[0]
        if kind == "check":
            _, fault, retry = payload
            if not self.active_faults.get(fault):
                self.reroutes_avoided += 1
                return
            if retry < self.policy.max_retries and self.policy.flap_backoff > 0:
                self._push_action(
                    self._now + self.policy.flap_backoff * (2**retry),
                    ("check", fault, retry + 1),
                )
                return
            self._request_reopt()
        elif kind in ("repair", "deferred"):
            self._request_reopt()
        else:  # pragma: no cover - internal agenda discipline
            raise InvalidProblemError(f"unknown controller action {kind!r}")

    def _request_reopt(self) -> None:
        if not self._uncovered:
            return  # the installed state already reflects every event
        if self.reoptimizations > 0 and self.policy.min_dwell > 0:
            earliest = self._last_reopt + self.policy.min_dwell
            if self._now < earliest:
                if not self._deferred_scheduled:
                    self._deferred_scheduled = True
                    self.deferrals += 1
                    self._push_action(earliest, ("deferred",))
                return
        self._reoptimize()

    # ------------------------------------------------------------------
    # Re-optimization
    # ------------------------------------------------------------------

    def _ordered_faults(self, faults) -> tuple[Fault, ...]:
        """Capacity scalings, then link, then node removals.

        A safe application order for ``apply_failure``: degrading before
        removing never references a missing link, and node removals absorb
        whatever incident links survive the explicit link faults.
        """
        caps = [f for f in faults if isinstance(f, CapacityDegradation)]
        links = [f for f in faults if isinstance(f, LinkFailure)]
        nodes = [f for f in faults if isinstance(f, NodeFailure)]
        return tuple([*caps, *links, *nodes])

    def _composed_scenario(self, name: str) -> FailureScenario:
        return FailureScenario(name, self._ordered_faults(self.active_faults))

    def _effective_delta(self, fault: Fault) -> Fault | None:
        """``fault`` restricted to what still changes the current problem."""
        graph = self._cur_problem.network.graph
        if isinstance(fault, LinkFailure):
            if graph.has_edge(fault.u, fault.v) or (
                fault.both_directions and graph.has_edge(fault.v, fault.u)
            ):
                return fault
            return None
        if isinstance(fault, NodeFailure):
            return fault if fault.node in graph else None
        if isinstance(fault, CapacityDegradation):
            if fault.links is None:
                return fault
            alive = tuple(e for e in fault.links if graph.has_edge(*e))
            if not alive:
                return None
            return CapacityDegradation(fault.factor, alive)
        return fault  # pragma: no cover - guarded by the Fault union

    def _row_sources(self, problem: ProblemInstance) -> tuple:
        """Distance-matrix rows a recovery on ``problem`` can read.

        ``recover`` (RNR + the repair greedy) takes distances out of cache
        nodes, pinned nodes, and placement holders only — and holders live
        on cache nodes — so a partial ``degraded_context`` repairing just
        these rows is exact for the whole re-optimization.  The set only
        shrinks as elements fail, which keeps chained partial derivations
        valid (see :func:`repro.graph.distance_matrix.repair_distance_matrix`).
        """
        need = set(problem.network.cache_nodes())
        need.update(v for (v, _i) in problem.pinned)
        return tuple(need)

    def _derive_state(
        self, scenario: FailureScenario
    ) -> tuple[DegradedProblem, "SolverContext | None"]:
        """The degraded problem + context the next recovery should run on."""
        use_delta = (
            self.incremental and self._have_degraded and not self._must_recompose
        )
        if use_delta:
            delta_faults = [
                f
                for f in (self._effective_delta(f) for f in self._pending_new)
                if f is not None
            ]
            delta = apply_failure(
                self._cur_problem,
                FailureScenario(scenario.name, self._ordered_faults(delta_faults)),
            )
            ctx = (
                degraded_context(
                    self._cur_ctx, delta, sources=self._row_sources(delta.problem)
                )
                if self._cur_ctx is not None
                else None
            )
            self._cum_failed_nodes |= delta.failed_nodes
            self._cum_failed_links |= delta.failed_links
            lost = {
                r: rate
                for r, rate in self.problem.demand.items()
                if r[1] in self._cum_failed_nodes
            }
            degraded = DegradedProblem(
                scenario=scenario,
                problem=delta.problem,
                failed_nodes=frozenset(self._cum_failed_nodes),
                failed_links=frozenset(self._cum_failed_links),
                lost_demand=lost,
            )
        else:
            degraded = apply_failure(self.problem, scenario)
            if self.context is None:
                ctx = None
            elif self.incremental:
                ctx = degraded_context(
                    self.context, degraded, sources=self._row_sources(degraded.problem)
                )
            else:
                ctx = rebuild_context(degraded)
            self._cum_failed_nodes = set(degraded.failed_nodes)
            self._cum_failed_links = set(degraded.failed_links)
        return degraded, ctx

    def _reoptimize(self) -> TimelineAction:
        now = self._now
        name = (
            self.timeline.name
            if self.reoptimizations == 0 and now == 0.0
            else f"{self.timeline.name}@t={now:g}"
        )
        scenario = self._composed_scenario(name)
        degraded, ctx = self._derive_state(scenario)

        if self.partition is not None:
            result = cluster_local_recover(
                degraded, self.placement, self.partition, context=ctx
            )
        else:
            do_repair = self.policy.repair
            if do_repair and self.policy.repair_after > 0 and self._active_since:
                oldest = min(self._active_since.values())
                do_repair = now - oldest >= self.policy.repair_after
            result = recover(
                degraded,
                self.placement,
                repair=do_repair,
                max_repairs=self.policy.max_repairs,
                context=ctx,
            )
        # Entries lost at event time (the placement is pre-pruned so repairs
        # cannot resurrect dead caches); charge them to this action's record.
        result.dropped = list(self._dropped_pending)
        record = survivability_record(result, healthy_cost=self.healthy_cost)

        self.placement = result.placement
        self.routing = result.routing
        self.last_result = result
        self._cur_problem = degraded.problem
        self._cur_ctx = ctx
        self._have_degraded = True
        self._composed_faults = set(scenario.faults)
        self._pending_new = []
        self._must_recompose = False
        self._dropped_pending = []
        trigger = self._uncovered[0][0]
        self._uncovered = []
        self._deferred_scheduled = False
        self._last_reopt = now
        self.reoptimizations += 1
        self.repaired_entries += len(result.repaired)

        self._cur_served, self._cur_cost = self._rates()
        action = TimelineAction(
            time=now,
            latency=now - trigger,
            record=record,
            served_rate=self._cur_served,
        )
        self.actions.append(action)
        return action

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _advance(self, t: float) -> None:
        t = min(t, self.horizon)
        if t > self._now:
            dt = t - self._now
            self._served_integral += self._cur_served * dt
            self._cost_integral += self._cur_cost * dt
            self._now = t

    def _notify(self, phase: str, detail) -> None:
        if self.observer is not None:
            self.observer(phase, self._now, self, detail)

    def run(self) -> TimelineReport:
        start = _time.perf_counter()
        for event in self.timeline.events:
            if not 0.0 <= event.time < self.horizon:
                raise InvalidProblemError(
                    f"timeline event at t={event.time:g} outside [0, "
                    f"{self.horizon:g})"
                )
            self._seq += 1
            heapq.heappush(self._agenda, (event.time, 0, self._seq, event))
        self._notify("init", None)

        while self._agenda:
            when, prio, _seq, payload = heapq.heappop(self._agenda)
            if when >= self.horizon:
                continue  # a scheduled action past the observation window
            self._advance(when)
            if prio == 0:
                if isinstance(payload, FailureEvent):
                    self._handle_failure(payload)
                else:
                    self._handle_repair(payload)
                self._events_processed += 1
                self._cur_served, self._cur_cost = self._rates()
                self._notify("event", payload)
            else:
                before = len(self.actions)
                self._handle_action(payload)
                if len(self.actions) > before:
                    self._notify("action", self.actions[-1])
        self._advance(self.horizon)
        self._notify("end", None)

        total = self.problem.total_demand
        denom = total * self.horizon
        # Clamp float summation noise: per-segment served rate never exceeds
        # total demand (the chaos conservation invariant), so any overshoot
        # of the integral is epsilon-level arithmetic, not real service.
        availability = min(1.0, self._served_integral / denom) if denom > 0 else 1.0
        unserved = max(0.0, denom - self._served_integral)
        healthy_denom = self.healthy_cost * self.horizon
        if healthy_denom > 0:
            inflation = self._cost_integral / healthy_denom
        else:
            inflation = 1.0 if self._cost_integral <= 0 else float("inf")
        return TimelineReport(
            name=self.timeline.name,
            horizon=self.horizon,
            healthy_cost=self.healthy_cost,
            total_demand=total,
            availability=availability,
            unserved_integral=unserved,
            cost_integral=self._cost_integral,
            cost_inflation_integral=inflation,
            events=self._events_processed,
            reoptimizations=self.reoptimizations,
            reroutes_avoided=self.reroutes_avoided,
            deferrals=self.deferrals,
            repaired_entries=self.repaired_entries,
            actions=list(self.actions),
            incremental=self.incremental,
            wall_seconds=_time.perf_counter() - start,
        )


def replay_timeline(
    problem: ProblemInstance,
    placement: Placement,
    timeline: FailureTimeline,
    policy: RecoveryPolicy | None = None,
    *,
    context: "SolverContext | None" = None,
    incremental: bool = True,
    healthy_routing: Routing | None = None,
    observer: Observer | None = None,
    partition=None,
) -> TimelineReport:
    """Replay ``timeline`` against a healthy placement under ``policy``.

    ``context`` is the *healthy* instance's solver context; when given, each
    action's degraded context is derived incrementally from it (or rebuilt
    from scratch with ``incremental=False`` — same report, more wall-clock).
    The context may run either distance tier: ``degraded_context`` repairs
    dense matrices and lazy row stores alike, so timelines replay unchanged
    on 10k-node topologies under ``backend="lazy"``.  ``observer`` is
    invoked after every processed event and action; the chaos harness uses
    it to assert invariants mid-replay.  ``partition`` (a healthy-topology
    :class:`~repro.core.decomposed.ClusterPartition`) switches
    re-optimizations to cluster-local re-solves — see
    :class:`TimelineController`.
    """
    return TimelineController(
        problem,
        placement,
        timeline,
        policy,
        context=context,
        incremental=incremental,
        healthy_routing=healthy_routing,
        observer=observer,
        partition=partition,
    ).run()
