"""Chaos harness: fuzz randomized failure campaigns, assert hard invariants.

The timeline controller claims a lot — incremental degraded state that is
bit-identical to rebuilds, piecewise-exact availability integration,
policies that never lose track of demand.  This module earns trust in
those claims the operational way: seeded random campaigns (random
topologies × random timelines × random policies) replayed with an
:class:`InvariantChecker` observer that verifies, after *every* event and
action:

1. **routing feasibility** — every installed path runs over currently-up
   nodes/links that exist in the degraded graph;
2. **live replicas only** — every serving source still holds the item
   (placement entry or pinned) on an up node;
3. **demand conservation** — no request is over-served, and for every
   healthy request either its requester is dead (and charged to
   ``lost_demand``) or ``served + stranded = 1``;
4. **monotone state** — a repair event never decreases the served rate,
   and neither does a re-optimization;
5. **static parity** — a timeline holding one permanent failure at
   ``t=0`` reproduces the static ``survivability_record`` bit-for-bit.

:func:`run_streaming_chaos` extends the fuzz to the request level: each
campaign replays its timeline through the segmented streaming engine
(:func:`~repro.robustness.streaming.replay_timeline_streaming`) under a
random non-stationary workload regime with reactive cache strategies
riding the stream, and :func:`check_streaming_invariants` asserts

6. **dead links carry nothing** — zero served volume over any edge that
   is down (or endpoint-down) during its segment, and zero served
   requests for dead requesters;
7. **request conservation** — ``served + dropped == generated`` exactly
   (globally and per type), and generated/served/delivered-cost all land
   within 6 sigma of their segment-exact expectations (compound-Poisson
   variance) — demand is conserved under popularity churn by
   construction, and the harness re-checks the segment rates;
8. **monotone repairs** — the expected served rate never drops across a
   repair/re-optimization boundary (when the workload multipliers are
   unchanged).

Everything is derived from ``numpy.random.SeedSequence`` spawns, so a
failing campaign reproduces from its seed alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.context import SolverContext
from repro.core.problem import ProblemInstance, pin_full_catalog
from repro.core.solution import Placement
from repro.exceptions import InvalidProblemError
from repro.graph.network import CacheNetwork
from repro.graph.topologies import pop_core_edge_hierarchy
from repro.robustness.controller import (
    RecoveryPolicy,
    TimelineController,
    TimelineReport,
    replay_timeline,
)
from repro.robustness.faults import FailureScenario, canonical_links
from repro.robustness.report import survivability_report
from repro.robustness.timeline import (
    FailureTimeline,
    RepairEvent,
    TimelineConfig,
    generate_timeline,
    timeline_from_scenario,
)

_TOL = 1e-6


# ----------------------------------------------------------------------
# Randomized fixtures
# ----------------------------------------------------------------------


def random_problem(
    rng: np.random.Generator,
    *,
    n_nodes: int = 8,
    n_items: int = 4,
    extra_edge_fraction: float = 0.5,
) -> ProblemInstance:
    """A seeded random connected instance with a pinned origin at ``n0``.

    Random spanning tree plus extra chords (always connected), uniform link
    costs, uncapacitated links, random integral cache capacities, and random
    per-(item, node) demand.  Deterministic given the generator state.
    """
    if n_nodes < 3:
        raise InvalidProblemError("random_problem needs at least 3 nodes")
    nodes = [f"n{k}" for k in range(n_nodes)]
    links: set[tuple[str, str]] = set()
    for k in range(1, n_nodes):
        j = int(rng.integers(0, k))
        links.add((nodes[min(j, k)], nodes[max(j, k)]))
    extra = int(extra_edge_fraction * n_nodes)
    for _ in range(10 * extra):
        if len(links) >= n_nodes - 1 + extra:
            break
        a, b = (int(x) for x in rng.integers(0, n_nodes, size=2))
        if a != b:
            links.add((nodes[min(a, b)], nodes[max(a, b)]))

    graph = nx.DiGraph()
    for u, v in sorted(links):
        cost = round(float(rng.uniform(1.0, 10.0)), 3)
        graph.add_edge(u, v, cost=cost, capacity=float("inf"))
        graph.add_edge(v, u, cost=cost, capacity=float("inf"))

    origin = nodes[0]
    caches = {origin: 2.0}
    for v in nodes[1:]:
        if rng.random() < 0.7:
            caches[v] = float(rng.integers(1, 4))
    catalog = tuple(f"i{k}" for k in range(n_items))
    demand: dict = {}
    for item in catalog:
        for v in nodes[1:]:
            if rng.random() < 0.5:
                demand[(item, v)] = round(float(rng.uniform(0.5, 5.0)), 3)
    if not demand:
        demand[(catalog[0], nodes[-1])] = 1.0
    return ProblemInstance(
        network=CacheNetwork(graph, caches),
        catalog=catalog,
        demand=demand,
        pinned=pin_full_catalog(catalog, [origin]),
    )


def random_placement(rng: np.random.Generator, problem: ProblemInstance) -> Placement:
    """Random integral placement filling each cache up to its capacity."""
    placement = Placement()
    items = list(problem.catalog)
    for v in sorted(problem.network.cache_nodes(), key=repr):
        residual = problem.network.cache_capacity(v)
        order = [items[int(j)] for j in rng.permutation(len(items))]
        for item in order:
            if (v, item) in problem.pinned:
                continue
            size = problem.size_of(item)
            if size <= residual + _TOL:
                placement[(v, item)] = 1.0
                residual -= size
    return placement


def hierarchy_problem(
    n_total: int,
    *,
    n_items: int = 12,
    n_caches: int = 80,
    n_requesters: int = 150,
    cache_capacity: float = 4.0,
    seed: int = 0,
) -> ProblemInstance:
    """A seeded cache-placement instance on a ~``n_total``-node hierarchy.

    The large-topology twin of :func:`random_problem`: a
    :func:`~repro.graph.topologies.pop_core_edge_hierarchy` of
    ``(n_total // 100, 9, 10)`` (exactly ``100 * n_core`` nodes), caches on
    a seeded sample of PoPs, demand from a seeded sample of edge leaves,
    and the full catalog pinned at the highest-degree core node.  The same
    shape the scale benches solve — here it feeds failure timelines and
    chaos campaigns at 1k–10k nodes.  Deterministic given ``seed``.
    """
    n_core = max(2, n_total // 100)
    net = pop_core_edge_hierarchy(n_core, 9, 10, seed=seed)
    nodes = list(net.nodes)
    pops = [v for v in nodes if str(v).startswith("p")]
    leaves = [v for v in nodes if str(v).startswith("e")]
    origin = max(
        (v for v in nodes if str(v).startswith("c")),
        key=lambda v: (net.undirected_degree(v), str(v)),
    )
    rng = np.random.default_rng(seed)
    cache_idx = rng.choice(len(pops), size=min(n_caches, len(pops)), replace=False)
    cache_nodes = [pops[int(i)] for i in cache_idx]
    items = [f"it{k}" for k in range(n_items)]
    demand: dict = {}
    requesters = rng.choice(
        len(leaves), size=min(n_requesters, len(leaves)), replace=False
    )
    for s in requesters:
        for it in rng.choice(items, size=2, replace=False):
            demand[(str(it), leaves[int(s)])] = round(float(rng.uniform(0.5, 2.0)), 3)
    capped = CacheNetwork(net.graph, {v: cache_capacity for v in cache_nodes})
    return ProblemInstance(
        network=capped,
        catalog=tuple(items),
        demand=demand,
        pinned=pin_full_catalog(items, [origin]),
    )


def pinned_origin(problem: ProblemInstance):
    """The (single) node holding the pinned catalog, repr-lowest on ties."""
    return min({v for (v, _item) in problem.pinned}, key=repr)


# ----------------------------------------------------------------------
# Invariant checking
# ----------------------------------------------------------------------


class InvariantChecker:
    """Observer asserting the chaos invariants after every event/action.

    Violations accumulate as human-readable strings in ``violations``; pass
    ``strict=True`` to raise :class:`AssertionError` on the first one
    (pinpoints the exact event in a failing seed).
    """

    def __init__(self, *, strict: bool = False, tol: float = _TOL) -> None:
        self.strict = strict
        self.tol = tol
        self.violations: list[str] = []
        self._last_served: float | None = None

    def _violate(self, time: float, message: str) -> None:
        entry = f"t={time:g}: {message}"
        self.violations.append(entry)
        if self.strict:
            raise AssertionError(f"chaos invariant violated at {entry}")

    # -- observer protocol ---------------------------------------------

    def __call__(
        self, phase: str, time: float, ctl: TimelineController, detail
    ) -> None:
        if phase == "end":
            return
        served = ctl.served_rate()
        total = ctl.problem.total_demand
        scale = max(1.0, total)
        if served > total + self.tol * scale:
            self._violate(
                time, f"conservation: served rate {served:g} exceeds demand {total:g}"
            )
        if self._last_served is not None:
            if phase == "event" and isinstance(detail, RepairEvent):
                if served < self._last_served - self.tol * scale:
                    self._violate(
                        time,
                        f"monotone: repair {detail.fault.describe()} dropped served "
                        f"rate {self._last_served:g} -> {served:g}",
                    )
            elif phase == "action" and served < self._last_served - self.tol * scale:
                self._violate(
                    time,
                    f"monotone: re-optimization dropped served rate "
                    f"{self._last_served:g} -> {served:g}",
                )
        if phase == "action":
            self._check_action(time, ctl)
        self._last_served = served

    def _check_action(self, time: float, ctl: TimelineController) -> None:
        result = ctl.last_result
        if result is None:  # pragma: no cover - actions always install one
            self._violate(time, "action without a recovery result")
            return
        problem = result.degraded.problem
        graph = problem.network.graph
        record_scenario = result.degraded.scenario.name

        for (item, s), flows in ctl.routing.paths.items():
            served = 0.0
            for pf in flows:
                served += pf.amount
                for v in pf.path:
                    if ctl.down_nodes.get(v) or v not in graph:
                        self._violate(
                            time,
                            f"feasibility[{record_scenario}]: path for "
                            f"({item!r}, {s!r}) crosses down node {v!r}",
                        )
                for e in zip(pf.path[:-1], pf.path[1:]):
                    if ctl.down_links.get(e) or not graph.has_edge(*e):
                        self._violate(
                            time,
                            f"feasibility[{record_scenario}]: path for "
                            f"({item!r}, {s!r}) crosses down link {e!r}",
                        )
                src = pf.source
                if (
                    ctl.placement[(src, item)] <= 0
                    and (src, item) not in problem.pinned
                ):
                    self._violate(
                        time,
                        f"dead replica[{record_scenario}]: ({item!r}, {s!r}) "
                        f"served from {src!r} which holds no copy",
                    )
            if served > 1.0 + self.tol:
                self._violate(
                    time,
                    f"conservation[{record_scenario}]: ({item!r}, {s!r}) served "
                    f"{served:g} > 1",
                )

        lost = result.degraded.lost_demand
        stranded = result.stranded
        for request in ctl.problem.demand:
            _item, s = request
            if ctl.down_nodes.get(s):
                if request not in lost:
                    self._violate(
                        time,
                        f"lost-accounting[{record_scenario}]: dead requester "
                        f"{s!r} not charged to lost_demand",
                    )
                continue
            frac = ctl.routing.served_fraction(request)
            gap = stranded.get(request, 0.0)
            if abs(frac + gap - 1.0) > 1e-5:
                self._violate(
                    time,
                    f"conservation[{record_scenario}]: request {request!r} has "
                    f"served {frac:g} + stranded {gap:g} != 1",
                )
        record = ctl.actions[-1].record
        if not 0.0 <= record.unserved_fraction <= 1.0:
            self._violate(
                time,
                f"range[{record_scenario}]: unserved_fraction "
                f"{record.unserved_fraction:g} outside [0, 1]",
            )


def check_static_parity(
    problem: ProblemInstance,
    placement: Placement,
    scenario: FailureScenario,
    *,
    repair: bool = False,
    context: SolverContext | None = None,
) -> bool:
    """Assert the static-parity invariant for one scenario.

    Replaying ``scenario`` as a single permanent failure at ``t=0`` (default
    zero-delay policy) must reproduce ``survivability_report``'s record for
    the same scenario bit-for-bit.  Raises :class:`AssertionError` with the
    differing fields otherwise; returns ``True`` on success.
    """
    static = survivability_report(
        problem, placement, [scenario], repair=repair, context=context
    ).records[0]
    report = replay_timeline(
        problem,
        placement.copy(),
        timeline_from_scenario(scenario),
        RecoveryPolicy(repair=repair),
        context=context,
    )
    dynamic = report.final_record
    if dynamic != static:
        raise AssertionError(
            f"static parity broken for {scenario.name!r}:\n"
            f"  timeline: {dynamic}\n  static:   {static}"
        )
    return True


# ----------------------------------------------------------------------
# Campaigns
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosConfig:
    """Fuzzing budget and randomization ranges of a chaos run."""

    campaigns: int = 5
    seed: int = 0
    min_nodes: int = 6
    max_nodes: int = 12
    n_items: int = 4
    horizon: float = 60.0
    #: Regenerate (halving MTBF) until a campaign's timeline has this many events.
    min_events: int = 40
    #: Also assert static parity on the first fault of every campaign.
    static_parity: bool = True


@dataclass
class CampaignResult:
    """Outcome of one randomized campaign."""

    index: int
    nodes: int
    links: int
    events: int
    reoptimizations: int
    availability: float
    with_context: bool
    violations: list[str] = field(default_factory=list)
    static_parity_ok: bool = True

    @property
    def ok(self) -> bool:
        return not self.violations and self.static_parity_ok


@dataclass
class ChaosReport:
    """Aggregate of a chaos run across campaigns."""

    results: list[CampaignResult]

    @property
    def total_events(self) -> int:
        return sum(r.events for r in self.results)

    @property
    def total_violations(self) -> int:
        return sum(len(r.violations) for r in self.results) + sum(
            1 for r in self.results if not r.static_parity_ok
        )

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def summary(self) -> dict:
        return {
            "campaigns": len(self.results),
            "total_events": self.total_events,
            "total_reoptimizations": sum(r.reoptimizations for r in self.results),
            "total_violations": self.total_violations,
            "mean_availability": (
                sum(r.availability for r in self.results) / len(self.results)
                if self.results
                else 1.0
            ),
        }

    def format(self) -> str:
        lines = [
            f"chaos: {len(self.results)} campaigns, {self.total_events} events, "
            f"{self.total_violations} violations"
        ]
        for r in self.results:
            status = "ok" if r.ok else f"VIOLATIONS={len(r.violations)}"
            if not r.static_parity_ok:
                status += " static-parity-FAILED"
            lines.append(
                f"  #{r.index}: |V|={r.nodes} |E|={r.links} events={r.events} "
                f"reopts={r.reoptimizations} avail={r.availability:.4f} "
                f"ctx={'y' if r.with_context else 'n'} {status}"
            )
        return "\n".join(lines)


def _random_policy(rng: np.random.Generator) -> RecoveryPolicy:
    return RecoveryPolicy(
        detection_delay=round(float(rng.uniform(0.0, 1.0)), 3),
        flap_backoff=float(rng.choice([0.0, 0.25, 0.5])),
        max_retries=int(rng.integers(0, 3)),
        min_dwell=float(rng.choice([0.0, 1.0, 3.0])),
        repair=bool(rng.random() < 0.5),
        repair_after=float(rng.choice([0.0, 0.5])),
    )


def _campaign_timeline(
    rng: np.random.Generator,
    problem: ProblemInstance,
    config,
    *,
    timeline_seed: int,
    origin: str = "n0",
) -> tuple[FailureTimeline, TimelineConfig]:
    links = canonical_links(problem)
    exclude = (origin,) if rng.random() < 0.5 else ()
    srlg: tuple = ()
    if len(links) >= 3 and rng.random() < 0.5:
        chosen = rng.choice(len(links), size=int(rng.integers(2, 4)), replace=False)
        srlg = (tuple(links[int(j)] for j in sorted(chosen)),)
    link_mtbf = max(1.0, len(links) * config.horizon / max(1, config.min_events))
    mttr = round(float(rng.uniform(1.0, 5.0)), 3)
    for _ in range(8):
        tcfg = TimelineConfig(
            horizon=config.horizon,
            link_mtbf=link_mtbf,
            link_mttr=mttr,
            node_mtbf=None if rng.random() < 0.4 else 4.0 * link_mtbf,
            node_mttr=2.0 * mttr,
            flap_probability=round(float(rng.uniform(0.0, 0.5)), 3),
            flap_mttr=0.05,
            srlg_groups=srlg,
            srlg_mtbf=2.0 * link_mtbf,
            srlg_mttr=mttr,
            exclude_nodes=exclude,
        )
        timeline = generate_timeline(
            problem, tcfg, seed=timeline_seed, name=f"chaos:{timeline_seed}"
        )
        if len(timeline) >= config.min_events:
            return timeline, tcfg
        link_mtbf /= 2.0
    return timeline, tcfg


def run_chaos(
    config: ChaosConfig = ChaosConfig(), *, raise_on_violation: bool = False
) -> ChaosReport:
    """Run seeded randomized campaigns with full invariant checking.

    With ``raise_on_violation`` the first broken invariant raises
    :class:`AssertionError` naming the campaign and event time; otherwise
    violations are collected per campaign into the returned report.
    """
    results: list[CampaignResult] = []
    children = np.random.SeedSequence(config.seed).spawn(config.campaigns)
    for index, child in enumerate(children):
        rng = np.random.default_rng(child)
        n_nodes = int(rng.integers(config.min_nodes, config.max_nodes + 1))
        problem = random_problem(rng, n_nodes=n_nodes, n_items=config.n_items)
        placement = random_placement(rng, problem)
        timeline_seed = int(rng.integers(0, 2**31 - 1))
        timeline, _tcfg = _campaign_timeline(
            rng, problem, config, timeline_seed=timeline_seed
        )
        policy = _random_policy(rng)
        with_context = bool(rng.random() < 0.7)
        context = SolverContext.from_problem(problem) if with_context else None

        checker = InvariantChecker(strict=raise_on_violation)
        report: TimelineReport = replay_timeline(
            problem,
            placement.copy(),
            timeline,
            policy,
            context=context,
            observer=checker,
        )

        parity_ok = True
        if config.static_parity and timeline.failures:
            first = timeline.failures[0].fault
            scenario = FailureScenario(f"chaos-parity:{index}", (first,))
            try:
                check_static_parity(
                    problem,
                    placement,
                    scenario,
                    repair=policy.repair,
                    context=context,
                )
            except AssertionError:
                parity_ok = False
                if raise_on_violation:
                    raise

        results.append(
            CampaignResult(
                index=index,
                nodes=n_nodes,
                links=len(canonical_links(problem)),
                events=report.events,
                reoptimizations=report.reoptimizations,
                availability=report.availability,
                with_context=with_context,
                violations=list(checker.violations),
                static_parity_ok=parity_ok,
            )
        )
    return ChaosReport(results=results)


# ----------------------------------------------------------------------
# Scale chaos (large hierarchies on the lazy tier)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScaleChaosConfig:
    """Budget of a large-topology chaos run (lazy tier, cluster recovery)."""

    campaigns: int = 3
    seed: int = 0
    #: Approximate hierarchy size; ``hierarchy_problem`` rounds to 100·n_core.
    n_total: int = 1000
    n_items: int = 12
    horizon: float = 40.0
    min_events: int = 30
    #: Re-optimize via cluster-local re-solves instead of global ``recover``.
    cluster_resolve: bool = True
    #: Static parity replays the first fault through a *second* full
    #: timeline + survivability sweep — meaningful but slow at scale, so
    #: off by default here (``run_chaos`` keeps it on for small instances).
    static_parity: bool = False


def run_scale_chaos(
    config: ScaleChaosConfig = ScaleChaosConfig(),
    *,
    raise_on_violation: bool = False,
) -> ChaosReport:
    """Seeded chaos campaigns on 1k–10k-node hierarchies, lazy tier only.

    The scale twin of :func:`run_chaos`: each campaign builds a
    :func:`hierarchy_problem`, forces the solver context onto the lazy row
    tier (``backend="lazy"`` — these sizes must never materialize the dense
    matrix), draws a seeded failure timeline over the hierarchy, and
    replays it under the full :class:`InvariantChecker`.  With
    ``config.cluster_resolve`` the controller re-optimizes through
    cluster-local re-solves (:func:`~repro.robustness.recovery.
    cluster_local_recover`) on a healthy-topology partition; otherwise it
    falls back to the global :func:`~repro.robustness.recovery.recover`
    path.  Returns the same :class:`ChaosReport` shape as :func:`run_chaos`
    so gates (`report.ok`, violation counts) carry over unchanged.
    """
    from repro.core.decomposed import partition_graph

    results: list[CampaignResult] = []
    children = np.random.SeedSequence(config.seed).spawn(config.campaigns)
    for index, child in enumerate(children):
        rng = np.random.default_rng(child)
        problem = hierarchy_problem(
            config.n_total,
            n_items=config.n_items,
            seed=1000 * config.seed + index,
        )
        origin = pinned_origin(problem)
        placement = random_placement(rng, problem)
        timeline_seed = int(rng.integers(0, 2**31 - 1))
        timeline, _tcfg = _campaign_timeline(
            rng, problem, config, timeline_seed=timeline_seed, origin=origin
        )
        # Scale-tuned policy: a dwell floor bounds re-optimizations to
        # ~horizon/dwell per campaign, and structural repair stays off
        # (cluster re-solves already re-place within touched clusters).
        policy = RecoveryPolicy(
            detection_delay=round(float(rng.uniform(0.1, 0.5)), 3),
            min_dwell=config.horizon / 8.0,
            repair=False,
        )
        context = SolverContext.from_problem(problem, backend="lazy")
        partition = (
            partition_graph(problem.network, seed=index)
            if config.cluster_resolve
            else None
        )

        checker = InvariantChecker(strict=raise_on_violation)
        report: TimelineReport = replay_timeline(
            problem,
            placement.copy(),
            timeline,
            policy,
            context=context,
            observer=checker,
            partition=partition,
        )

        parity_ok = True
        if config.static_parity and timeline.failures:
            first = timeline.failures[0].fault
            scenario = FailureScenario(f"scale-parity:{index}", (first,))
            try:
                check_static_parity(
                    problem, placement, scenario, repair=False, context=context
                )
            except AssertionError:
                parity_ok = False
                if raise_on_violation:
                    raise

        results.append(
            CampaignResult(
                index=index,
                nodes=problem.network.num_nodes,
                links=len(canonical_links(problem)),
                events=report.events,
                reoptimizations=report.reoptimizations,
                availability=report.availability,
                with_context=True,
                violations=list(checker.violations),
                static_parity_ok=parity_ok,
            )
        )
    return ChaosReport(results=results)


# ----------------------------------------------------------------------
# Streaming chaos (failures under load)
# ----------------------------------------------------------------------


def check_streaming_invariants(report, *, tol: float = _TOL) -> list[str]:
    """Request-level chaos invariants over a segmented streaming replay.

    ``report`` is a :class:`~repro.robustness.streaming.
    StreamingTimelineReport`.  Returns human-readable violation strings
    (empty = all invariants hold); see the module docstring, items 6-8.
    """
    violations: list[str] = []

    def violate(msg: str) -> None:
        violations.append(msg)

    prev = None
    for seg in report.segments:
        acc, tables = seg.accumulator, seg.tables
        where = f"segment #{seg.index} [{seg.start:g}, {seg.end:g})"
        if acc is None:  # pragma: no cover - driver always attaches one
            violate(f"{where}: no accumulator")
            continue
        if (acc.served > acc.generated).any():
            violate(f"{where}: a type served more requests than it generated")

        node_idx = tables.node_index()
        node_down = np.zeros(len(tables.nodes), dtype=bool)
        for v in seg.down_nodes:
            k = node_idx.get(v)
            if k is not None:
                node_down[k] = True
        edge_dead = node_down[tables.edge_src] | node_down[tables.edge_dst]
        if seg.down_links:
            for k, e in enumerate(tables.edges):
                if e in seg.down_links:
                    edge_dead[k] = True
        bad = edge_dead & (acc.edge_volume > 0)
        if bad.any():
            k = int(np.flatnonzero(bad)[0])
            violate(
                f"{where}: served volume {acc.edge_volume[k]:g} over dead "
                f"link {tables.edges[k]!r}"
            )
        req_down = node_down[tables.type_req]
        if (req_down & (acc.served > 0)).any():
            t = int(np.flatnonzero(req_down & (acc.served > 0))[0])
            violate(
                f"{where}: dead requester type {tables.types[t]!r} was served"
            )

        if (
            prev is not None
            and "fail" not in seg.kinds
            and "workload" not in seg.kinds
        ):
            scale = max(1.0, prev.served_rate)
            if seg.served_rate < prev.served_rate - tol * scale:
                violate(
                    f"{where}: {'/'.join(seg.kinds)} boundary dropped the "
                    f"expected served rate {prev.served_rate:g} -> "
                    f"{seg.served_rate:g}"
                )
        prev = seg

    if report.served + report.dropped != report.generated:
        violate(
            f"global: served {report.served} + dropped {report.dropped} "
            f"!= generated {report.generated}"
        )
    if (report.per_type_served > report.per_type_generated).any():
        violate("global: a type served more requests than it generated")

    for label, observed, expected, variance in (
        ("generated", report.generated, report.expected_generated,
         report.expected_generated),
        ("served", report.served, report.expected_served,
         report.expected_served),
        ("delivered cost", report.delivered_cost, report.expected_cost,
         report.cost_variance),
    ):
        bound = 6.0 * float(np.sqrt(max(variance, 0.0))) + tol
        if abs(observed - expected) > bound:
            violate(
                f"global: {label} {observed:g} is over 6 sigma from its "
                f"expectation {expected:g} (sigma {np.sqrt(max(variance, 0.0)):g})"
            )
    return violations


@dataclass(frozen=True)
class StreamingChaosConfig:
    """Fuzzing budget of a request-level (streaming) chaos run."""

    campaigns: int = 4
    seed: int = 0
    min_nodes: int = 6
    max_nodes: int = 10
    n_items: int = 4
    horizon: float = 30.0
    min_events: int = 20
    #: Expected arrivals per campaign (sets the stream's ``rate_scale``).
    requests: int = 20_000
    #: Reactive strategies riding each campaign's stream.
    strategies: tuple[str, ...] = ("lce", "probcache")


@dataclass
class StreamingCampaignResult:
    """Outcome of one randomized streaming campaign."""

    index: int
    nodes: int
    events: int
    segments: int
    generated: int
    served: int
    regime: str
    strategies: tuple[str, ...]
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class StreamingChaosReport:
    """Aggregate of a streaming chaos run across campaigns."""

    results: list[StreamingCampaignResult]

    @property
    def total_violations(self) -> int:
        return sum(len(r.violations) for r in self.results)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def summary(self) -> dict:
        return {
            "campaigns": len(self.results),
            "total_events": sum(r.events for r in self.results),
            "total_segments": sum(r.segments for r in self.results),
            "total_generated": sum(r.generated for r in self.results),
            "total_served": sum(r.served for r in self.results),
            "total_violations": self.total_violations,
        }

    def format(self) -> str:
        lines = [
            f"streaming chaos: {len(self.results)} campaigns, "
            f"{self.total_violations} violations"
        ]
        for r in self.results:
            status = "ok" if r.ok else f"VIOLATIONS={len(r.violations)}"
            lines.append(
                f"  #{r.index}: |V|={r.nodes} events={r.events} "
                f"segments={r.segments} generated={r.generated} "
                f"served={r.served} regime={r.regime} "
                f"policies={','.join(r.strategies)} {status}"
            )
        return "\n".join(lines)


def _random_regime(rng: np.random.Generator, problem, horizon: float):
    """A random non-stationary workload (name, regime-or-None)."""
    from repro.workload.nonstationary import (
        CompositeRegime,
        DiurnalCycle,
        FlashCrowd,
        PopularityChurn,
    )

    regimes = []
    names = []
    items = list(problem.catalog)
    if rng.random() < 0.8:
        hot = items[int(rng.integers(0, len(items)))]
        start = round(float(rng.uniform(0.0, 0.6 * horizon)), 3)
        duration = round(float(rng.uniform(0.1, 0.3)) * horizon, 3)
        regimes.append(
            FlashCrowd(
                start=start,
                duration=duration,
                hot_items=(hot,),
                multiplier=float(rng.choice([10.0, 100.0])),
            )
        )
        names.append("flash")
    if rng.random() < 0.5:
        regimes.append(
            DiurnalCycle(period=horizon / 2.0, amplitude=0.4, steps=8)
        )
        names.append("diurnal")
    if rng.random() < 0.5:
        regimes.append(
            PopularityChurn(
                interval=horizon / 5.0, seed=int(rng.integers(0, 2**31 - 1))
            )
        )
        names.append("churn")
    if not regimes:
        return "stationary", None
    if len(regimes) == 1:
        return names[0], regimes[0]
    return "+".join(names), CompositeRegime(tuple(regimes))


def run_streaming_chaos(
    config: StreamingChaosConfig = StreamingChaosConfig(),
    *,
    raise_on_violation: bool = False,
) -> StreamingChaosReport:
    """Fuzz timeline x workload regime x reactive policies at the request level.

    Each campaign replays a random timeline through the segmented
    streaming engine under a random non-stationary regime, with
    ``config.strategies`` reactive engines consuming the same stream,
    and asserts :func:`check_streaming_invariants` (plus exact
    offered-rate conservation when the regime is churn-only or absent,
    and that dead reactive caches hold nothing).
    """
    from repro.adaptive.strategies import (
        ReactiveStrategyEngine,
        build_reactive_tables,
    )
    from repro.robustness.streaming import replay_timeline_streaming
    from repro.serving.engine import ServingConfig

    results: list[StreamingCampaignResult] = []
    children = np.random.SeedSequence(config.seed).spawn(config.campaigns)
    for index, child in enumerate(children):
        rng = np.random.default_rng(child)
        n_nodes = int(rng.integers(config.min_nodes, config.max_nodes + 1))
        problem = random_problem(rng, n_nodes=n_nodes, n_items=config.n_items)
        placement = random_placement(rng, problem)
        timeline_seed = int(rng.integers(0, 2**31 - 1))
        timeline, _tcfg = _campaign_timeline(
            rng, problem, config, timeline_seed=timeline_seed
        )
        policy = _random_policy(rng)
        regime_name, regime = _random_regime(rng, problem, config.horizon)

        rt = build_reactive_tables(problem)
        engines = {
            name: ReactiveStrategyEngine(
                rt, strategy=name, seed=int(rng.integers(0, 2**31 - 1))
            )
            for name in config.strategies
        }
        total = problem.total_demand
        rate_scale = config.requests / (total * config.horizon)
        report = replay_timeline_streaming(
            problem,
            placement.copy(),
            timeline,
            policy,
            config=ServingConfig(
                horizon=config.horizon,
                seed=int(rng.integers(0, 2**31 - 1)),
                n_shards=int(rng.integers(1, 4)),
            ),
            rate_scale=rate_scale,
            workload=regime,
            reactive=engines,
        )

        violations = check_streaming_invariants(report)
        if regime_name in ("stationary", "churn"):
            # Churn permutes popularity but conserves the total demand
            # rate exactly — offered load must match in every segment.
            for seg in report.segments:
                if abs(seg.offered_rate - total) > 1e-9 * max(1.0, total):
                    violations.append(
                        f"segment #{seg.index}: churn broke demand "
                        f"conservation: offered {seg.offered_rate!r} != "
                        f"total {total!r}"
                    )
        for name, engine in engines.items():
            state = engine.state
            if state.resident[state.down].any():
                violations.append(
                    f"reactive[{name}]: a dead cache still holds items"
                )
        if violations and raise_on_violation:
            raise AssertionError(
                f"streaming chaos campaign #{index} violated invariants:\n  "
                + "\n  ".join(violations)
            )
        results.append(
            StreamingCampaignResult(
                index=index,
                nodes=n_nodes,
                events=len(timeline),
                segments=len(report.segments),
                generated=report.generated,
                served=report.served,
                regime=regime_name,
                strategies=tuple(config.strategies),
                violations=violations,
            )
        )
    return StreamingChaosReport(results=results)
