"""Failure resilience: fault injection, graceful-degradation recovery, reports.

The subsystem answers "what happens when a link or cache node dies?" for any
placement produced by the paper's algorithms:

>>> from repro.robustness import single_link_failures, survivability_report
>>> report = survivability_report(problem, placement, single_link_failures(problem))
>>> print(report.format())

Static sweeps ignore *when* faults happen; the timeline stack adds the time
axis.  :func:`generate_timeline` draws a seeded discrete-event fault
sequence, :func:`replay_timeline` runs an online recovery controller through
it, and :func:`run_chaos` fuzzes the whole pipeline under invariants:

>>> from repro.robustness import TimelineConfig, generate_timeline, replay_timeline
>>> timeline = generate_timeline(problem, TimelineConfig(horizon=100.0), seed=0)
>>> print(replay_timeline(problem, placement, timeline).format())

See :mod:`repro.robustness.faults` for the failure model,
:mod:`repro.robustness.recovery` for the re-route/repair policies,
:mod:`repro.robustness.timeline` / :mod:`repro.robustness.controller` for
fault dynamics, :mod:`repro.robustness.chaos` for the invariant harness, and
:mod:`repro.robustness.demo` for a self-contained gadget walkthrough.
"""

from repro.robustness.chaos import (
    ChaosConfig,
    ChaosReport,
    InvariantChecker,
    ScaleChaosConfig,
    StreamingChaosConfig,
    StreamingChaosReport,
    check_static_parity,
    check_streaming_invariants,
    hierarchy_problem,
    run_chaos,
    run_scale_chaos,
    run_streaming_chaos,
)
from repro.robustness.controller import (
    RecoveryPolicy,
    StreamingSummary,
    TimelineController,
    TimelineReport,
    replay_timeline,
)
from repro.robustness.degraded import degraded_context, rebuild_context
from repro.robustness.faults import (
    CapacityDegradation,
    DegradedProblem,
    FailureScenario,
    LinkFailure,
    NodeFailure,
    apply_failure,
    canonical_links,
    k_link_failures,
    sample_failures,
    single_link_failures,
    single_node_failures,
)
from repro.robustness.recovery import (
    RecoveryResult,
    cluster_local_recover,
    recover,
    repair_placement,
    surviving_placement,
)
from repro.robustness.report import (
    SurvivabilityRecord,
    SurvivabilityReport,
    survivability_record,
    survivability_report,
)
from repro.robustness.streaming import (
    StreamingTimelineReport,
    StreamSegment,
    replay_timeline_streaming,
)
from repro.robustness.timeline import (
    FailureEvent,
    FailureTimeline,
    RepairEvent,
    TimelineConfig,
    generate_timeline,
    timeline_from_scenario,
)

__all__ = [
    "LinkFailure",
    "NodeFailure",
    "CapacityDegradation",
    "FailureScenario",
    "DegradedProblem",
    "apply_failure",
    "canonical_links",
    "single_link_failures",
    "k_link_failures",
    "single_node_failures",
    "sample_failures",
    "degraded_context",
    "rebuild_context",
    "FailureEvent",
    "RepairEvent",
    "FailureTimeline",
    "TimelineConfig",
    "generate_timeline",
    "timeline_from_scenario",
    "RecoveryPolicy",
    "TimelineController",
    "TimelineReport",
    "replay_timeline",
    "StreamSegment",
    "StreamingSummary",
    "StreamingTimelineReport",
    "replay_timeline_streaming",
    "ChaosConfig",
    "ChaosReport",
    "InvariantChecker",
    "ScaleChaosConfig",
    "StreamingChaosConfig",
    "StreamingChaosReport",
    "check_static_parity",
    "check_streaming_invariants",
    "hierarchy_problem",
    "run_chaos",
    "run_scale_chaos",
    "run_streaming_chaos",
    "RecoveryResult",
    "cluster_local_recover",
    "recover",
    "repair_placement",
    "surviving_placement",
    "SurvivabilityRecord",
    "SurvivabilityReport",
    "survivability_record",
    "survivability_report",
]
