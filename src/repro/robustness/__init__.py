"""Failure resilience: fault injection, graceful-degradation recovery, reports.

The subsystem answers "what happens when a link or cache node dies?" for any
placement produced by the paper's algorithms:

>>> from repro.robustness import single_link_failures, survivability_report
>>> report = survivability_report(problem, placement, single_link_failures(problem))
>>> print(report.format())

See :mod:`repro.robustness.faults` for the failure model,
:mod:`repro.robustness.recovery` for the re-route/repair policies, and
:mod:`repro.robustness.demo` for a self-contained gadget walkthrough.
"""

from repro.robustness.degraded import degraded_context
from repro.robustness.faults import (
    CapacityDegradation,
    DegradedProblem,
    FailureScenario,
    LinkFailure,
    NodeFailure,
    apply_failure,
    k_link_failures,
    sample_failures,
    single_link_failures,
    single_node_failures,
)
from repro.robustness.recovery import (
    RecoveryResult,
    recover,
    repair_placement,
    surviving_placement,
)
from repro.robustness.report import (
    SurvivabilityRecord,
    SurvivabilityReport,
    survivability_record,
    survivability_report,
)

__all__ = [
    "LinkFailure",
    "NodeFailure",
    "CapacityDegradation",
    "FailureScenario",
    "DegradedProblem",
    "apply_failure",
    "single_link_failures",
    "k_link_failures",
    "single_node_failures",
    "sample_failures",
    "degraded_context",
    "RecoveryResult",
    "recover",
    "repair_placement",
    "surviving_placement",
    "SurvivabilityRecord",
    "SurvivabilityReport",
    "survivability_record",
    "survivability_report",
]
