"""Survivability reporting: cost inflation, unserved demand, congestion.

For each failure scenario the report records the recovered routing's cost
(inflated by detours around the failure), the demand fraction no policy can
serve (replica and origin unreachable, or requester dead), and the
congestion the surviving links absorb.  Costs are normalized against the
*healthy* instance so ``cost_inflation = 1.0`` means the failure was free.
"""

from __future__ import annotations

import json
import math
from collections.abc import Sequence
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

from repro.core.evaluation import congestion, routing_cost
from repro.core.problem import ProblemInstance
from repro.core.rnr import route_to_nearest_replica
from repro.core.solution import Placement, Routing
from repro.robustness.degraded import degraded_context
from repro.robustness.faults import FailureScenario, apply_failure
from repro.robustness.recovery import RecoveryResult, recover

if TYPE_CHECKING:
    from repro.core.context import SolverContext

_SERVED_TOL = 1e-6


def _json_float(value):
    """Make one record field strict-JSON safe (non-finite floats → strings)."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # "inf" / "-inf" / "nan"
    return value


def _from_json_float(value):
    if isinstance(value, str) and value in ("inf", "-inf", "nan"):
        return float(value)
    return value


@dataclass(frozen=True)
class SurvivabilityRecord:
    """One failure scenario's survivability metrics."""

    scenario: str
    #: Recovered routing cost over the demand still served.
    cost: float
    #: ``cost / healthy_cost`` (``inf`` when the healthy cost is 0 and the
    #: degraded cost is not).
    cost_inflation: float
    #: Unserved demand over the healthy instance's total demand.
    unserved_fraction: float
    #: Worst link load-to-capacity ratio under the recovered routing.
    congestion: float
    #: Surviving requests left (partially) unserved.
    stranded_requests: int
    #: Placement entries lost with failed nodes.
    dropped_entries: int
    #: Placement entries re-inserted by incremental repair.
    repaired_entries: int

    @property
    def fully_served(self) -> bool:
        return self.unserved_fraction <= _SERVED_TOL


@dataclass
class SurvivabilityReport:
    """Survivability of one placement across a set of failure scenarios."""

    healthy_cost: float
    records: list[SurvivabilityRecord]

    @property
    def worst_cost_inflation(self) -> float:
        return max((r.cost_inflation for r in self.records), default=1.0)

    @property
    def worst_unserved_fraction(self) -> float:
        return max((r.unserved_fraction for r in self.records), default=0.0)

    @property
    def fully_served_scenarios(self) -> int:
        return sum(1 for r in self.records if r.fully_served)

    def rows(self) -> list[dict]:
        """Plain-dict rows for :func:`repro.experiments.format_sweep`."""
        return [
            {
                "scenario": r.scenario,
                "cost": r.cost,
                "inflation": r.cost_inflation,
                "unserved": r.unserved_fraction,
                "congestion": r.congestion,
                "stranded": r.stranded_requests,
                "dropped": r.dropped_entries,
                "repaired": r.repaired_entries,
            }
            for r in self.records
        ]

    def format(self, *, title: str = "survivability") -> str:
        from repro.experiments.reporting import format_sweep

        table = format_sweep(
            self.rows(),
            [
                "scenario",
                "cost",
                "inflation",
                "unserved",
                "congestion",
                "stranded",
                "dropped",
                "repaired",
            ],
            title=title,
        )
        summary = (
            f"healthy cost {self.healthy_cost:,.4g} | "
            f"{self.fully_served_scenarios}/{len(self.records)} scenarios fully "
            f"served | worst inflation {self.worst_cost_inflation:.4g} | "
            f"worst unserved {self.worst_unserved_fraction:.2%}"
        )
        return f"{table}\n{summary}"

    def to_json(self, *, indent: int | None = None) -> str:
        """Strict-JSON serialization (``inf`` encoded as the string "inf").

        Disconnected scenarios can yield an infinite ``cost_inflation``;
        raw ``json.dumps`` would emit the non-standard ``Infinity`` token,
        so non-finite floats are stringified and restored by
        :meth:`from_json`.
        """
        payload = {
            "healthy_cost": _json_float(self.healthy_cost),
            "records": [
                {k: _json_float(v) for k, v in asdict(r).items()}
                for r in self.records
            ],
        }
        return json.dumps(payload, indent=indent, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "SurvivabilityReport":
        """Inverse of :meth:`to_json` — round-trips bit-for-bit."""
        payload = json.loads(text)
        return cls(
            healthy_cost=_from_json_float(payload["healthy_cost"]),
            records=[
                SurvivabilityRecord(
                    **{k: _from_json_float(v) for k, v in r.items()}
                )
                for r in payload["records"]
            ],
        )


def survivability_record(
    result: RecoveryResult, *, healthy_cost: float
) -> SurvivabilityRecord:
    """Score one recovery outcome against the healthy baseline cost."""
    problem = result.degraded.problem
    cost = routing_cost(problem, result.routing, demand=problem.demand)
    if healthy_cost > 0:
        inflation = cost / healthy_cost
    else:
        inflation = 1.0 if cost <= 0 else float("inf")
    return SurvivabilityRecord(
        scenario=result.degraded.scenario.name,
        cost=cost,
        cost_inflation=inflation,
        unserved_fraction=result.unserved_fraction,
        congestion=congestion(problem, result.routing),
        stranded_requests=len(result.stranded),
        dropped_entries=len(result.dropped),
        repaired_entries=len(result.repaired),
    )


def survivability_report(
    problem: ProblemInstance,
    placement: Placement,
    scenarios: Sequence[FailureScenario],
    *,
    repair: bool = False,
    healthy_routing: Routing | None = None,
    context: "SolverContext | None" = None,
) -> SurvivabilityReport:
    """Evaluate a placement's graceful degradation across ``scenarios``.

    ``healthy_routing`` defaults to RNR on the healthy instance, the same
    policy recovery applies after failure — so on uncapacitated instances
    cost inflation is guaranteed ≥ 1 for every fully-served scenario
    (removing links can only lengthen shortest paths).

    ``context`` is the *healthy* instance's :class:`SolverContext`; when
    given, each scenario's recovery runs on a context derived from it via
    :func:`repro.robustness.degraded.degraded_context` (incremental
    distance-matrix repair) instead of a per-scenario shortest-path cache.
    Results are identical either way; only the wall-clock changes.
    """
    if healthy_routing is None:
        healthy_routing = route_to_nearest_replica(
            problem, placement, context=context
        )
    healthy_cost = routing_cost(problem, healthy_routing, demand=problem.demand)
    records = []
    for scenario in scenarios:
        degraded = apply_failure(problem, scenario)
        ctx = degraded_context(context, degraded) if context is not None else None
        records.append(
            survivability_record(
                recover(degraded, placement, repair=repair, context=ctx),
                healthy_cost=healthy_cost,
            )
        )
    return SurvivabilityReport(healthy_cost=healthy_cost, records=records)
