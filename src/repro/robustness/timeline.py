"""Discrete-event failure timelines: stochastic fail/repair processes.

PR-3's survivability layer scores *snapshots*: one scenario, one recovery,
one record.  Real cache networks live through failure processes — links
flap, nodes die and come back, shared conduits cut several links at once.
This module turns a healthy :class:`~repro.core.problem.ProblemInstance`
into a deterministic, seeded **event sequence**:

- every undirected link and every (non-excluded) node runs an independent
  alternating-renewal process: exponential time-to-failure (``mtbf``)
  followed by exponential time-to-repair (``mttr``);
- with probability ``flap_probability`` a failure is a transient *flap*
  whose duration is drawn from the much shorter ``flap_mttr`` instead —
  the events controllers should absorb with backoff rather than re-route;
- shared-risk link groups (``srlg_groups``) add correlated failures: one
  process per group emits simultaneous :class:`FailureEvent`'s for every
  member link (a backhoe cutting a conduit).  Overlap with the per-link
  processes is legal — the replay layer down-counts per element, so a link
  is up only when *all* processes covering it have repaired it.

Determinism: every process draws from its own ``numpy`` generator spawned
from ``SeedSequence(seed)`` in a fixed element order, so the emitted
:class:`FailureTimeline` is a pure function of ``(problem, config, seed)``
regardless of dict ordering or platform.  Events are sorted by
``(time, repairs-before-failures, repr(fault))``.

:func:`timeline_from_scenario` embeds a static :class:`FailureScenario`
as a single permanent failure at ``t=0`` — the bridge the chaos harness
uses to assert that replaying a timeline degenerates *bit-identically* to
the static ``survivability_record`` path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.core.problem import Node, ProblemInstance
from repro.exceptions import InvalidProblemError
from repro.robustness.faults import (
    Fault,
    FailureScenario,
    LinkFailure,
    NodeFailure,
    canonical_links,
)

Edge = tuple[Node, Node]


@dataclass(frozen=True)
class FailureEvent:
    """An element goes down at ``time`` (``transient`` marks a short flap)."""

    time: float
    fault: Fault
    transient: bool = False

    def describe(self) -> str:
        kind = "flap" if self.transient else "fail"
        return f"t={self.time:g} {kind} {self.fault.describe()}"


@dataclass(frozen=True)
class RepairEvent:
    """The element taken down by ``fault`` comes back up at ``time``."""

    time: float
    fault: Fault

    def describe(self) -> str:
        return f"t={self.time:g} repair {self.fault.describe()}"


TimelineEvent = Union[FailureEvent, RepairEvent]


def _event_sort_key(event: TimelineEvent) -> tuple:
    # Repairs sort before failures at identical timestamps so a replay never
    # sees a spurious double-down; repr(fault) breaks the remaining ties.
    return (event.time, 0 if isinstance(event, RepairEvent) else 1, repr(event.fault))


@dataclass(frozen=True)
class TimelineConfig:
    """Knobs of the stochastic fail/repair processes (times in model units).

    ``link_mtbf``/``node_mtbf`` of ``None`` disable that element class
    entirely.  ``srlg_groups`` lists undirected link tuples that fail
    together, each group driven by its own ``srlg_mtbf``/``srlg_mttr``
    process.
    """

    horizon: float = 100.0
    link_mtbf: float | None = 50.0
    link_mttr: float = 5.0
    node_mtbf: float | None = None
    node_mttr: float = 10.0
    flap_probability: float = 0.0
    flap_mttr: float = 0.1
    srlg_groups: tuple[tuple[Edge, ...], ...] = ()
    srlg_mtbf: float = 200.0
    srlg_mttr: float = 5.0
    #: Nodes spared from node failures (pass the origin to keep it alive).
    exclude_nodes: tuple[Node, ...] = ()

    def validate(self) -> None:
        if not self.horizon > 0:
            raise InvalidProblemError("timeline horizon must be > 0")
        for label, value in (
            ("link_mtbf", self.link_mtbf),
            ("node_mtbf", self.node_mtbf),
        ):
            if value is not None and not value > 0:
                raise InvalidProblemError(f"{label} must be > 0 or None")
        for label, value in (
            ("link_mttr", self.link_mttr),
            ("node_mttr", self.node_mttr),
            ("flap_mttr", self.flap_mttr),
            ("srlg_mtbf", self.srlg_mtbf),
            ("srlg_mttr", self.srlg_mttr),
        ):
            if not value > 0:
                raise InvalidProblemError(f"{label} must be > 0")
        if not 0.0 <= self.flap_probability <= 1.0:
            raise InvalidProblemError("flap_probability must be in [0, 1]")


@dataclass(frozen=True)
class FailureTimeline:
    """A deterministic, time-sorted sequence of fail/repair events."""

    name: str
    horizon: float
    events: tuple[TimelineEvent, ...] = field(default=())

    def __len__(self) -> int:
        return len(self.events)

    @property
    def failures(self) -> tuple[FailureEvent, ...]:
        return tuple(e for e in self.events if isinstance(e, FailureEvent))

    @property
    def repairs(self) -> tuple[RepairEvent, ...]:
        return tuple(e for e in self.events if isinstance(e, RepairEvent))

    def fault_universe(self) -> tuple[Fault, ...]:
        """Distinct faults the timeline touches, in first-appearance order."""
        seen: dict[Fault, None] = {}
        for event in self.events:
            seen.setdefault(event.fault, None)
        return tuple(seen)

    def describe(self, limit: int = 10) -> str:
        head = "; ".join(e.describe() for e in self.events[:limit])
        more = f"; ... (+{len(self.events) - limit})" if len(self.events) > limit else ""
        return f"{self.name}[horizon={self.horizon:g}]: {head}{more}"


def _alternating_renewal(
    rng: np.random.Generator,
    faults: tuple[Fault, ...],
    *,
    mtbf: float,
    mttr: float,
    flap_probability: float,
    flap_mttr: float,
    horizon: float,
) -> list[TimelineEvent]:
    """One up/down renewal process emitting events for every fault in ``faults``.

    Single-element processes pass one fault; an SRLG process passes the whole
    group so its members share exact fail/repair timestamps.  A failure whose
    repair would land past the horizon is emitted without a repair (permanent
    within the observation window).
    """
    events: list[TimelineEvent] = []
    t = 0.0
    while True:
        t += float(rng.exponential(mtbf))
        if t >= horizon:
            break
        transient = flap_probability > 0 and float(rng.random()) < flap_probability
        duration = float(rng.exponential(flap_mttr if transient else mttr))
        for fault in faults:
            events.append(FailureEvent(t, fault, transient=transient))
        t_up = t + duration
        if t_up >= horizon:
            break
        for fault in faults:
            events.append(RepairEvent(t_up, fault))
        t = t_up
    return events


def generate_timeline(
    problem: ProblemInstance,
    config: TimelineConfig,
    *,
    seed: int = 0,
    name: str = "timeline",
) -> FailureTimeline:
    """Seeded stochastic failure timeline over ``problem``'s elements.

    Processes are spawned in a fixed order — undirected links (canonical
    order), nodes (repr-sorted, minus ``exclude_nodes``), then SRLG groups —
    each with its own child of ``SeedSequence(seed)``, so the result is
    bit-stable under any iteration-order change elsewhere.
    """
    config.validate()
    processes: list[tuple[tuple[Fault, ...], float, float]] = []
    if config.link_mtbf is not None:
        for u, v in canonical_links(problem):
            processes.append(
                ((LinkFailure(u, v),), config.link_mtbf, config.link_mttr)
            )
    if config.node_mtbf is not None:
        excluded = set(config.exclude_nodes)
        for v in sorted(problem.network.nodes, key=repr):
            if v in excluded:
                continue
            processes.append(((NodeFailure(v),), config.node_mtbf, config.node_mttr))
    for group in config.srlg_groups:
        faults = tuple(LinkFailure(u, v) for u, v in group)
        if not faults:
            raise InvalidProblemError("empty SRLG group")
        for fault in faults:
            if not (
                problem.network.graph.has_edge(fault.u, fault.v)
                or problem.network.graph.has_edge(fault.v, fault.u)
            ):
                raise InvalidProblemError(
                    f"SRLG group references missing link ({fault.u!r}, {fault.v!r})"
                )
        processes.append((faults, config.srlg_mtbf, config.srlg_mttr))

    events: list[TimelineEvent] = []
    children = np.random.SeedSequence(seed).spawn(len(processes)) if processes else []
    for (faults, mtbf, mttr), child in zip(processes, children):
        events.extend(
            _alternating_renewal(
                np.random.default_rng(child),
                faults,
                mtbf=mtbf,
                mttr=mttr,
                flap_probability=config.flap_probability,
                flap_mttr=config.flap_mttr,
                horizon=config.horizon,
            )
        )
    events.sort(key=_event_sort_key)
    return FailureTimeline(name=name, horizon=config.horizon, events=tuple(events))


def timeline_from_scenario(
    scenario: FailureScenario, *, horizon: float = 1.0
) -> FailureTimeline:
    """Embed a static scenario as one permanent failure batch at ``t=0``.

    Replaying the result with the default (zero-delay) policy reproduces the
    static ``survivability_record`` for ``scenario`` bit-for-bit — the
    chaos harness's static-parity invariant.
    """
    if not horizon > 0:
        raise InvalidProblemError("timeline horizon must be > 0")
    return FailureTimeline(
        name=scenario.name,
        horizon=horizon,
        events=tuple(FailureEvent(0.0, fault) for fault in scenario.faults),
    )
