"""Graceful-degradation recovery after a failure scenario.

Given a placement computed on the *healthy* instance and the
:class:`~repro.robustness.faults.DegradedProblem` that survives a failure,
the recovery policy

1. drops placement entries stranded on failed nodes (their cached copies
   are gone),
2. re-routes every surviving request to its nearest surviving replica via
   the existing RNR machinery (``on_unservable="partial"`` — requests with
   no reachable replica stay unserved instead of aborting), and
3. optionally performs **incremental placement repair**: greedily refill
   residual cache space with the items whose re-routed serving cost (or
   strandedness) hurts most, then re-route once more.

The repair greedy is the failure-time analogue of the paper's
``F_RNR``-greedy: the marginal gain of caching item ``i`` at surviving node
``v`` is the demand-weighted serving-cost reduction over ``i``'s requesters,
with unservable requests charged a penalty above every finite distance so
restoring service always dominates shaving cost.

Every entry point accepts an optional ``context`` — a
:class:`~repro.core.context.SolverContext` built *for the degraded
instance* (usually derived from the healthy parent via
:func:`repro.robustness.degraded.degraded_context`).  With a context, holder
distances and repair gains are vectorized reductions over the dense
distance matrix; without one the dict-based shortest-path cache is used, as
before.  Both paths compute the same quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.problem import Item, Node, ProblemInstance, Request
from repro.core.rnr import ShortestPathCache, route_to_nearest_replica
from repro.core.solution import Placement, Routing, Solution
from repro.robustness.faults import DegradedProblem

if TYPE_CHECKING:
    from repro.core.context import SolverContext

_EPS = 1e-9
_SERVED_TOL = 1e-6


@dataclass
class RecoveryResult:
    """Outcome of recovering one failure scenario."""

    degraded: DegradedProblem
    #: Surviving placement, including any repaired (re-inserted) entries.
    placement: Placement
    #: Recovered routing (partial: stranded requests are simply absent/short).
    routing: Routing
    #: Placement entries dropped because their node failed.
    dropped: list[tuple[Node, Item]] = field(default_factory=list)
    #: Placement entries added by incremental repair.
    repaired: list[tuple[Node, Item]] = field(default_factory=list)
    #: Surviving requests left (partially) unserved: request -> unserved fraction.
    stranded: dict[Request, float] = field(default_factory=dict)

    @property
    def solution(self) -> Solution:
        return Solution(self.placement, self.routing)

    @property
    def unserved_fraction(self) -> float:
        """Unserved demand over the *healthy* instance's total demand.

        Counts both surviving-but-unservable requests and demand lost with
        failed requester nodes.
        """
        total = self.degraded.total_original_demand
        if total <= 0:
            return 0.0
        problem = self.degraded.problem
        unserved = sum(
            problem.demand[r] * frac for r, frac in self.stranded.items()
        )
        unserved += sum(self.degraded.lost_demand.values())
        return min(1.0, unserved / total)


def surviving_placement(
    placement: Placement, degraded: DegradedProblem
) -> tuple[Placement, list[tuple[Node, Item]]]:
    """Drop placement entries whose node failed; return (survivor, dropped)."""
    survivor = Placement()
    dropped: list[tuple[Node, Item]] = []
    for (v, i), x in placement.items():
        if v in degraded.failed_nodes:
            dropped.append((v, i))
        else:
            survivor[(v, i)] = x
    return survivor, dropped


def _stranded(problem: ProblemInstance, routing: Routing) -> dict[Request, float]:
    out: dict[Request, float] = {}
    for request in problem.demand:
        gap = 1.0 - routing.served_fraction(request)
        if gap > _SERVED_TOL:
            out[request] = gap
    return out


def recover(
    degraded: DegradedProblem,
    placement: Placement,
    *,
    repair: bool = False,
    max_repairs: int | None = None,
    context: "SolverContext | None" = None,
) -> RecoveryResult:
    """Re-route (and optionally repair) a healthy placement after failures.

    ``context``, when given, must be a solver context *of the degraded
    instance* (see :func:`repro.robustness.degraded.degraded_context`); it
    accelerates both the re-routing and the repair greedy without changing
    their decisions.
    """
    survivor, dropped = surviving_placement(placement, degraded)
    problem = degraded.problem
    routing = route_to_nearest_replica(
        problem, survivor, on_unservable="partial", context=context
    )
    repaired: list[tuple[Node, Item]] = []
    if repair:
        repaired = repair_placement(
            problem, survivor, max_repairs=max_repairs, context=context
        )
        if repaired:
            routing = route_to_nearest_replica(
                problem, survivor, on_unservable="partial", context=context
            )
    return RecoveryResult(
        degraded=degraded,
        placement=survivor,
        routing=routing,
        dropped=dropped,
        repaired=repaired,
        stranded=_stranded(problem, routing),
    )


def repair_placement(
    problem: ProblemInstance,
    placement: Placement,
    *,
    max_repairs: int | None = None,
    context: "SolverContext | None" = None,
) -> list[tuple[Node, Item]]:
    """Greedy incremental repair: refill residual cache space in place.

    Mutates ``placement`` by inserting whole copies (fraction 1.0) into
    surviving caches with enough residual space, ordered by marginal
    serving-cost saving; returns the inserted ``(node, item)`` entries.
    Deterministic: ties break on ``repr`` of the candidate.  With a
    ``context`` the per-requester serving costs and marginal gains are
    vectorized over the dense distance matrix (same values, same choices).
    """
    if context is not None:
        return _repair_placement_ctx(
            problem, placement, context, max_repairs=max_repairs
        )
    sp = ShortestPathCache(problem)
    cache_nodes = sorted(problem.network.cache_nodes(), key=repr)
    residual = {
        v: problem.network.cache_capacity(v) - placement.used_capacity(v, problem)
        for v in cache_nodes
    }

    # Requesters per item with rates, plus each request's current best cost.
    requesters: dict[Item, list[tuple[Node, float]]] = {}
    for (item, s), rate in problem.demand.items():
        requesters.setdefault(item, []).append((s, rate))
    for lst in requesters.values():
        lst.sort(key=lambda pair: repr(pair[0]))

    # Penalty for an unserved request: strictly above every finite distance,
    # so restoring service dominates re-shuffling already-served items.
    pinned_nodes = sorted({v for v, _i in problem.pinned}, key=repr)
    finite = [
        d
        for v in (*cache_nodes, *pinned_nodes)
        for d in (sp.from_node(v)[0].values())
    ]
    penalty = 2.0 * (max(finite) if finite else 1.0) + 1.0

    def holders(item: Item) -> set[Node]:
        full = {
            v for v in placement.holders(item) if placement[(v, item)] >= 1 - _SERVED_TOL
        }
        return full | problem.pinned_holders(item)

    def current_cost(item: Item, s: Node) -> float:
        best = penalty
        for h in holders(item):
            d = sp.distance(h, s)
            if d < best:
                best = d
        return best

    cost: dict[Request, float] = {
        (item, s): current_cost(item, s)
        for item, lst in requesters.items()
        for s, _rate in lst
    }

    def gain(v: Node, item: Item) -> float:
        total = 0.0
        for s, rate in requesters.get(item, []):
            d = sp.distance(v, s)
            saved = cost[(item, s)] - d
            if saved > _EPS:
                total += rate * saved
        return total

    repaired: list[tuple[Node, Item]] = []
    budget = max_repairs if max_repairs is not None else len(cache_nodes) * len(
        problem.catalog
    )
    while len(repaired) < budget:
        best: tuple[float, str, Node, Item] | None = None
        for v in cache_nodes:
            for item in problem.catalog:
                if (v, item) in problem.pinned:
                    continue
                if placement[(v, item)] >= 1 - _SERVED_TOL:
                    continue
                if problem.size_of(item) > residual[v] + _EPS:
                    continue
                g = gain(v, item)
                if g <= _EPS:
                    continue
                key = (-g, repr((v, item)), v, item)
                if best is None or key < best:
                    best = key
        if best is None:
            break
        _, _, v, item = best
        placement[(v, item)] = 1.0
        residual[v] -= problem.size_of(item)
        repaired.append((v, item))
        for s, _rate in requesters.get(item, []):
            d = sp.distance(v, s)
            if d < cost[(item, s)]:
                cost[(item, s)] = d
    return repaired


def _repair_placement_ctx(
    problem: ProblemInstance,
    placement: Placement,
    ctx: "SolverContext",
    *,
    max_repairs: int | None = None,
) -> list[tuple[Node, Item]]:
    """Dense-matrix implementation of :func:`repair_placement`.

    Same move structure and tie-breaking as the dict path; per-requester
    current costs live in one array per item (aligned with the context's
    requester blocks, which follow the same repr-sorted order as the dict
    path), and marginal gains are clipped dot products over matrix rows.
    """
    nidx = ctx.node_index
    cache_nodes = sorted(problem.network.cache_nodes(), key=repr)
    residual = {
        v: problem.network.cache_capacity(v) - placement.used_capacity(v, problem)
        for v in cache_nodes
    }

    # Penalty: strictly above every finite distance out of cache/pinned
    # nodes.  ``finite_max_from`` floors the max at 1.0 exactly like the
    # historical inline reduction did, and runs as a row-oriented backend
    # reduction, so the value is bit-identical on either distance tier.
    pinned_nodes = sorted({v for v, _i in problem.pinned}, key=repr)
    probe = [v for v in (*cache_nodes, *pinned_nodes) if v in nidx]
    penalty = 2.0 * ctx.finite_max_from(probe) + 1.0

    items = sorted({i for (i, _s) in problem.demand}, key=repr)
    cost: dict[Item, np.ndarray] = {}
    for item in items:
        block = ctx.requesters(item)
        best = np.full(block.size, penalty, dtype=np.float64)
        holders = {
            v
            for v in placement.holders(item)
            if placement[(v, item)] >= 1 - _SERVED_TOL
        } | problem.pinned_holders(item)
        for h in holders:
            np.minimum(best, ctx.row_of(h)[block.idx], out=best)
        cost[item] = best

    def gain(v: Node, item: Item) -> float:
        best = cost.get(item)
        if best is None or best.size == 0:
            return 0.0
        block = ctx.requesters(item)
        diff = best - ctx.row_of(v)[block.idx]
        mask = diff > _EPS
        if not mask.any():
            return 0.0
        return float(diff[mask] @ block.rates[mask])

    repaired: list[tuple[Node, Item]] = []
    budget = max_repairs if max_repairs is not None else len(cache_nodes) * len(
        problem.catalog
    )
    while len(repaired) < budget:
        best_key: tuple[float, str, Node, Item] | None = None
        for v in cache_nodes:
            for item in problem.catalog:
                if (v, item) in problem.pinned:
                    continue
                if placement[(v, item)] >= 1 - _SERVED_TOL:
                    continue
                if problem.size_of(item) > residual[v] + _EPS:
                    continue
                g = gain(v, item)
                if g <= _EPS:
                    continue
                key = (-g, repr((v, item)), v, item)
                if best_key is None or key < best_key:
                    best_key = key
        if best_key is None:
            break
        _, _, v, item = best_key
        placement[(v, item)] = 1.0
        residual[v] -= problem.size_of(item)
        repaired.append((v, item))
        best = cost.get(item)
        if best is not None and best.size:
            np.minimum(best, ctx.row_of(v)[ctx.requesters(item).idx], out=best)
    return repaired


def cluster_local_recover(
    degraded: DegradedProblem,
    placement: Placement,
    partition,
    *,
    context: "SolverContext | None" = None,
    parallel: bool = False,
    max_workers: int | None = None,
    polish: bool = True,
) -> RecoveryResult:
    """Recover by re-solving only the clusters a failure touched.

    The scale-tier alternative to :func:`recover`'s greedy repair: given
    the healthy topology's :class:`~repro.core.decomposed.ClusterPartition`,
    the failed nodes/links name a set of *touched* clusters
    (:func:`~repro.core.decomposed.touched_clusters`); those clusters'
    sub-instances are rebuilt on the degraded graph and re-solved with the
    exact Algorithm 1 (:func:`~repro.core.decomposed.resolve_clusters`),
    while every untouched cluster keeps its surviving placement entries
    verbatim.  When a failure is confined to a strict subset of the
    clusters this replaces a global re-optimization with a handful of small
    cluster solves — the re-routing itself is still global RNR over the
    full surviving topology, so feasibility and served demand are evaluated
    exactly, not per cluster.

    ``repaired`` lists the placement entries the cluster re-solve installed
    that the surviving placement did not hold.  A capacity-only scenario
    touches no cluster and reduces to a plain partial re-route.  ``context``
    must be a context *of the degraded instance* (either tier), as for
    :func:`recover`.
    """
    from repro.core.decomposed import resolve_clusters, touched_clusters

    survivor, dropped = surviving_placement(placement, degraded)
    problem = degraded.problem
    touched = touched_clusters(
        partition,
        failed_nodes=degraded.failed_nodes,
        failed_links=degraded.failed_links,
    )
    if touched:
        new_placement, _reports = resolve_clusters(
            problem,
            partition,
            survivor,
            sorted(touched),
            context=context,
            parallel=parallel,
            max_workers=max_workers,
            polish=polish,
        )
        repaired = sorted(
            (key for key in new_placement if key not in survivor),
            key=repr,
        )
    else:
        new_placement, repaired = survivor, []
    routing = route_to_nearest_replica(
        problem, new_placement, on_unservable="partial", context=context
    )
    return RecoveryResult(
        degraded=degraded,
        placement=new_placement,
        routing=routing,
        dropped=dropped,
        repaired=repaired,
        stranded=_stranded(problem, routing),
    )
