"""Derive solver contexts for degraded instances from the healthy parent.

A failure sweep evaluates hundreds of closely related instances: each
scenario removes a handful of links or nodes from one healthy topology.
Rebuilding a :class:`~repro.core.context.SolverContext` per scenario runs a
full all-pairs shortest-path computation every time, although a single link
removal typically perturbs only the rows whose shortest paths crossed it.

:func:`degraded_context` instead *repairs* the parent's distance backend,
dispatching on its tier: a dense parent goes through
:func:`repro.graph.distance_matrix.repair_distance_matrix` (rows that
cannot have used a failed element are copied, the rest recomputed in one
batched Dijkstra sweep over the surviving graph), and a lazy-row parent
goes through :meth:`repro.graph.backends.LazyRowBackend.repair` (memoized
rows the failure cannot have touched are carried over; dirtied rows are
simply dropped and recompute on demand against the degraded CSR).  Either
way the derived context is bit-identical to
``SolverContext.from_problem(degraded.problem)`` on the same tier — parity
is asserted in ``tests/robustness/test_degraded_context.py`` and
``tests/robustness/test_scale_resilience.py`` — so it can be threaded
through recovery and reporting without changing any result, only the
wall-clock (and, on the lazy tier, without ever materializing O(|V|²)
state).

A derived context is valid exactly when the degraded instance was produced
by :func:`repro.robustness.faults.apply_failure` from the parent context's
own problem: the faults must be pure removals or capacity scalings (link
costs unchanged), and the surviving node order must be the parent order
minus the failed nodes (``graph.copy()`` + removals preserves insertion
order, so this holds by construction).  When the node orders cannot be
matched the function falls back to a full rebuild rather than guessing.

**Chaining (failure timelines).**  Because the only requirement is
"``degraded`` was produced by ``apply_failure`` from the parent's problem",
a derived context can itself serve as the parent of the next derivation:
the timeline controller (:mod:`repro.robustness.controller`) composes
``degraded_context`` child-on-child across consecutive failure events, each
step repairing only the rows the new faults touched.  The chain is
*failure-monotone*: repairs add elements back, which ``repair_distance_
matrix`` cannot express, so a repair event recomposes the surviving fault
set from the healthy root context instead (:func:`rebuild_context` is the
from-scratch twin both parity tests compare against).
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.core.context import SolverContext
from repro.exceptions import InvalidNetworkError
from repro.graph.backends import LazyRowBackend
from repro.graph.distance_matrix import build_distance_matrix, repair_distance_matrix
from repro.robustness.faults import DegradedProblem

Node = Hashable

__all__ = ["degraded_context", "rebuild_context"]


def degraded_context(
    parent: SolverContext,
    degraded: DegradedProblem,
    *,
    use_scipy: bool = True,
    sources: "Sequence[Node] | None" = None,
) -> SolverContext:
    """A :class:`SolverContext` for ``degraded.problem``, derived from ``parent``.

    The parent must be the context of the healthy instance the scenario was
    applied to.  Capacity-only scenarios (no removed links or nodes) share
    the parent's distance matrix outright; removals repair it incrementally.
    Falls back to a fresh :func:`build_distance_matrix` when the surviving
    node order cannot be aligned with the parent's (never the case for
    instances produced by :func:`~repro.robustness.faults.apply_failure`).

    ``sources`` opts into a **partial** derivation on the dense tier: only
    the named rows of the distance matrix are guaranteed valid, other
    dirtied rows hold ``NaN`` (see :func:`repro.graph.distance_matrix.
    repair_distance_matrix`).  Failure recovery reads distances out of
    cache, pinned, and placement holder nodes only, so the timeline
    controller names exactly those and skips recomputing the ~90% of rows a
    re-optimization never touches.  The partial context is only safe for
    :func:`~repro.robustness.recovery.recover`-style consumers; hand full
    contexts to anything else.  On the lazy tier the hint is moot — every
    derived context is already partial in the stronger sense that rows only
    exist once consulted — so it is accepted and ignored.
    """
    graph = degraded.problem.network.graph
    if not degraded.failed_links and not degraded.failed_nodes:
        # Capacity degradation only: link costs — and therefore every
        # distance — are untouched, so the parent backend (either tier) is
        # shared outright.  Node labels are compared, never ``parent.dm``,
        # so a no-op degradation stays free on lazy contexts too.
        if parent.nodes == tuple(graph.nodes):
            return SolverContext(degraded.problem, backend=parent.backend)
        return SolverContext.from_problem(degraded.problem, use_scipy=use_scipy)
    removed_edges = [
        (u, v, parent.link_cost(u, v))
        for (u, v) in sorted(degraded.failed_links, key=repr)
        if u in parent.node_index and v in parent.node_index
    ]
    backend = parent.backend
    if isinstance(backend, LazyRowBackend):
        try:
            repaired = backend.repair(
                graph,
                removed_edges=removed_edges,
                removed_nodes=tuple(degraded.failed_nodes),
            )
        except InvalidNetworkError:
            repaired = LazyRowBackend(graph, use_scipy=use_scipy)
        return SolverContext(degraded.problem, backend=repaired)
    try:
        dm = repair_distance_matrix(
            parent.dm,
            graph,
            removed_edges=removed_edges,
            removed_nodes=tuple(degraded.failed_nodes),
            use_scipy=use_scipy,
            sources=sources,
        )
    except InvalidNetworkError:
        dm = build_distance_matrix(graph, use_scipy=use_scipy)
    return SolverContext(degraded.problem, dm=dm)


def rebuild_context(
    degraded: DegradedProblem, *, use_scipy: bool = True
) -> SolverContext:
    """Full-rebuild twin of :func:`degraded_context` (fresh build, no reuse).

    The baseline the incremental path is measured — and parity-tested —
    against: ``degraded_context(parent, degraded)`` must equal
    ``rebuild_context(degraded)`` bit-for-bit in every derived quantity.
    Tier-aware like :meth:`SolverContext.from_problem`: mid-size instances
    rebuild the dense matrix exactly as before, while instances above the
    dense threshold rebuild on the lazy row tier instead of exploding.
    """
    return SolverContext.from_problem(degraded.problem, use_scipy=use_scipy)
