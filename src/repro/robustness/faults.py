"""Fault injection on problem instances (link/node failures, degradation).

The paper evaluates placements on healthy topologies; this module answers
the operational question behind its congestion constraints — *what happens
when part of the network dies?* — by deriving **degraded instances** from a
healthy :class:`~repro.core.problem.ProblemInstance`:

- :class:`LinkFailure` removes a link (by default both directions of the
  undirected ISP link, matching how the Topology Zoo maps are read);
- :class:`NodeFailure` removes a node together with its incident links,
  its cache (placed contents are lost — the recovery policies in
  :mod:`repro.robustness.recovery` drop stranded placement entries), its
  pinned contents, and any demand originating at it;
- :class:`CapacityDegradation` scales link capacities by a factor in
  ``(0, 1]`` (brown-out rather than black-out).

A :class:`FailureScenario` is a named tuple of faults; :func:`apply_failure`
materializes the surviving :class:`DegradedProblem`.  Scenario generators
cover enumerated single/k-failure sets and seeded random samplers, all with
deterministic ordering so survivability sweeps are reproducible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.core.problem import Node, ProblemInstance, Request
from repro.exceptions import InvalidProblemError
from repro.graph.network import CAPACITY, CacheNetwork

Edge = tuple[Node, Node]


@dataclass(frozen=True)
class LinkFailure:
    """Failure of link ``(u, v)`` (and ``(v, u)`` when ``both_directions``)."""

    u: Node
    v: Node
    both_directions: bool = True

    def describe(self) -> str:
        arrow = "--" if self.both_directions else "->"
        return f"link {self.u!r}{arrow}{self.v!r}"


@dataclass(frozen=True)
class NodeFailure:
    """Failure of a node: incident links, cache contents, and demand are lost."""

    node: Node

    def describe(self) -> str:
        return f"node {self.node!r}"


@dataclass(frozen=True)
class CapacityDegradation:
    """Scale the capacity of ``links`` (all links when ``None``) by ``factor``."""

    factor: float
    links: tuple[Edge, ...] | None = None

    def describe(self) -> str:
        scope = "all links" if self.links is None else f"{len(self.links)} links"
        return f"capacity x{self.factor:g} on {scope}"


Fault = Union[LinkFailure, NodeFailure, CapacityDegradation]


@dataclass(frozen=True)
class FailureScenario:
    """A named set of faults applied together (one survivability data point)."""

    name: str
    faults: tuple[Fault, ...]

    def describe(self) -> str:
        return "; ".join(f.describe() for f in self.faults) or "no faults"


@dataclass
class DegradedProblem:
    """A healthy instance after a failure scenario, plus what was lost.

    ``problem`` is a fully valid :class:`ProblemInstance` over the surviving
    network; demand whose requester died is dropped from it and recorded in
    ``lost_demand`` so survivability reports can still charge it as
    unserved.
    """

    scenario: FailureScenario
    problem: ProblemInstance
    failed_nodes: frozenset[Node] = frozenset()
    #: Directed edges removed from the graph (including node-incident ones).
    failed_links: frozenset[Edge] = frozenset()
    #: Requests dropped because their requester node failed.
    lost_demand: dict[Request, float] = field(default_factory=dict)

    @property
    def total_original_demand(self) -> float:
        return self.problem.total_demand + sum(self.lost_demand.values())


def canonical_links(problem: ProblemInstance) -> list[Edge]:
    """Undirected links of the instance, deduplicated and ordered by repr.

    This is the element order every scenario generator and timeline process
    iterates in, so seeded sampling stays deterministic across platforms.
    """
    seen: set[frozenset] = set()
    out: list[Edge] = []
    for u, v in sorted(problem.network.edges, key=repr):
        key = frozenset((u, v))
        if key in seen:
            continue
        seen.add(key)
        out.append((u, v))
    return out


_canonical_links = canonical_links


def apply_failure(
    problem: ProblemInstance, scenario: FailureScenario
) -> DegradedProblem:
    """Materialize the degraded instance that survives ``scenario``.

    Faults are applied in order; a fault referencing a link or node that no
    longer exists (e.g. already removed by an earlier fault in the same
    scenario) raises :class:`~repro.exceptions.InvalidProblemError` so typos
    in hand-written scenarios fail loudly.
    """
    graph = problem.network.graph.copy()
    cache = problem.network.cache_capacities
    failed_nodes: set[Node] = set()
    failed_links: set[Edge] = set()

    for fault in scenario.faults:
        if isinstance(fault, LinkFailure):
            pairs = [(fault.u, fault.v)]
            if fault.both_directions:
                pairs.append((fault.v, fault.u))
            removed = False
            for u, v in pairs:
                if graph.has_edge(u, v):
                    graph.remove_edge(u, v)
                    failed_links.add((u, v))
                    removed = True
            if not removed:
                raise InvalidProblemError(
                    f"failure scenario {scenario.name!r} removes missing "
                    f"link ({fault.u!r}, {fault.v!r})"
                )
        elif isinstance(fault, NodeFailure):
            if fault.node not in graph:
                raise InvalidProblemError(
                    f"failure scenario {scenario.name!r} removes missing "
                    f"node {fault.node!r}"
                )
            failed_links.update(graph.in_edges(fault.node))
            failed_links.update(graph.out_edges(fault.node))
            graph.remove_node(fault.node)
            cache.pop(fault.node, None)
            failed_nodes.add(fault.node)
        elif isinstance(fault, CapacityDegradation):
            if not 0.0 < fault.factor <= 1.0:
                raise InvalidProblemError(
                    f"degradation factor must be in (0, 1], got {fault.factor!r}"
                )
            targets = fault.links if fault.links is not None else list(graph.edges)
            for u, v in targets:
                if not graph.has_edge(u, v):
                    raise InvalidProblemError(
                        f"failure scenario {scenario.name!r} degrades missing "
                        f"link ({u!r}, {v!r})"
                    )
                graph.edges[u, v][CAPACITY] = graph.edges[u, v][CAPACITY] * fault.factor
        else:  # pragma: no cover - guarded by the Fault union
            raise InvalidProblemError(f"unknown fault type {type(fault).__name__}")

    demand: dict[Request, float] = {}
    lost: dict[Request, float] = {}
    for (item, s), rate in problem.demand.items():
        (lost if s in failed_nodes else demand)[(item, s)] = rate
    pinned = frozenset(
        (v, i) for (v, i) in problem.pinned if v not in failed_nodes
    )
    degraded = ProblemInstance(
        network=CacheNetwork(graph, cache),
        catalog=problem.catalog,
        demand=demand,
        item_sizes=None if problem.item_sizes is None else dict(problem.item_sizes),
        pinned=pinned,
    )
    return DegradedProblem(
        scenario=scenario,
        problem=degraded,
        failed_nodes=frozenset(failed_nodes),
        failed_links=frozenset(failed_links),
        lost_demand=lost,
    )


# ----------------------------------------------------------------------
# Scenario generators
# ----------------------------------------------------------------------


def single_link_failures(
    problem: ProblemInstance, *, both_directions: bool = True
) -> list[FailureScenario]:
    """One scenario per undirected link of the instance (deterministic order)."""
    return [
        FailureScenario(
            name=f"link:{u!r}--{v!r}",
            faults=(LinkFailure(u, v, both_directions=both_directions),),
        )
        for u, v in _canonical_links(problem)
    ]


def k_link_failures(
    problem: ProblemInstance, k: int, *, both_directions: bool = True
) -> list[FailureScenario]:
    """Every set of ``k`` simultaneous undirected link failures."""
    if k < 1:
        raise InvalidProblemError("k must be >= 1")
    links = _canonical_links(problem)
    return [
        FailureScenario(
            name="links:" + "+".join(f"{u!r}--{v!r}" for u, v in combo),
            faults=tuple(
                LinkFailure(u, v, both_directions=both_directions) for u, v in combo
            ),
        )
        for combo in itertools.combinations(links, k)
    ]


def single_node_failures(
    problem: ProblemInstance, *, exclude: tuple[Node, ...] = ()
) -> list[FailureScenario]:
    """One scenario per node (pass ``exclude=(origin,)`` to spare the origin)."""
    excluded = set(exclude)
    return [
        FailureScenario(name=f"node:{v!r}", faults=(NodeFailure(v),))
        for v in sorted(problem.network.nodes, key=repr)
        if v not in excluded
    ]


def sample_failures(
    problem: ProblemInstance,
    *,
    n_scenarios: int,
    links_per_scenario: int = 1,
    nodes_per_scenario: int = 0,
    exclude_nodes: tuple[Node, ...] = (),
    seed: int = 0,
    unique: bool = False,
) -> list[FailureScenario]:
    """Seeded random failure scenarios (without-replacement per scenario).

    Every call with the same arguments yields the same scenarios — samplers
    derive everything from ``numpy.random.default_rng(seed)``.

    Sampling is with replacement *across* scenarios: one seed can emit the
    same fault set twice (likely on small topologies).  ``unique=True``
    keeps drawing until ``n_scenarios`` distinct fault sets are collected
    (raising :class:`InvalidProblemError` when the element pool cannot
    supply that many); the default preserves the historical duplicated
    stream bit-for-bit.
    """
    if n_scenarios < 1:
        raise InvalidProblemError("n_scenarios must be >= 1")
    rng = np.random.default_rng(seed)
    links = canonical_links(problem)
    nodes = [
        v for v in sorted(problem.network.nodes, key=repr)
        if v not in set(exclude_nodes)
    ]
    if links_per_scenario > len(links):
        raise InvalidProblemError("links_per_scenario exceeds the link count")
    if nodes_per_scenario > len(nodes):
        raise InvalidProblemError("nodes_per_scenario exceeds the node count")
    scenarios: list[FailureScenario] = []
    seen: set[frozenset] = set()
    max_attempts = 100 * n_scenarios
    attempts = 0
    while len(scenarios) < n_scenarios:
        if attempts >= max_attempts:
            raise InvalidProblemError(
                f"could not sample {n_scenarios} unique scenarios in "
                f"{max_attempts} attempts (element pool too small?)"
            )
        attempts += 1
        faults: list[Fault] = []
        if links_per_scenario:
            chosen = rng.choice(len(links), size=links_per_scenario, replace=False)
            faults.extend(LinkFailure(*links[j]) for j in sorted(chosen))
        if nodes_per_scenario:
            chosen = rng.choice(len(nodes), size=nodes_per_scenario, replace=False)
            faults.extend(NodeFailure(nodes[j]) for j in sorted(chosen))
        if unique:
            key = frozenset(faults)
            if key in seen:
                continue
            seen.add(key)
        scenarios.append(
            FailureScenario(name=f"random:{len(scenarios)}", faults=tuple(faults))
        )
    return scenarios
