"""Failure-injection demo on the paper's 4-node gadget (Fig. 9 topology).

The gadget — origin ``vs`` above caches ``v1``/``v2`` serving client ``s`` —
is small enough to read every survivability row by eye: failing the cheap
``v1 -> s`` link forces item 1 onto the expensive detour, failing cache
node ``v1`` loses its copy outright (repair refills ``v2``'s residual
space), and only cutting *both* paths to ``s`` strands demand.

Run it via ``python -m repro robustness --topology gadget`` or
``examples/failure_injection_demo.py`` (the CI smoke job does both).
"""

from __future__ import annotations

import networkx as nx

from repro.core.problem import ProblemInstance, pin_full_catalog
from repro.core.solution import Placement
from repro.graph.network import CacheNetwork
from repro.robustness.faults import single_link_failures, single_node_failures
from repro.robustness.report import SurvivabilityReport, survivability_report


def gadget_problem(
    lam: float = 10.0, eps: float = 0.01, w: float = 5.0
) -> ProblemInstance:
    """The Fig. 9 gadget: client ``s``, caches ``v1``/``v2``, origin ``vs``."""
    g = nx.DiGraph()
    g.add_edge("vs", "v1", cost=w, capacity=lam)
    g.add_edge("vs", "v2", cost=w, capacity=lam)
    g.add_edge("v1", "s", cost=eps, capacity=lam)
    g.add_edge("v2", "s", cost=w, capacity=lam)
    net = CacheNetwork(g, {"v1": 1, "v2": 1, "vs": 2})
    catalog = ("item1", "item2")
    demand = {("item1", "s"): lam, ("item2", "s"): eps}
    return ProblemInstance(
        net, catalog, demand, pinned=pin_full_catalog(catalog, ["vs"])
    )


def gadget_placement() -> Placement:
    """The gadget's optimal placement: the hot item on the cheap cache."""
    return Placement({("v1", "item1"): 1.0, ("v2", "item2"): 1.0})


def run_gadget_demo(*, repair: bool = True) -> SurvivabilityReport:
    """Survivability of the optimal gadget placement under all single faults."""
    problem = gadget_problem()
    placement = gadget_placement()
    scenarios = single_link_failures(problem) + single_node_failures(
        problem, exclude=("s",)
    )
    return survivability_report(problem, placement, scenarios, repair=repair)


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    print(run_gadget_demo().format(title="gadget survivability (single faults)"))
