"""The FemtoCaching special case (Section 4.1.4).

When a subset ``U`` of nodes are pure requesters and a subset ``H`` pure
caches (helpers), and links are uncapacitated, the network collapses to a
bipartite graph whose logical links carry the least-cost helper->user costs
— the FemtoCaching problem of Shanmugam et al. [32].  Algorithm 1 then
matches [32]'s (1 - 1/e) guarantee while supporting *arbitrary* helper->user
costs, which is exactly the paper's point.

This module provides the reduction both ways:

- :func:`bipartite_network` builds the logical bipartite CacheNetwork from
  explicit helper->user costs (the classic FemtoCaching input);
- :func:`femtocaching_instance` extracts the bipartite abstraction of a
  general uncapacitated instance, so one can verify that solving either
  representation gives the same cost (tested in
  ``tests/core/test_femtocaching.py``).
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence

import networkx as nx

from repro.core.problem import Item, ProblemInstance, pin_full_catalog
from repro.core.rnr import ShortestPathCache
from repro.exceptions import InvalidProblemError
from repro.graph.network import CAPACITY, COST, CacheNetwork

Node = Hashable


def bipartite_network(
    helpers: Sequence[Node],
    users: Sequence[Node],
    costs: Mapping[tuple[Node, Node], float],
    *,
    helper_capacity: float,
) -> CacheNetwork:
    """Build the bipartite helper/user network with logical link costs.

    ``costs[(h, u)]`` is the delivery cost from helper ``h`` to user ``u``;
    missing pairs mean the helper cannot serve that user.  Helpers get the
    given cache capacity, users none.
    """
    if set(helpers) & set(users):
        raise InvalidProblemError("helpers and users must be disjoint")
    graph = nx.DiGraph()
    graph.add_nodes_from(helpers)
    graph.add_nodes_from(users)
    for (h, u), cost in costs.items():
        if h not in set(helpers) or u not in set(users):
            raise InvalidProblemError(f"cost pair {(h, u)!r} not helper->user")
        graph.add_edge(h, u, **{COST: float(cost), CAPACITY: float("inf")})
    network = CacheNetwork(graph, {h: helper_capacity for h in helpers})
    return network


def femtocaching_instance(
    problem: ProblemInstance,
    *,
    origin: Node | None = None,
) -> ProblemInstance:
    """Collapse an uncapacitated instance to its bipartite abstraction.

    Helpers are the cache-capable nodes plus the origin (the pinned holder);
    users are the requesters.  Logical link costs are the least-cost path
    costs of the original network, so RNR costs — and therefore the optimal
    joint solution — are preserved (Section 4.1.4).
    """
    sp = ShortestPathCache(problem)
    helpers = sorted(
        (v for v in problem.network.cache_nodes()), key=repr
    )
    pinned_holders = sorted({v for (v, _i) in problem.pinned}, key=repr)
    users = sorted({s for (_i, s) in problem.demand}, key=repr)

    graph = nx.DiGraph()
    label = {}
    for h in helpers + pinned_holders:
        label[h] = ("helper", h)
        graph.add_node(label[h])
    for u in users:
        label_u = ("user", u)
        graph.add_node(label_u)
        for h in set(helpers) | set(pinned_holders):
            d = sp.distance(h, u)
            if d < float("inf"):
                graph.add_edge(
                    label[h], label_u, **{COST: d, CAPACITY: float("inf")}
                )
    network = CacheNetwork(
        graph,
        {("helper", h): problem.network.cache_capacity(h) for h in helpers},
    )
    demand = {
        (item, ("user", s)): rate for (item, s), rate in problem.demand.items()
    }
    pinned = frozenset(
        (("helper", v), item) for (v, item) in problem.pinned
    )
    return ProblemInstance(
        network=network,
        catalog=problem.catalog,
        demand=demand,
        item_sizes=None if problem.item_sizes is None else dict(problem.item_sizes),
        pinned=pinned,
    )


def femtocaching_problem(
    helpers: Sequence[Node],
    users: Sequence[Node],
    costs: Mapping[tuple[Node, Node], float],
    demand: Mapping[tuple[Item, Node], float],
    catalog: Sequence[Item],
    *,
    helper_capacity: float,
    origin: Node,
) -> ProblemInstance:
    """The classic FemtoCaching input as a ProblemInstance.

    ``origin`` must be one of the helpers; it permanently stores the whole
    catalog (the macro base station of [32]).
    """
    if origin not in set(helpers):
        raise InvalidProblemError("origin must be one of the helpers")
    network = bipartite_network(
        helpers, users, costs, helper_capacity=helper_capacity
    )
    network.set_cache_capacity(origin, 0.0)
    return ProblemInstance(
        network=network,
        catalog=tuple(catalog),
        demand=dict(demand),
        pinned=pin_full_catalog(catalog, [origin]),
    )
