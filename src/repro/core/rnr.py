"""Route-to-nearest-replica (RNR) routing, Section 4.1.

Given a content placement, serve every request from the least-cost node
storing the requested item over a least-cost path.  Under fractional
placement the generalization of the paper applies: retrieve from the
nearest holder up to its stored fraction, then the second nearest, and so
on, until the request is fully covered (the origin's pinned copy guarantees
termination).

RNR is optimal under unlimited link capacities, and is also the routing
policy of the benchmark in [3] once restricted to candidate paths.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import TYPE_CHECKING

from repro.core.problem import ProblemInstance
from repro.core.solution import Placement, Routing
from repro.exceptions import InfeasibleError
from repro.flow.decomposition import PathFlow
from repro.graph.shortest_paths import reconstruct_path, single_source_dijkstra

if TYPE_CHECKING:  # avoid a module cycle; context imports ShortestPathCache
    from repro.core.context import SolverContext

Node = Hashable

_EPS = 1e-9


class ShortestPathCache:
    """Memoized single-source Dijkstra runs over one network graph."""

    def __init__(self, problem: ProblemInstance) -> None:
        self._graph = problem.network.graph
        self._runs: dict[Node, tuple[dict, dict]] = {}

    def from_node(self, source: Node) -> tuple[dict, dict]:
        if source not in self._runs:
            self._runs[source] = single_source_dijkstra(self._graph, source)
        return self._runs[source]

    def distance(self, source: Node, target: Node) -> float:
        dist, _ = self.from_node(source)
        return dist.get(target, float("inf"))

    def path(self, source: Node, target: Node) -> tuple[Node, ...]:
        dist, pred = self.from_node(source)
        if target not in dist:
            raise InfeasibleError(f"{target!r} unreachable from {source!r}")
        return tuple(reconstruct_path(pred, source, target))


def route_to_nearest_replica(
    problem: ProblemInstance,
    placement: Placement,
    *,
    sp_cache: ShortestPathCache | None = None,
    context: "SolverContext | None" = None,
    on_unservable: str = "raise",
) -> Routing:
    """RNR routing for every request under the given placement.

    With a :class:`~repro.core.context.SolverContext`, holder distances come
    from the dense all-pairs matrix (O(1) per lookup, no Dijkstra per
    holder); paths are still reconstructed through the context's lazy
    shortest-path cache.

    ``on_unservable`` controls what happens when a request cannot be fully
    covered by reachable holders (including pinned contents):

    - ``"raise"`` (default): raise :class:`InfeasibleError` — a healthy
      instance with a pinned origin should always be fully servable;
    - ``"partial"``: keep whatever fraction the reachable replicas cover and
      leave the rest unserved (the failure-recovery mode of
      :mod:`repro.robustness`; use
      :func:`repro.core.evaluation.unserved_fraction` to quantify the gap).
    """
    if on_unservable not in ("raise", "partial"):
        raise ValueError("on_unservable must be 'raise' or 'partial'")
    if context is not None:
        dist_fn, sp = context.distance, context.sp
    else:
        sp = sp_cache or ShortestPathCache(problem)
        dist_fn = sp.distance
    routing = Routing()
    for (item, requester), _rate in problem.demand.items():
        fractions: dict[Node, float] = {}
        for holder in placement.holders(item):
            fractions[holder] = max(fractions.get(holder, 0.0), placement[(holder, item)])
        for holder in problem.pinned_holders(item):
            fractions[holder] = 1.0
        candidates = sorted(
            (
                (dist_fn(holder, requester), repr(holder), holder)
                for holder in fractions
            ),
        )
        paths: list[PathFlow] = []
        remaining = 1.0
        for distance, _, holder in candidates:
            if remaining <= _EPS:
                break
            if distance == float("inf"):
                continue
            take = min(fractions[holder], remaining)
            if take <= _EPS:
                continue
            paths.append(PathFlow(path=sp.path(holder, requester), amount=take))
            remaining -= take
        if remaining > 1e-6 and on_unservable == "raise":
            raise InfeasibleError(
                f"request {(item, requester)!r} cannot be fully served by RNR "
                f"(uncovered fraction {remaining:.4g})"
            )
        routing.paths[(item, requester)] = paths
    return routing
