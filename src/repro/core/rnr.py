"""Route-to-nearest-replica (RNR) routing, Section 4.1.

Given a content placement, serve every request from the least-cost node
storing the requested item over a least-cost path.  Under fractional
placement the generalization of the paper applies: retrieve from the
nearest holder up to its stored fraction, then the second nearest, and so
on, until the request is fully covered (the origin's pinned copy guarantees
termination).

RNR is optimal under unlimited link capacities, and is also the routing
policy of the benchmark in [3] once restricted to candidate paths.
"""

from __future__ import annotations

import math
from collections.abc import Hashable
from typing import TYPE_CHECKING

import numpy as np

from repro.core.problem import ProblemInstance
from repro.core.solution import Placement, Routing
from repro.exceptions import InfeasibleError
from repro.flow.decomposition import PathFlow
from repro.graph.distance_matrix import HAVE_SCIPY, _sparse_adjacency
from repro.graph.network import COST
from repro.graph.shortest_paths import reconstruct_path, single_source_dijkstra

if TYPE_CHECKING:  # avoid a module cycle; context imports ShortestPathCache
    from repro.core.context import SolverContext

Node = Hashable

_EPS = 1e-9


class ShortestPathCache:
    """Memoized single-source Dijkstra runs over one network graph."""

    def __init__(self, problem: ProblemInstance) -> None:
        self._graph = problem.network.graph
        self._runs: dict[Node, tuple[dict, dict]] = {}

    def from_node(self, source: Node) -> tuple[dict, dict]:
        if source not in self._runs:
            self._runs[source] = single_source_dijkstra(self._graph, source)
        return self._runs[source]

    def distance(self, source: Node, target: Node) -> float:
        dist, _ = self.from_node(source)
        return dist.get(target, float("inf"))

    def path(self, source: Node, target: Node) -> tuple[Node, ...]:
        dist, pred = self.from_node(source)
        if target not in dist:
            raise InfeasibleError(f"{target!r} unreachable from {source!r}")
        return tuple(reconstruct_path(pred, source, target))


class PredecessorPathCache:
    """Path reconstruction from per-source scipy predecessor trees.

    Dense-context RNR only needs actual node paths for holders that serve
    flow, and a failure sweep asks for paths out of many sources on many
    degraded graphs.  This oracle runs one
    ``scipy.sparse.csgraph.dijkstra(..., return_predecessors=True)`` per
    serving source (memoized) and backtracks the predecessor array, which is
    far cheaper than a pure-python Dijkstra per source.  Requires scipy;
    callers fall back to :class:`ShortestPathCache` without it.
    """

    def __init__(self, graph, nodes: tuple[Node, ...], index: dict[Node, int]) -> None:
        self._nodes = nodes
        # O(|V| + |E|) CSR adjacency, structurally identical to the dense
        # conversion it replaced — predecessors and paths are unchanged.
        self._csgraph = _sparse_adjacency(graph, nodes, index, COST)
        self._pred: dict[int, np.ndarray] = {}
        self._paths: dict[tuple[int, int], tuple[Node, ...]] = {}

    def path_by_index(self, source: int, target: int) -> tuple[Node, ...]:
        """Shortest ``nodes[source] -> nodes[target]`` path as node labels."""
        cached = self._paths.get((source, target))
        if cached is not None:
            return cached
        pred = self._pred.get(source)
        if pred is None:
            from scipy.sparse.csgraph import dijkstra

            _, pred = dijkstra(
                self._csgraph,
                directed=True,
                indices=source,
                return_predecessors=True,
            )
            self._pred[source] = pred
        hops = [target]
        j = target
        while j != source:
            j = int(pred[j])
            if j < 0:
                nodes = self._nodes
                raise InfeasibleError(
                    f"{nodes[target]!r} unreachable from {nodes[source]!r}"
                )
            hops.append(j)
        nodes = self._nodes
        path = tuple(nodes[k] for k in reversed(hops))
        self._paths[(source, target)] = path
        return path


def route_to_nearest_replica(
    problem: ProblemInstance,
    placement: Placement,
    *,
    sp_cache: ShortestPathCache | None = None,
    context: "SolverContext | None" = None,
    on_unservable: str = "raise",
) -> Routing:
    """RNR routing for every request under the given placement.

    With a :class:`~repro.core.context.SolverContext`, holder distances come
    from the dense all-pairs matrix (O(1) per lookup, no Dijkstra per
    holder) and paths are reconstructed from memoized scipy predecessor
    trees (:class:`PredecessorPathCache`; the context's dict-based cache
    without scipy), so serving costs are unchanged while a failure sweep
    stops paying a pure-python Dijkstra per serving holder.

    ``on_unservable`` controls what happens when a request cannot be fully
    covered by reachable holders (including pinned contents):

    - ``"raise"`` (default): raise :class:`InfeasibleError` — a healthy
      instance with a pinned origin should always be fully servable;
    - ``"partial"``: keep whatever fraction the reachable replicas cover and
      leave the rest unserved (the failure-recovery mode of
      :mod:`repro.robustness`; use
      :func:`repro.core.evaluation.unserved_fraction` to quantify the gap).
    """
    if on_unservable not in ("raise", "partial"):
        raise ValueError("on_unservable must be 'raise' or 'partial'")
    if context is not None:
        return _route_with_context(problem, placement, context, on_unservable)
    sp = sp_cache or ShortestPathCache(problem)
    dist_fn = sp.distance
    routing = Routing()
    item_fractions: dict[Node, dict[Node, float]] = {}
    for (item, requester), _rate in problem.demand.items():
        fractions = item_fractions.get(item)
        if fractions is None:
            fractions = _holder_fractions(problem, placement, item)
            item_fractions[item] = fractions
        candidates = sorted(
            (
                (dist_fn(holder, requester), repr(holder), holder)
                for holder in fractions
            ),
        )
        paths: list[PathFlow] = []
        remaining = 1.0
        for distance, _, holder in candidates:
            if remaining <= _EPS:
                break
            if distance == float("inf"):
                continue
            take = min(fractions[holder], remaining)
            if take <= _EPS:
                continue
            paths.append(PathFlow(path=sp.path(holder, requester), amount=take))
            remaining -= take
        if remaining > 1e-6 and on_unservable == "raise":
            raise InfeasibleError(
                f"request {(item, requester)!r} cannot be fully served by RNR "
                f"(uncovered fraction {remaining:.4g})"
            )
        routing.paths[(item, requester)] = paths
    return routing


def _holder_fractions(
    problem: ProblemInstance, placement: Placement, item
) -> dict[Node, float]:
    """Available fraction per holder of ``item`` (pinned copies count 1.0)."""
    fractions: dict[Node, float] = {}
    for holder in placement.holders(item):
        fractions[holder] = max(fractions.get(holder, 0.0), placement[(holder, item)])
    for holder in problem.pinned_holders(item):
        fractions[holder] = 1.0
    return fractions


def _route_with_context(
    problem: ProblemInstance,
    placement: Placement,
    context: "SolverContext",
    on_unservable: str,
) -> Routing:
    """Dense-matrix RNR: vectorized candidate ordering, predecessor paths.

    Semantics match the dict-based branch: candidates are served in
    ``(distance, repr(holder))`` order (holders pre-sorted by ``repr`` plus a
    stable argsort on matrix distances), unreachable holders are skipped, and
    the take/remaining arithmetic runs on the same python floats.  Only the
    path *reconstruction* backend differs — scipy predecessor trees instead
    of per-source pure-python Dijkstra — which can pick a different (equal
    cost) shortest path under ties.
    """
    nidx = context.node_index
    oracle = context.path_oracle if HAVE_SCIPY else None
    routing = Routing()
    # Group requesters per item so the cached per-item state holds only the
    # distance columns demand actually reads — O(holders × requesters), not
    # O(holders × |V|).  On a 10k-node hierarchy the full-width variant
    # transiently held ~100 MB of per-item blocks; the serve order is
    # unchanged (argsort is independent per column).
    item_requesters: dict = {}
    for item, requester in problem.demand:
        item_requesters.setdefault(item, []).append(requester)
    per_item: dict = {}
    for (item, requester), _rate in problem.demand.items():
        entry = per_item.get(item)
        if entry is None:
            fractions = _holder_fractions(problem, placement, item)
            holders = sorted(fractions, key=repr)
            hidx = np.fromiter(
                (nidx[h] for h in holders), dtype=np.intp, count=len(holders)
            )
            col_of: dict[Node, int] = {}
            cols: list[int] = []
            for s in item_requesters[item]:
                if s not in col_of:
                    col_of[s] = len(cols)
                    cols.append(nidx[s])
            # Distances and serve order for every requester of the item at
            # once: one stable argsort per item instead of one per request.
            dists = (
                context.rows_of(holders)[:, np.asarray(cols, dtype=np.intp)]
                if holders
                else np.empty((0, len(cols)))
            )
            order = np.argsort(dists, axis=0, kind="stable")
            entry = (
                holders,
                hidx,
                [fractions[h] for h in holders],
                dists,
                order,
                col_of,
            )
            per_item[item] = entry
        holders, hidx, fracs, dists, order, col_of = entry
        paths: list[PathFlow] = []
        remaining = 1.0
        if holders:
            r = nidx[requester]
            c = col_of[requester]
            dcol = dists[:, c]
            for k in order[:, c]:
                if remaining <= _EPS:
                    break
                if not math.isfinite(dcol[k]):
                    continue
                take = min(fracs[k], remaining)
                if take <= _EPS:
                    continue
                if oracle is not None:
                    path = oracle.path_by_index(int(hidx[k]), r)
                else:
                    path = context.sp.path(holders[k], requester)
                paths.append(PathFlow(path=path, amount=take))
                remaining -= take
        if remaining > 1e-6 and on_unservable == "raise":
            raise InfeasibleError(
                f"request {(item, requester)!r} cannot be fully served by RNR "
                f"(uncovered fraction {remaining:.4g})"
            )
        routing.paths[(item, requester)] = paths
    return routing
