"""Solution containers: content placement, routing, and the joint solution.

A :class:`Placement` stores the caching decision ``x`` sparsely (only
positive entries).  A :class:`Routing` stores, for each request type, the
paths serving it together with the *fraction* of the request carried by each
path (a single path with fraction 1 under integral routing).  The source
selection ``r`` of the paper is implicit: it is the first node of each path.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.core.problem import Item, Node, ProblemInstance, Request
from repro.exceptions import InvalidProblemError
from repro.flow.decomposition import PathFlow

_EPS = 1e-9


class Placement:
    """Caching decision ``x`` (sparse map ``(node, item) -> fraction``)."""

    def __init__(self, entries: Mapping[tuple[Node, Item], float] | None = None) -> None:
        self._x: dict[tuple[Node, Item], float] = {}
        for key, value in (entries or {}).items():
            self[key] = value

    # -- mapping-ish interface -----------------------------------------

    def __getitem__(self, key: tuple[Node, Item]) -> float:
        return self._x.get(key, 0.0)

    def __setitem__(self, key: tuple[Node, Item], value: float) -> None:
        if value < -_EPS or value > 1 + _EPS:
            raise InvalidProblemError(f"placement fraction {value} out of [0, 1]")
        value = min(1.0, max(0.0, value))
        if value <= _EPS:
            self._x.pop(key, None)
        else:
            self._x[key] = value

    def __contains__(self, key: tuple[Node, Item]) -> bool:
        return self._x.get(key, 0.0) > _EPS

    def __iter__(self):
        return iter(self._x)

    def __len__(self) -> int:
        return len(self._x)

    def items(self):
        return self._x.items()

    def copy(self) -> "Placement":
        return Placement(dict(self._x))

    # -- queries ---------------------------------------------------------

    def is_integral(self, tol: float = 1e-6) -> bool:
        return all(v >= 1 - tol for v in self._x.values())

    def items_at(self, node: Node) -> set[Item]:
        return {i for (v, i), x in self._x.items() if v == node and x > _EPS}

    def holders(self, item: Item) -> set[Node]:
        return {v for (v, i), x in self._x.items() if i == item and x > _EPS}

    def used_capacity(self, node: Node, problem: ProblemInstance) -> float:
        """Cache space consumed at ``node`` (pinned contents are free)."""
        return sum(
            x * problem.size_of(i)
            for (v, i), x in self._x.items()
            if v == node and (v, i) not in problem.pinned
        )

    def as_set(self, tol: float = 1e-6) -> frozenset[tuple[Node, Item]]:
        """Integral placement as a set of ``(node, item)`` pairs."""
        return frozenset(k for k, v in self._x.items() if v >= 1 - tol)

    @classmethod
    def from_set(cls, entries: Iterable[tuple[Node, Item]]) -> "Placement":
        return cls({key: 1.0 for key in entries})

    def __repr__(self) -> str:
        return f"Placement({len(self._x)} entries)"


@dataclass
class Routing:
    """Routing decision: per request, the serving paths and their fractions.

    ``paths[request]`` is a list of :class:`PathFlow` whose ``amount`` values
    are fractions of the request (they sum to 1 for a served request).  Each
    path runs from the serving source to the requester; a length-1 path means
    the requester serves itself from its own cache.
    """

    paths: dict[Request, list[PathFlow]] = field(default_factory=dict)

    def is_integral(self, tol: float = 1e-6) -> bool:
        return all(
            len(pfs) == 1 and abs(pfs[0].amount - 1.0) <= tol
            for pfs in self.paths.values()
        )

    def served_fraction(self, request: Request) -> float:
        return sum(p.amount for p in self.paths.get(request, []))

    def sources(self, request: Request) -> dict[Node, float]:
        """Source selection ``r``: serving node -> fraction served from it."""
        out: dict[Node, float] = {}
        for pf in self.paths.get(request, []):
            out[pf.source] = out.get(pf.source, 0.0) + pf.amount
        return out

    def copy(self) -> "Routing":
        return Routing({req: list(pfs) for req, pfs in self.paths.items()})

    def __repr__(self) -> str:
        n_paths = sum(len(p) for p in self.paths.values())
        return f"Routing({len(self.paths)} requests, {n_paths} paths)"


@dataclass
class Solution:
    """A joint caching-and-routing solution."""

    placement: Placement
    routing: Routing

    def copy(self) -> "Solution":
        return Solution(self.placement.copy(), self.routing.copy())
