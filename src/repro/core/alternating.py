"""Alternating optimization for the general case (Section 4.3.3).

Starting from the feasible solution that serves everything from the pinned
origin copies, alternate

1. content placement given the current routing (LP + pipage for homogeneous
   catalogs, greedy for heterogeneous sizes — Sections 4.3.1 / 5.2.3), and
2. source selection + routing given the placement (MMSFP for fractional
   routing, MMUFP heuristics for integral routing — Section 4.3.2),

retaining a new iterate only when it lowers the routing cost, and stopping
at convergence.  Proposition 4.8 shows the worst case is unbounded (a bad
Nash equilibrium exists), but convergence is typically within a handful of
iterations and empirical quality is strong — both facts are reproduced in
the evaluation benches.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluation import congestion, routing_cost
from repro.core.placement import optimize_placement
from repro.core.problem import ProblemInstance
from repro.core.routing import MMSFPTemplate, mmsfp_routing, mmufp_routing
from repro.core.solution import Placement, Routing, Solution
from repro.core.submodular import greedy_rnr_placement
from repro.exceptions import InfeasibleError

logger = logging.getLogger(__name__)


@dataclass
class AlternatingResult:
    """Final solution plus the per-iteration convergence trace."""

    solution: Solution
    iterations: int
    converged: bool
    #: One entry per accepted-or-rejected iteration:
    #: {"iteration", "cost", "congestion", "accepted"}.
    history: list[dict] = field(default_factory=list)


def _route(
    problem: ProblemInstance,
    placement: Placement,
    *,
    integral_routing: bool,
    mmufp_method: str,
    rng: np.random.Generator | None,
    n_samples: int,
    mmsfp_template: MMSFPTemplate | None = None,
) -> Routing:
    if integral_routing:
        return mmufp_routing(
            problem, placement, method=mmufp_method, rng=rng, n_samples=n_samples
        )
    if mmsfp_template is not None:
        return mmsfp_template.solve(placement).routing
    return mmsfp_routing(problem, placement).routing


def _initial_solution(
    problem: ProblemInstance,
    *,
    integral_routing: bool,
    mmufp_method: str,
    rng: np.random.Generator | None,
    n_samples: int,
    mmsfp_template: "MMSFPTemplate | None" = None,
) -> Solution:
    """Feasible starting point: origin-only routing, else greedy RNR placement.

    Serving everything from the pinned copies is the paper's starting point
    (always routable after the scenario's capacity augmentation); when the
    instance lacks that augmentation, fall back to a cache-aware start.
    """
    try:
        placement = Placement()
        routing = _route(
            problem,
            placement,
            integral_routing=integral_routing,
            mmufp_method=mmufp_method,
            rng=rng,
            n_samples=n_samples,
            mmsfp_template=mmsfp_template,
        )
    except InfeasibleError:
        placement = greedy_rnr_placement(problem)
        routing = _route(
            problem,
            placement,
            integral_routing=integral_routing,
            mmufp_method=mmufp_method,
            rng=rng,
            n_samples=n_samples,
            mmsfp_template=mmsfp_template,
        )
    return Solution(placement, routing)


def alternating_optimization(
    problem: ProblemInstance,
    *,
    integral_routing: bool = True,
    placement_method: str = "auto",
    mmufp_method: str = "randomized",
    max_iterations: int = 20,
    n_samples: int = 16,
    rng: np.random.Generator | None = None,
    tolerance: float = 1e-9,
    lp_template: bool = False,
) -> AlternatingResult:
    """Run the alternating caching / routing optimization.

    Parameters
    ----------
    integral_routing:
        ``True`` for IC-IR (MMUFP heuristics), ``False`` for IC-FR (MMSFP LP).
    placement_method:
        ``"auto"`` (pipage for homogeneous catalogs, greedy otherwise),
        ``"pipage"`` or ``"greedy"``.
    mmufp_method:
        ``"randomized"`` (LP relaxation + randomized rounding) or ``"greedy"``.
    max_iterations:
        Hard cap; the paper observes convergence within ~10 iterations.
    lp_template:
        With fractional routing, assemble the MMSFP LP once as an
        :class:`~repro.core.routing.MMSFPTemplate` and re-bound it per
        iteration instead of rebuilding it.  Opt-in: the template's LP has
        the same optimal cost but more columns (virtual arcs to every
        candidate holder), so on degenerate instances HiGHS may return a
        different — equally optimal — flow split than the per-iteration
        assembly.  Ignored for integral routing.
    """
    rng = rng or np.random.default_rng()
    template = (
        MMSFPTemplate(problem) if lp_template and not integral_routing else None
    )
    best = _initial_solution(
        problem,
        integral_routing=integral_routing,
        mmufp_method=mmufp_method,
        rng=rng,
        n_samples=n_samples,
        mmsfp_template=template,
    )
    best_cost = routing_cost(problem, best.routing)
    best_congestion = congestion(problem, best.routing)
    history = [
        {
            "iteration": 0,
            "cost": best_cost,
            "congestion": best_congestion,
            "accepted": True,
        }
    ]

    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        placement = optimize_placement(
            problem, best.routing, method=placement_method
        )
        try:
            routing = _route(
                problem,
                placement,
                integral_routing=integral_routing,
                mmufp_method=mmufp_method,
                rng=rng,
                n_samples=n_samples,
                mmsfp_template=template,
            )
        except InfeasibleError:
            # The new placement admits no capacity-feasible routing (possible
            # only without the paper's origin-path capacity augmentation);
            # reject it and stop at the incumbent.
            history.append(
                {
                    "iteration": iteration,
                    "cost": float("inf"),
                    "congestion": float("inf"),
                    "accepted": False,
                }
            )
            converged = True
            break
        cost = routing_cost(problem, routing)
        cong = congestion(problem, routing)
        accepted = cost < best_cost - tolerance or (
            cost <= best_cost + tolerance and cong < best_congestion - tolerance
        )
        history.append(
            {
                "iteration": iteration,
                "cost": cost,
                "congestion": cong,
                "accepted": accepted,
            }
        )
        logger.debug(
            "alternating iteration %d: cost=%.6g congestion=%.4g accepted=%s",
            iteration, cost, cong, accepted,
        )
        if accepted:
            best = Solution(placement, routing)
            best_cost, best_congestion = cost, cong
        else:
            converged = True
            break
    return AlternatingResult(
        solution=best,
        iterations=iteration,
        converged=converged,
        history=history,
    )
