"""Cluster-decomposed solving: Algorithm 1 at 10k-node scale (ROADMAP item 3).

The exact solvers carry an O(|V|²) distance structure and an LP whose row
count grows with (requests × eligible sources); neither survives the
10k-node ISP/CDN topologies the production north-star demands.  This module
trades a measured optimality gap for locality, following the cluster
pattern of Icarus's ``HashroutingClustered`` and the decomposition folklore
of the caching literature:

1. **Partition** the graph into connected clusters by seeded BFS *balloon
   growth*: greedy farthest-first seed selection, then round-robin
   frontier expansion, one hop per cluster per round, claiming unassigned
   nodes deterministically (:func:`partition_graph`).
2. **Stitch** each cluster to the rest of the world through its boundary
   nodes: for every item requested inside the cluster whose pinned holders
   (origins) live outside, a *virtual origin* node is attached with
   directed links onto each boundary node, priced at the **true**
   full-graph least cost from the external holder to that boundary
   (computed from O(#origins) lazy distance rows, never the full matrix).
   A cluster-level super-topology is also exposed for diagnostics
   (:func:`super_topology`).
3. **Solve** each cluster's sub-instance with the exact Algorithm 1 —
   small dense contexts, the LP (7) machinery unchanged — in parallel
   across a process pool (:func:`decomposed_solve`), then **compose**: the
   per-cluster placements union into a feasible global placement (clusters
   own disjoint cache nodes), and the global routing is plain RNR over the
   full topology under a lazy row backend (holder rows only).
4. **Measure** the price: :func:`decomposition_gap` runs the exact solve
   next to the decomposed one on mid-size instances (exact is still
   feasible ≤ ~500 nodes) and reports the relative cost gap — the bench
   gates it (see ``benchmarks/bench_scale_decomposition.py``).

The approximation is one-sided by construction: every serving path the
decomposed solution uses exists in the real graph with at most the modeled
cost (the virtual-origin price ``d(h, b) + d_sub(b, s)`` upper-bounds the
true ``d(h, s)``), and the final reported cost is evaluated *exactly* on
the full topology, so the gap is a true measurement, not a model artifact.
"""

from __future__ import annotations

import math
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.algorithm1 import Algorithm1Result, algorithm1
from repro.core.context import SolverContext
from repro.core.evaluation import routing_cost
from repro.core.problem import Item, Node, ProblemInstance
from repro.core.rnr import route_to_nearest_replica
from repro.core.solution import Placement, Solution
from repro.exceptions import InfeasibleError, InvalidProblemError
from repro.graph.backends import LazyRowBackend
from repro.graph.network import CAPACITY, COST, CacheNetwork

__all__ = [
    "ClusterPartition",
    "ClusterReport",
    "DecomposedResult",
    "DecompositionGap",
    "partition_graph",
    "super_topology",
    "cluster_subproblem",
    "decomposed_solve",
    "decomposition_gap",
    "default_cluster_count",
    "touched_clusters",
    "restrict_partition",
    "resolve_clusters",
]

#: Virtual origin nodes are tagged so composition can filter them out.
_ORIGIN_TAG = "__ext_origin__"


def _origin_node(item: Item) -> tuple[str, Item]:
    return (_ORIGIN_TAG, item)


def _undirected_neighbors(graph: nx.DiGraph) -> dict[Node, list[Node]]:
    """Per-node neighbor lists (both directions), repr-sorted for determinism."""
    nbrs: dict[Node, set[Node]] = {v: set() for v in graph.nodes}
    for u, v in graph.edges:
        if u != v:
            nbrs[u].add(v)
            nbrs[v].add(u)
    return {v: sorted(ns, key=repr) for v, ns in nbrs.items()}


@dataclass(frozen=True)
class ClusterPartition:
    """A node partition into connected clusters plus its bookkeeping."""

    #: Cluster id of every node.
    labels: dict[Node, int]
    #: Nodes of each cluster, in the owning graph's insertion order.
    clusters: tuple[tuple[Node, ...], ...]
    #: The BFS growth seeds, one per cluster.
    seeds: tuple[Node, ...]

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def sizes(self) -> list[int]:
        return [len(c) for c in self.clusters]


def default_cluster_count(num_nodes: int) -> int:
    """Heuristic cluster count: ~sqrt(|V|)/2, at least 2.

    Balances sub-LP size (shrinks with more clusters) against stitching
    error (grows with more boundary crossings); the bench sweeps around it.
    """
    return max(2, int(round(math.sqrt(num_nodes) / 2)))


def partition_graph(
    network: CacheNetwork, n_clusters: int | None = None, *, seed: int = 0
) -> ClusterPartition:
    """Partition the topology into connected clusters by BFS balloon growth.

    Seeds are chosen farthest-first on hop distance (the first uniformly at
    random under ``seed``), then clusters claim nodes by expanding their
    BFS frontier one hop per round in cluster order — deterministic: node
    iteration is repr-sorted everywhere and ties go to the lower cluster
    id.  Every cluster is connected by construction; nodes unreachable from
    any seed (disconnected topologies) are appended to the smallest
    cluster.
    """
    graph = network.graph
    nodes = list(graph.nodes)
    n = len(nodes)
    if n == 0:
        raise InvalidProblemError("cannot partition an empty network")
    k = default_cluster_count(n) if n_clusters is None else int(n_clusters)
    if not 1 <= k <= n:
        raise InvalidProblemError(f"n_clusters must be in [1, {n}]")
    nbrs = _undirected_neighbors(graph)
    rng = np.random.default_rng(seed)

    ordered = sorted(nodes, key=repr)
    seeds: list[Node] = [ordered[int(rng.integers(n))]]
    hop = {seeds[0]: 0}
    frontier = deque([seeds[0]])
    while frontier:  # BFS hop distances from the current seed set
        u = frontier.popleft()
        for w in nbrs[u]:
            if w not in hop:
                hop[w] = hop[u] + 1
                frontier.append(w)
    while len(seeds) < k:
        best = max(
            (v for v in ordered if v not in seeds),
            key=lambda v: (hop.get(v, math.inf), repr(v)),
        )
        seeds.append(best)
        frontier = deque([best])
        hop[best] = 0
        while frontier:
            u = frontier.popleft()
            for w in nbrs[u]:
                if hop.get(w, math.inf) > hop[u] + 1:
                    hop[w] = hop[u] + 1
                    frontier.append(w)

    labels: dict[Node, int] = {}
    frontiers: list[deque[Node]] = []
    for cid, s in enumerate(seeds):
        labels[s] = cid
        frontiers.append(deque(w for w in nbrs[s] if w not in labels))
    claimed = len(seeds)
    # Round-robin, one node per cluster per round: cluster sizes stay
    # balanced (within one node) until a cluster's frontier runs dry.
    while claimed < n and any(frontiers):
        for cid, fr in enumerate(frontiers):
            while fr:
                w = fr.popleft()
                if w in labels:
                    continue
                labels[w] = cid
                claimed += 1
                fr.extend(x for x in nbrs[w] if x not in labels)
                break
    leftovers = [v for v in ordered if v not in labels]
    for v in leftovers:  # disconnected from every seed
        smallest = min(
            range(len(seeds)), key=lambda c: sum(1 for x in labels.values() if x == c)
        )
        labels[v] = smallest

    clusters: list[list[Node]] = [[] for _ in seeds]
    for v in nodes:  # graph insertion order within each cluster
        clusters[labels[v]].append(v)
    return ClusterPartition(
        labels=labels,
        clusters=tuple(tuple(c) for c in clusters),
        seeds=tuple(seeds),
    )


def super_topology(network: CacheNetwork, partition: ClusterPartition) -> CacheNetwork:
    """Cluster-level quotient topology (diagnostics and coarse solves).

    One node per cluster; a directed super-link per ordered cluster pair
    with at least one crossing link, priced at the cheapest crossing link
    and sized at the summed crossing capacity.  Cluster cache capacity is
    the sum over member nodes.
    """
    graph = network.graph
    quotient = nx.DiGraph()
    quotient.add_nodes_from(range(partition.n_clusters))
    best_cost: dict[tuple[int, int], float] = {}
    total_cap: dict[tuple[int, int], float] = {}
    for u, v, data in graph.edges(data=True):
        cu, cv = partition.labels[u], partition.labels[v]
        if cu == cv:
            continue
        key = (cu, cv)
        cost = float(data.get(COST, 1.0))
        cap = float(data.get(CAPACITY, math.inf))
        if key not in best_cost or cost < best_cost[key]:
            best_cost[key] = cost
        total_cap[key] = total_cap.get(key, 0.0) + cap
    for (cu, cv), cost in best_cost.items():
        quotient.add_edge(cu, cv, **{COST: cost, CAPACITY: total_cap[(cu, cv)]})
    caps = {cid: 0.0 for cid in range(partition.n_clusters)}
    for v in network.nodes:
        caps[partition.labels[v]] += network.cache_capacity(v)
    return CacheNetwork(quotient, caps)


def _boundary_nodes(
    graph: nx.DiGraph, partition: ClusterPartition, cid: int
) -> list[Node]:
    """Cluster members with at least one link crossing the cluster edge."""
    out = set()
    for u, v in graph.edges:
        cu, cv = partition.labels[u], partition.labels[v]
        if cu == cid and cv != cid:
            out.add(u)
        elif cv == cid and cu != cid:
            out.add(v)
    return sorted(out, key=repr)


def cluster_subproblem(
    problem: ProblemInstance,
    partition: ClusterPartition,
    cid: int,
    holder_rows: dict[Node, np.ndarray],
    node_index: dict[Node, int],
) -> ProblemInstance | None:
    """The sub-instance of one cluster, stitched at its boundary.

    ``holder_rows`` maps each pinned holder of the full problem to its
    full-graph distance row (``holder_rows[h][node_index[b]]`` is the true
    least cost ``h -> b``); external holders of an item become one virtual
    origin node pinned with the item and wired onto every boundary node at
    that true cost.  Returns ``None`` when the cluster hosts no demand.
    """
    members = partition.clusters[cid]
    member_set = set(members)
    demand = {
        (i, s): r for (i, s), r in problem.demand.items() if s in member_set
    }
    if not demand:
        return None
    items = sorted({i for (i, _s) in demand}, key=repr)
    item_set = set(items)

    graph = problem.network.graph
    sub = nx.DiGraph()
    sub.add_nodes_from(members)
    for u, v, data in graph.edges(data=True):
        if u in member_set and v in member_set:
            sub.add_edge(
                u,
                v,
                **{
                    COST: float(data.get(COST, 1.0)),
                    CAPACITY: float(data.get(CAPACITY, math.inf)),
                },
            )

    pinned = {
        (v, i) for (v, i) in problem.pinned if v in member_set and i in item_set
    }
    boundary = _boundary_nodes(graph, partition, cid)
    for item in items:
        external = sorted(
            # ``h in holder_rows`` guards against holders that are not on
            # the current graph at all (a dead pinned origin of a degraded
            # instance) — on healthy instances every holder has a row.
            (
                h
                for h in problem.pinned_holders(item)
                if h not in member_set and h in holder_rows
            ),
            key=repr,
        )
        if not external:
            continue
        rows = [holder_rows[h] for h in external]
        origin = _origin_node(item)
        attached = False
        for b in boundary:
            j = node_index[b]
            cost = min(float(row[j]) for row in rows)
            if math.isfinite(cost):
                sub.add_edge(origin, b, **{COST: cost, CAPACITY: math.inf})
                attached = True
        if attached:
            pinned.add((origin, item))

    caps = {v: problem.network.cache_capacity(v) for v in members}
    sizes = (
        None
        if problem.item_sizes is None
        else {i: problem.item_sizes[i] for i in items}
    )
    return ProblemInstance(
        network=CacheNetwork(sub, caps),
        catalog=tuple(items),
        demand=demand,
        item_sizes=sizes,
        pinned=frozenset(pinned),
    )


@dataclass(frozen=True)
class ClusterReport:
    """Per-cluster solve summary (picklable, crosses the pool boundary)."""

    cluster: int
    n_nodes: int
    n_requests: int
    n_cache_nodes: int
    lp_objective: float
    solve_seconds: float


@dataclass(frozen=True)
class DecomposedResult:
    """Composed global solution of a cluster-decomposed solve."""

    solution: Solution
    #: Exact RNR routing cost of the composed solution on the full topology.
    cost: float
    partition: ClusterPartition
    reports: tuple[ClusterReport, ...]
    total_seconds: float
    #: True when the per-cluster solves ran in a process pool.
    ran_parallel: bool


def _solve_cluster(
    payload: tuple[int, ProblemInstance, bool],
) -> tuple[int, dict, ClusterReport]:
    """Pool worker: exact Algorithm 1 on one cluster sub-instance."""
    cid, sub, polish = payload
    t0 = time.perf_counter()
    result: Algorithm1Result = algorithm1(
        sub, polish=polish, context=SolverContext.from_problem(sub)
    )
    elapsed = time.perf_counter() - t0
    entries = {
        key: val
        for key, val in result.solution.placement.items()
        if not (isinstance(key[0], tuple) and key[0][:1] == (_ORIGIN_TAG,))
    }
    report = ClusterReport(
        cluster=cid,
        n_nodes=sub.network.num_nodes,
        n_requests=len(sub.demand),
        n_cache_nodes=len(sub.network.cache_nodes()),
        lp_objective=result.lp_objective,
        solve_seconds=elapsed,
    )
    return cid, entries, report


def decomposed_solve(
    problem: ProblemInstance,
    *,
    n_clusters: int | None = None,
    seed: int = 0,
    parallel: bool = True,
    max_workers: int | None = None,
    polish: bool = True,
    context: SolverContext | None = None,
) -> DecomposedResult:
    """Cluster-decomposed Algorithm 1 over an arbitrarily large topology.

    Partition, stitch, solve the clusters (in a process pool when
    ``parallel`` — serial fallback on any pool failure, composition is
    bit-identical either way because results are consumed in cluster
    order), union the placements, and route the *full* problem with RNR.
    The returned :attr:`DecomposedResult.cost` is evaluated exactly on the
    real topology under the composed placement.

    ``context`` carries the global routing context; by default one is
    built with :meth:`SolverContext.from_problem` (lazy row tier above the
    dense threshold — only holder rows are ever materialized).
    """
    t_start = time.perf_counter()
    partition = partition_graph(problem.network, n_clusters, seed=seed)

    graph = problem.network.graph
    holders = sorted({v for (v, _i) in problem.pinned}, key=repr)
    lazy = LazyRowBackend(graph)
    node_index = lazy.index
    row_block = (
        lazy.rows(np.asarray([node_index[h] for h in holders], dtype=np.intp))
        if holders
        else np.empty((0, len(lazy)))
    )
    holder_rows = {h: row_block[k] for k, h in enumerate(holders)}

    payloads = []
    for cid in range(partition.n_clusters):
        sub = cluster_subproblem(problem, partition, cid, holder_rows, node_index)
        if sub is not None:
            payloads.append((cid, sub, polish))

    results: dict[int, tuple[dict, ClusterReport]] = {}
    ran_parallel = False
    if parallel and len(payloads) > 1:
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                for cid, entries, report in pool.map(_solve_cluster, payloads):
                    results[cid] = (entries, report)
            ran_parallel = True
        except (BrokenProcessPool, OSError, RuntimeError):
            results.clear()
    if not results:
        for payload in payloads:
            cid, entries, report = _solve_cluster(payload)
            results[cid] = (entries, report)

    entries: dict[tuple[Node, Item], float] = {}
    reports: list[ClusterReport] = []
    for cid in sorted(results):
        cluster_entries, report = results[cid]
        entries.update(cluster_entries)
        reports.append(report)
    placement = Placement(entries)

    if context is None:
        context = SolverContext(problem, backend=lazy)
    routing = route_to_nearest_replica(problem, placement, context=context)
    cost = routing_cost(problem, routing)
    return DecomposedResult(
        solution=Solution(placement, routing),
        cost=cost,
        partition=partition,
        reports=tuple(reports),
        total_seconds=time.perf_counter() - t_start,
        ran_parallel=ran_parallel,
    )


# ----------------------------------------------------------------------
# Cluster-local re-optimization (failure recovery at scale)
# ----------------------------------------------------------------------


def touched_clusters(
    partition: ClusterPartition,
    *,
    failed_nodes=(),
    failed_links=(),
) -> frozenset[int]:
    """Cluster ids a failure touches (either endpoint of any failed element).

    A failed node touches its own cluster; a failed directed link touches
    both endpoint clusters (a crossing link touches two).  Elements outside
    the partition's label map (already-removed nodes of a chained
    derivation) are ignored.  When the result is a strict subset of all
    clusters, re-solving only those clusters is exact with respect to the
    decomposed model: every other cluster's sub-instance — members, local
    links, boundary set, and virtual-origin prices, which are least costs
    out of *pinned holders* and therefore unchanged while the holders'
    clusters are untouched — is byte-identical to its healthy twin.
    """
    labels = partition.labels
    touched: set[int] = set()
    for v in failed_nodes:
        cid = labels.get(v)
        if cid is not None:
            touched.add(cid)
    for u, v in failed_links:
        for end in (u, v):
            cid = labels.get(end)
            if cid is not None:
                touched.add(cid)
    return frozenset(touched)


def restrict_partition(
    partition: ClusterPartition, surviving
) -> ClusterPartition:
    """``partition`` with dead nodes dropped; cluster ids are preserved.

    ``surviving`` is the surviving node set.  Cluster ids keep their
    original numbering (a cluster may come back empty), so touched-cluster
    ids computed against the healthy partition stay valid against the
    restricted one.
    """
    alive = set(surviving)
    return ClusterPartition(
        labels={v: c for v, c in partition.labels.items() if v in alive},
        clusters=tuple(
            tuple(v for v in cluster if v in alive)
            for cluster in partition.clusters
        ),
        seeds=partition.seeds,
    )


def _is_origin(v) -> bool:
    return isinstance(v, tuple) and v[:1] == (_ORIGIN_TAG,)


def _reachable_reduction(
    sub: ProblemInstance,
) -> tuple[ProblemInstance | None, frozenset]:
    """Reduce a (possibly degraded) cluster sub-instance to its servable part.

    On a healthy topology every requester can reach a pinned source
    (in-cluster holder or attached virtual origin), and the sub-instance is
    returned unchanged.  A degraded cluster may contain components cut off
    from every source; the exact Algorithm 1 cannot serve those, so this
    strips them: demand is kept iff its requester is reachable *from* some
    pinned source of its item (routing runs source → requester), and the
    instance is induced on the union of source-reachable nodes — exact,
    since any optimal source→requester path only visits source-reachable
    nodes.  Returns ``(reduced_instance_or_None, preserved_nodes)`` where
    ``preserved_nodes`` are the real (non-virtual) cluster members outside
    the servable part: their surviving placement entries must be carried
    over verbatim, because on the symmetric topologies this package builds
    they are exactly the replicas that may still serve an isolated
    component, and the re-solve never places onto them.
    """
    graph = sub.network.graph
    sources_by_item: dict[Item, frozenset] = {}
    for v, i in sub.pinned:
        sources_by_item[i] = sources_by_item.get(i, frozenset()) | {v}

    reach_cache: dict[frozenset, set] = {}

    def reach(sources: frozenset) -> set:
        got = reach_cache.get(sources)
        if got is None:
            got = set(sources)
            for s in sources:
                got |= nx.descendants(graph, s)
            reach_cache[sources] = got
        return got

    keep = {
        (i, s): r
        for (i, s), r in sub.demand.items()
        if i in sources_by_item and s in reach(sources_by_item[i])
    }
    if len(keep) == len(sub.demand):
        return sub, frozenset()
    members = [v for v in graph if not _is_origin(v)]
    if not keep:
        return None, frozenset(members)
    live: set = set()
    for sources in sources_by_item.values():
        live |= reach(sources)
    reduced_graph = graph.subgraph(live).copy()
    caps = {v: sub.network.cache_capacity(v) for v in members if v in live}
    reduced = ProblemInstance(
        network=CacheNetwork(reduced_graph, caps),
        catalog=sub.catalog,
        demand=keep,
        item_sizes=sub.item_sizes,
        pinned=frozenset((v, i) for (v, i) in sub.pinned if v in live),
    )
    return reduced, frozenset(v for v in members if v not in live)


def resolve_clusters(
    problem: ProblemInstance,
    partition: ClusterPartition,
    placement: Placement,
    cluster_ids,
    *,
    context: SolverContext | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
    polish: bool = True,
) -> tuple[Placement, tuple[ClusterReport, ...]]:
    """Re-solve the named clusters of ``problem`` and stitch into ``placement``.

    ``problem`` is typically a *degraded* instance and ``partition`` the
    healthy topology's partition — it is restricted to the surviving nodes
    first (ids preserved).  Each named cluster's sub-instance is rebuilt on
    the current graph (fresh boundary stitching, virtual-origin prices from
    the current holder rows), reduced to its source-reachable part
    (:func:`_reachable_reduction` — a degraded cluster may hold components
    no re-solve can serve), and solved with the exact Algorithm 1.  The
    returned placement keeps every entry of ``placement`` whose cache node
    lives in an *untouched* cluster, replaces the re-solved, source-
    reachable caches' entries wholesale (per-cluster capacity holds by
    construction — clusters own disjoint cache nodes), and preserves the
    surviving entries on nodes the re-solve could not reach (isolated
    components keep serving from whatever replicas they still hold; also
    the fallback when a cluster solve turns out infeasible).

    ``context`` supplies the holder distance rows on either backend tier
    (``rows_of`` over the pinned holders); without one a throwaway
    :class:`LazyRowBackend` computes exactly those rows.  ``parallel``
    solves the named clusters in a process pool with the same serial
    fallback as :func:`decomposed_solve`.
    """
    graph = problem.network.graph
    part = restrict_partition(partition, graph.nodes)
    wanted = sorted(int(c) for c in cluster_ids)
    for cid in wanted:
        if not 0 <= cid < part.n_clusters:
            raise InvalidProblemError(f"unknown cluster id {cid}")

    holders = sorted(
        {v for (v, _i) in problem.pinned if v in graph}, key=repr
    )
    if context is not None:
        node_index = context.node_index
        row_block = (
            context.rows_of(holders)
            if holders
            else np.empty((0, len(node_index)))
        )
    else:
        lazy = LazyRowBackend(graph)
        node_index = lazy.index
        row_block = (
            lazy.rows(np.asarray([node_index[h] for h in holders], dtype=np.intp))
            if holders
            else np.empty((0, len(lazy)))
        )
    holder_rows = {h: row_block[k] for k, h in enumerate(holders)}

    preserved: set = set()
    payloads = []
    for cid in wanted:
        sub = cluster_subproblem(problem, part, cid, holder_rows, node_index)
        if sub is None:
            # No local demand — but the cluster's replicas may still serve
            # other clusters through the global routing pass, so keep them.
            preserved.update(part.clusters[cid])
            continue
        reduced, cut_off = _reachable_reduction(sub)
        preserved.update(cut_off)
        if reduced is not None:
            payloads.append((cid, reduced, polish))

    results: dict[int, tuple[dict, ClusterReport]] = {}
    ran = False
    if parallel and len(payloads) > 1:
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                for cid, entries, rep in pool.map(_solve_cluster, payloads):
                    results[cid] = (entries, rep)
            ran = True
        except (BrokenProcessPool, OSError, RuntimeError, InfeasibleError):
            results.clear()
    if not ran and not results:
        for payload in payloads:
            try:
                cid, entries, rep = _solve_cluster(payload)
            except InfeasibleError:
                # Defense in depth: an unservable corner the reduction did
                # not anticipate — keep the cluster's surviving entries.
                preserved.update(part.clusters[payload[0]])
                continue
            results[cid] = (entries, rep)

    touched = set(wanted)
    merged: dict[tuple[Node, Item], float] = {
        key: val
        for key, val in placement.items()
        if part.labels.get(key[0]) not in touched or key[0] in preserved
    }
    reports: list[ClusterReport] = []
    for cid in sorted(results):
        cluster_entries, rep = results[cid]
        merged.update(cluster_entries)
        reports.append(rep)
    return Placement(merged), tuple(reports)


@dataclass(frozen=True)
class DecompositionGap:
    """Measured optimality gap of the decomposed solve vs. the exact one."""

    exact_cost: float
    decomposed_cost: float
    #: ``(decomposed - exact) / exact`` (0.0 when both costs are 0).
    relative_gap: float
    n_clusters: int
    cluster_sizes: tuple[int, ...] = field(default_factory=tuple)


def decomposition_gap(
    problem: ProblemInstance,
    *,
    n_clusters: int | None = None,
    seed: int = 0,
    parallel: bool = False,
    polish: bool = True,
) -> DecompositionGap:
    """Run the exact and the decomposed solve side by side and report the gap.

    Only sensible on mid-size instances where the exact Algorithm 1 is
    still feasible (≤ ~500 nodes); this is the cross-check the scale bench
    gates.  Both costs are exact RNR routing costs on the full topology.
    """
    exact = algorithm1(
        problem, polish=polish, context=SolverContext.from_problem(problem)
    )
    exact_cost = routing_cost(problem, exact.solution.routing)
    dec = decomposed_solve(
        problem, n_clusters=n_clusters, seed=seed, parallel=parallel, polish=polish
    )
    if exact_cost > 0:
        gap = (dec.cost - exact_cost) / exact_cost
    else:
        gap = 0.0 if dec.cost <= 0 else math.inf
    return DecompositionGap(
        exact_cost=exact_cost,
        decomposed_cost=dec.cost,
        relative_gap=gap,
        n_clusters=dec.partition.n_clusters,
        cluster_sizes=tuple(dec.partition.sizes()),
    )
