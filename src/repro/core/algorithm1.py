"""Algorithm 1: integral caching and source selection under RNR (Section 4.1).

For networks with unlimited link capacities, the optimal routing given a
placement is route-to-nearest-replica, so the problem reduces to placing
content.  Algorithm 1 achieves a (1 - 1/e)-approximation in truly polynomial
time:

1. compute all-pairs least costs ``w_{v->s}`` and the bound ``w_max``;
2. solve the auxiliary LP (7), whose objective is the concave surrogate
   ``L_RNR`` of the cost saving ``F_RNR`` (Lemma 4.2);
3. pipage-round the fractional placement (equations (8)-(9), Lemma 4.3);
4. serve every request from its nearest replica.

Implementation notes: request sources are restricted to *eligible* nodes —
cache-capable nodes and pinned holders that can reach the requester — because
every other node is provably unused by an optimal LP solution; this shrinks
the LP without changing its optimum (only by an additive constant in the
objective, which is reported as ``constant`` for bound checking).

LP (7) itself is assembled either through the keyed :class:`LPBuilder` API
(``assembly="dict"``) or, by default, through the array fast path
(``assembly="array"``): the z/r/x rows are emitted as COO batches over
flattened per-request eligible-source index arrays (taken from the
:class:`~repro.core.context.SolverContext` distance matrix when one is
passed).  Both paths materialize bit-identical LPs.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.pipage import pipage_round
from repro.core.problem import Item, Node, ProblemInstance
from repro.core.rnr import ShortestPathCache, route_to_nearest_replica
from repro.core.solution import Placement, Solution
from repro.core.submodular import local_search_swap
from repro.exceptions import InfeasibleError, InvalidProblemError
from repro.flow.lp import LPBuilder

if TYPE_CHECKING:
    from repro.core.context import SolverContext

logger = logging.getLogger(__name__)


@dataclass
class Algorithm1Result:
    """Output of Algorithm 1 plus the quantities needed for its guarantee."""

    solution: Solution
    #: Optimal value of the auxiliary LP (7) over eligible sources.
    lp_objective: float
    #: Constant ``sum_r lambda_r * n_eligible(r) * w_max``; the LP objective
    #: equals ``constant - C_RNR`` at integral points, so
    #: ``constant - lp_objective`` lower-bounds no cost, and the chain of
    #: Theorem 4.4 gives ``constant - cost >= (1-1/e)(constant - cost_opt)``.
    constant: float
    w_max: float
    fractional_placement: dict[tuple[Node, Item], float]


def _assemble_lp7_dict(problem, cache_nodes, requested_items, x_pairs, request_rows, w_max):
    """Keyed assembly of LP (7) (column order: all x, all r, all z)."""
    lp = LPBuilder(sense="max")
    for (v, i) in x_pairs:
        lp.add_variable(("x", v, i), lb=0.0, ub=1.0)
    for (item, s), _rate, sources, _coefs in request_rows:
        for v in sources:
            lp.add_variable(("r", v, item, s), lb=0.0, ub=1.0)
    for (item, s), rate, sources, _coefs in request_rows:
        for v in sources:
            z_key = lp.add_variable(("z", v, item, s), lb=0.0, ub=1.0)
            lp.add_objective_terms({z_key: rate * w_max})
    for (item, s), _rate, sources, coefs in request_rows:
        for v, coef in zip(sources, coefs):
            r_key = ("r", v, item, s)
            z_key = ("z", v, item, s)
            if (v, item) in problem.pinned:
                # x_vi == 1 permanently: z <= 1 - r + coef.
                lp.add_le({z_key: 1.0, r_key: 1.0}, 1.0 + coef)
            elif lp.has_variable(("x", v, item)):
                lp.add_le(
                    {z_key: 1.0, r_key: 1.0, ("x", v, item): -coef}, 1.0
                )
            else:
                lp.add_le({z_key: 1.0, r_key: 1.0}, 1.0)
        lp.add_eq({("r", v, item, s): 1.0 for v in sources}, 1.0)
    for v in cache_nodes:
        coeffs = {
            ("x", v, i): 1.0
            for i in requested_items
            if (v, i) not in problem.pinned
        }
        if coeffs:
            lp.add_le(coeffs, problem.network.cache_capacity(v))
    return lp


def _assemble_lp7_array(problem, cache_nodes, x_pairs, request_rows, w_max):
    """Vectorized COO assembly of LP (7) (same row/column order)."""
    x_index = {pair: k for k, pair in enumerate(x_pairs)}
    req_of: list[int] = []
    x_col: list[int] = []
    pinned_mask: list[bool] = []
    coefs: list[float] = []
    rate_of: list[float] = []
    for k, ((item, _s), rate, sources, row_coefs) in enumerate(request_rows):
        for v, coef in zip(sources, row_coefs):
            req_of.append(k)
            is_pinned = (v, item) in problem.pinned
            pinned_mask.append(is_pinned)
            x_col.append(-1 if is_pinned else x_index.get((v, item), -1))
            coefs.append(coef)
            rate_of.append(rate)
    n_elig = len(req_of)
    req_of = np.asarray(req_of, dtype=np.intp)
    x_col = np.asarray(x_col, dtype=np.intp)
    pinned_mask = np.asarray(pinned_mask, dtype=bool)
    coefs = np.asarray(coefs, dtype=np.float64)
    rate_of = np.asarray(rate_of, dtype=np.float64)

    lp = LPBuilder(sense="max")
    xb = lp.add_variable_block("x", (len(x_pairs),), lb=0.0, ub=1.0)
    rb = lp.add_variable_block("r", (n_elig,), lb=0.0, ub=1.0)
    zb = lp.add_variable_block(
        "z", (n_elig,), lb=0.0, ub=1.0, cost=rate_of * w_max
    )
    # Per-entry rows: z + r (- coef * x) <= rhs.
    rows = np.arange(n_elig, dtype=np.intp)
    r_cols = rb.indices()
    z_cols = zb.indices()
    free = np.flatnonzero((~pinned_mask) & (x_col >= 0))
    rhs = np.where(pinned_mask, 1.0 + coefs, 1.0)
    lp.add_le_batch(
        np.concatenate([rows, rows, free]),
        np.concatenate([z_cols, r_cols, xb.flat(x_col[free])]),
        np.concatenate([np.ones(n_elig), np.ones(n_elig), -coefs[free]]),
        rhs,
    )
    # Per-request full service: sum_v r = 1.
    lp.add_eq_batch(
        req_of, r_cols, np.ones(n_elig), np.ones(len(request_rows))
    )
    # Cache capacities (x_pairs is cache-node-major: contiguous slices).
    cap_rows: list[np.ndarray] = []
    cap_cols: list[np.ndarray] = []
    cap_rhs: list[float] = []
    start = 0
    row_no = 0
    for v in cache_nodes:
        end = start
        while end < len(x_pairs) and x_pairs[end][0] == v:
            end += 1
        if end > start:
            cap_rows.append(np.full(end - start, row_no, dtype=np.intp))
            cap_cols.append(xb.flat(np.arange(start, end, dtype=np.intp)))
            cap_rhs.append(problem.network.cache_capacity(v))
            row_no += 1
        start = end
    if cap_rhs:
        cols = np.concatenate(cap_cols)
        lp.add_le_batch(
            np.concatenate(cap_rows),
            cols,
            np.ones(cols.size),
            np.asarray(cap_rhs),
        )
    return lp


def assemble_lp7(
    problem: ProblemInstance,
    *,
    assembly: str = "array",
    context: "SolverContext | None" = None,
) -> LPBuilder:
    """Assemble (without solving) LP (7) — benchmarking/testing hook."""
    prep = _prepare(problem, context)
    _dist, _sp, cache_nodes, requested, w_max, x_pairs, request_rows, _c = prep
    if assembly == "dict":
        return _assemble_lp7_dict(
            problem, cache_nodes, requested, x_pairs, request_rows, w_max
        )
    return _assemble_lp7_array(problem, cache_nodes, x_pairs, request_rows, w_max)


def _prepare(problem: ProblemInstance, context: "SolverContext | None"):
    """Distances, w_max, optimizable x pairs, and per-request source rows."""
    if context is not None:
        distance = context.distance
        sp = None
    else:
        sp = ShortestPathCache(problem)
        distance = sp.distance
    cache_nodes = [
        v for v in problem.network.cache_nodes() if problem.network.cache_capacity(v) > 0
    ]
    requested_items = sorted({i for (i, _s) in problem.demand}, key=repr)

    # w_max: upper bound over pairwise least costs (computed from candidate
    # sources, which are the only nodes whose costs enter the objective).
    candidate_sources = set(cache_nodes)
    for item in requested_items:
        candidate_sources |= problem.pinned_holders(item)
    if context is not None:
        w_max = context.finite_max_from(candidate_sources) if candidate_sources else 1.0
    else:
        w_max = 1.0
        for v in candidate_sources:
            dist, _ = sp.from_node(v)
            if dist:
                w_max = max(w_max, max(dist.values()))

    x_pairs = [
        (v, i)
        for v in cache_nodes
        for i in requested_items
        if (v, i) not in problem.pinned
    ]
    #: One row per request: ((item, s), rate, eligible sources, coefs).
    request_rows = []
    constant = 0.0
    for (item, s), rate in problem.demand.items():
        sources = []
        for v in set(cache_nodes) | problem.pinned_holders(item):
            if distance(v, s) < float("inf"):
                sources.append(v)
        if not sources:
            raise InfeasibleError(f"request {(item, s)!r} has no eligible source")
        sources.sort(key=repr)
        constant += rate * len(sources) * w_max
        coefs = [(w_max - distance(v, s)) / w_max for v in sources]
        request_rows.append(((item, s), rate, sources, coefs))
    return (
        distance, sp, cache_nodes, requested_items, w_max, x_pairs, request_rows,
        constant,
    )


def algorithm1(
    problem: ProblemInstance,
    *,
    polish: bool = True,
    context: "SolverContext | None" = None,
    assembly: str = "array",
) -> Algorithm1Result:
    """Run Algorithm 1 on an instance with (assumed) unlimited link capacities.

    Link capacities are ignored by design — the paper's premise is the
    lightly-loaded regime.  Raises :class:`InfeasibleError` when some request
    has no eligible source at all (no pinned holder or cache node reaches it).

    ``polish=True`` follows pipage rounding with a 1-swap local search on the
    true objective (:func:`~repro.core.submodular.local_search_swap`).  The
    LP (7) has many degenerate optima whose rounded solutions lack cross-node
    coordination; the polish recovers it while only ever increasing F_RNR,
    so Theorem 4.4's (1 - 1/e) guarantee is preserved.

    Pass a :class:`~repro.core.context.SolverContext` to take every pairwise
    cost from the dense distance matrix (shared with the polish and the RNR
    routing step) instead of running memoized Dijkstras on demand.
    ``assembly`` selects how LP (7) is built: ``"array"`` (COO batches, the
    fast default) or ``"dict"`` (keyed rows); both produce bit-identical LPs.
    """
    if assembly not in ("array", "dict"):
        raise InvalidProblemError("assembly must be 'array' or 'dict'")
    prep = _prepare(problem, context)
    (
        distance, sp, cache_nodes, requested_items, w_max, x_pairs, request_rows,
        constant,
    ) = prep

    if assembly == "dict":
        lp = _assemble_lp7_dict(
            problem, cache_nodes, requested_items, x_pairs, request_rows, w_max
        )
    else:
        lp = _assemble_lp7_array(problem, cache_nodes, x_pairs, request_rows, w_max)

    logger.debug(
        "Algorithm 1 LP: %d variables, %d constraints", lp.num_variables,
        lp.num_constraints,
    )
    lp_solution = lp.solve()

    if assembly == "dict":
        x_values = [lp_solution[("x", v, i)] for (v, i) in x_pairs]
    else:
        x_values = lp_solution.block("x").tolist()
    return finish_from_lp(
        problem,
        distance=distance,
        sp=sp,
        cache_nodes=cache_nodes,
        w_max=w_max,
        x_pairs=x_pairs,
        request_rows=request_rows,
        constant=constant,
        lp_objective=lp_solution.objective,
        x_values=x_values,
        polish=polish,
        context=context,
    )


def finish_from_lp(
    problem: ProblemInstance,
    *,
    distance,
    sp: ShortestPathCache | None,
    cache_nodes: list[Node],
    w_max: float,
    x_pairs: list[tuple[Node, Item]],
    request_rows: list,
    constant: float,
    lp_objective: float,
    x_values: list[float],
    polish: bool = True,
    context: "SolverContext | None" = None,
) -> Algorithm1Result:
    """Post-LP stage of Algorithm 1: concentrate r, pipage-round, route.

    Shared between :func:`algorithm1` (fresh assembly) and the template
    re-solver of :mod:`repro.adaptive.periodic` (patched objective): given
    the optimal fractional ``x`` of LP (7), rebuild the source selection,
    the pipage weights, the rounded (optionally polished) placement, and
    the RNR routing — all against ``problem``'s *current* demand rates.
    """
    fractional = {
        pair: value
        for pair, value in zip(x_pairs, x_values)
        if value > 1e-9
    }
    eligible: dict[tuple[Item, Node], list[Node]] = {
        key: sources for key, _rate, sources, _coefs in request_rows
    }

    # Re-optimize the source selection for the fractional placement before
    # deriving pipage weights: the LP has many degenerate optima that spread
    # r thinly across near-equivalent sources, which would wash out the
    # popularity signal the rounding needs.  For fixed x, F_RNR is maximized
    # by concentrating each request on the source minimizing its expected
    # cost x*w + (1-x)*w_max, so this substitution can only increase
    # F_RNR(x~, r) and keeps the Theorem 4.4 chain intact.
    r_hat: dict[tuple[Item, Node], Node] = {}
    for (item, s) in problem.demand:
        best_v, best_cost = None, float("inf")
        for v in eligible[(item, s)]:
            if (v, item) in problem.pinned:
                x_value = 1.0
            else:
                x_value = fractional.get((v, item), 0.0)
            w = distance(v, s)
            expected = x_value * w + (1.0 - x_value) * w_max
            if expected < best_cost:
                best_v, best_cost = v, expected
        r_hat[(item, s)] = best_v

    # Pipage weights (equation (23)): A_vi = sum_s lambda r (w_max - w_{v->s}).
    weights: dict[tuple[Node, Item], float] = {}
    for (item, s), rate in problem.demand.items():
        v = r_hat[(item, s)]
        key = (v, item)
        weights[key] = weights.get(key, 0.0) + rate * (w_max - distance(v, s))

    capacities = {v: problem.network.cache_capacity(v) for v in cache_nodes}
    rounded = pipage_round(
        fractional, capacities, lambda v, i, _x: weights.get((v, i), 0.0)
    )
    placement = Placement(rounded)
    if polish:
        placement = local_search_swap(
            problem,
            placement,
            sp_cache=sp,
            max_sweeps=12,
            context=context,
        )
    routing = route_to_nearest_replica(
        problem,
        placement,
        sp_cache=sp,
        context=context,
    )
    return Algorithm1Result(
        solution=Solution(placement, routing),
        lp_objective=lp_objective,
        constant=constant,
        w_max=w_max,
        fractional_placement=fractional,
    )
