"""Algorithm 1: integral caching and source selection under RNR (Section 4.1).

For networks with unlimited link capacities, the optimal routing given a
placement is route-to-nearest-replica, so the problem reduces to placing
content.  Algorithm 1 achieves a (1 - 1/e)-approximation in truly polynomial
time:

1. compute all-pairs least costs ``w_{v->s}`` and the bound ``w_max``;
2. solve the auxiliary LP (7), whose objective is the concave surrogate
   ``L_RNR`` of the cost saving ``F_RNR`` (Lemma 4.2);
3. pipage-round the fractional placement (equations (8)-(9), Lemma 4.3);
4. serve every request from its nearest replica.

Implementation notes: request sources are restricted to *eligible* nodes —
cache-capable nodes and pinned holders that can reach the requester — because
every other node is provably unused by an optimal LP solution; this shrinks
the LP without changing its optimum (only by an additive constant in the
objective, which is reported as ``constant`` for bound checking).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.pipage import pipage_round
from repro.core.problem import Item, Node, ProblemInstance
from repro.core.rnr import ShortestPathCache, route_to_nearest_replica
from repro.core.solution import Placement, Solution
from repro.core.submodular import local_search_swap
from repro.exceptions import InfeasibleError
from repro.flow.lp import LPBuilder

if TYPE_CHECKING:
    from repro.core.context import SolverContext

logger = logging.getLogger(__name__)


@dataclass
class Algorithm1Result:
    """Output of Algorithm 1 plus the quantities needed for its guarantee."""

    solution: Solution
    #: Optimal value of the auxiliary LP (7) over eligible sources.
    lp_objective: float
    #: Constant ``sum_r lambda_r * n_eligible(r) * w_max``; the LP objective
    #: equals ``constant - C_RNR`` at integral points, so
    #: ``constant - lp_objective`` lower-bounds no cost, and the chain of
    #: Theorem 4.4 gives ``constant - cost >= (1-1/e)(constant - cost_opt)``.
    constant: float
    w_max: float
    fractional_placement: dict[tuple[Node, Item], float]


def algorithm1(
    problem: ProblemInstance,
    *,
    polish: bool = True,
    context: "SolverContext | None" = None,
) -> Algorithm1Result:
    """Run Algorithm 1 on an instance with (assumed) unlimited link capacities.

    Link capacities are ignored by design — the paper's premise is the
    lightly-loaded regime.  Raises :class:`InfeasibleError` when some request
    has no eligible source at all (no pinned holder or cache node reaches it).

    ``polish=True`` follows pipage rounding with a 1-swap local search on the
    true objective (:func:`~repro.core.submodular.local_search_swap`).  The
    LP (7) has many degenerate optima whose rounded solutions lack cross-node
    coordination; the polish recovers it while only ever increasing F_RNR,
    so Theorem 4.4's (1 - 1/e) guarantee is preserved.

    Pass a :class:`~repro.core.context.SolverContext` to take every pairwise
    cost from the dense distance matrix (shared with the polish and the RNR
    routing step) instead of running memoized Dijkstras on demand.
    """
    if context is not None:
        distance = context.distance
    else:
        sp = ShortestPathCache(problem)
        distance = sp.distance
    cache_nodes = [
        v for v in problem.network.cache_nodes() if problem.network.cache_capacity(v) > 0
    ]
    requested_items = sorted({i for (i, _s) in problem.demand}, key=repr)

    # w_max: upper bound over pairwise least costs (computed from candidate
    # sources, which are the only nodes whose costs enter the objective).
    candidate_sources = set(cache_nodes)
    for item in requested_items:
        candidate_sources |= problem.pinned_holders(item)
    if context is not None:
        w_max = context.finite_max_from(candidate_sources) if candidate_sources else 1.0
    else:
        w_max = 1.0
        for v in candidate_sources:
            dist, _ = sp.from_node(v)
            if dist:
                w_max = max(w_max, max(dist.values()))

    lp = LPBuilder(sense="max")
    for v in cache_nodes:
        for i in requested_items:
            if (v, i) not in problem.pinned:
                lp.add_variable(("x", v, i), lb=0.0, ub=1.0)

    eligible: dict[tuple[Item, Node], list[Node]] = {}
    constant = 0.0
    for (item, s), rate in problem.demand.items():
        sources = []
        for v in set(cache_nodes) | problem.pinned_holders(item):
            if distance(v, s) < float("inf"):
                sources.append(v)
        if not sources:
            raise InfeasibleError(f"request {(item, s)!r} has no eligible source")
        sources.sort(key=repr)
        eligible[(item, s)] = sources
        constant += rate * len(sources) * w_max
        for v in sources:
            r_key = ("r", v, item, s)
            z_key = ("z", v, item, s)
            lp.add_variable(r_key, lb=0.0, ub=1.0)
            lp.add_variable(z_key, lb=0.0, ub=1.0)
            lp.add_objective_terms({z_key: rate * w_max})
            coef = (w_max - distance(v, s)) / w_max
            if (v, item) in problem.pinned:
                # x_vi == 1 permanently: z <= 1 - r + coef.
                lp.add_le({z_key: 1.0, r_key: 1.0}, 1.0 + coef)
            elif lp.has_variable(("x", v, item)):
                lp.add_le(
                    {z_key: 1.0, r_key: 1.0, ("x", v, item): -coef}, 1.0
                )
            else:
                lp.add_le({z_key: 1.0, r_key: 1.0}, 1.0)
        lp.add_eq({("r", v, item, s): 1.0 for v in sources}, 1.0)

    for v in cache_nodes:
        coeffs = {
            ("x", v, i): 1.0
            for i in requested_items
            if lp.has_variable(("x", v, i))
        }
        if coeffs:
            lp.add_le(coeffs, problem.network.cache_capacity(v))

    logger.debug(
        "Algorithm 1 LP: %d variables, %d constraints", lp.num_variables,
        lp.num_constraints,
    )
    lp_solution = lp.solve()

    fractional = {
        (v, i): lp_solution[("x", v, i)]
        for v in cache_nodes
        for i in requested_items
        if lp.has_variable(("x", v, i)) and lp_solution[("x", v, i)] > 1e-9
    }

    # Re-optimize the source selection for the fractional placement before
    # deriving pipage weights: the LP has many degenerate optima that spread
    # r thinly across near-equivalent sources, which would wash out the
    # popularity signal the rounding needs.  For fixed x, F_RNR is maximized
    # by concentrating each request on the source minimizing its expected
    # cost x*w + (1-x)*w_max, so this substitution can only increase
    # F_RNR(x~, r) and keeps the Theorem 4.4 chain intact.
    r_hat: dict[tuple[Item, Node], Node] = {}
    for (item, s) in problem.demand:
        best_v, best_cost = None, float("inf")
        for v in eligible[(item, s)]:
            if (v, item) in problem.pinned:
                x_value = 1.0
            else:
                x_value = fractional.get((v, item), 0.0)
            w = distance(v, s)
            expected = x_value * w + (1.0 - x_value) * w_max
            if expected < best_cost:
                best_v, best_cost = v, expected
        r_hat[(item, s)] = best_v

    # Pipage weights (equation (23)): A_vi = sum_s lambda r (w_max - w_{v->s}).
    weights: dict[tuple[Node, Item], float] = {}
    for (item, s), rate in problem.demand.items():
        v = r_hat[(item, s)]
        key = (v, item)
        weights[key] = weights.get(key, 0.0) + rate * (w_max - distance(v, s))

    capacities = {v: problem.network.cache_capacity(v) for v in cache_nodes}
    rounded = pipage_round(
        fractional, capacities, lambda v, i, _x: weights.get((v, i), 0.0)
    )
    placement = Placement(rounded)
    if polish:
        placement = local_search_swap(
            problem,
            placement,
            sp_cache=None if context is not None else sp,
            max_sweeps=12,
            context=context,
        )
    routing = route_to_nearest_replica(
        problem,
        placement,
        sp_cache=None if context is not None else sp,
        context=context,
    )
    return Algorithm1Result(
        solution=Solution(placement, routing),
        lp_objective=lp_solution.objective,
        constant=constant,
        w_max=w_max,
        fractional_placement=fractional,
    )
