"""Evaluation metrics: routing cost, link loads, congestion, feasibility.

These implement the quantities reported in the paper's Section 6:

- *routing cost* — objective (1a), evaluated against a (possibly different,
  e.g. true-instead-of-predicted) demand;
- *congestion* — the maximum load-to-capacity ratio over all links;
- *max cache occupancy* — used to expose the benchmarks' infeasible
  placements in the heterogeneous-size experiments (Fig. 5);
- a full feasibility report for constraints (1b)-(1f).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.problem import Node, ProblemInstance, Request
from repro.core.solution import Placement, Routing, Solution
from repro.graph.network import CacheNetwork

Edge = tuple[Node, Node]

_EPS = 1e-9


def path_cost(network: CacheNetwork, path: tuple[Node, ...]) -> float:
    """Routing cost of one concrete path."""
    return sum(network.cost(u, v) for u, v in zip(path[:-1], path[1:]))


def routing_cost(
    problem: ProblemInstance,
    routing: Routing,
    *,
    demand: dict[Request, float] | None = None,
) -> float:
    """Total routing cost (1a) of ``routing`` under ``demand``.

    ``demand`` defaults to the problem's own demand; pass the *true* rates to
    evaluate a solution computed from predicted rates (Section 6's protocol).
    Requests present in ``demand`` but unrouted contribute nothing here — use
    :func:`check_feasibility` to detect them.
    """
    demand = problem.demand if demand is None else demand
    network = problem.network
    total = 0.0
    for request, rate in demand.items():
        for pf in routing.paths.get(request, []):
            total += rate * pf.amount * path_cost(network, pf.path)
    return total


def link_loads(
    problem: ProblemInstance,
    routing: Routing,
    *,
    demand: dict[Request, float] | None = None,
) -> dict[Edge, float]:
    """Traffic load imposed on every link (left side of constraint (1b))."""
    demand = problem.demand if demand is None else demand
    loads: dict[Edge, float] = {}
    for request, rate in demand.items():
        for pf in routing.paths.get(request, []):
            for e in pf.edges():
                loads[e] = loads.get(e, 0.0) + rate * pf.amount
    return loads


def congestion(
    problem: ProblemInstance,
    routing: Routing,
    *,
    demand: dict[Request, float] | None = None,
) -> float:
    """Maximum load-to-capacity ratio over all links (0 if all uncapacitated).

    A zero-capacity link (possible when callers mutate edge attributes
    directly) reports ``inf`` congestion under positive load and 0 under no
    load, instead of raising :class:`ZeroDivisionError`.
    """
    worst = 0.0
    for (u, v), load in link_loads(problem, routing, demand=demand).items():
        cap = problem.network.capacity(u, v)
        if math.isinf(cap):
            continue
        if cap <= 0:
            if load > _EPS:
                return math.inf
            continue
        worst = max(worst, load / cap)
    return worst


def unserved_fraction(
    problem: ProblemInstance,
    routing: Routing,
    *,
    demand: dict[Request, float] | None = None,
    total_demand: float | None = None,
) -> float:
    """Demand-weighted fraction of requests ``routing`` leaves unserved.

    0.0 on a fully served instance; 1.0 when nothing is routed.  Pass
    ``total_demand`` to normalize against a larger reference volume (the
    failure-injection reports normalize against the *healthy* instance's
    demand so requests dropped with a failed requester node still count).
    """
    demand = problem.demand if demand is None else demand
    total = sum(demand.values()) if total_demand is None else float(total_demand)
    if total <= 0:
        return 0.0
    unserved = sum(
        rate * max(0.0, 1.0 - routing.served_fraction(request))
        for request, rate in demand.items()
    )
    unserved += max(0.0, total - sum(demand.values()))
    return min(1.0, unserved / total)


def max_cache_occupancy(problem: ProblemInstance, placement: Placement) -> float:
    """Max over cache nodes of used/available cache space (pinned is free)."""
    worst = 0.0
    for v in problem.network.cache_nodes():
        cap = problem.network.cache_capacity(v)
        used = placement.used_capacity(v, problem)
        if cap > 0:
            worst = max(worst, used / cap)
        elif used > _EPS:
            worst = math.inf
    return worst


@dataclass
class FeasibilityReport:
    """Outcome of checking a solution against constraints (1b)-(1f)."""

    cache_ok: bool = True
    links_ok: bool = True
    served_ok: bool = True
    sources_ok: bool = True
    violations: list[str] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.cache_ok and self.links_ok and self.served_ok and self.sources_ok


def check_feasibility(
    problem: ProblemInstance,
    solution: Solution,
    *,
    tol: float = 1e-6,
) -> FeasibilityReport:
    """Verify cache capacities, link capacities, service, and source validity."""
    report = FeasibilityReport()
    network = problem.network
    placement, routing = solution.placement, solution.routing

    for v in network.nodes:
        used = placement.used_capacity(v, problem)
        cap = network.cache_capacity(v)
        if used > cap + tol:
            report.cache_ok = False
            report.violations.append(
                f"cache at {v!r} holds {used:.4g} > capacity {cap:.4g}"
            )

    for (u, v), load in link_loads(problem, routing).items():
        if not network.has_edge(u, v):
            report.links_ok = False
            report.violations.append(f"routing uses missing link ({u!r}, {v!r})")
            continue
        cap = network.capacity(u, v)
        if load > cap + tol * max(1.0, cap):
            report.links_ok = False
            report.violations.append(
                f"link ({u!r}, {v!r}) carries {load:.6g} > capacity {cap:.6g}"
            )

    for request, rate in problem.demand.items():
        served = routing.served_fraction(request)
        if served < 1 - tol:
            report.served_ok = False
            report.violations.append(
                f"request {request!r} only served at fraction {served:.4g}"
            )
        item, requester = request
        for pf in routing.paths.get(request, []):
            if pf.sink != requester:
                report.sources_ok = False
                report.violations.append(
                    f"path for {request!r} ends at {pf.sink!r}, not the requester"
                )
        for source, fraction in routing.sources(request).items():
            available = placement[(source, item)]
            if (source, item) in problem.pinned:
                available = 1.0
            if fraction > available + tol:
                report.sources_ok = False
                report.violations.append(
                    f"request {request!r} draws {fraction:.4g} from {source!r} "
                    f"which stores only {available:.4g} of item {item!r}"
                )
    return report


def cache_hit_rate(
    problem: ProblemInstance,
    routing: Routing,
    *,
    demand: dict[Request, float] | None = None,
) -> float:
    """Fraction of demand served from caches rather than pinned origins.

    A request (fraction) counts as a cache hit when its serving source is
    not a pinned holder of the item — i.e. the traffic an operator keeps off
    the origin. Self-serving from the requester's own cache counts as a hit.
    """
    demand = problem.demand if demand is None else demand
    total = 0.0
    hits = 0.0
    for request, rate in demand.items():
        item, _s = request
        for source, fraction in routing.sources(request).items():
            total += rate * fraction
            if (source, item) not in problem.pinned:
                hits += rate * fraction
    return hits / total if total > 0 else 0.0


def path_stretch(
    problem: ProblemInstance,
    routing: Routing,
    *,
    demand: dict[Request, float] | None = None,
) -> float:
    """Demand-weighted mean ratio of served cost to the cheapest possible.

    The floor per request is the distance from the nearest node that COULD
    hold the item (cache-capable or pinned): 1.0 means every request is
    served as cheaply as any placement/routing ever could; larger values
    quantify detours from capacity constraints or suboptimal placement.
    Requests whose floor is 0 (servable from their own cache) contribute
    stretch 1.0 when actually served at zero cost.
    """
    from repro.core.rnr import ShortestPathCache

    demand = problem.demand if demand is None else demand
    sp = ShortestPathCache(problem)
    # Only nodes that could actually hold a copy enter the floor: caches
    # with strictly positive capacity (zero-capacity nodes would understate
    # the floor and overstate stretch).  Pinned holders stay regardless.
    candidates_base = {
        v
        for v in problem.network.cache_nodes()
        if problem.network.cache_capacity(v) > 0
    }
    total_weight = 0.0
    weighted = 0.0
    for request, rate in demand.items():
        item, s = request
        candidates = candidates_base | problem.pinned_holders(item)
        floor = min((sp.distance(v, s) for v in candidates), default=math.inf)
        served = sum(
            pf.amount * path_cost(problem.network, pf.path)
            for pf in routing.paths.get(request, [])
        )
        if math.isinf(floor):
            continue
        stretch = 1.0 if served <= floor + _EPS else (
            served / floor if floor > _EPS else math.inf
        )
        if math.isinf(stretch):
            continue
        total_weight += rate
        weighted += rate * stretch
    return weighted / total_weight if total_weight > 0 else 1.0


def utilization_profile(
    problem: ProblemInstance,
    routing: Routing,
    *,
    demand: dict[Request, float] | None = None,
) -> dict[Edge, float]:
    """Per-link load-to-capacity ratios (capacitated links only).

    Zero-capacity links report ``inf`` utilization under positive load and
    0.0 under no load (mirroring :func:`congestion`).
    """
    profile: dict[Edge, float] = {}
    for (u, v), load in link_loads(problem, routing, demand=demand).items():
        cap = problem.network.capacity(u, v)
        if math.isinf(cap):
            continue
        if cap <= 0:
            profile[(u, v)] = math.inf if load > _EPS else 0.0
        else:
            profile[(u, v)] = load / cap
    return profile


def summarize(problem: ProblemInstance, solution: Solution) -> dict[str, float]:
    """One-line metric bundle used by experiments and examples."""
    return {
        "routing_cost": routing_cost(problem, solution.routing),
        "congestion": congestion(problem, solution.routing),
        "max_cache_occupancy": max_cache_occupancy(problem, solution.placement),
        "cache_hit_rate": cache_hit_rate(problem, solution.routing),
        "feasible": float(check_feasibility(problem, solution).feasible),
    }
