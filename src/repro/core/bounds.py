"""Lower bounds on the optimal routing cost, in one place.

The paper compares its heuristics against several lower bounds; this module
collects them behind one API so experiments and users can report optimality
gaps:

- ``fcfr``: the exact FC-FR LP optimum — a valid lower bound for *every*
  regime (Section 2.4's ordering);
- ``rnr_relaxation``: ignore link capacities and serve every request from
  its nearest *possible* replica assuming every cache-capable node holds
  everything — a very fast bound, loose when caches are scarce;
- ``algorithm1_lp``: ``constant - LP(7) optimum``, the bound behind
  Theorem 4.4 (valid when links are uncapacitated);
- ``splittable``: for the binary-cache case, the splittable-flow optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.algorithm1 import algorithm1
from repro.core.fcfr import solve_fcfr
from repro.core.problem import ProblemInstance
from repro.core.rnr import ShortestPathCache
from repro.exceptions import ReproError


@dataclass(frozen=True)
class LowerBounds:
    """Available lower bounds; ``best`` is the largest (tightest)."""

    fcfr: float | None
    rnr_relaxation: float
    algorithm1_lp: float | None

    @property
    def best(self) -> float:
        candidates = [self.rnr_relaxation]
        if self.fcfr is not None:
            candidates.append(self.fcfr)
        if self.algorithm1_lp is not None:
            candidates.append(self.algorithm1_lp)
        return max(candidates)


def rnr_relaxation_bound(problem: ProblemInstance) -> float:
    """Serve each request from the nearest node that could possibly hold it.

    Relaxes cache capacities (every cache node holds everything) and link
    capacities (shortest paths) — sound for every regime, computable in
    milliseconds.
    """
    sp = ShortestPathCache(problem)
    total = 0.0
    for (item, s), rate in problem.demand.items():
        candidates = set(problem.network.cache_nodes()) | problem.pinned_holders(item)
        best = min(
            (sp.distance(v, s) for v in candidates),
            default=math.inf,
        )
        if math.isinf(best):
            return math.inf
        total += rate * best
    return total


def lower_bounds(
    problem: ProblemInstance,
    *,
    include_fcfr: bool = True,
    include_algorithm1: bool | None = None,
) -> LowerBounds:
    """Compute the applicable lower bounds for an instance.

    ``include_algorithm1`` defaults to True exactly when every link is
    uncapacitated (the bound is only valid there); ``include_fcfr`` may be
    disabled for very large instances (it solves the full LP (1)).
    """
    uncapacitated = all(
        math.isinf(c) for c in problem.network.capacities().values()
    )
    if include_algorithm1 is None:
        include_algorithm1 = uncapacitated

    fcfr_value: float | None = None
    if include_fcfr:
        try:
            fcfr_value = solve_fcfr(problem).cost
        except ReproError:
            fcfr_value = None

    alg1_value: float | None = None
    if include_algorithm1 and uncapacitated:
        try:
            result = algorithm1(problem, polish=False)
            alg1_value = result.constant - result.lp_objective
        except ReproError:
            alg1_value = None

    return LowerBounds(
        fcfr=fcfr_value,
        rnr_relaxation=rnr_relaxation_bound(problem),
        algorithm1_lp=alg1_value,
    )
