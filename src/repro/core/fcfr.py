"""Exact LP solution of the FC-FR case (fractional caching + fractional routing).

With both constraint families (1g)-(1h) relaxed to ``[0, 1]``, optimization
(1) is a plain linear program (Section 3) and its optimum lower-bounds every
other regime (IC-FR and IC-IR).  The solver below builds (1a)-(1f) directly:

- ``x_{vi}`` for cache-capable nodes (pinned copies are constants 1),
- ``r_v^{(i,s)}`` for eligible sources (cache nodes and pinned holders),
- ``f_{uv}^{(i,s)}`` per request and link,

and decomposes the optimal per-request flows into serving paths so the
result is a regular (fractional) :class:`~repro.core.solution.Solution`.

Two LP assembly paths are available (``assembly="array"`` is the default):
the array path registers ``x``/``r``/``f`` as contiguous
:class:`~repro.flow.lp.VariableBlock` columns and emits the constraint
families (1b)-(1f) as COO batches built from the graph's incidence arrays
(via the :class:`~repro.core.context.SolverContext` node index when one is
passed), while ``assembly="dict"`` keeps the original keyed per-row
assembly.  Both materialize bit-identical LPs, so they return bit-identical
optima — the array path is just built orders of magnitude faster at
Deltacom scale.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.problem import ProblemInstance
from repro.core.solution import Placement, Routing, Solution
from repro.exceptions import InfeasibleError, InvalidProblemError
from repro.flow.decomposition import PathFlow, decompose_single_source_flow
from repro.flow.lp import LPBuilder

if TYPE_CHECKING:
    from repro.core.context import SolverContext

Node = Hashable

_EPS = 1e-9

#: Virtual node used when decomposing a request's multi-source flow.
_VIRTUAL = ("__fcfr_source__",)


@dataclass
class FCFRResult:
    """Optimal fractional solution and its (lower-bound) routing cost."""

    solution: Solution
    cost: float


@dataclass(frozen=True)
class _FCFRRowMeta:
    """Where the capacity rows landed in the materialized ``b_ub`` vector.

    The array assembly appends its ``<=`` batches in a fixed order — (1b)
    finite link capacities, (1e) ``r <= x``, (1f) cache capacities — so the
    rhs rows that a capacity sweep patches are two contiguous ranges.
    """

    #: Edges with finite capacity, in (1b) row order; rows start at 0.
    link_edges: tuple[tuple[Node, Node], ...]
    #: First global ``b_ub`` row of the (1f) family.
    cache_row_start: int
    #: Cache nodes with a (1f) row, in row order.
    cache_nodes: tuple[Node, ...]


def _eligible_sources(problem: ProblemInstance, cache_nodes, requests) -> dict:
    eligible: dict = {}
    for (item, s) in requests:
        sources = sorted(set(cache_nodes) | problem.pinned_holders(item), key=repr)
        if not sources:
            raise InfeasibleError(f"request {(item, s)!r} has no possible source")
        eligible[(item, s)] = sources
    return eligible


def _assemble_dict(problem: ProblemInstance, cache_nodes, requests, edges, eligible, x_pairs):
    """Keyed (row-at-a-time) assembly of (1a)-(1f)."""
    network = problem.network
    graph = network.graph
    lp = LPBuilder(sense="min")
    for (v, i) in x_pairs:
        lp.add_variable(("x", v, i), lb=0.0, ub=1.0)
    for (item, s) in requests:
        for v in eligible[(item, s)]:
            lp.add_variable(("r", v, item, s), lb=0.0, ub=1.0)
    for (item, s) in requests:
        for (u, v) in edges:
            lp.add_variable(("f", item, s, u, v), lb=0.0, ub=1.0)

    # (1b) link capacities.
    for (u, v) in edges:
        cap = network.capacity(u, v)
        lp.add_le(
            {
                ("f", item, s, u, v): problem.demand[(item, s)]
                for (item, s) in requests
            },
            cap,
        )
    # (1c) flow conservation; (1d) full service; (1e) r <= x.
    for (item, s) in requests:
        sources = set(eligible[(item, s)])
        for node in graph.nodes:
            coeffs: dict = {}
            for _, w in graph.out_edges(node):
                key = ("f", item, s, node, w)
                coeffs[key] = coeffs.get(key, 0.0) + 1.0
            for w, _ in graph.in_edges(node):
                key = ("f", item, s, w, node)
                coeffs[key] = coeffs.get(key, 0.0) - 1.0
            rhs = -1.0 if node == s else 0.0
            if node in sources:
                coeffs[("r", node, item, s)] = -1.0
            lp.add_eq(coeffs, rhs)
        lp.add_eq({("r", v, item, s): 1.0 for v in eligible[(item, s)]}, 1.0)
        for v in eligible[(item, s)]:
            if (v, item) in problem.pinned:
                continue  # r <= 1 already enforced by the bound.
            lp.add_le({("r", v, item, s): 1.0, ("x", v, item): -1.0}, 0.0)
    # (1f) cache capacities (with sizes in the heterogeneous model).
    for v in cache_nodes:
        coeffs = {
            ("x", v, i): problem.size_of(i)
            for i in problem.catalog
            if lp.has_variable(("x", v, i))
        }
        if coeffs:
            lp.add_le(coeffs, network.cache_capacity(v))
    # (1a) objective.
    for (item, s) in requests:
        rate = problem.demand[(item, s)]
        for (u, v) in edges:
            lp.add_objective_terms(
                {("f", item, s, u, v): rate * network.cost(u, v)}
            )
    return lp


def _assemble_array(
    problem: ProblemInstance,
    cache_nodes,
    requests,
    edges,
    eligible,
    x_pairs,
    context: "SolverContext | None",
):
    """Vectorized COO assembly of the same LP (same row/column order)."""
    network = problem.network
    graph = network.graph
    if context is not None:
        node_index = context.node_index
    else:
        node_index = {n: k for k, n in enumerate(graph.nodes)}
    n_nodes = graph.number_of_nodes()
    n_edges = len(edges)
    n_req = len(requests)

    tail_idx = np.fromiter(
        (node_index[u] for u, _ in edges), dtype=np.intp, count=n_edges
    )
    head_idx = np.fromiter(
        (node_index[v] for _, v in edges), dtype=np.intp, count=n_edges
    )
    edge_costs = np.fromiter(
        (network.cost(u, v) for u, v in edges), dtype=np.float64, count=n_edges
    )
    caps = np.fromiter(
        (network.capacity(u, v) for u, v in edges), dtype=np.float64, count=n_edges
    )
    rates = np.fromiter(
        (problem.demand[r] for r in requests), dtype=np.float64, count=n_req
    )
    s_idx = np.fromiter(
        (node_index[s] for (_i, s) in requests), dtype=np.intp, count=n_req
    )

    # Flatten the per-request eligible-source lists (request-major order).
    x_index = {pair: k for k, pair in enumerate(x_pairs)}
    req_of: list[int] = []
    src_idx: list[int] = []
    x_col: list[int] = []
    elig_offsets = [0]
    for k, (item, s) in enumerate(requests):
        for v in eligible[(item, s)]:
            req_of.append(k)
            src_idx.append(node_index[v])
            x_col.append(-1 if (v, item) in problem.pinned else x_index[(v, item)])
        elig_offsets.append(len(req_of))
    req_of = np.asarray(req_of, dtype=np.intp)
    src_idx = np.asarray(src_idx, dtype=np.intp)
    x_col = np.asarray(x_col, dtype=np.intp)
    n_elig = req_of.size

    lp = LPBuilder(sense="min")
    xb = lp.add_variable_block("x", (len(x_pairs),), lb=0.0, ub=1.0)
    rb = lp.add_variable_block("r", (n_elig,), lb=0.0, ub=1.0)
    fb = lp.add_variable_block(
        "f", (n_req, n_edges), lb=0.0, ub=1.0, cost=np.outer(rates, edge_costs)
    )

    # (1b) link capacities: one row per finitely-capacitated edge.
    finite = np.flatnonzero(np.isfinite(caps))
    if finite.size:
        e_rep = np.repeat(finite, n_req)
        r_rep = np.tile(np.arange(n_req, dtype=np.intp), finite.size)
        lp.add_le_batch(
            np.repeat(np.arange(finite.size, dtype=np.intp), n_req),
            fb.flat(r_rep, e_rep),
            np.tile(rates, finite.size),
            caps[finite],
        )
    # (1c) flow conservation + (1d) full service, interleaved per request
    # exactly like the keyed path: for each request, one row per node
    # followed by the sum-r row.
    rows_per_req = n_nodes + 1
    r_rep = np.repeat(np.arange(n_req, dtype=np.intp), n_edges)
    e_rep = np.tile(np.arange(n_edges, dtype=np.intp), n_req)
    col_f = fb.flat(r_rep, e_rep)
    row_out = r_rep * rows_per_req + tail_idx[e_rep]
    row_in = r_rep * rows_per_req + head_idx[e_rep]
    r_cols = rb.indices()
    row_r = req_of * rows_per_req + src_idx
    row_sum = req_of * rows_per_req + n_nodes
    rhs = np.zeros(n_req * rows_per_req)
    rhs[np.arange(n_req, dtype=np.intp) * rows_per_req + s_idx] = -1.0
    rhs[np.arange(n_req, dtype=np.intp) * rows_per_req + n_nodes] = 1.0
    lp.add_eq_batch(
        np.concatenate([row_out, row_in, row_r, row_sum]),
        np.concatenate([col_f, col_f, r_cols, r_cols]),
        np.concatenate(
            [
                np.ones(col_f.size),
                -np.ones(col_f.size),
                -np.ones(n_elig),
                np.ones(n_elig),
            ]
        ),
        rhs,
    )
    # (1e) r <= x for optimizable (source, item) pairs.
    free = np.flatnonzero(x_col >= 0)
    if free.size:
        rows = np.arange(free.size, dtype=np.intp)
        lp.add_le_batch(
            np.concatenate([rows, rows]),
            np.concatenate([r_cols[free], xb.flat(x_col[free])]),
            np.concatenate([np.ones(free.size), -np.ones(free.size)]),
            np.zeros(free.size),
        )
    # (1f) cache capacities (x_pairs is cache-node-major, so slices are
    # contiguous per node).
    sizes = np.fromiter(
        (problem.size_of(i) for _v, i in x_pairs), dtype=np.float64, count=len(x_pairs)
    )
    cap_rows: list[np.ndarray] = []
    cap_cols: list[np.ndarray] = []
    cap_data: list[np.ndarray] = []
    cap_rhs: list[float] = []
    cap_row_nodes: list[Node] = []
    start = 0
    row_no = 0
    for v in cache_nodes:
        end = start
        while end < len(x_pairs) and x_pairs[end][0] == v:
            end += 1
        if end > start:
            cap_rows.append(np.full(end - start, row_no, dtype=np.intp))
            cap_cols.append(xb.flat(np.arange(start, end, dtype=np.intp)))
            cap_data.append(sizes[start:end])
            cap_rhs.append(network.cache_capacity(v))
            cap_row_nodes.append(v)
            row_no += 1
        start = end
    if cap_rhs:
        lp.add_le_batch(
            np.concatenate(cap_rows),
            np.concatenate(cap_cols),
            np.concatenate(cap_data),
            np.asarray(cap_rhs),
        )
    # Rhs row layout: (1b) rows [0, n_finite), (1e) rows [n_finite,
    # n_finite + n_free), (1f) rows after that.  Rows with infinite cache
    # capacity are dropped by add_le_batch, so only finite-cap nodes get one.
    finite_cache = [
        v for v, cap in zip(cap_row_nodes, cap_rhs) if np.isfinite(cap)
    ]
    meta = _FCFRRowMeta(
        link_edges=tuple(edges[e] for e in finite),
        cache_row_start=int(finite.size) + int(free.size),
        cache_nodes=tuple(finite_cache),
    )
    return lp, elig_offsets, meta


def _build_result(
    problem: ProblemInstance,
    requests,
    eligible,
    x_pairs,
    x_vals,
    flow_dicts,
    r_vals,
    objective: float,
) -> FCFRResult:
    placement = Placement()
    for (v, i), value in zip(x_pairs, x_vals):
        if value > _EPS:
            placement[(v, i)] = min(1.0, value)
    routing = Routing()
    for k, (item, s) in enumerate(requests):
        flow = flow_dicts[k]
        for j, v in enumerate(eligible[(item, s)]):
            r_value = r_vals[k][j]
            if r_value > _EPS:
                flow[(_VIRTUAL, v)] = flow.get((_VIRTUAL, v), 0.0) + r_value
        per_sink = decompose_single_source_flow(flow, _VIRTUAL, {s: 1.0})
        routing.paths[(item, s)] = [
            PathFlow(path=pf.path[1:], amount=pf.amount) for pf in per_sink[s]
        ]
    return FCFRResult(solution=Solution(placement, routing), cost=objective)


def solve_fcfr(
    problem: ProblemInstance,
    *,
    assembly: str = "array",
    context: "SolverContext | None" = None,
) -> FCFRResult:
    """Solve FC-FR exactly.  Raises :class:`InfeasibleError` when (1) is.

    ``assembly`` selects the LP assembly path (``"array"`` block/COO fast
    path, ``"dict"`` keyed rows — both produce bit-identical LPs); pass a
    :class:`~repro.core.context.SolverContext` to reuse its node index maps
    in the array path.
    """
    if assembly not in ("array", "dict"):
        raise InvalidProblemError("assembly must be 'array' or 'dict'")
    network = problem.network
    graph = network.graph
    edges = list(graph.edges)
    cache_nodes = [v for v in network.cache_nodes() if network.cache_capacity(v) > 0]
    requests = problem.requests
    eligible = _eligible_sources(problem, cache_nodes, requests)
    x_pairs = [
        (v, i)
        for v in cache_nodes
        for i in problem.catalog
        if (v, i) not in problem.pinned
    ]

    if assembly == "dict":
        lp = _assemble_dict(problem, cache_nodes, requests, edges, eligible, x_pairs)
        lp_solution = lp.solve()
        x_vals = [lp_solution[("x", v, i)] for (v, i) in x_pairs]
        flow_dicts = []
        r_vals = []
        for (item, s) in requests:
            flow = {}
            for (u, v) in edges:
                value = lp_solution[("f", item, s, u, v)]
                if value > _EPS:
                    flow[(u, v)] = value
            flow_dicts.append(flow)
            r_vals.append(
                [lp_solution[("r", v, item, s)] for v in eligible[(item, s)]]
            )
        return _build_result(
            problem, requests, eligible, x_pairs, x_vals, flow_dicts, r_vals,
            lp_solution.objective,
        )

    lp, elig_offsets, _meta = _assemble_array(
        problem, cache_nodes, requests, edges, eligible, x_pairs, context
    )
    return _result_from_arrays(
        problem, requests, eligible, x_pairs, edges, elig_offsets, lp.solve()
    )


def _result_from_arrays(
    problem, requests, eligible, x_pairs, edges, elig_offsets, lp_solution
) -> FCFRResult:
    """Decode an array-assembled LP solution into an :class:`FCFRResult`."""
    x_arr = lp_solution.block("x")
    f_arr = lp_solution.block("f")
    r_arr = lp_solution.block("r")
    flow_dicts = []
    r_vals = []
    for k in range(len(requests)):
        row = f_arr[k]
        flow = {
            edges[e]: float(row[e]) for e in np.flatnonzero(row > _EPS)
        }
        flow_dicts.append(flow)
        r_vals.append(r_arr[elig_offsets[k] : elig_offsets[k + 1]].tolist())
    return _build_result(
        problem, requests, eligible, x_pairs, x_arr.tolist(), flow_dicts, r_vals,
        lp_solution.objective,
    )


class FCFRTemplate:
    """One assembled FC-FR LP, re-solved across capacity scenarios.

    A survivability or provisioning sweep solves optimization (1) many times
    on the *same* topology and demand, varying only link / cache capacities.
    Those capacities live purely in the ``b_ub`` right-hand side of the
    materialized LP, so the CSR constraint matrices can be assembled once
    (the dominant cost at Deltacom scale) and only two contiguous rhs row
    ranges patched per scenario via :class:`~repro.flow.lp.LPTemplate`.

    Every :meth:`solve` rewrites *all* capacity rows (baseline plus the
    scenario's overrides), so scenarios never leak into one another and
    ``solve()`` with no overrides is bit-identical to
    :func:`solve_fcfr(..., assembly="array")` — the patched arrays equal the
    fresh assembly's arrays exactly.

    Patch-rule consequences (see :class:`~repro.flow.lp.LPTemplate`): a
    fresh assembly *drops* rows for infinitely-capacitated links and
    caches, so overrides must target elements that had finite capacity at
    assembly time and must stay finite.  Anything else needs a fresh
    :func:`solve_fcfr` call.
    """

    def __init__(
        self, problem: ProblemInstance, *, context: "SolverContext | None" = None
    ) -> None:
        network = problem.network
        self.problem = problem
        self._edges = list(network.graph.edges)
        cache_nodes = [
            v for v in network.cache_nodes() if network.cache_capacity(v) > 0
        ]
        self._requests = problem.requests
        self._eligible = _eligible_sources(problem, cache_nodes, self._requests)
        self._x_pairs = [
            (v, i)
            for v in cache_nodes
            for i in problem.catalog
            if (v, i) not in problem.pinned
        ]
        lp, self._elig_offsets, self._meta = _assemble_array(
            problem,
            cache_nodes,
            self._requests,
            self._edges,
            self._eligible,
            self._x_pairs,
            context,
        )
        self._frozen = lp.freeze()
        meta = self._meta
        self._base_link = np.fromiter(
            (network.capacity(u, v) for u, v in meta.link_edges),
            dtype=np.float64,
            count=len(meta.link_edges),
        )
        self._base_cache = np.fromiter(
            (network.cache_capacity(v) for v in meta.cache_nodes),
            dtype=np.float64,
            count=len(meta.cache_nodes),
        )
        self._link_pos = {e: k for k, e in enumerate(meta.link_edges)}
        self._cache_pos = {v: k for k, v in enumerate(meta.cache_nodes)}

    @staticmethod
    def _patched(base: np.ndarray, overrides, pos: dict, kind: str) -> np.ndarray:
        values = base.copy()
        for element, cap in overrides.items():
            k = pos.get(element)
            if k is None:
                raise InvalidProblemError(
                    f"{kind} {element!r} has no capacity row in the template "
                    "(it was infinitely capacitated, absent, or zero-capacity "
                    "at assembly time); re-assemble with solve_fcfr instead"
                )
            cap = float(cap)
            if not np.isfinite(cap):
                raise InvalidProblemError(
                    f"capacity override for {kind} {element!r} must be finite "
                    "(a fresh assembly would drop the row); "
                    "re-assemble with solve_fcfr instead"
                )
            values[k] = cap
        return values

    def solve(
        self,
        *,
        link_capacities: dict | None = None,
        cache_capacities: dict | None = None,
    ) -> FCFRResult:
        """Solve one capacity scenario: baseline capacities plus overrides.

        ``link_capacities`` maps ``(u, v)`` edges and ``cache_capacities``
        maps cache nodes to replacement capacities; unlisted elements keep
        the problem's baseline.  Raises
        :class:`~repro.exceptions.InvalidProblemError` for overrides the
        template cannot express (see the class docstring) and
        :class:`~repro.exceptions.InfeasibleError` when the scenario admits
        no fractional solution.
        """
        meta = self._meta
        link = self._patched(
            self._base_link, link_capacities or {}, self._link_pos, "link"
        )
        cache = self._patched(
            self._base_cache, cache_capacities or {}, self._cache_pos, "cache node"
        )
        if link.size:
            self._frozen.set_b_ub(np.arange(link.size, dtype=np.intp), link)
        if cache.size:
            self._frozen.set_b_ub(
                np.arange(cache.size, dtype=np.intp) + meta.cache_row_start, cache
            )
        return _result_from_arrays(
            self.problem,
            self._requests,
            self._eligible,
            self._x_pairs,
            self._edges,
            self._elig_offsets,
            self._frozen.solve(),
        )


def fcfr_capacity_sweep(
    problem: ProblemInstance,
    scenarios,
    *,
    context: "SolverContext | None" = None,
) -> list[FCFRResult]:
    """Solve FC-FR across capacity scenarios, assembling the LP once.

    ``scenarios`` is an iterable of mappings with optional ``"link"`` and
    ``"cache"`` keys holding the per-scenario capacity overrides accepted by
    :meth:`FCFRTemplate.solve`.  Returns one :class:`FCFRResult` per
    scenario, in order — each bit-identical to a from-scratch
    :func:`solve_fcfr` on the correspondingly re-capacitated problem.
    """
    template = FCFRTemplate(problem, context=context)
    return [
        template.solve(
            link_capacities=scenario.get("link"),
            cache_capacities=scenario.get("cache"),
        )
        for scenario in scenarios
    ]


def assemble_fcfr_lp(
    problem: ProblemInstance,
    *,
    assembly: str = "array",
    context: "SolverContext | None" = None,
) -> LPBuilder:
    """Assemble (without solving) the FC-FR LP — benchmarking/testing hook."""
    network = problem.network
    edges = list(network.graph.edges)
    cache_nodes = [v for v in network.cache_nodes() if network.cache_capacity(v) > 0]
    requests = problem.requests
    eligible = _eligible_sources(problem, cache_nodes, requests)
    x_pairs = [
        (v, i)
        for v in cache_nodes
        for i in problem.catalog
        if (v, i) not in problem.pinned
    ]
    if assembly == "dict":
        lp = _assemble_dict(problem, cache_nodes, requests, edges, eligible, x_pairs)
    else:
        lp, _, _ = _assemble_array(
            problem, cache_nodes, requests, edges, eligible, x_pairs, context
        )
    return lp
