"""Exact LP solution of the FC-FR case (fractional caching + fractional routing).

With both constraint families (1g)-(1h) relaxed to ``[0, 1]``, optimization
(1) is a plain linear program (Section 3) and its optimum lower-bounds every
other regime (IC-FR and IC-IR).  The solver below builds (1a)-(1f) directly:

- ``x_{vi}`` for cache-capable nodes (pinned copies are constants 1),
- ``r_v^{(i,s)}`` for eligible sources (cache nodes and pinned holders),
- ``f_{uv}^{(i,s)}`` per request and link,

and decomposes the optimal per-request flows into serving paths so the
result is a regular (fractional) :class:`~repro.core.solution.Solution`.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from repro.core.problem import ProblemInstance
from repro.core.solution import Placement, Routing, Solution
from repro.exceptions import InfeasibleError
from repro.flow.decomposition import PathFlow, decompose_single_source_flow
from repro.flow.lp import LPBuilder

Node = Hashable

_EPS = 1e-9

#: Virtual node used when decomposing a request's multi-source flow.
_VIRTUAL = ("__fcfr_source__",)


@dataclass
class FCFRResult:
    """Optimal fractional solution and its (lower-bound) routing cost."""

    solution: Solution
    cost: float


def solve_fcfr(problem: ProblemInstance) -> FCFRResult:
    """Solve FC-FR exactly.  Raises :class:`InfeasibleError` when (1) is."""
    network = problem.network
    graph = network.graph
    edges = list(graph.edges)
    cache_nodes = [v for v in network.cache_nodes() if network.cache_capacity(v) > 0]
    requests = problem.requests

    lp = LPBuilder(sense="min")
    for v in cache_nodes:
        for i in problem.catalog:
            if (v, i) not in problem.pinned:
                lp.add_variable(("x", v, i), lb=0.0, ub=1.0)
    eligible: dict = {}
    for (item, s) in requests:
        sources = sorted(set(cache_nodes) | problem.pinned_holders(item), key=repr)
        if not sources:
            raise InfeasibleError(f"request {(item, s)!r} has no possible source")
        eligible[(item, s)] = sources
        for v in sources:
            lp.add_variable(("r", v, item, s), lb=0.0, ub=1.0)
        for (u, v) in edges:
            lp.add_variable(("f", item, s, u, v), lb=0.0, ub=1.0)

    # (1b) link capacities.
    for (u, v) in edges:
        cap = network.capacity(u, v)
        lp.add_le(
            {
                ("f", item, s, u, v): problem.demand[(item, s)]
                for (item, s) in requests
            },
            cap,
        )
    # (1c) flow conservation; (1d) full service; (1e) r <= x.
    for (item, s) in requests:
        sources = set(eligible[(item, s)])
        for node in graph.nodes:
            coeffs: dict = {}
            for _, w in graph.out_edges(node):
                key = ("f", item, s, node, w)
                coeffs[key] = coeffs.get(key, 0.0) + 1.0
            for w, _ in graph.in_edges(node):
                key = ("f", item, s, w, node)
                coeffs[key] = coeffs.get(key, 0.0) - 1.0
            rhs = -1.0 if node == s else 0.0
            if node in sources:
                coeffs[("r", node, item, s)] = -1.0
            lp.add_eq(coeffs, rhs)
        lp.add_eq({("r", v, item, s): 1.0 for v in eligible[(item, s)]}, 1.0)
        for v in eligible[(item, s)]:
            if (v, item) in problem.pinned:
                continue  # r <= 1 already enforced by the bound.
            lp.add_le({("r", v, item, s): 1.0, ("x", v, item): -1.0}, 0.0)
    # (1f) cache capacities (with sizes in the heterogeneous model).
    for v in cache_nodes:
        coeffs = {
            ("x", v, i): problem.size_of(i)
            for i in problem.catalog
            if lp.has_variable(("x", v, i))
        }
        if coeffs:
            lp.add_le(coeffs, network.cache_capacity(v))
    # (1a) objective.
    for (item, s) in requests:
        rate = problem.demand[(item, s)]
        for (u, v) in edges:
            lp.add_objective_terms(
                {("f", item, s, u, v): rate * network.cost(u, v)}
            )

    lp_solution = lp.solve()

    placement = Placement()
    for v in cache_nodes:
        for i in problem.catalog:
            if lp.has_variable(("x", v, i)):
                value = lp_solution[("x", v, i)]
                if value > _EPS:
                    placement[(v, i)] = min(1.0, value)

    routing = Routing()
    for (item, s) in requests:
        flow: dict = {}
        for (u, v) in edges:
            value = lp_solution[("f", item, s, u, v)]
            if value > _EPS:
                flow[(u, v)] = value
        for v in eligible[(item, s)]:
            r_value = lp_solution[("r", v, item, s)]
            if r_value > _EPS:
                flow[(_VIRTUAL, v)] = flow.get((_VIRTUAL, v), 0.0) + r_value
        per_sink = decompose_single_source_flow(flow, _VIRTUAL, {s: 1.0})
        routing.paths[(item, s)] = [
            PathFlow(path=pf.path[1:], amount=pf.amount) for pf in per_sink[s]
        ]
    return FCFRResult(solution=Solution(placement, routing), cost=lp_solution.objective)
