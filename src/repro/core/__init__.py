"""Core algorithms of the paper: problem model, Algorithms 1-2, alternating opt."""

from repro.core.algorithm1 import Algorithm1Result, algorithm1
from repro.core.api import SolveResult, solve
from repro.core.bounds import LowerBounds, lower_bounds, rnr_relaxation_bound
from repro.core.complexity import RegimeComplexity, all_regimes, regime_complexity
from repro.core.exact import ExactResult, exact_icir
from repro.core.femtocaching import (
    bipartite_network,
    femtocaching_instance,
    femtocaching_problem,
)
from repro.core.alternating import AlternatingResult, alternating_optimization
from repro.core.context import RequesterBlock, SolverContext, relevant_sources
from repro.core.decomposed import (
    ClusterPartition,
    ClusterReport,
    DecomposedResult,
    DecompositionGap,
    cluster_subproblem,
    decomposed_solve,
    decomposition_gap,
    default_cluster_count,
    partition_graph,
    resolve_clusters,
    restrict_partition,
    super_topology,
    touched_clusters,
)
from repro.core.evaluation import (
    FeasibilityReport,
    cache_hit_rate,
    check_feasibility,
    congestion,
    link_loads,
    max_cache_occupancy,
    path_stretch,
    routing_cost,
    summarize,
    unserved_fraction,
    utilization_profile,
)
from repro.core.fcfr import (
    FCFRResult,
    FCFRTemplate,
    fcfr_capacity_sweep,
    solve_fcfr,
)
from repro.core.msufp import (
    MSUFPCommodity,
    MSUFPResult,
    solve_binary_cache_case,
    solve_msufp,
    splittable_binary_cache,
    theorem_4_7_load_bound,
)
from repro.core.pipage import pipage_round
from repro.core.placement import (
    ServingPath,
    extract_serving_paths,
    optimize_placement,
    optimize_placement_greedy,
    optimize_placement_lp,
    placement_cost,
    placement_saving,
)
from repro.core.problem import ProblemInstance, Request, pin_full_catalog
from repro.core.rnr import ShortestPathCache, route_to_nearest_replica
from repro.core.routing import (
    MMSFPTemplate,
    greedy_unsplittable_routing,
    mmsfp_routing,
    mmufp_routing,
    randomized_rounding_routing,
)
from repro.core.solution import Placement, Routing, Solution
from repro.core.submodular import RNRCostSaving, greedy_rnr_placement

__all__ = [
    "solve",
    "SolveResult",
    "regime_complexity",
    "all_regimes",
    "RegimeComplexity",
    "exact_icir",
    "ExactResult",
    "lower_bounds",
    "LowerBounds",
    "rnr_relaxation_bound",
    "bipartite_network",
    "femtocaching_instance",
    "femtocaching_problem",
    "ProblemInstance",
    "Request",
    "pin_full_catalog",
    "Placement",
    "Routing",
    "Solution",
    "FeasibilityReport",
    "check_feasibility",
    "routing_cost",
    "unserved_fraction",
    "congestion",
    "link_loads",
    "max_cache_occupancy",
    "cache_hit_rate",
    "path_stretch",
    "utilization_profile",
    "summarize",
    "route_to_nearest_replica",
    "ShortestPathCache",
    "SolverContext",
    "RequesterBlock",
    "relevant_sources",
    "ClusterPartition",
    "ClusterReport",
    "DecomposedResult",
    "DecompositionGap",
    "cluster_subproblem",
    "decomposed_solve",
    "decomposition_gap",
    "default_cluster_count",
    "partition_graph",
    "resolve_clusters",
    "restrict_partition",
    "super_topology",
    "touched_clusters",
    "RNRCostSaving",
    "greedy_rnr_placement",
    "pipage_round",
    "algorithm1",
    "Algorithm1Result",
    "solve_msufp",
    "MSUFPCommodity",
    "MSUFPResult",
    "solve_binary_cache_case",
    "splittable_binary_cache",
    "theorem_4_7_load_bound",
    "extract_serving_paths",
    "ServingPath",
    "placement_cost",
    "placement_saving",
    "optimize_placement",
    "optimize_placement_lp",
    "optimize_placement_greedy",
    "mmsfp_routing",
    "MMSFPTemplate",
    "mmufp_routing",
    "randomized_rounding_routing",
    "greedy_unsplittable_routing",
    "alternating_optimization",
    "AlternatingResult",
    "solve_fcfr",
    "FCFRResult",
    "FCFRTemplate",
    "fcfr_capacity_sweep",
]
