"""Source selection + routing under a fixed placement (Section 4.3.2).

With the placement fixed, adding one virtual source per content item — wired
by free uncapacitated links to every node holding that item — reduces joint
source selection and routing to a pure routing problem in the auxiliary
graph ``G^x`` (the per-item analogue of Lemma 4.5):

- fractional routing: the minimum-cost multiple-source splittable flow
  problem (MMSFP), solved exactly as an LP with one commodity per item;
- integral routing: MMUFP, NP-hard, attacked by the paper's two heuristics —
  LP relaxation with randomized path rounding, and greedy capacity-aware
  path assignment.
"""

from __future__ import annotations

import math
from collections.abc import Hashable
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.evaluation import congestion, routing_cost
from repro.core.problem import Item, ProblemInstance
from repro.core.solution import Placement, Routing
from repro.exceptions import InfeasibleError
from repro.flow.decomposition import PathFlow, decompose_single_source_flow
from repro.flow.lp import LPBuilder
from repro.flow.mincost import (
    ArcIncidence,
    Commodity,
    _balance_rhs,
    min_cost_multicommodity_flow,
)
from repro.graph.network import CAPACITY, COST
from repro.graph.shortest_paths import reconstruct_path, single_source_dijkstra

Node = Hashable

_EPS = 1e-9


def _item_source(item: Item) -> tuple[str, Item]:
    return ("__item_source__", item)


def holders_of(problem: ProblemInstance, placement: Placement, item: Item) -> set[Node]:
    """Nodes that can serve ``item``: integral replicas plus pinned copies."""
    holders = {
        v for v in placement.holders(item) if placement[(v, item)] >= 1 - 1e-6
    }
    holders |= problem.pinned_holders(item)
    return holders


def build_item_auxiliary_graph(
    problem: ProblemInstance, placement: Placement
) -> tuple[nx.DiGraph, dict[Item, tuple[str, Item]]]:
    """The auxiliary graph ``G^x`` with one virtual source per requested item."""
    aux = problem.network.graph.copy()
    sources: dict[Item, tuple[str, Item]] = {}
    for item in sorted({i for (i, _s) in problem.demand}, key=repr):
        vs = _item_source(item)
        aux.add_node(vs)
        sources[item] = vs
        holders = holders_of(problem, placement, item)
        if not holders:
            raise InfeasibleError(f"no node holds item {item!r}")
        for holder in sorted(holders, key=repr):
            aux.add_edge(vs, holder, **{COST: 0.0, CAPACITY: math.inf})
    return aux, sources


def _strip_virtual(path: tuple[Node, ...]) -> tuple[Node, ...]:
    if path and isinstance(path[0], tuple) and path[0][0] == "__item_source__":
        return path[1:]
    return path


@dataclass
class FractionalRoutingResult:
    routing: Routing
    #: Optimal MMSFP objective — a lower bound on any integral routing cost
    #: under the same placement.
    cost: float


def mmsfp_routing(
    problem: ProblemInstance, placement: Placement
) -> FractionalRoutingResult:
    """Optimal fractional routing (MMSFP) under the given placement."""
    aux, sources = build_item_auxiliary_graph(problem, placement)
    commodities = []
    for item, vs in sources.items():
        demands: dict[Node, float] = {}
        for (i, s), rate in problem.demand.items():
            if i == item:
                demands[s] = demands.get(s, 0.0) + rate
        commodities.append(Commodity(name=item, source=vs, demands=demands))
    flows, cost = min_cost_multicommodity_flow(aux, commodities)
    routing = Routing()
    for commodity in commodities:
        per_sink = decompose_single_source_flow(
            flows[commodity.name], commodity.source, commodity.demands
        )
        for (i, s), rate in problem.demand.items():
            if i != commodity.name:
                continue
            routing.paths[(i, s)] = [
                PathFlow(path=_strip_virtual(pf.path), amount=pf.amount / rate)
                for pf in per_sink[s]
            ]
    return FractionalRoutingResult(routing=routing, cost=cost)


def build_candidate_auxiliary_graph(
    problem: ProblemInstance,
) -> tuple[nx.DiGraph, dict[Item, tuple[str, Item]], dict[Item, list[Node]]]:
    """Aux graph with virtual arcs to every *possible* holder of each item.

    Unlike :func:`build_item_auxiliary_graph` (arcs only to the current
    placement's holders), the candidate graph wires each item's virtual
    source to every node that could ever hold it — positive-capacity cache
    nodes plus the item's pinned holders.  Its edge set is therefore
    placement-independent, which is what lets an MMSFP LP built on it be
    frozen once and re-bounded per placement (:class:`MMSFPTemplate`).
    """
    aux = problem.network.graph.copy()
    cache_nodes = [
        v
        for v in problem.network.cache_nodes()
        if problem.network.cache_capacity(v) > 0
    ]
    sources: dict[Item, tuple[str, Item]] = {}
    candidates: dict[Item, list[Node]] = {}
    for item in sorted({i for (i, _s) in problem.demand}, key=repr):
        vs = _item_source(item)
        aux.add_node(vs)
        sources[item] = vs
        cand = sorted(set(cache_nodes) | problem.pinned_holders(item), key=repr)
        candidates[item] = cand
        for holder in cand:
            aux.add_edge(vs, holder, **{COST: 0.0, CAPACITY: math.inf})
    return aux, sources, candidates


def _assemble_candidate_mmsfp(
    aux: nx.DiGraph,
    commodities: list[Commodity],
    inc: ArcIncidence,
    ub_of_item: dict[Item, np.ndarray] | None,
) -> LPBuilder:
    """The candidate-graph MMSFP as an LP (multicommodity array assembly).

    Mirrors :func:`repro.flow.mincost.min_cost_multicommodity_flow`'s array
    path over ``aux``, except every per-commodity block carries explicit
    upper bounds (``ub_of_item``; default unbounded) so a frozen copy can
    gate virtual arcs open/closed per placement.  Built identically whether
    it is solved fresh or frozen — the parity tests rely on that.
    """
    n_edges = len(inc.edges)
    costs = np.fromiter(
        (d.get(COST, 1.0) for _, _, d in aux.edges(data=True)),
        dtype=np.float64,
        count=n_edges,
    )
    caps = np.fromiter(
        (d.get(CAPACITY, math.inf) for _, _, d in aux.edges(data=True)),
        dtype=np.float64,
        count=n_edges,
    )
    lp = LPBuilder(sense="min")
    offsets = np.empty(len(commodities), dtype=np.intp)
    for k, commodity in enumerate(commodities):
        ub = (
            math.inf
            if ub_of_item is None or commodity.name not in ub_of_item
            else ub_of_item[commodity.name]
        )
        block = lp.add_variable_block(
            ("f", commodity.name), (n_edges,), lb=0.0, ub=ub, cost=costs
        )
        offsets[k] = block.offset
    finite = np.flatnonzero(np.isfinite(caps))
    if finite.size:
        n_comm = len(commodities)
        e_rep = np.repeat(finite, n_comm)
        c_rep = np.tile(np.arange(n_comm, dtype=np.intp), finite.size)
        lp.add_le_batch(
            np.repeat(np.arange(finite.size, dtype=np.intp), n_comm),
            offsets[c_rep] + e_rep,
            np.ones(e_rep.size),
            caps[finite],
        )
    edge_cols = np.arange(n_edges, dtype=np.intp)
    ones = np.ones(n_edges)
    for k, commodity in enumerate(commodities):
        demands = {t: d for t, d in commodity.demands.items() if d > _EPS}
        lp.add_eq_batch(
            np.concatenate([inc.tail_idx, inc.head_idx]),
            np.concatenate([offsets[k] + edge_cols, offsets[k] + edge_cols]),
            np.concatenate([ones, -ones]),
            _balance_rhs(inc, commodity.source, demands, sum(demands.values())),
        )
    return lp


class MMSFPTemplate:
    """Reusable MMSFP LP over the candidate auxiliary graph.

    Alternating optimization solves an MMSFP with the same topology, demand
    and costs at every iteration — only the set of replica-holding nodes
    changes.  This template assembles the LP once over
    :func:`build_candidate_auxiliary_graph` (virtual arcs to *every*
    possible holder), freezes it (:meth:`~repro.flow.lp.LPBuilder.freeze`),
    and per placement merely patches each item's virtual-arc upper bounds:
    ``inf`` on arcs to current holders, ``0`` elsewhere.  Each solve is
    bit-identical to a fresh assembly of the same bounded LP
    (``tests/flow/test_lp_template.py``).

    Note the feasible set equals :func:`mmsfp_routing`'s (closed arcs carry
    no flow, and a commodity cannot traverse another item's virtual source
    — it has no incoming arcs), so the *optimal cost* matches; with
    degenerate optima the returned vertex (flow split) may legitimately
    differ from the holder-only assembly, which is why
    ``alternating_optimization`` keeps the template opt-in.
    """

    def __init__(self, problem: ProblemInstance) -> None:
        self._problem = problem
        aux, sources, candidates = build_candidate_auxiliary_graph(problem)
        self._sources = sources
        self._candidates = candidates
        self._inc = ArcIncidence.from_graph(aux)
        self._commodities: list[Commodity] = []
        for item, vs in sources.items():
            demands: dict[Node, float] = {}
            for (i, s), rate in problem.demand.items():
                if i == item:
                    demands[s] = demands.get(s, 0.0) + rate
            self._commodities.append(Commodity(name=item, source=vs, demands=demands))
        edge_pos = {e: k for k, e in enumerate(self._inc.edges)}
        #: Per item: virtual-arc edge positions aligned with candidates[item].
        self._arc_pos: dict[Item, np.ndarray] = {
            item: np.fromiter(
                (edge_pos[(sources[item], h)] for h in cand),
                dtype=np.intp,
                count=len(cand),
            )
            for item, cand in candidates.items()
        }
        self._frozen = _assemble_candidate_mmsfp(
            aux, self._commodities, self._inc, None
        ).freeze()

    def _holder_bounds(self, placement: Placement) -> dict[Item, np.ndarray]:
        """Per-item ub arrays over aux edges: gate virtual arcs by holders."""
        n_edges = len(self._inc.edges)
        out: dict[Item, np.ndarray] = {}
        for item, cand in self._candidates.items():
            holders = holders_of(self._problem, placement, item)
            if not holders:
                raise InfeasibleError(f"no node holds item {item!r}")
            ub = np.full(n_edges, math.inf)
            pos = self._arc_pos[item]
            open_mask = np.fromiter(
                (h in holders for h in cand), dtype=bool, count=len(cand)
            )
            ub[pos[~open_mask]] = 0.0
            out[item] = ub
        return out

    def solve(self, placement: Placement) -> FractionalRoutingResult:
        """Optimal fractional routing under ``placement`` (patched solve)."""
        for item, ub in self._holder_bounds(placement).items():
            self._frozen.set_block_bounds(("f", item), ub=ub)
        solution = self._frozen.solve()
        problem = self._problem
        routing = Routing()
        for commodity in self._commodities:
            values = solution.block(("f", commodity.name))
            flow = {
                self._inc.edges[k]: float(values[k])
                for k in np.flatnonzero(values > _EPS)
            }
            per_sink = decompose_single_source_flow(
                flow, commodity.source, commodity.demands
            )
            for (i, s), rate in problem.demand.items():
                if i != commodity.name:
                    continue
                routing.paths[(i, s)] = [
                    PathFlow(path=_strip_virtual(pf.path), amount=pf.amount / rate)
                    for pf in per_sink[s]
                ]
        return FractionalRoutingResult(routing=routing, cost=solution.objective)


def randomized_rounding_routing(
    problem: ProblemInstance,
    placement: Placement,
    *,
    rng: np.random.Generator | None = None,
    n_samples: int = 16,
) -> Routing:
    """MMUFP heuristic: LP relaxation + randomized path rounding.

    Draw each request's single path proportionally to its fractional flow,
    ``n_samples`` times; keep the draw with the best (congestion clamped at
    feasibility, then cost) score — the standard rounding of [26].
    """
    rng = rng or np.random.default_rng()
    fractional = mmsfp_routing(problem, placement)
    requests = problem.requests
    options: dict = {}
    for request in requests:
        pfs = fractional.routing.paths[request]
        amounts = np.array([pf.amount for pf in pfs])
        total = amounts.sum()
        if total <= _EPS:
            raise InfeasibleError(f"request {request!r} has no fractional flow")
        options[request] = (pfs, amounts / total)

    best: Routing | None = None
    best_score: tuple[float, float] | None = None
    for _ in range(max(1, n_samples)):
        candidate = Routing()
        for request in requests:
            pfs, probs = options[request]
            choice = int(rng.choice(len(pfs), p=probs))
            candidate.paths[request] = [PathFlow(path=pfs[choice].path, amount=1.0)]
        score = (
            max(1.0, congestion(problem, candidate)),
            routing_cost(problem, candidate),
        )
        if best_score is None or score < best_score:
            best, best_score = candidate, score
    assert best is not None
    return best


def greedy_unsplittable_routing(
    problem: ProblemInstance,
    placement: Placement,
) -> Routing:
    """MMUFP heuristic: capacity-aware greedy path assignment.

    Requests are processed in decreasing rate order; each is routed on the
    cheapest path whose links all retain enough residual capacity, falling
    back to the cheapest unconstrained path when no such path exists (the
    overload is then visible as congestion > 1, as in the paper's plots).
    """
    aux, sources = build_item_auxiliary_graph(problem, placement)
    residual = {
        (u, v): d.get(CAPACITY, math.inf) for u, v, d in aux.edges(data=True)
    }
    routing = Routing()
    order = sorted(problem.demand.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    for (item, s), rate in order:
        vs = sources[item]
        feasible = nx.DiGraph()
        feasible.add_node(vs)
        feasible.add_node(s)
        for (u, v), res in residual.items():
            if res >= rate - _EPS:
                feasible.add_edge(u, v, **{COST: aux.edges[u, v][COST]})
        dist, pred = single_source_dijkstra(feasible, vs)
        if s in dist:
            path = tuple(reconstruct_path(pred, vs, s))
        else:
            dist, pred = single_source_dijkstra(aux, vs)
            if s not in dist:
                raise InfeasibleError(f"requester {s!r} unreachable for item {item!r}")
            path = tuple(reconstruct_path(pred, vs, s))
        for e in zip(path[:-1], path[1:]):
            residual[e] = residual.get(e, math.inf) - rate
        routing.paths[(item, s)] = [PathFlow(path=_strip_virtual(path), amount=1.0)]
    return routing


def mmufp_routing(
    problem: ProblemInstance,
    placement: Placement,
    *,
    method: str = "randomized",
    rng: np.random.Generator | None = None,
    n_samples: int = 16,
) -> Routing:
    """Integral routing under a fixed placement, by the selected heuristic.

    ``method="best"`` runs both heuristics and keeps the better one under
    the (feasibility-first, then cost) score.
    """
    if method == "randomized":
        return randomized_rounding_routing(
            problem, placement, rng=rng, n_samples=n_samples
        )
    if method == "greedy":
        return greedy_unsplittable_routing(problem, placement)
    if method == "best":
        candidates = [
            randomized_rounding_routing(
                problem, placement, rng=rng, n_samples=n_samples
            ),
            greedy_unsplittable_routing(problem, placement),
        ]
        return min(
            candidates,
            key=lambda r: (
                max(1.0, congestion(problem, r)),
                routing_cost(problem, r),
            ),
        )
    raise ValueError(f"unknown MMUFP method {method!r}")
