"""Source selection + routing under a fixed placement (Section 4.3.2).

With the placement fixed, adding one virtual source per content item — wired
by free uncapacitated links to every node holding that item — reduces joint
source selection and routing to a pure routing problem in the auxiliary
graph ``G^x`` (the per-item analogue of Lemma 4.5):

- fractional routing: the minimum-cost multiple-source splittable flow
  problem (MMSFP), solved exactly as an LP with one commodity per item;
- integral routing: MMUFP, NP-hard, attacked by the paper's two heuristics —
  LP relaxation with randomized path rounding, and greedy capacity-aware
  path assignment.
"""

from __future__ import annotations

import math
from collections.abc import Hashable
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.evaluation import congestion, routing_cost
from repro.core.problem import Item, ProblemInstance
from repro.core.solution import Placement, Routing
from repro.exceptions import InfeasibleError
from repro.flow.decomposition import PathFlow, decompose_single_source_flow
from repro.flow.mincost import Commodity, min_cost_multicommodity_flow
from repro.graph.network import CAPACITY, COST
from repro.graph.shortest_paths import reconstruct_path, single_source_dijkstra

Node = Hashable

_EPS = 1e-9


def _item_source(item: Item) -> tuple[str, Item]:
    return ("__item_source__", item)


def holders_of(problem: ProblemInstance, placement: Placement, item: Item) -> set[Node]:
    """Nodes that can serve ``item``: integral replicas plus pinned copies."""
    holders = {
        v for v in placement.holders(item) if placement[(v, item)] >= 1 - 1e-6
    }
    holders |= problem.pinned_holders(item)
    return holders


def build_item_auxiliary_graph(
    problem: ProblemInstance, placement: Placement
) -> tuple[nx.DiGraph, dict[Item, tuple[str, Item]]]:
    """The auxiliary graph ``G^x`` with one virtual source per requested item."""
    aux = problem.network.graph.copy()
    sources: dict[Item, tuple[str, Item]] = {}
    for item in sorted({i for (i, _s) in problem.demand}, key=repr):
        vs = _item_source(item)
        aux.add_node(vs)
        sources[item] = vs
        holders = holders_of(problem, placement, item)
        if not holders:
            raise InfeasibleError(f"no node holds item {item!r}")
        for holder in sorted(holders, key=repr):
            aux.add_edge(vs, holder, **{COST: 0.0, CAPACITY: math.inf})
    return aux, sources


def _strip_virtual(path: tuple[Node, ...]) -> tuple[Node, ...]:
    if path and isinstance(path[0], tuple) and path[0][0] == "__item_source__":
        return path[1:]
    return path


@dataclass
class FractionalRoutingResult:
    routing: Routing
    #: Optimal MMSFP objective — a lower bound on any integral routing cost
    #: under the same placement.
    cost: float


def mmsfp_routing(
    problem: ProblemInstance, placement: Placement
) -> FractionalRoutingResult:
    """Optimal fractional routing (MMSFP) under the given placement."""
    aux, sources = build_item_auxiliary_graph(problem, placement)
    commodities = []
    for item, vs in sources.items():
        demands: dict[Node, float] = {}
        for (i, s), rate in problem.demand.items():
            if i == item:
                demands[s] = demands.get(s, 0.0) + rate
        commodities.append(Commodity(name=item, source=vs, demands=demands))
    flows, cost = min_cost_multicommodity_flow(aux, commodities)
    routing = Routing()
    for commodity in commodities:
        per_sink = decompose_single_source_flow(
            flows[commodity.name], commodity.source, commodity.demands
        )
        for (i, s), rate in problem.demand.items():
            if i != commodity.name:
                continue
            routing.paths[(i, s)] = [
                PathFlow(path=_strip_virtual(pf.path), amount=pf.amount / rate)
                for pf in per_sink[s]
            ]
    return FractionalRoutingResult(routing=routing, cost=cost)


def randomized_rounding_routing(
    problem: ProblemInstance,
    placement: Placement,
    *,
    rng: np.random.Generator | None = None,
    n_samples: int = 16,
) -> Routing:
    """MMUFP heuristic: LP relaxation + randomized path rounding.

    Draw each request's single path proportionally to its fractional flow,
    ``n_samples`` times; keep the draw with the best (congestion clamped at
    feasibility, then cost) score — the standard rounding of [26].
    """
    rng = rng or np.random.default_rng()
    fractional = mmsfp_routing(problem, placement)
    requests = problem.requests
    options: dict = {}
    for request in requests:
        pfs = fractional.routing.paths[request]
        amounts = np.array([pf.amount for pf in pfs])
        total = amounts.sum()
        if total <= _EPS:
            raise InfeasibleError(f"request {request!r} has no fractional flow")
        options[request] = (pfs, amounts / total)

    best: Routing | None = None
    best_score: tuple[float, float] | None = None
    for _ in range(max(1, n_samples)):
        candidate = Routing()
        for request in requests:
            pfs, probs = options[request]
            choice = int(rng.choice(len(pfs), p=probs))
            candidate.paths[request] = [PathFlow(path=pfs[choice].path, amount=1.0)]
        score = (
            max(1.0, congestion(problem, candidate)),
            routing_cost(problem, candidate),
        )
        if best_score is None or score < best_score:
            best, best_score = candidate, score
    assert best is not None
    return best


def greedy_unsplittable_routing(
    problem: ProblemInstance,
    placement: Placement,
) -> Routing:
    """MMUFP heuristic: capacity-aware greedy path assignment.

    Requests are processed in decreasing rate order; each is routed on the
    cheapest path whose links all retain enough residual capacity, falling
    back to the cheapest unconstrained path when no such path exists (the
    overload is then visible as congestion > 1, as in the paper's plots).
    """
    aux, sources = build_item_auxiliary_graph(problem, placement)
    residual = {
        (u, v): d.get(CAPACITY, math.inf) for u, v, d in aux.edges(data=True)
    }
    routing = Routing()
    order = sorted(problem.demand.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    for (item, s), rate in order:
        vs = sources[item]
        feasible = nx.DiGraph()
        feasible.add_node(vs)
        feasible.add_node(s)
        for (u, v), res in residual.items():
            if res >= rate - _EPS:
                feasible.add_edge(u, v, **{COST: aux.edges[u, v][COST]})
        dist, pred = single_source_dijkstra(feasible, vs)
        if s in dist:
            path = tuple(reconstruct_path(pred, vs, s))
        else:
            dist, pred = single_source_dijkstra(aux, vs)
            if s not in dist:
                raise InfeasibleError(f"requester {s!r} unreachable for item {item!r}")
            path = tuple(reconstruct_path(pred, vs, s))
        for e in zip(path[:-1], path[1:]):
            residual[e] = residual.get(e, math.inf) - rate
        routing.paths[(item, s)] = [PathFlow(path=_strip_virtual(path), amount=1.0)]
    return routing


def mmufp_routing(
    problem: ProblemInstance,
    placement: Placement,
    *,
    method: str = "randomized",
    rng: np.random.Generator | None = None,
    n_samples: int = 16,
) -> Routing:
    """Integral routing under a fixed placement, by the selected heuristic.

    ``method="best"`` runs both heuristics and keeps the better one under
    the (feasibility-first, then cost) score.
    """
    if method == "randomized":
        return randomized_rounding_routing(
            problem, placement, rng=rng, n_samples=n_samples
        )
    if method == "greedy":
        return greedy_unsplittable_routing(problem, placement)
    if method == "best":
        candidates = [
            randomized_rounding_routing(
                problem, placement, rng=rng, n_samples=n_samples
            ),
            greedy_unsplittable_routing(problem, placement),
        ]
        return min(
            candidates,
            key=lambda r: (
                max(1.0, congestion(problem, r)),
                routing_cost(problem, r),
            ),
        )
    raise ValueError(f"unknown MMUFP method {method!r}")
