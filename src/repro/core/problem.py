"""Problem instances for joint caching and routing (the paper's Section 2).

An instance bundles

- a :class:`~repro.graph.network.CacheNetwork` (topology, link costs ``w_uv``,
  link capacities ``c_uv``, cache capacities ``c_v``),
- a content catalog ``C`` with (optionally heterogeneous) item sizes ``b_i``,
- request rates ``lambda_{(i, s)}`` for request types ``(item, node)``, and
- *pinned* contents: items permanently stored at designated nodes (the origin
  server of the paper's evaluation stores the whole catalog and is not a
  decision variable).  Pinned contents do not consume the node's optimizable
  cache capacity.

The three variable regimes of the paper (FC-FR / IC-FR / IC-IR) are selection
flags on the solver calls, not on the instance.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from dataclasses import dataclass, field

from repro.exceptions import InvalidProblemError
from repro.graph.network import CacheNetwork

Item = Hashable
Node = Hashable
#: A request type ``(i, s)``: node ``s`` asks for item ``i``.
Request = tuple[Item, Node]


@dataclass
class ProblemInstance:
    """One joint caching-and-routing instance (optimization (1) of the paper).

    Parameters
    ----------
    network:
        The cache network. Cache capacities are in *items* for homogeneous
        catalogs and in the same unit as ``item_sizes`` otherwise.
    catalog:
        All content items.
    demand:
        Request rates ``lambda_{(i, s)} > 0`` keyed by ``(item, node)``.
    item_sizes:
        Optional per-item sizes ``b_i`` (Section 5). ``None`` means the
        homogeneous model where every item has size 1.
    pinned:
        ``(node, item)`` pairs permanently cached (e.g. the origin server
        holding the entire catalog). Free of cache-capacity charge.
    """

    network: CacheNetwork
    catalog: tuple[Item, ...]
    demand: dict[Request, float]
    item_sizes: dict[Item, float] | None = None
    pinned: frozenset[tuple[Node, Item]] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        self.catalog = tuple(self.catalog)
        if len(set(self.catalog)) != len(self.catalog):
            raise InvalidProblemError("catalog has duplicate items")
        items = set(self.catalog)
        if not items:
            raise InvalidProblemError("catalog is empty")
        for (i, s), rate in self.demand.items():
            if i not in items:
                raise InvalidProblemError(f"demand references unknown item {i!r}")
            if s not in self.network:
                raise InvalidProblemError(f"demand references unknown node {s!r}")
            if rate <= 0:
                raise InvalidProblemError(f"demand for {(i, s)!r} must be positive")
        if self.item_sizes is not None:
            missing = items - set(self.item_sizes)
            if missing:
                raise InvalidProblemError(f"item_sizes missing items: {missing!r}")
            if any(b <= 0 for b in self.item_sizes.values()):
                raise InvalidProblemError("item sizes must be positive")
        self.pinned = frozenset(self.pinned)
        for v, i in self.pinned:
            if v not in self.network:
                raise InvalidProblemError(f"pinned node {v!r} not in network")
            if i not in items:
                raise InvalidProblemError(f"pinned item {i!r} not in catalog")

    # ------------------------------------------------------------------

    @property
    def requests(self) -> list[Request]:
        """All request types with positive rate, in deterministic order."""
        return sorted(self.demand, key=repr)

    @property
    def total_demand(self) -> float:
        return sum(self.demand.values())

    def size_of(self, item: Item) -> float:
        """Size ``b_i`` of an item (1.0 in the homogeneous model)."""
        if self.item_sizes is None:
            return 1.0
        return self.item_sizes[item]

    def is_homogeneous(self) -> bool:
        return self.item_sizes is None or len(set(self.item_sizes.values())) <= 1

    def pinned_items_at(self, node: Node) -> set[Item]:
        return {i for (v, i) in self.pinned if v == node}

    def pinned_holders(self, item: Item) -> set[Node]:
        return {v for (v, i) in self.pinned if i == item}

    def cache_nodes(self) -> list[Node]:
        """Nodes whose caches the optimizer may use (positive capacity)."""
        return self.network.cache_nodes()

    def with_demand(self, demand: Mapping[Request, float]) -> "ProblemInstance":
        """Same instance under different request rates (prediction scenarios)."""
        return ProblemInstance(
            network=self.network,
            catalog=self.catalog,
            demand=dict(demand),
            item_sizes=None if self.item_sizes is None else dict(self.item_sizes),
            pinned=self.pinned,
        )

    def requesters_of(self, item: Item) -> list[Node]:
        return sorted(
            (s for (i, s) in self.demand if i == item), key=repr
        )

    def __repr__(self) -> str:
        return (
            f"ProblemInstance(|V|={self.network.num_nodes}, |C|={len(self.catalog)}, "
            f"|R|={len(self.demand)}, pinned={len(self.pinned)})"
        )


def pin_full_catalog(
    catalog: Iterable[Item], nodes: Iterable[Node]
) -> frozenset[tuple[Node, Item]]:
    """Pin the whole catalog at each given node (origin servers)."""
    catalog = tuple(catalog)
    return frozenset((v, i) for v in nodes for i in catalog)
