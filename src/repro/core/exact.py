"""Exact IC-IR reference solver (exhaustive, tiny instances only).

Optimization (1) under IC-IR is NP-hard (Section 3), but on toy instances it
can be solved exactly by enumerating every integral placement within cache
capacities and, per placement, assigning each request a single serving path
by branch-and-bound under the link-capacity constraints.  The approximation
algorithms are validated against this optimum in the property tests
(``tests/core/test_exact.py`` and the integration suite).

Never call this on realistic instances — the search space is exponential
and deliberately guarded by hard limits.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Hashable
from dataclasses import dataclass

import networkx as nx

from repro.core.evaluation import path_cost
from repro.core.problem import ProblemInstance
from repro.core.solution import Placement, Routing, Solution
from repro.exceptions import InfeasibleError, InvalidProblemError
from repro.flow.decomposition import PathFlow

Node = Hashable


@dataclass
class ExactResult:
    """The optimum and how much work finding it took."""

    solution: Solution
    cost: float
    placements_tried: int


def _placement_options(problem: ProblemInstance) -> list[tuple[Node, list[tuple]]]:
    options = []
    for v in problem.network.cache_nodes():
        capacity = problem.network.cache_capacity(v)
        items = [i for i in problem.catalog if (v, i) not in problem.pinned]
        combos = [()]
        for r in range(1, len(items) + 1):
            for combo in itertools.combinations(items, r):
                if sum(problem.size_of(i) for i in combo) <= capacity + 1e-9:
                    combos.append(combo)
        options.append((v, combos))
    return options


def _request_options(
    problem: ProblemInstance,
    placement: Placement,
    max_paths_per_request: int,
) -> dict[tuple, list[tuple[float, tuple[Node, ...]]]]:
    graph = problem.network.graph
    out: dict[tuple, list[tuple[float, tuple[Node, ...]]]] = {}
    for (item, s), _rate in problem.demand.items():
        holders = set(placement.holders(item)) | problem.pinned_holders(item)
        options: list[tuple[float, tuple[Node, ...]]] = []
        for holder in sorted(holders, key=repr):
            if holder == s:
                options.append((0.0, (s,)))
                continue
            for path in nx.all_simple_paths(graph, holder, s):
                options.append((path_cost(problem.network, tuple(path)), tuple(path)))
        options.sort(key=lambda pair: (pair[0], pair[1]))
        if not options:
            raise InfeasibleError(f"request {(item, s)!r} has no serving path")
        out[(item, s)] = options[:max_paths_per_request]
    return out


def exact_icir(
    problem: ProblemInstance,
    *,
    max_placements: int = 100_000,
    max_paths_per_request: int = 64,
) -> ExactResult:
    """Exhaustively solve IC-IR.  Raises when the instance is too large."""
    options = _placement_options(problem)
    total_placements = 1
    for _, combos in options:
        total_placements *= len(combos)
    if total_placements > max_placements:
        raise InvalidProblemError(
            f"{total_placements} placements exceed max_placements={max_placements}"
        )

    best_cost = math.inf
    best: Solution | None = None
    tried = 0
    for assignment in itertools.product(*(combos for _, combos in options)):
        tried += 1
        placement = Placement()
        for (v, _), combo in zip(options, assignment):
            for item in combo:
                placement[(v, item)] = 1.0
        try:
            request_options = _request_options(
                problem, placement, max_paths_per_request
            )
        except InfeasibleError:
            continue
        routing_cost_value, routing = _assign_paths(
            problem, request_options, best_cost
        )
        if routing is not None and routing_cost_value < best_cost:
            best_cost = routing_cost_value
            best = Solution(placement.copy(), routing)
    if best is None:
        raise InfeasibleError("no feasible IC-IR solution exists")
    return ExactResult(solution=best, cost=best_cost, placements_tried=tried)


def _assign_paths(
    problem: ProblemInstance,
    request_options: dict[tuple, list[tuple[float, tuple[Node, ...]]]],
    incumbent: float,
) -> tuple[float, Routing | None]:
    """Branch-and-bound single-path assignment under link capacities."""
    requests = sorted(
        request_options, key=lambda r: (len(request_options[r]), repr(r))
    )
    rates = {r: problem.demand[r] for r in requests}
    # Lower bound on remaining cost: each request's cheapest option.
    cheapest = {
        r: rates[r] * request_options[r][0][0] for r in requests
    }
    suffix_bound = [0.0] * (len(requests) + 1)
    for k in range(len(requests) - 1, -1, -1):
        suffix_bound[k] = suffix_bound[k + 1] + cheapest[requests[k]]

    residual = dict(problem.network.capacities())
    chosen: dict[tuple, tuple[Node, ...]] = {}
    best = {"cost": incumbent, "paths": None}

    def recurse(index: int, cost_so_far: float) -> None:
        if cost_so_far + suffix_bound[index] >= best["cost"] - 1e-12:
            return
        if index == len(requests):
            best["cost"] = cost_so_far
            best["paths"] = dict(chosen)
            return
        request = requests[index]
        rate = rates[request]
        for option_cost, path in request_options[request]:
            edges = list(zip(path[:-1], path[1:]))
            if any(residual[e] < rate - 1e-9 for e in edges):
                continue
            for e in edges:
                residual[e] -= rate
            chosen[request] = path
            recurse(index + 1, cost_so_far + rate * option_cost)
            for e in edges:
                residual[e] += rate
            del chosen[request]

    recurse(0, 0.0)
    if best["paths"] is None:
        return math.inf, None
    routing = Routing(
        {r: [PathFlow(path=p, amount=1.0)] for r, p in best["paths"].items()}
    )
    return best["cost"], routing
