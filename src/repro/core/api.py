"""Unified front door: solve (1) in any of the paper's variable regimes.

``solve()`` dispatches on the caching/routing regime of Section 2.4:

- **FC-FR** — exact LP (Section 3);
- **IC-FR** — NP-hard; alternating optimization with fractional routing;
- **IC-IR** — NP-hard; Algorithm 1 (+ RNR) when every link is
  uncapacitated, otherwise the alternating optimization with MMUFP
  heuristics;
- **FC-IR** — equivalent to IC-IR (integral routing forces integral source
  selection, Section 2.4), so it dispatches identically.

The returned :class:`SolveResult` bundles the solution with the metrics the
paper reports, so a downstream user can go from a problem instance to an
evaluated deployment decision in one call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.algorithm1 import algorithm1
from repro.core.alternating import alternating_optimization
from repro.core.evaluation import (
    check_feasibility,
    congestion,
    max_cache_occupancy,
    routing_cost,
)
from repro.core.fcfr import solve_fcfr
from repro.core.problem import ProblemInstance
from repro.core.rnr import route_to_nearest_replica
from repro.core.solution import Solution
from repro.core.submodular import greedy_rnr_placement
from repro.exceptions import InvalidProblemError

CACHING_MODES = ("integral", "fractional")
ROUTING_MODES = ("integral", "fractional")


@dataclass
class SolveResult:
    """A solution plus its headline metrics."""

    solution: Solution
    regime: str
    method: str
    cost: float
    congestion: float
    max_cache_occupancy: float
    feasible: bool


def _is_uncapacitated(problem: ProblemInstance) -> bool:
    return all(math.isinf(c) for c in problem.network.capacities().values())


def solve(
    problem: ProblemInstance,
    *,
    caching: str = "integral",
    routing: str = "integral",
    rng: np.random.Generator | None = None,
    max_iterations: int = 12,
    mmufp_method: str = "best",
) -> SolveResult:
    """Solve the joint caching-and-routing problem in the requested regime.

    Parameters
    ----------
    caching, routing:
        ``"integral"`` or ``"fractional"`` — selecting FC-FR / IC-FR / IC-IR
        (FC-IR collapses to IC-IR, Section 2.4).
    rng:
        Drives the randomized MMUFP rounding; defaults to a fixed seed so
        repeated calls are reproducible.
    """
    if caching not in CACHING_MODES:
        raise InvalidProblemError(f"caching must be one of {CACHING_MODES}")
    if routing not in ROUTING_MODES:
        raise InvalidProblemError(f"routing must be one of {ROUTING_MODES}")
    rng = rng or np.random.default_rng(0)

    if caching == "fractional" and routing == "fractional":
        regime, method = "FC-FR", "exact LP"
        solution = solve_fcfr(problem).solution
    elif routing == "fractional":
        regime, method = "IC-FR", "alternating (MMSFP routing)"
        solution = alternating_optimization(
            problem,
            integral_routing=False,
            max_iterations=max_iterations,
            rng=rng,
        ).solution
    else:
        regime = "IC-IR" if caching == "integral" else "FC-IR (= IC-IR)"
        if _is_uncapacitated(problem):
            if problem.is_homogeneous():
                method = "Algorithm 1 + RNR"
                solution = algorithm1(problem).solution
            else:
                method = "greedy placement (Thm 5.2) + RNR"
                placement = greedy_rnr_placement(problem)
                solution = Solution(
                    placement, route_to_nearest_replica(problem, placement)
                )
        else:
            method = f"alternating (MMUFP {mmufp_method})"
            solution = alternating_optimization(
                problem,
                integral_routing=True,
                mmufp_method=mmufp_method,
                max_iterations=max_iterations,
                rng=rng,
            ).solution

    return SolveResult(
        solution=solution,
        regime=regime,
        method=method,
        cost=routing_cost(problem, solution.routing),
        congestion=congestion(problem, solution.routing),
        max_cache_occupancy=max_cache_occupancy(problem, solution.placement),
        feasible=check_feasibility(problem, solution).feasible,
    )
