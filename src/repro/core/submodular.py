"""The RNR cost-saving set function (Lemma 4.1) and greedy maximization.

``F_RNR`` measures how much routing cost a content placement saves under
route-to-nearest-replica service relative to serving every request from its
baseline holders (the pinned origin copies; ``w_max`` when an item is pinned
nowhere).  The paper proves it monotone and submodular, so

- plain greedy gives a 1/2-approximation under the cache-capacity matroid
  (homogeneous item sizes), and
- greedy gives a 1/(1+p)-approximation under the p-independence system
  induced by heterogeneous item sizes (Theorem 5.2).

The implementation keeps, per request, the current least cost over holders,
which makes marginal gains O(#requests-for-item) and enables lazy greedy.
With a :class:`~repro.core.context.SolverContext` the per-request state
lives in numpy arrays aligned with the context's per-item requester axis,
so marginal gains and updates are single vectorized reductions over the
dense distance matrix instead of per-pair dict lookups.  Both paths compute
the same function; tests cross-check them on random instances.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Hashable
from typing import TYPE_CHECKING

import numpy as np

from repro.core.problem import Item, ProblemInstance
from repro.core.rnr import ShortestPathCache
from repro.core.solution import Placement

if TYPE_CHECKING:  # context imports ShortestPathCache; avoid the cycle
    from repro.core.context import SolverContext

Node = Hashable


class RNRCostSaving:
    """Incremental evaluator of the set function F_RNR (equation (4)).

    The function value is reported relative to the pinned-only placement:
    ``value() == F_RNR(X) - F_RNR(empty)``, which shifts by a constant and
    therefore changes nothing for maximization.

    Pass ``context`` to evaluate against the dense distance matrix (the
    fast path); without it the dict-based :class:`ShortestPathCache` is
    used, as in the seed implementation.
    """

    def __init__(
        self,
        problem: ProblemInstance,
        *,
        sp_cache: ShortestPathCache | None = None,
        w_max: float | None = None,
        context: "SolverContext | None" = None,
    ) -> None:
        self._problem = problem
        self._ctx = context
        self._value = 0.0
        self._selected: set[tuple[Node, Item]] = set()
        if context is not None:
            self._sp = None
            self.w_max = context.w_max if w_max is None else w_max
            #: Current best (least) serving cost per requester, per item.
            #: Catalog (item_index) order — no per-construction repr sort.
            demand_items = {i for (i, _s) in problem.demand}
            self._best_arr: dict[Item, np.ndarray] = {
                item: context.baseline_costs(item, cap=self.w_max)
                for item in context.items
                if item in demand_items
            }
            self._baseline_arr = {i: b.copy() for i, b in self._best_arr.items()}
            return
        self._sp = sp_cache or ShortestPathCache(problem)
        if w_max is None:
            w_max = 0.0
            graph = problem.network.graph
            for v in graph.nodes:
                dist, _ = self._sp.from_node(v)
                if dist:
                    w_max = max(w_max, max(dist.values()))
            w_max = w_max if w_max > 0 else 1.0
        self.w_max = w_max
        #: Current best (least) serving cost per request.
        self._best: dict[tuple[Item, Node], float] = {}
        for (item, s), _ in problem.demand.items():
            best = w_max
            for holder in problem.pinned_holders(item):
                best = min(best, self._sp.distance(holder, s))
            self._best[(item, s)] = best
        self._baseline = dict(self._best)

    # ------------------------------------------------------------------

    @property
    def selected(self) -> frozenset[tuple[Node, Item]]:
        return frozenset(self._selected)

    def value(self) -> float:
        """Cost saving of the current selection relative to pinned-only."""
        return self._value

    def serving_cost(self) -> float:
        """Expected RNR routing cost of the current selection."""
        if self._ctx is not None:
            return float(
                sum(
                    self._ctx.requesters(item).rates @ best
                    for item, best in self._best_arr.items()
                )
            )
        return sum(
            rate * self._best[req] for req, rate in self._problem.demand.items()
        )

    def marginal_gain(self, node: Node, item: Item) -> float:
        """Gain of adding ``(node, item)`` on top of the current selection."""
        if (node, item) in self._selected:
            return 0.0
        if self._ctx is not None:
            best = self._best_arr.get(item)
            if best is None or best.size == 0:
                return 0.0
            block = self._ctx.requesters(item)
            d = self._ctx.row_of(node)[block.idx]
            diff = best - d
            np.clip(diff, 0.0, None, out=diff)
            return float(diff @ block.rates)
        gain = 0.0
        for s in self._problem.requesters_of(item):
            rate = self._problem.demand[(item, s)]
            d = self._sp.distance(node, s)
            current = self._best[(item, s)]
            if d < current:
                gain += rate * (current - d)
        return gain

    def add(self, node: Node, item: Item) -> float:
        """Add ``(node, item)`` to the selection; returns the realized gain."""
        if self._ctx is not None:
            gain = 0.0
            best = self._best_arr.get(item)
            if best is not None and best.size:
                block = self._ctx.requesters(item)
                d = self._ctx.row_of(node)[block.idx]
                diff = best - d
                np.clip(diff, 0.0, None, out=diff)
                gain = float(diff @ block.rates)
                np.minimum(best, d, out=best)
            self._selected.add((node, item))
            self._value += gain
            return gain
        gain = 0.0
        for s in self._problem.requesters_of(item):
            d = self._sp.distance(node, s)
            current = self._best[(item, s)]
            if d < current:
                gain += self._problem.demand[(item, s)] * (current - d)
                self._best[(item, s)] = d
        self._selected.add((node, item))
        self._value += gain
        return gain

    def evaluate(self, entries: frozenset[tuple[Node, Item]]) -> float:
        """Value of an arbitrary selection (non-incremental, for tests)."""
        if self._ctx is not None:
            total = 0.0
            for item, baseline in self._baseline_arr.items():
                block = self._ctx.requesters(item)
                best = baseline.copy()
                for (v, i) in entries:
                    if i == item:
                        np.minimum(
                            best, self._ctx.row_of(v)[block.idx], out=best
                        )
                total += float(block.rates @ (baseline - best))
            return total
        total = 0.0
        for (item, s), rate in self._problem.demand.items():
            best = self._baseline[(item, s)]
            for (v, i) in entries:
                if i == item:
                    best = min(best, self._sp.distance(v, s))
            total += rate * (self._baseline[(item, s)] - best)
        return total


def local_search_swap(
    problem: ProblemInstance,
    placement: Placement,
    *,
    sp_cache: ShortestPathCache | None = None,
    max_sweeps: int = 4,
    context: "SolverContext | None" = None,
) -> Placement:
    """1-swap local search on F_RNR: replace a cached item when profitable.

    Starting from an integral placement, repeatedly evaluate, per cache node,
    the loss of evicting each stored item (requests fall back to their next
    best holder) against the gain of inserting each absent item, and apply
    the best strictly-improving swap (or pure insertion into spare capacity).
    F_RNR never decreases, so polishing the output of Algorithm 1 preserves
    its (1 - 1/e) guarantee while recovering the cross-node coordination
    that per-node pipage rounding cannot express.

    With ``context`` the per-requester best/second-best serving costs are
    computed as vectorized reductions over the dense distance matrix.
    """
    if context is not None:
        return _local_search_swap_ctx(problem, placement, context, max_sweeps)
    sp = sp_cache or ShortestPathCache(problem)
    placement = placement.copy()
    items = sorted({i for (i, _s) in problem.demand}, key=repr)
    cache_nodes = [
        v
        for v in problem.network.cache_nodes()
        if problem.network.cache_capacity(v) > 0
    ]

    saving = RNRCostSaving(problem, sp_cache=sp)
    w_max = saving.w_max

    def holder_costs(item: Item) -> dict[Node, dict]:
        """Per requester of ``item``: best/second-best serving costs."""
        holders = {
            v for v in placement.holders(item) if placement[(v, item)] >= 0.5
        } | problem.pinned_holders(item)
        stats: dict[Node, dict] = {}
        for s in problem.requesters_of(item):
            best_v, best, second = None, w_max, w_max
            for v in holders:
                d = sp.distance(v, s)
                if d < best:
                    best_v, second, best = v, best, d
                elif d < second:
                    second = d
            stats[s] = {"best_v": best_v, "best": best, "second": second}
        return stats

    for _ in range(max_sweeps):
        improved = False
        stats_cache: dict[Item, dict] = {}

        def stats_of(item: Item) -> dict:
            if item not in stats_cache:
                stats_cache[item] = holder_costs(item)
            return stats_cache[item]

        for v in cache_nodes:
            capacity = problem.network.cache_capacity(v)
            cached = sorted(
                (i for i in placement.items_at(v) if (v, i) not in problem.pinned),
                key=repr,
            )
            spare = capacity - placement.used_capacity(v, problem)
            removal_loss: dict[Item, float] = {}
            for i in cached:
                loss = 0.0
                for s, st in stats_of(i).items():
                    if st["best_v"] == v:
                        loss += problem.demand[(i, s)] * (st["second"] - st["best"])
                removal_loss[i] = loss
            addition_gain: dict[Item, float] = {}
            for j in items:
                if (v, j) in placement or (v, j) in problem.pinned:
                    continue
                gain = 0.0
                for s, st in stats_of(j).items():
                    d = sp.distance(v, s)
                    if d < st["best"]:
                        gain += problem.demand[(j, s)] * (st["best"] - d)
                addition_gain[j] = gain
            best_move, best_delta = None, 1e-9
            for j, gain in addition_gain.items():
                if gain <= 0:
                    continue
                if problem.size_of(j) <= spare + 1e-12:
                    if gain > best_delta:
                        best_move, best_delta = (None, j), gain
                for i in cached:
                    if problem.size_of(j) <= spare + problem.size_of(i) + 1e-12:
                        delta = gain - removal_loss[i]
                        if delta > best_delta:
                            best_move, best_delta = (i, j), delta
            if best_move is not None:
                evict, insert = best_move
                if evict is not None:
                    placement[(v, evict)] = 0.0
                    stats_cache.pop(evict, None)
                placement[(v, insert)] = 1.0
                stats_cache.pop(insert, None)
                improved = True
        if not improved:
            break
    return placement


def _local_search_swap_ctx(
    problem: ProblemInstance,
    placement: Placement,
    ctx: "SolverContext",
    max_sweeps: int,
) -> Placement:
    """Dense-matrix implementation of :func:`local_search_swap`.

    Same move structure as the dict path; the per-requester best/second
    serving costs per item come from one ``(#holders, #requesters)`` matrix
    slice and a partial sort, and eviction losses / insertion gains are
    masked dot products.  On exact distance ties the chosen best holder may
    differ from the dict path (both are valid), which can only change which
    of two equal-loss moves is taken.
    """
    placement = placement.copy()
    items = sorted({i for (i, _s) in problem.demand}, key=repr)
    cache_nodes = [
        v
        for v in problem.network.cache_nodes()
        if problem.network.cache_capacity(v) > 0
    ]
    w_max = ctx.w_max

    def holder_stats(item: Item) -> dict:
        holders = sorted(
            {v for v in placement.holders(item) if placement[(v, item)] >= 0.5}
            | problem.pinned_holders(item),
            key=repr,
        )
        block = ctx.requesters(item)
        n = block.size
        if n == 0:
            empty = np.zeros(0, dtype=np.float64)
            return {
                "holders": holders,
                "block": block,
                "best": empty,
                "second": empty,
                "best_pos": np.zeros(0, dtype=np.intp),
            }
        rows = [ctx.row_of(h)[block.idx] for h in holders]
        rows.append(np.full(n, w_max, dtype=np.float64))  # sentinel: w_max cap
        stack = np.vstack(rows)
        best_pos = np.argmin(stack, axis=0)
        if stack.shape[0] >= 2:
            part = np.partition(stack, 1, axis=0)
            best, second = part[0].copy(), part[1].copy()
        else:
            best = stack[0].copy()
            second = best.copy()
        np.minimum(best, w_max, out=best)
        np.minimum(second, w_max, out=second)
        return {
            "holders": holders,
            "block": block,
            "best": best,
            "second": second,
            "best_pos": best_pos,
        }

    for _ in range(max_sweeps):
        improved = False
        stats_cache: dict[Item, dict] = {}

        def stats_of(item: Item) -> dict:
            if item not in stats_cache:
                stats_cache[item] = holder_stats(item)
            return stats_cache[item]

        for v in cache_nodes:
            capacity = problem.network.cache_capacity(v)
            cached = sorted(
                (i for i in placement.items_at(v) if (v, i) not in problem.pinned),
                key=repr,
            )
            spare = capacity - placement.used_capacity(v, problem)
            removal_loss: dict[Item, float] = {}
            for i in cached:
                st = stats_of(i)
                loss = 0.0
                if st["block"].size and v in st["holders"]:
                    vpos = st["holders"].index(v)
                    mask = st["best_pos"] == vpos
                    if mask.any():
                        loss = float(
                            st["block"].rates[mask]
                            @ (st["second"][mask] - st["best"][mask])
                        )
                removal_loss[i] = loss
            addition_gain: dict[Item, float] = {}
            for j in items:
                if (v, j) in placement or (v, j) in problem.pinned:
                    continue
                st = stats_of(j)
                gain = 0.0
                if st["block"].size:
                    diff = st["best"] - ctx.row_of(v)[st["block"].idx]
                    np.clip(diff, 0.0, None, out=diff)
                    gain = float(diff @ st["block"].rates)
                addition_gain[j] = gain
            best_move, best_delta = None, 1e-9
            for j, gain in addition_gain.items():
                if gain <= 0:
                    continue
                if problem.size_of(j) <= spare + 1e-12:
                    if gain > best_delta:
                        best_move, best_delta = (None, j), gain
                for i in cached:
                    if problem.size_of(j) <= spare + problem.size_of(i) + 1e-12:
                        delta = gain - removal_loss[i]
                        if delta > best_delta:
                            best_move, best_delta = (i, j), delta
            if best_move is not None:
                evict, insert = best_move
                if evict is not None:
                    placement[(v, evict)] = 0.0
                    stats_cache.pop(evict, None)
                placement[(v, insert)] = 1.0
                stats_cache.pop(insert, None)
                improved = True
        if not improved:
            break
    return placement


def greedy_rnr_placement(
    problem: ProblemInstance,
    *,
    sp_cache: ShortestPathCache | None = None,
    context: "SolverContext | None" = None,
) -> Placement:
    """Lazy-greedy maximization of F_RNR under cache capacities.

    Handles both the homogeneous model (matroid constraint; 1/2-approx) and
    heterogeneous item sizes (p-independence; 1/(1+p)-approx, Theorem 5.2).
    Pinned contents are part of the baseline and never selected.  Pass
    ``context`` to run every marginal-gain evaluation against the dense
    distance matrix.
    """
    saving = RNRCostSaving(problem, sp_cache=sp_cache, context=context)
    remaining = {
        v: problem.network.cache_capacity(v) for v in problem.network.cache_nodes()
    }
    counter = itertools.count()
    heap: list[tuple[float, int, Node, Item]] = []
    for v in remaining:
        for i in problem.catalog:
            if (v, i) in problem.pinned:
                continue
            gain = saving.marginal_gain(v, i)
            if gain > 0:
                heapq.heappush(heap, (-gain, next(counter), v, i))
    placement = Placement()
    while heap:
        neg_gain, _, v, i = heapq.heappop(heap)
        if (v, i) in saving.selected:
            continue
        if problem.size_of(i) > remaining[v] + 1e-12:
            continue
        gain = saving.marginal_gain(v, i)
        if gain <= 0:
            continue
        if gain < -neg_gain - 1e-12:
            # Lazy evaluation: the cached bound was stale; requeue.
            heapq.heappush(heap, (-gain, next(counter), v, i))
            continue
        saving.add(v, i)
        placement[(v, i)] = 1.0
        remaining[v] -= problem.size_of(i)
    return placement
