"""Content placement under fixed routing (Section 4.3.1 and Section 5.2.3).

Given a (possibly fractional) routing — a set of serving paths with rates per
request — the cost of a placement ``x`` is equation (13): the response to a
request travels only the path suffix below the nearest on-path replica.  The
cost *saving* ``F_{r,f}(x)`` (14) is monotone submodular (Lemma 5.3), and:

- homogeneous item sizes: maximize the concave surrogate ``L_{r,f}`` (15) by
  LP, then pipage-round — a (1 - 1/e)-approximation;
- heterogeneous sizes: lazy greedy under the p-independence (knapsack)
  constraint — a 1/(1+p)-approximation (Theorem 5.2).

Path-position convention: a serving path ``p = (p[0], ..., p[L-1])`` runs
from the serving source ``p[0]`` to the requester ``p[L-1]``.  A replica at
position ``m >= 1`` truncates the response to the suffix starting at ``m``;
the head ``p[0]`` is the fallback server and its placement does not enter
the objective (matching the product indices of (13)).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Hashable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.pipage import pipage_round
from repro.core.problem import Item, ProblemInstance
from repro.core.solution import Placement, Routing
from repro.flow.lp import LPBuilder

if TYPE_CHECKING:
    from repro.core.context import SolverContext

Node = Hashable

_EPS = 1e-9


@dataclass
class ServingPath:
    """One serving path with its absolute request rate ``lambda_p``."""

    item: Item
    path: tuple[Node, ...]
    rate: float
    #: suffix_cost[m] = cost of links from position m to the requester.
    suffix_cost: tuple[float, ...]


def extract_serving_paths(
    problem: ProblemInstance,
    routing: Routing,
    *,
    context: "SolverContext | None" = None,
) -> list[ServingPath]:
    """Turn a routing into rated serving paths (rate = lambda * fraction).

    With ``context``, link costs come from its precomputed edge-cost dict
    instead of per-edge graph attribute lookups.
    """
    link_cost = problem.network.cost if context is None else context.link_cost
    out: list[ServingPath] = []
    for (item, s), rate in problem.demand.items():
        for pf in routing.paths.get((item, s), []):
            if pf.amount <= _EPS or len(pf.path) < 2:
                continue
            length = len(pf.path)
            suffix = [0.0] * length
            for m in range(length - 2, -1, -1):
                suffix[m] = suffix[m + 1] + link_cost(pf.path[m], pf.path[m + 1])
            out.append(
                ServingPath(
                    item=item,
                    path=pf.path,
                    rate=rate * pf.amount,
                    suffix_cost=tuple(suffix),
                )
            )
    return out


def _effective(problem: ProblemInstance, x, node: Node, item: Item) -> float:
    """Placement value including pinned copies."""
    if (node, item) in problem.pinned:
        return 1.0
    return x.get((node, item), 0.0) if not isinstance(x, Placement) else x[(node, item)]


def placement_cost(
    problem: ProblemInstance,
    paths: list[ServingPath],
    placement: Placement,
) -> float:
    """Equation (13): routing cost of the fixed paths under ``placement``.

    For a fractional placement this is the multilinear extension (each
    ``x`` enters the products of (13) directly).
    """
    total = 0.0
    for sp in paths:
        length = len(sp.path)
        survive = 1.0  # product of (1 - x) over nodes below the current link
        cost = 0.0
        # Walk from the requester upward: k = 1 .. L-1.
        for k in range(1, length):
            node = sp.path[length - k]  # p_{|p|-k+1} ... the node below the link
            survive *= 1.0 - _effective(problem, placement, node, sp.item)
            link_cost = sp.suffix_cost[length - 1 - k] - sp.suffix_cost[length - k]
            cost += link_cost * survive
        total += sp.rate * cost
    return total


def placement_saving(
    problem: ProblemInstance,
    paths: list[ServingPath],
    placement: Placement,
) -> float:
    """Equation (14): F_{r,f}(x) = C_{r,f}(0) - C_{r,f}(x)."""
    empty = Placement()
    return placement_cost(problem, paths, empty) - placement_cost(
        problem, paths, placement
    )


# ----------------------------------------------------------------------
# LP + pipage (homogeneous sizes)
# ----------------------------------------------------------------------


def optimize_placement_lp(
    problem: ProblemInstance,
    routing: Routing,
    *,
    context: "SolverContext | None" = None,
) -> Placement:
    """(1-1/e)-approximate placement via the LP surrogate (15) + pipage."""
    paths = extract_serving_paths(problem, routing, context=context)
    cache_nodes = [
        v for v in problem.network.cache_nodes() if problem.network.cache_capacity(v) > 0
    ]
    cache_set = set(cache_nodes)
    requested_items = sorted({sp.item for sp in paths}, key=repr)

    lp = LPBuilder(sense="max")
    for v in cache_nodes:
        for i in requested_items:
            if (v, i) not in problem.pinned:
                lp.add_variable(("x", v, i), lb=0.0, ub=1.0)

    for idx, sp in enumerate(paths):
        length = len(sp.path)
        window_vars: dict = {}
        window_has_pin = False
        for k in range(1, length):
            node = sp.path[length - k]  # newest node entering the window
            if (node, sp.item) in problem.pinned:
                window_has_pin = True
            elif node in cache_set and lp.has_variable(("x", node, sp.item)):
                key = ("x", node, sp.item)
                window_vars[key] = window_vars.get(key, 0.0) + 1.0
            link_cost = sp.suffix_cost[length - 1 - k] - sp.suffix_cost[length - k]
            if link_cost <= _EPS:
                continue
            if window_has_pin:
                continue  # y_k == 1 at no cost; constant in the objective
            y_key = ("y", idx, k)
            lp.add_variable(y_key, lb=0.0, ub=1.0)
            lp.add_objective_terms({y_key: sp.rate * link_cost})
            if window_vars:
                coeffs = {y_key: 1.0}
                coeffs.update({key: -c for key, c in window_vars.items()})
                lp.add_le(coeffs, 0.0)
            else:
                lp.add_le({y_key: 1.0}, 0.0)

    capacities = {}
    for v in cache_nodes:
        coeffs = {
            ("x", v, i): 1.0
            for i in requested_items
            if lp.has_variable(("x", v, i))
        }
        capacities[v] = problem.network.cache_capacity(v)
        if coeffs:
            lp.add_le(coeffs, capacities[v])

    if lp.num_variables == 0:
        return Placement()
    solution = lp.solve()
    fractional = {
        (v, i): solution[("x", v, i)]
        for v in cache_nodes
        for i in requested_items
        if lp.has_variable(("x", v, i)) and solution[("x", v, i)] > 1e-9
    }

    # Index paths by (node, item) for derivative evaluation during rounding.
    by_node_item: dict[tuple[Node, Item], list[tuple[ServingPath, int]]] = {}
    for sp in paths:
        for m, node in enumerate(sp.path):
            if m == 0:
                continue
            by_node_item.setdefault((node, sp.item), []).append((sp, m))

    def weight(v: Node, i: Item, x) -> float:
        """dF/dx_vi at the current (partially rounded) placement."""
        total = 0.0
        for sp, m in by_node_item.get((v, i), []):
            length = len(sp.path)
            # Links strictly above position m: k >= length - m.
            survive = 1.0
            for mm in range(m + 1, length):
                other = sp.path[mm]
                if (other, i) in problem.pinned:
                    survive = 0.0
                    break
                survive *= 1.0 - x.get((other, i), 0.0)
            if survive <= _EPS:
                continue
            contribution = 0.0
            prod_above = 1.0  # product over window nodes above m (positions < m, >=1)
            for k in range(length - m, length):
                node_below = sp.path[length - k]
                if node_below != v:
                    if (node_below, i) in problem.pinned:
                        prod_above = 0.0
                    else:
                        prod_above *= 1.0 - x.get((node_below, i), 0.0)
                if prod_above <= _EPS:
                    break
                link_cost = sp.suffix_cost[length - 1 - k] - sp.suffix_cost[length - k]
                contribution += link_cost * survive * prod_above
            total += sp.rate * contribution
        return total

    rounded = pipage_round(fractional, capacities, weight)
    return Placement(rounded)


# ----------------------------------------------------------------------
# Greedy (heterogeneous sizes)
# ----------------------------------------------------------------------


def optimize_placement_greedy(
    problem: ProblemInstance,
    routing: Routing,
    *,
    context: "SolverContext | None" = None,
) -> Placement:
    """1/(1+p)-approximate placement by lazy greedy (Theorem 5.2, Lemma 5.3)."""
    paths = extract_serving_paths(problem, routing, context=context)
    cache_nodes = [
        v for v in problem.network.cache_nodes() if problem.network.cache_capacity(v) > 0
    ]
    cache_set = set(cache_nodes)

    # State: nearest replica position per path (0 = only the head serves).
    nearest: list[int] = []
    for sp in paths:
        pos = 0
        for m in range(1, len(sp.path)):
            if (sp.path[m], sp.item) in problem.pinned:
                pos = m
        nearest.append(pos)

    by_node_item: dict[tuple[Node, Item], list[tuple[int, int]]] = {}
    for idx, sp in enumerate(paths):
        for m in range(1, len(sp.path)):
            node = sp.path[m]
            if node in cache_set and (node, sp.item) not in problem.pinned:
                by_node_item.setdefault((node, sp.item), []).append((idx, m))

    def marginal(v: Node, i: Item) -> float:
        gain = 0.0
        for idx, m in by_node_item.get((v, i), []):
            if m > nearest[idx]:
                sp = paths[idx]
                gain += sp.rate * (sp.suffix_cost[nearest[idx]] - sp.suffix_cost[m])
        return gain

    remaining = {v: problem.network.cache_capacity(v) for v in cache_nodes}
    counter = itertools.count()
    heap: list[tuple[float, int, Node, Item]] = []
    for (v, i) in by_node_item:
        gain = marginal(v, i)
        if gain > 0:
            heapq.heappush(heap, (-gain, next(counter), v, i))
    placement = Placement()
    chosen: set[tuple[Node, Item]] = set()
    while heap:
        neg_gain, _, v, i = heapq.heappop(heap)
        if (v, i) in chosen:
            continue
        if problem.size_of(i) > remaining[v] + 1e-12:
            continue
        gain = marginal(v, i)
        if gain <= 0:
            continue
        if gain < -neg_gain - 1e-12:
            heapq.heappush(heap, (-gain, next(counter), v, i))
            continue
        chosen.add((v, i))
        placement[(v, i)] = 1.0
        remaining[v] -= problem.size_of(i)
        for idx, m in by_node_item.get((v, i), []):
            if m > nearest[idx]:
                nearest[idx] = m
    return placement


def optimize_placement(
    problem: ProblemInstance,
    routing: Routing,
    *,
    method: str = "auto",
    context: "SolverContext | None" = None,
) -> Placement:
    """Dispatch: pipage LP for homogeneous catalogs, greedy otherwise."""
    if method == "auto":
        method = "pipage" if problem.is_homogeneous() else "greedy"
    if method == "pipage":
        return optimize_placement_lp(problem, routing, context=context)
    if method == "greedy":
        return optimize_placement_greedy(problem, routing, context=context)
    raise ValueError(f"unknown placement method {method!r}")
