"""Pipage rounding for content placement (equations (8)-(9), Lemma 4.3).

Given a fractional placement that satisfies per-node cache capacities, the
rounding repeatedly takes two fractional items ``i, j`` cached at the same
node ``v`` and shifts mass between ``x_vi`` and ``x_vj`` (keeping the sum
fixed) toward the item with the larger linear objective coefficient, until
at most one fractional variable remains per node; a leftover singleton is
rounded up (always capacity-safe for integer capacities, see Lemma 4.3's
proof).  Because the relevant objectives are linear in any pair of same-node
variables, the objective never decreases.

The linear coefficient is supplied by a callback so the same routine serves
Algorithm 1 (weights fixed by the fractional source selection) and the
general-case placement step of Section 4.3.1 (weights depending on the
current, partially rounded placement).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Mapping

from repro.exceptions import InvalidProblemError

Node = Hashable
Item = Hashable
Key = tuple[Node, Item]

_TOL = 1e-7

WeightFn = Callable[[Node, Item, Mapping[Key, float]], float]


def pipage_round(
    fractional: Mapping[Key, float],
    capacities: Mapping[Node, float],
    weight_fn: WeightFn,
) -> dict[Key, float]:
    """Round a fractional placement to an integral one, node by node.

    Parameters
    ----------
    fractional:
        Map ``(node, item) -> x`` with ``0 <= x <= 1`` and, per node,
        ``sum_i x <= capacities[node]``.
    capacities:
        Optimizable cache capacity per node (integers in the homogeneous
        model; rounding requires them to be integral).
    weight_fn:
        ``weight_fn(v, i, x)`` returns the coefficient of ``x_vi`` in the
        objective, holding every other entry of ``x`` fixed.

    Returns
    -------
    dict with every value in {0.0, 1.0} (zero entries dropped).
    """
    x: dict[Key, float] = {}
    by_node: dict[Node, list[Item]] = {}
    for (v, i), value in fractional.items():
        if value < -_TOL or value > 1 + _TOL:
            raise InvalidProblemError(f"x[{(v, i)!r}] = {value} out of [0, 1]")
        value = min(1.0, max(0.0, value))
        if value <= _TOL:
            continue
        x[(v, i)] = value
        by_node.setdefault(v, []).append(i)

    for v in sorted(by_node, key=repr):
        cap = capacities.get(v, 0.0)
        if abs(cap - round(cap)) > _TOL:
            raise InvalidProblemError(
                f"pipage rounding needs integer capacity at {v!r}, got {cap}"
            )
        items = sorted(by_node[v], key=repr)
        while True:
            fractional_items = [
                i for i in items if _TOL < x.get((v, i), 0.0) < 1 - _TOL
            ]
            if len(fractional_items) >= 2:
                i, j = fractional_items[0], fractional_items[1]
                xi, xj = x[(v, i)], x[(v, j)]
                total = xi + xj
                if weight_fn(v, i, x) >= weight_fn(v, j, x):
                    new_i = min(1.0, total)
                    new_j = total - new_i
                else:
                    new_j = min(1.0, total)
                    new_i = total - new_j
                _assign(x, (v, i), new_i)
                _assign(x, (v, j), new_j)
                continue
            if len(fractional_items) == 1:
                # Rounding the lone fractional variable up keeps the integer
                # part of the node's total within the (integer) capacity and
                # can only increase a monotone objective.
                _assign(x, (v, fractional_items[0]), 1.0)
                continue
            break
        used = sum(x.get((v, i), 0.0) for i in items)
        if used > cap + _TOL:
            raise InvalidProblemError(
                f"rounded placement at {v!r} exceeds capacity: {used} > {cap}"
            )
    return {k: 1.0 for k, value in x.items() if value >= 1 - _TOL}


def _assign(x: dict[Key, float], key: Key, value: float) -> None:
    if value <= _TOL:
        x.pop(key, None)
    elif value >= 1 - _TOL:
        x[key] = 1.0
    else:
        x[key] = value
