"""The complexity taxonomy of Section 3 (Fig. 1), as queryable metadata.

Machine-readable record of which regime of optimization (1) is
polynomial-time solvable and why the others are NP-hard, so tooling (and
tests) can assert the dispatch in :mod:`repro.core.api` matches the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import InvalidProblemError


@dataclass(frozen=True)
class RegimeComplexity:
    """Complexity verdict for one caching/routing regime."""

    regime: str
    caching: str
    routing: str
    complexity: str  # "P" or "NP-hard"
    reduction: str
    polynomial_solver: str | None


_TAXONOMY = {
    ("fractional", "fractional"): RegimeComplexity(
        regime="FC-FR",
        caching="fractional",
        routing="fractional",
        complexity="P",
        reduction="optimization (1) becomes a linear program",
        polynomial_solver="repro.core.fcfr.solve_fcfr",
    ),
    ("integral", "fractional"): RegimeComplexity(
        regime="IC-FR",
        caching="integral",
        routing="fractional",
        complexity="NP-hard",
        reduction=(
            "with uncapacitated links (1) reduces to MinCost-SR [3], itself "
            "reduced from the 2-Disjoint Set Cover problem"
        ),
        polynomial_solver=None,
    ),
    ("integral", "integral"): RegimeComplexity(
        regime="IC-IR",
        caching="integral",
        routing="integral",
        complexity="NP-hard",
        reduction=(
            "even with the optimal placement fixed, the residual routing is "
            "the minimum-cost unsplittable flow problem (Kleinberg [25])"
        ),
        polynomial_solver=None,
    ),
    ("fractional", "integral"): RegimeComplexity(
        regime="FC-IR",
        caching="fractional",
        routing="integral",
        complexity="NP-hard",
        reduction=(
            "integral routing forces integral source selection, so an "
            "optimal FC-IR solution is feasible for IC-IR (Section 2.4); "
            "the regimes coincide"
        ),
        polynomial_solver=None,
    ),
}


def regime_complexity(caching: str, routing: str) -> RegimeComplexity:
    """Complexity of the regime selected by the two variable modes."""
    key = (caching, routing)
    if key not in _TAXONOMY:
        raise InvalidProblemError(
            "caching and routing must each be 'integral' or 'fractional'"
        )
    return _TAXONOMY[key]


def all_regimes() -> list[RegimeComplexity]:
    """All four regimes, in the paper's order (Fig. 1)."""
    return [
        _TAXONOMY[("fractional", "fractional")],
        _TAXONOMY[("integral", "fractional")],
        _TAXONOMY[("integral", "integral")],
        _TAXONOMY[("fractional", "integral")],
    ]
