"""Algorithm 2: bicriteria approximation for MSUFP (Section 4.2, Theorem 4.7).

The minimum-cost single-source unsplittable flow problem arises when a known
subset of nodes stores the entire catalog (binary cache capacities): adding a
virtual source wired to every replica node with free, uncapacitated links
turns joint source selection + routing into pure single-source routing
(Lemma 4.5, Fig. 2 / Fig. 10).

Algorithm 2:

1. solve the splittable relaxation at minimum cost (LP);
2. convert it to path flows and *round demands down* to the grid
   ``lambda_max * 2^(m/K)`` (equation (11)), trimming each commodity's most
   expensive paths to match the rounded demand;
3. partition commodities into ``K`` groups whose rounded demands differ by
   powers of two (equation (12)) and round each group's flow to single paths
   with the Skutella subroutine (Lemma 4.6).

The result costs no more than the splittable optimum and loads every link at
most ``2^(1/K) * c_e + 2^(1/K) / (2 (2^(1/K) - 1)) * lambda_max``
(Theorem 4.7): K=2 recovers the state of the art of [33]; large K gives the
first ``(1 + eps, 1)``-approximation when demands are small.
"""

from __future__ import annotations

import math
from collections.abc import Hashable
from dataclasses import dataclass

import networkx as nx

from repro.core.problem import ProblemInstance
from repro.core.solution import Placement, Routing, Solution
from repro.exceptions import InvalidProblemError
from repro.flow.decomposition import (
    PathFlow,
    decompose_single_source_flow,
    split_among_commodities,
    split_with_removal_quotas,
)
from repro.flow.mincost import arc_incidence, min_cost_single_source_flow
from repro.flow.ssp import min_cost_flow_ssp
from repro.flow.unsplittable import round_to_unsplittable
from repro.graph.network import CAPACITY, COST

Node = Hashable
Edge = tuple[Node, Node]

_EPS = 1e-9

#: Node id of the virtual source added by the binary-cache reduction.
VIRTUAL_SOURCE = "__virtual_source__"


@dataclass(frozen=True)
class MSUFPCommodity:
    """One commodity: route ``demand`` from the common source to ``sink``."""

    id: Hashable
    sink: Node
    demand: float


@dataclass
class MSUFPResult:
    """Paths chosen by Algorithm 2 plus bookkeeping for its guarantees."""

    paths: dict[Hashable, tuple[Node, ...]]
    splittable_cost: float
    splittable_flow: dict[Edge, float]
    rounded_demands: dict[Hashable, float]
    unsplittable_cost: float
    K: int

    def link_loads(self, demands: dict[Hashable, float]) -> dict[Edge, float]:
        loads: dict[Edge, float] = {}
        for cid, path in self.paths.items():
            for e in zip(path[:-1], path[1:]):
                loads[e] = loads.get(e, 0.0) + demands[cid]
        return loads


def theorem_4_7_load_bound(K: int, lambda_max: float, capacity: float) -> float:
    """Per-link load bound of Theorem 4.7(ii)."""
    g = 2.0 ** (1.0 / K)
    return g / (2.0 * (g - 1.0)) * lambda_max + g * capacity


def _round_demand(value: float, lambda_max: float, K: int) -> tuple[float, int]:
    """Equation (11): rounded demand and its grid exponent ``m`` (value = lmax*2^(m/K))."""
    if value >= lambda_max * (1 - 1e-12):
        m = -1
    else:
        m = math.floor(K * math.log2(value / lambda_max) + 1e-9)
    j = m % K
    q = (j - m) // K
    rounded = lambda_max * (2.0 ** (j / K)) * (0.5**q)
    return rounded, m


def solve_msufp(
    graph: nx.DiGraph,
    source: Node,
    commodities: list[MSUFPCommodity],
    *,
    K: int = 2,
    engine: str = "lp",
    assembly: str = "array",
) -> MSUFPResult:
    """Run Algorithm 2.  ``K=2`` reproduces the benchmark of [33].

    ``engine`` selects the splittable-flow solver of line 1: ``"lp"``
    (scipy HiGHS, the default) or ``"ssp"`` (the combinatorial
    successive-shortest-paths solver); both are exact.  With the LP engine,
    ``assembly`` picks the LP assembly path (``"array"`` COO batches over the
    graph's cached arc incidence, ``"dict"`` keyed rows).
    """
    if K < 1:
        raise InvalidProblemError("K must be a positive integer")
    if engine not in ("lp", "ssp"):
        raise InvalidProblemError("engine must be 'lp' or 'ssp'")
    if assembly not in ("array", "dict"):
        raise InvalidProblemError("assembly must be 'array' or 'dict'")
    ids = [c.id for c in commodities]
    if len(set(ids)) != len(ids):
        raise InvalidProblemError("commodity ids must be unique")
    if not commodities:
        return MSUFPResult({}, 0.0, {}, {}, 0.0, K)
    if any(c.demand <= 0 for c in commodities):
        raise InvalidProblemError("demands must be positive")

    costs = {(u, v): d.get(COST, 0.0) for u, v, d in graph.edges(data=True)}

    # Line 1: optimal splittable flow (aggregated by sink).
    aggregate: dict[Node, float] = {}
    for c in commodities:
        aggregate[c.sink] = aggregate.get(c.sink, 0.0) + c.demand
    if engine == "ssp":
        flow, splittable_cost = min_cost_flow_ssp(graph, source, aggregate)
    else:
        # The arc incidence is cached per graph object, so repeated
        # Algorithm 2 runs on the same (auxiliary) graph skip the rebuild.
        flow, splittable_cost = min_cost_single_source_flow(
            graph,
            source,
            aggregate,
            assembly=assembly,
            incidence=arc_incidence(graph) if assembly == "array" else None,
        )

    # Line 3 first: rounded demands (equation (11)) fix each commodity's
    # removal quota, which then steers the per-commodity path split so that
    # expensive slices go to commodities able to trim them (Theorem 4.7(i)).
    lambda_max = max(c.demand for c in commodities)
    rounded: dict[Hashable, float] = {}
    exponents: dict[Hashable, int] = {}
    for c in commodities:
        rounded[c.id], exponents[c.id] = _round_demand(c.demand, lambda_max, K)

    # Line 2: path-level flow per commodity.
    per_sink = decompose_single_source_flow(flow, source, aggregate)
    per_commodity = split_with_removal_quotas(
        per_sink,
        [(c.id, c.sink, c.demand, c.demand - rounded[c.id]) for c in commodities],
        costs=costs,
    )

    # Line 4: trim each commodity's most expensive paths down to its
    # rounded demand.
    reduced: dict[Hashable, list[PathFlow]] = {}
    for c in commodities:
        bar = rounded[c.id]
        paths = sorted(
            per_commodity[c.id],
            key=lambda pf: sum(costs.get(e, 0.0) for e in pf.edges()),
            reverse=True,
        )
        to_remove = c.demand - bar
        kept: list[PathFlow] = []
        for pf in paths:
            if to_remove >= pf.amount - _EPS:
                to_remove -= pf.amount
                continue
            kept.append(PathFlow(path=pf.path, amount=pf.amount - max(0.0, to_remove)))
            to_remove = 0.0
        reduced[c.id] = kept

    # Lines 5-7: per-group Skutella rounding.
    paths_out: dict[Hashable, tuple[Node, ...]] = {}
    groups: dict[int, list[MSUFPCommodity]] = {}
    for c in commodities:
        groups.setdefault(exponents[c.id] % K, []).append(c)
    for j, members in sorted(groups.items()):
        group_flow: dict[Edge, float] = {}
        for c in members:
            for pf in reduced[c.id]:
                for e in pf.edges():
                    group_flow[e] = group_flow.get(e, 0.0) + pf.amount
        group_paths = round_to_unsplittable(
            costs,
            source,
            [(c.id, c.sink, rounded[c.id]) for c in members],
            group_flow,
        )
        paths_out.update(group_paths)

    # Line 8: serve the ORIGINAL demand of each commodity on its path.
    unsplittable_cost = sum(
        c.demand * sum(costs.get(e, 0.0) for e in zip(paths_out[c.id][:-1], paths_out[c.id][1:]))
        for c in commodities
    )
    return MSUFPResult(
        paths=paths_out,
        splittable_cost=splittable_cost,
        splittable_flow=flow,
        rounded_demands=rounded,
        unsplittable_cost=unsplittable_cost,
        K=K,
    )


# ----------------------------------------------------------------------
# Binary-cache-capacity scenario (Section 4.2 / Appendix B)
# ----------------------------------------------------------------------


def build_auxiliary_graph(problem: ProblemInstance, servers: list[Node]) -> nx.DiGraph:
    """Add the virtual source of Lemma 4.5, wired freely to every server."""
    aux = problem.network.graph.copy()
    if VIRTUAL_SOURCE in aux:
        raise InvalidProblemError("network already contains the virtual source id")
    aux.add_node(VIRTUAL_SOURCE)
    for server in servers:
        if server not in problem.network:
            raise InvalidProblemError(f"server {server!r} not in network")
        aux.add_edge(VIRTUAL_SOURCE, server, **{COST: 0.0, CAPACITY: math.inf})
    return aux


def _strip_virtual(path: tuple[Node, ...]) -> tuple[Node, ...]:
    return path[1:] if path and path[0] == VIRTUAL_SOURCE else path


def _check_servers(problem: ProblemInstance, servers: list[Node]) -> None:
    requested = {i for (i, _s) in problem.demand}
    for server in servers:
        missing = requested - problem.pinned_items_at(server)
        if missing:
            raise InvalidProblemError(
                f"server {server!r} must pin the full requested catalog; "
                f"missing {sorted(map(repr, missing))[:3]}..."
            )


def solve_binary_cache_case(
    problem: ProblemInstance,
    servers: list[Node],
    *,
    K: int = 2,
    assembly: str = "array",
) -> tuple[Solution, MSUFPResult]:
    """Joint source selection + integral routing when ``servers`` hold everything.

    ``servers`` must each pin the whole requested catalog in ``problem``
    (this models ``c_v = |C|`` for ``v in V_s`` and 0 elsewhere).  Returns the
    IC-IR solution obtained by Algorithm 2 on the auxiliary graph together
    with the raw MSUFP result.
    """
    _check_servers(problem, servers)
    aux = build_auxiliary_graph(problem, servers)
    commodities = [
        MSUFPCommodity(id=(i, s), sink=s, demand=rate)
        for (i, s), rate in problem.demand.items()
    ]
    result = solve_msufp(aux, VIRTUAL_SOURCE, commodities, K=K, assembly=assembly)
    routing = Routing()
    for c in commodities:
        real_path = _strip_virtual(result.paths[c.id])
        routing.paths[c.id] = [PathFlow(path=real_path, amount=1.0)]
    return Solution(Placement(), routing), result


def splittable_binary_cache(
    problem: ProblemInstance,
    servers: list[Node],
    *,
    assembly: str = "array",
) -> tuple[Solution, float]:
    """Fractional-routing lower bound for the binary-cache case (LP optimum)."""
    _check_servers(problem, servers)
    aux = build_auxiliary_graph(problem, servers)
    aggregate: dict[Node, float] = {}
    for (_i, s), rate in problem.demand.items():
        aggregate[s] = aggregate.get(s, 0.0) + rate
    flow, cost = min_cost_single_source_flow(
        aux, VIRTUAL_SOURCE, aggregate, assembly=assembly
    )
    per_sink = decompose_single_source_flow(flow, VIRTUAL_SOURCE, aggregate)
    split = split_among_commodities(
        per_sink,
        [((i, s), s, rate) for (i, s), rate in problem.demand.items()],
    )
    routing = Routing()
    for (i, s), rate in problem.demand.items():
        routing.paths[(i, s)] = [
            PathFlow(path=_strip_virtual(pf.path), amount=pf.amount / rate)
            for pf in split[(i, s)]
        ]
    return Solution(Placement(), routing), cost
