"""Shared solver context: index maps + a tiered distance backend.

Every Section 4 solver consumes the same instance-level structure — the
least costs ``w_{v->s}`` between cache nodes and requesters, the per-item
requester lists with their rates, and the bound ``w_max``.  The seed code
recomputed (or dict-looked-up) these inside inner loops through
:class:`~repro.core.rnr.ShortestPathCache`.  A :class:`SolverContext`
materializes them once per instance:

- a :class:`~repro.graph.backends.DistanceBackend` over the graph's nodes:
  the classic dense all-pairs matrix (:class:`DenseBackend`) below
  :data:`DENSE_NODE_THRESHOLD` nodes, or the row-lazy tier
  (:class:`LazyRowBackend`) above it, which computes and memoizes only the
  rows solvers actually consult — both bit-identical on every operation;
- per-item requester index arrays and rate vectors, aligned with
  :meth:`ProblemInstance.requesters_of` order so vectorized reductions are
  deterministic and comparable with the dict-based code path;
- precomputed per-request baseline serving costs over pinned holders;
- an edge-cost dict for O(1) link-cost lookups (serving-path suffix sums);
- a lazy :class:`ShortestPathCache` for actual path reconstruction, which
  numpy cannot replace.

The context is an optional argument everywhere (``context=None`` keeps the
dict-based fallback), so callers can cross-check both paths.  Solver code
never touches a raw matrix: every distance access goes through
:meth:`row_of`/:meth:`rows_of`/:meth:`distance`, which is what makes the
backends interchangeable.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass

import numpy as np

from repro.core.problem import Item, Node, ProblemInstance
from repro.core.rnr import PredecessorPathCache, ShortestPathCache
from repro.exceptions import InvalidProblemError, ResourceError
from repro.graph.backends import DenseBackend, DistanceBackend, LazyRowBackend
from repro.graph.distance_matrix import DistanceMatrix, build_distance_matrix

Edge = tuple[Node, Node]

#: Above this many nodes, ``from_problem(backend="auto")`` switches from the
#: dense all-pairs matrix to the lazy row tier.  Override with the
#: ``REPRO_DENSE_NODE_THRESHOLD`` environment variable.
DENSE_NODE_THRESHOLD = 2048


def _dense_node_threshold() -> int:
    override = os.environ.get("REPRO_DENSE_NODE_THRESHOLD")
    return int(override) if override else DENSE_NODE_THRESHOLD


def relevant_sources(problem: ProblemInstance) -> list[Node]:
    """Distance rows a solve can consult: cache nodes, pinned holders,
    requesters — in deterministic (repr-sorted) order.

    This is the row scope a :class:`LazyRowBackend` is primed and broadcast
    with; everything the solvers read (LP (7) coefficients, F_RNR
    baselines, RNR candidate orderings, repair greedies) lives in these
    rows.
    """
    scope = {v for v in problem.network.cache_nodes()}
    scope.update(v for (v, _i) in problem.pinned)
    scope.update(s for (_i, s) in problem.demand)
    return sorted(scope, key=repr)


@dataclass(frozen=True)
class RequesterBlock:
    """Requesters of one item as parallel arrays (deterministic order)."""

    #: Requester nodes, sorted like :meth:`ProblemInstance.requesters_of`.
    nodes: tuple[Node, ...]
    #: Column indices of ``nodes`` in the distance matrix.
    idx: np.ndarray
    #: Request rates ``lambda_{(i, s)}`` aligned with ``nodes``.
    rates: np.ndarray

    @property
    def size(self) -> int:
        return len(self.nodes)


class SolverContext:
    """Per-instance solver state shared across algorithms.

    ``backend`` supplies the distances; ``dm``/``use_scipy`` keep the
    historical dense construction path (``dm`` and ``backend`` are mutually
    exclusive).  The :attr:`dm` attribute stays available on dense-backed
    contexts for the repair/broadcast machinery; reading it on a lazy
    context raises :class:`~repro.exceptions.ResourceError` instead of
    silently materializing O(|V|²) state.
    """

    def __init__(
        self,
        problem: ProblemInstance,
        *,
        dm: DistanceMatrix | None = None,
        use_scipy: bool = True,
        backend: DistanceBackend | None = None,
    ) -> None:
        if dm is not None and backend is not None:
            raise InvalidProblemError("pass either dm or backend, not both")
        self.problem = problem
        graph = problem.network.graph
        if backend is None:
            backend = DenseBackend(dm or build_distance_matrix(graph, use_scipy=use_scipy))
        self.backend: DistanceBackend = backend
        self.nodes: tuple[Node, ...] = backend.nodes
        self.node_index: dict[Node, int] = backend.index
        self.items: tuple[Item, ...] = problem.catalog
        self.item_index: dict[Item, int] = {i: k for k, i in enumerate(self.items)}
        self._w_max: float | None = None
        self._requesters: dict[Item, RequesterBlock] = {}
        self._pinned_base: dict[Item, np.ndarray] = {}
        self._edge_costs: dict[Edge, float] = problem.network.costs()
        self._sp: ShortestPathCache | None = None
        self._path_oracle: PredecessorPathCache | None = None

    @classmethod
    def from_problem(
        cls,
        problem: ProblemInstance,
        *,
        use_scipy: bool = True,
        backend: str = "auto",
    ) -> "SolverContext":
        """Build a context, choosing the distance tier for the topology.

        ``backend`` is ``"auto"`` (dense up to :data:`DENSE_NODE_THRESHOLD`
        nodes, lazy rows above), ``"dense"``, or ``"lazy"``.  A broadcast
        matrix or row store matching the topology (see
        :mod:`repro.graph.shm`) is reused regardless of the choice —
        costless when no broadcast is live.
        """
        from repro.graph.shm import lookup_matrix, lookup_rows

        if backend not in ("auto", "dense", "lazy"):
            raise InvalidProblemError("backend must be 'auto', 'dense' or 'lazy'")
        graph = problem.network.graph
        dm = lookup_matrix(graph)
        if dm is not None:
            return cls(problem, dm=dm)
        store = lookup_rows(graph)
        if store is not None:
            return cls(
                problem,
                backend=LazyRowBackend(graph, use_scipy=use_scipy, store=store),
            )
        if backend == "lazy" or (
            backend == "auto" and graph.number_of_nodes() > _dense_node_threshold()
        ):
            return cls(problem, backend=LazyRowBackend(graph, use_scipy=use_scipy))
        return cls(problem, use_scipy=use_scipy)

    # ------------------------------------------------------------------
    # Backend access
    # ------------------------------------------------------------------

    @property
    def dm(self) -> DistanceMatrix:
        """The dense matrix (dense-backed contexts only).

        Consumed by the incremental-repair and broadcast machinery, which
        are inherently dense-tier features.  Lazy contexts raise — callers
        that only need rows should use :meth:`row_of`/:meth:`rows_of`.
        """
        backend = self.backend
        if isinstance(backend, DenseBackend):
            return backend.dm
        caller = "a dense-only feature"
        try:  # name the feature that reached for the matrix
            code = sys._getframe(1).f_code
            caller = getattr(code, "co_qualname", code.co_name)
        except Exception:  # pragma: no cover - frame introspection disabled
            pass
        raise ResourceError(
            f"SolverContext.dm (reached from {caller}) needs the dense "
            f"all-pairs matrix, but this {len(self.nodes)}-node context runs "
            "the lazy row backend and never materializes O(|V|^2) state. "
            "Use row_of()/rows_of() for distances, or force the dense tier "
            "with SolverContext.from_problem(backend='dense') or by raising "
            "the REPRO_DENSE_NODE_THRESHOLD environment variable above the "
            "topology size."
        )

    @property
    def w_max(self) -> float:
        """Paper bound on pairwise costs (max finite entry, floored at 1.0).

        Lazily computed: the dense tier reads it off the matrix, the lazy
        tier streams the identical value in bounded memory (see
        :meth:`repro.graph.backends.LazyRowBackend.w_max`).
        """
        if self._w_max is None:
            self._w_max = self.backend.w_max()
        return self._w_max

    def prime_rows(self, sources=None) -> None:
        """Materialize distance rows for ``sources`` in one batched sweep.

        Defaults to :func:`relevant_sources` of the problem — the rows any
        solver consults.  No-op on the dense tier.  Call before exporting a
        row store (:func:`repro.graph.shm.RowsBroadcast`) or to front-load
        the Dijkstra cost out of a timed section.
        """
        backend = self.backend
        if not isinstance(backend, LazyRowBackend):
            return
        nodes = relevant_sources(self.problem) if sources is None else sources
        backend.ensure_rows(
            self.node_index[v] for v in nodes if v in self.node_index
        )

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------

    def distance(self, source: Node, target: Node) -> float:
        """Least cost ``source -> target`` (``inf`` if unreachable)."""
        return self.backend.distance(
            self.node_index[source], self.node_index[target]
        )

    def distances_from(self, source: Node) -> np.ndarray:
        """Row of distances from ``source`` (read-only array view)."""
        return self.backend.row(self.node_index[source])

    def row_of(self, source: Node) -> np.ndarray:
        """Alias of :meth:`distances_from` (solver hot paths)."""
        return self.backend.row(self.node_index[source])

    def rows_of(self, sources) -> np.ndarray:
        """Stacked distance rows for ``sources`` as a ``(k, |V|)`` array."""
        idx = np.fromiter(
            (self.node_index[v] for v in sources), dtype=np.intp, count=len(sources)
        )
        return self.backend.rows(idx)

    def reachable(self, source: Node, target: Node) -> bool:
        return bool(np.isfinite(self.distance(source, target)))

    def finite_max_from(self, sources) -> float:
        """Max finite distance out of ``sources``, floored at 1.0.

        Matches Algorithm 1's ``w_max`` over candidate sources.
        """
        sources = list(sources) if not hasattr(sources, "__len__") else sources
        idx = np.fromiter(
            (self.node_index[v] for v in sources), dtype=np.intp, count=len(sources)
        )
        top = self.backend.finite_max_rows(idx)
        return top if top > 0 else 1.0

    # ------------------------------------------------------------------
    # Demand structure
    # ------------------------------------------------------------------

    def requesters(self, item: Item) -> RequesterBlock:
        """Requesters of ``item`` with matrix column indices and rates."""
        block = self._requesters.get(item)
        if block is None:
            nodes = tuple(self.problem.requesters_of(item))
            idx = np.fromiter(
                (self.node_index[s] for s in nodes), dtype=np.intp, count=len(nodes)
            )
            rates = np.fromiter(
                (self.problem.demand[(item, s)] for s in nodes),
                dtype=np.float64,
                count=len(nodes),
            )
            block = RequesterBlock(nodes=nodes, idx=idx, rates=rates)
            self._requesters[item] = block
        return block

    def pinned_min_costs(self, item: Item) -> np.ndarray:
        """Per-requester least cost over ``item``'s pinned holders (uncapped).

        ``inf`` where the item is pinned nowhere reachable.  One fancy-indexed
        ``np.minimum.reduce`` over all holder rows (min is exact and
        order-independent, so this is bit-identical to the historical
        per-holder loop).  Computed once per item and cached read-only, so
        repeated :meth:`baseline_costs` calls (every ``RNRCostSaving``
        construction, every repair greedy) stop re-sorting holders and
        re-slicing matrix rows.
        """
        base = self._pinned_base.get(item)
        if base is None:
            block = self.requesters(item)
            holders = sorted(self.problem.pinned_holders(item), key=repr)
            if holders and block.size:
                holder_rows = self.rows_of(holders)[:, block.idx]
                base = np.minimum.reduce(holder_rows, axis=0)
            else:
                base = np.full(block.size, np.inf, dtype=np.float64)
            base.setflags(write=False)
            self._pinned_base[item] = base
        return base

    def baseline_costs(self, item: Item, *, cap: float | None = None) -> np.ndarray:
        """Per-requester serving cost from pinned holders, capped at ``cap``.

        This is F_RNR's empty-placement baseline: ``min(cap,
        min_{pinned holder h} w_{h->s})`` for each requester ``s`` of the
        item; ``cap`` defaults to the context's ``w_max``.  Returns a fresh
        writable copy each call.
        """
        cap = self.w_max if cap is None else cap
        return np.minimum(self.pinned_min_costs(item), cap)

    # ------------------------------------------------------------------
    # Paths and link costs
    # ------------------------------------------------------------------

    @property
    def sp(self) -> ShortestPathCache:
        """Lazy dict-based cache used only for path reconstruction."""
        if self._sp is None:
            self._sp = ShortestPathCache(self.problem)
        return self._sp

    @property
    def path_oracle(self) -> PredecessorPathCache:
        """Lazy scipy predecessor-tree path oracle (requires scipy)."""
        if self._path_oracle is None:
            self._path_oracle = PredecessorPathCache(
                self.problem.network.graph, self.nodes, self.node_index
            )
        return self._path_oracle

    def path(self, source: Node, target: Node) -> tuple[Node, ...]:
        return self.sp.path(source, target)

    def link_cost(self, u: Node, v: Node) -> float:
        """Routing cost ``w_uv`` of a single link (precomputed dict)."""
        return self._edge_costs[(u, v)]

    def __repr__(self) -> str:
        w = f"{self._w_max:.4g}" if self._w_max is not None else "<unread>"
        return (
            f"SolverContext(|V|={len(self.nodes)}, |C|={len(self.items)}, "
            f"backend={type(self.backend).__name__}, w_max={w})"
        )
