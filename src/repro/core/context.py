"""Shared solver context: index maps + a dense all-pairs distance matrix.

Every Section 4 solver consumes the same instance-level structure — the
least costs ``w_{v->s}`` between cache nodes and requesters, the per-item
requester lists with their rates, and the bound ``w_max``.  The seed code
recomputed (or dict-looked-up) these inside inner loops through
:class:`~repro.core.rnr.ShortestPathCache`.  A :class:`SolverContext`
materializes them once per instance:

- a dense ``float64`` distance matrix over the graph's nodes
  (:mod:`repro.graph.distance_matrix`), indexed by integer node ids;
- per-item requester index arrays and rate vectors, aligned with
  :meth:`ProblemInstance.requesters_of` order so vectorized reductions are
  deterministic and comparable with the dict-based code path;
- precomputed per-request baseline serving costs over pinned holders;
- an edge-cost dict for O(1) link-cost lookups (serving-path suffix sums);
- a lazy :class:`ShortestPathCache` for actual path reconstruction, which
  numpy cannot replace.

The context is an optional argument everywhere (``context=None`` keeps the
dict-based fallback), so callers can cross-check both paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import Item, Node, ProblemInstance
from repro.core.rnr import PredecessorPathCache, ShortestPathCache
from repro.graph.distance_matrix import DistanceMatrix, build_distance_matrix

Edge = tuple[Node, Node]


@dataclass(frozen=True)
class RequesterBlock:
    """Requesters of one item as parallel arrays (deterministic order)."""

    #: Requester nodes, sorted like :meth:`ProblemInstance.requesters_of`.
    nodes: tuple[Node, ...]
    #: Column indices of ``nodes`` in the distance matrix.
    idx: np.ndarray
    #: Request rates ``lambda_{(i, s)}`` aligned with ``nodes``.
    rates: np.ndarray

    @property
    def size(self) -> int:
        return len(self.nodes)


class SolverContext:
    """Dense per-instance solver state shared across algorithms."""

    def __init__(
        self,
        problem: ProblemInstance,
        *,
        dm: DistanceMatrix | None = None,
        use_scipy: bool = True,
    ) -> None:
        self.problem = problem
        graph = problem.network.graph
        self.dm = dm or build_distance_matrix(graph, use_scipy=use_scipy)
        self.nodes: tuple[Node, ...] = self.dm.nodes
        self.node_index: dict[Node, int] = self.dm.index
        self.items: tuple[Item, ...] = problem.catalog
        self.item_index: dict[Item, int] = {i: k for k, i in enumerate(self.items)}
        #: Paper bound on pairwise costs (max finite entry, floored at 1.0).
        self.w_max: float = self.dm.w_max()
        self._requesters: dict[Item, RequesterBlock] = {}
        self._pinned_base: dict[Item, np.ndarray] = {}
        self._edge_costs: dict[Edge, float] = problem.network.costs()
        self._sp: ShortestPathCache | None = None
        self._path_oracle: PredecessorPathCache | None = None

    @classmethod
    def from_problem(
        cls, problem: ProblemInstance, *, use_scipy: bool = True
    ) -> "SolverContext":
        """Build a context, reusing a broadcast distance matrix when one
        matching the problem's topology is registered (see
        :mod:`repro.graph.shm`); costless when no broadcast is live."""
        from repro.graph.shm import lookup_matrix

        dm = lookup_matrix(problem.network.graph)
        if dm is not None:
            return cls(problem, dm=dm)
        return cls(problem, use_scipy=use_scipy)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------

    def distance(self, source: Node, target: Node) -> float:
        """Least cost ``source -> target`` (``inf`` if unreachable)."""
        return float(self.dm.matrix[self.node_index[source], self.node_index[target]])

    def distances_from(self, source: Node) -> np.ndarray:
        """Row of distances from ``source`` (read-only array view)."""
        return self.dm.matrix[self.node_index[source]]

    def reachable(self, source: Node, target: Node) -> bool:
        return np.isfinite(
            self.dm.matrix[self.node_index[source], self.node_index[target]]
        )

    def finite_max_from(self, sources) -> float:
        """Max finite distance out of ``sources``, floored at 1.0.

        Matches Algorithm 1's ``w_max`` over candidate sources.
        """
        rows = self.dm.matrix[[self.node_index[v] for v in sources]]
        finite = rows[np.isfinite(rows)]
        top = float(finite.max()) if finite.size else 0.0
        return top if top > 0 else 1.0

    # ------------------------------------------------------------------
    # Demand structure
    # ------------------------------------------------------------------

    def requesters(self, item: Item) -> RequesterBlock:
        """Requesters of ``item`` with matrix column indices and rates."""
        block = self._requesters.get(item)
        if block is None:
            nodes = tuple(self.problem.requesters_of(item))
            idx = np.fromiter(
                (self.node_index[s] for s in nodes), dtype=np.intp, count=len(nodes)
            )
            rates = np.fromiter(
                (self.problem.demand[(item, s)] for s in nodes),
                dtype=np.float64,
                count=len(nodes),
            )
            block = RequesterBlock(nodes=nodes, idx=idx, rates=rates)
            self._requesters[item] = block
        return block

    def pinned_min_costs(self, item: Item) -> np.ndarray:
        """Per-requester least cost over ``item``'s pinned holders (uncapped).

        ``inf`` where the item is pinned nowhere reachable.  Computed once
        per item and cached read-only, so repeated :meth:`baseline_costs`
        calls (every ``RNRCostSaving`` construction, every repair greedy)
        stop re-sorting holders and re-slicing matrix rows.
        """
        base = self._pinned_base.get(item)
        if base is None:
            block = self.requesters(item)
            base = np.full(block.size, np.inf, dtype=np.float64)
            for holder in sorted(self.problem.pinned_holders(item), key=repr):
                np.minimum(
                    base, self.dm.matrix[self.node_index[holder], block.idx], out=base
                )
            base.setflags(write=False)
            self._pinned_base[item] = base
        return base

    def baseline_costs(self, item: Item, *, cap: float | None = None) -> np.ndarray:
        """Per-requester serving cost from pinned holders, capped at ``cap``.

        This is F_RNR's empty-placement baseline: ``min(cap,
        min_{pinned holder h} w_{h->s})`` for each requester ``s`` of the
        item; ``cap`` defaults to the context's ``w_max``.  Returns a fresh
        writable copy each call.
        """
        cap = self.w_max if cap is None else cap
        return np.minimum(self.pinned_min_costs(item), cap)

    # ------------------------------------------------------------------
    # Paths and link costs
    # ------------------------------------------------------------------

    @property
    def sp(self) -> ShortestPathCache:
        """Lazy dict-based cache used only for path reconstruction."""
        if self._sp is None:
            self._sp = ShortestPathCache(self.problem)
        return self._sp

    @property
    def path_oracle(self) -> PredecessorPathCache:
        """Lazy scipy predecessor-tree path oracle (requires scipy)."""
        if self._path_oracle is None:
            self._path_oracle = PredecessorPathCache(
                self.problem.network.graph, self.nodes, self.node_index
            )
        return self._path_oracle

    def path(self, source: Node, target: Node) -> tuple[Node, ...]:
        return self.sp.path(source, target)

    def link_cost(self, u: Node, v: Node) -> float:
        """Routing cost ``w_uv`` of a single link (precomputed dict)."""
        return self._edge_costs[(u, v)]

    def __repr__(self) -> str:
        return (
            f"SolverContext(|V|={len(self.nodes)}, |C|={len(self.items)}, "
            f"w_max={self.w_max:.4g})"
        )
