"""Exception hierarchy for the repro package.

All errors raised by this package derive from :class:`ReproError`, so callers
can catch a single exception type at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidNetworkError(ReproError):
    """The cache network definition is malformed (bad capacities, costs, ...)."""


class InvalidProblemError(ReproError):
    """The joint caching/routing problem instance is malformed."""


class InfeasibleError(ReproError):
    """No feasible solution exists for the given instance (or solver said so)."""


class SolverError(ReproError):
    """An underlying numerical solver failed unexpectedly."""


class UnboundedError(SolverError):
    """The LP objective can be improved without limit (missing bound/capacity)."""


class DecompositionError(ReproError):
    """A flow could not be decomposed into paths (conservation violated)."""


class ResourceError(ReproError):
    """An operation would exceed a resource ceiling (memory, handles, ...).

    Raised *before* the allocation is attempted, with a message naming the
    estimated byte count and the cheaper alternative, instead of letting a
    raw :class:`MemoryError` surface mid-computation.
    """


class PredictionError(ReproError):
    """Demand prediction failed (e.g. degenerate training data)."""
