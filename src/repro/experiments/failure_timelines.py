"""Timeline campaigns: score placements under failure *dynamics* at scale.

The Monte Carlo runner scores algorithms on healthy instances; the
robustness layer replays one placement through one failure timeline.  This
module composes the two: :class:`TimelineAlgorithm` wraps any registered
algorithm so that each Monte Carlo run additionally replays the computed
placement through a seeded :class:`~repro.robustness.timeline.FailureTimeline`
over the run's own topology, and ships the resulting
:class:`~repro.robustness.controller.TimelineReport` summary through the
runner's ``RunRecord.extra`` side-channel (the wrapper attaches it to the
solution as ``extra_metrics``, which :func:`~repro.experiments.runner.
evaluate_algorithm` picks up).

Everything stays picklable — the wrapper is a frozen dataclass over
module-level callables — so timeline campaigns parallelize across processes
exactly like plain campaigns, and the timeline seed is derived from the
run's scenario seed, keeping serial and parallel execution bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.solution import Solution
from repro.experiments.config import MonteCarloConfig, ScenarioConfig
from repro.experiments.runner import Algorithm, RunRecord, run_monte_carlo
from repro.robustness.controller import RecoveryPolicy, replay_timeline
from repro.robustness.timeline import TimelineConfig, generate_timeline

if TYPE_CHECKING:
    from collections.abc import Iterable, Mapping

    from repro.experiments.scenarios import EdgeCachingScenario


@dataclass(frozen=True)
class TimelineAlgorithm:
    """An algorithm that is additionally scored under failure dynamics.

    Calls the wrapped ``algorithm`` on the scenario, then replays its
    placement through a timeline generated over the scenario's (true)
    problem with seed ``scenario.config.seed + timeline_seed_offset``.  The
    healthy solution is returned unchanged — cost/congestion/occupancy keep
    their usual healthy-instance meaning — with the replay summary attached
    as ``solution.extra_metrics["timeline"]``.
    """

    algorithm: Algorithm
    timeline_config: TimelineConfig = TimelineConfig()
    policy: RecoveryPolicy = RecoveryPolicy()
    #: Added to the scenario seed so timeline randomness is decoupled from
    #: the workload randomness of the run itself.
    timeline_seed_offset: int = 0
    #: Build a healthy SolverContext and derive degraded ones incrementally.
    use_context: bool = True
    incremental: bool = True
    #: Spare the origin from node failures (it pins the whole catalog, so
    #: killing it measures origin loss rather than placement quality).
    exclude_origin: bool = True

    def __call__(self, scenario: "EdgeCachingScenario") -> Solution:
        solution = self.algorithm(scenario)
        problem = scenario.problem
        tcfg = self.timeline_config
        if self.exclude_origin and scenario.origin not in tcfg.exclude_nodes:
            tcfg = replace(
                tcfg, exclude_nodes=(*tcfg.exclude_nodes, scenario.origin)
            )
        context = None
        if self.use_context:
            from repro.core.context import SolverContext

            context = SolverContext.from_problem(problem)
        timeline = generate_timeline(
            problem,
            tcfg,
            seed=scenario.config.seed + self.timeline_seed_offset,
            name=f"{scenario.config.topology}:seed={scenario.config.seed}",
        )
        report = replay_timeline(
            problem,
            solution.placement,
            timeline,
            self.policy,
            context=context,
            incremental=self.incremental,
            healthy_routing=solution.routing,
        )
        solution.extra_metrics = {"timeline": report.to_json_dict()}
        return solution


def run_timeline_campaign(
    config: ScenarioConfig,
    algorithms: "Mapping[str, Algorithm]",
    monte_carlo: MonteCarloConfig,
    *,
    timeline_config: TimelineConfig = TimelineConfig(),
    policy: RecoveryPolicy | None = None,
    timeline_seed_offset: int = 0,
    use_context: bool = True,
    incremental: bool = True,
    **runner_kwargs,
) -> list[RunRecord]:
    """Monte Carlo campaign where every run also replays a failure timeline.

    A thin wrapper over :func:`~repro.experiments.runner.run_monte_carlo`
    (all its keyword arguments — ``parallel``, ``checkpoint``,
    ``run_timeout``, ... — pass through) with each algorithm wrapped in
    :class:`TimelineAlgorithm`.  Each record's ``extra["timeline"]`` holds
    the replay summary; feed the records to :func:`timeline_rows` for a
    ``format_sweep``-ready table.
    """
    wrapped = {
        name: TimelineAlgorithm(
            algorithm,
            timeline_config=timeline_config,
            policy=policy or RecoveryPolicy(),
            timeline_seed_offset=timeline_seed_offset,
            use_context=use_context,
            incremental=incremental,
        )
        for name, algorithm in algorithms.items()
    }
    return run_monte_carlo(config, wrapped, monte_carlo, **runner_kwargs)


def timeline_rows(records: "Iterable[RunRecord]") -> list[dict]:
    """Flatten timeline campaign records into ``format_sweep`` rows."""
    rows: list[dict] = []
    for record in records:
        summary = record.extra.get("timeline")
        if not summary:
            continue
        rows.append(
            {
                "algorithm": record.algorithm,
                "seed": record.seed,
                "availability": summary["availability"],
                "inflation": summary["cost_inflation_integral"],
                "reopts": summary["reoptimizations"],
                "absorbed": summary["reroutes_avoided"],
                "latency": summary["mean_recovery_latency"],
            }
        )
    return rows
