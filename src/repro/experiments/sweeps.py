"""Parameter sweeps: one call per figure-style x-axis.

The paper's figures are sweeps over a scenario knob (cache size, link
capacity, catalog size, chunk size).  :func:`sweep_parameter` runs a set of
algorithms over Monte Carlo instances at each value of one knob and returns
flat rows ready for :func:`repro.experiments.reporting.format_sweep` — the
benches and the ``repro sweep`` CLI subcommand are thin wrappers over it.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import fields, replace

from repro.exceptions import InvalidProblemError
from repro.experiments.config import MonteCarloConfig, ScenarioConfig
from repro.experiments.runner import Algorithm, aggregate, run_monte_carlo

#: Scenario knobs that make sense as sweep axes.
SWEEPABLE = (
    "cache_capacity",
    "link_capacity_fraction",
    "num_videos",
    "chunk_mb",
    "num_edge_nodes",
)


def sweep_parameter(
    config: ScenarioConfig,
    parameter: str,
    values: Sequence,
    algorithms: Mapping[str, Algorithm],
    monte_carlo: MonteCarloConfig | None = None,
) -> list[dict]:
    """Run ``algorithms`` at every value of one scenario knob.

    Returns one row per (value, algorithm) with the aggregated metrics.
    """
    if parameter not in {f.name for f in fields(ScenarioConfig)}:
        raise InvalidProblemError(f"unknown scenario parameter {parameter!r}")
    if parameter not in SWEEPABLE:
        raise InvalidProblemError(
            f"{parameter!r} is not a supported sweep axis; pick one of {SWEEPABLE}"
        )
    if not values:
        raise InvalidProblemError("values must be nonempty")
    monte_carlo = monte_carlo or MonteCarloConfig(n_runs=2)
    rows: list[dict] = []
    for value in values:
        point = replace(config, **{parameter: value})
        records = run_monte_carlo(point, algorithms, monte_carlo)
        for agg in aggregate(records):
            rows.append(
                {
                    parameter: value,
                    "algorithm": agg.algorithm,
                    "cost": agg.mean_cost,
                    "congestion": agg.mean_congestion,
                    "occupancy": agg.mean_occupancy,
                    "seconds": agg.mean_seconds,
                    "failures": agg.failures,
                }
            )
    return rows
