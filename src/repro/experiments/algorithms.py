"""Named algorithm wrappers used across the benchmark harness.

Every wrapper is ``scenario -> Solution`` and plans on the scenario's
planning problem (the GPR-predicted demand when present, else the truth);
the runner then scores the resulting decisions against the true demand.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.baselines import candidate_path_baseline, shortest_path_baseline
from repro.core.algorithm1 import algorithm1
from repro.core.alternating import alternating_optimization
from repro.core.context import SolverContext
from repro.core.fcfr import solve_fcfr
from repro.core.msufp import solve_binary_cache_case, splittable_binary_cache
from repro.core.rnr import route_to_nearest_replica
from repro.core.solution import Placement, Solution
from repro.core.submodular import greedy_rnr_placement
from repro.experiments.scenarios import EdgeCachingScenario, pin_servers

Algorithm = Callable[[EdgeCachingScenario], Solution]


def alg1(scenario: EdgeCachingScenario) -> Solution:
    """Algorithm 1 (chunk level, unlimited link capacities)."""
    problem = scenario.planning_problem()
    return algorithm1(problem, context=SolverContext.from_problem(problem)).solution


def greedy(scenario: EdgeCachingScenario) -> Solution:
    """Greedy submodular placement + RNR (the paper's file-level proposal)."""
    problem = scenario.planning_problem()
    context = SolverContext.from_problem(problem)
    placement = greedy_rnr_placement(problem, context=context)
    return Solution(
        placement, route_to_nearest_replica(problem, placement, context=context)
    )


def sp(scenario: EdgeCachingScenario) -> Solution:
    """[38]'s 'shortest path' benchmark."""
    problem = scenario.planning_problem()
    return shortest_path_baseline(
        problem, context=SolverContext.from_problem(problem)
    )


class ksp:
    """[3]'s benchmark with k candidate paths ('SP + RNR' at k = 1).

    A callable class (not a closure) so instances pickle cleanly into the
    parallel Monte Carlo runner's worker processes.
    """

    def __init__(self, k: int = 10) -> None:
        self.k = k
        self.__name__ = f"ksp_{k}"

    def __call__(self, scenario: EdgeCachingScenario) -> Solution:
        problem = scenario.planning_problem()
        return candidate_path_baseline(
            problem, k=self.k, context=SolverContext.from_problem(problem)
        )


class alternating:
    """The general-case alternating optimization (Section 4.3.3).

    Callable class for picklability (see :class:`ksp`).
    """

    def __init__(
        self,
        *,
        integral_routing: bool = True,
        mmufp_method: str = "randomized",
        n_samples: int = 16,
        max_iterations: int = 12,
    ) -> None:
        self.integral_routing = integral_routing
        self.mmufp_method = mmufp_method
        self.n_samples = n_samples
        self.max_iterations = max_iterations
        self.__name__ = "alternating" if integral_routing else "alternating_fr"

    def __call__(self, scenario: EdgeCachingScenario) -> Solution:
        rng = np.random.default_rng(scenario.config.seed + 104729)
        return alternating_optimization(
            scenario.planning_problem(),
            integral_routing=self.integral_routing,
            mmufp_method=self.mmufp_method,
            n_samples=self.n_samples,
            max_iterations=self.max_iterations,
            rng=rng,
        ).solution


def fcfr(scenario: EdgeCachingScenario) -> Solution:
    """Exact FC-FR LP — the universal lower-bound reference."""
    return solve_fcfr(scenario.planning_problem()).solution


# ----------------------------------------------------------------------
# Binary-cache-capacity case (Fig. 6): the catalog is replicated on fixed
# servers; only source selection + routing are optimized.
# ----------------------------------------------------------------------


class alg2_binary:
    """Algorithm 2 on the virtual-source reduction (K = 2 is [33])."""

    def __init__(self, servers: list, K: int) -> None:
        self.servers = servers
        self.K = K
        self.__name__ = f"alg2_K{K}"

    def __call__(self, scenario: EdgeCachingScenario) -> Solution:
        problem = pin_servers(scenario, self.servers)
        if scenario.predicted_problem is not None:
            problem = problem.with_demand(scenario.predicted_problem.demand)
        solution, _result = solve_binary_cache_case(problem, self.servers, K=self.K)
        return solution


class splittable_binary:
    """The splittable-flow LP lower bound of Fig. 6."""

    def __init__(self, servers: list) -> None:
        self.servers = servers
        self.__name__ = "splittable"

    def __call__(self, scenario: EdgeCachingScenario) -> Solution:
        problem = pin_servers(scenario, self.servers)
        if scenario.predicted_problem is not None:
            problem = problem.with_demand(scenario.predicted_problem.demand)
        solution, _cost = splittable_binary_cache(problem, self.servers)
        return solution


class rnr_binary:
    """[3]'s capacity-oblivious RNR in the binary-cache case."""

    def __init__(self, servers: list) -> None:
        self.servers = servers
        self.__name__ = "rnr"

    def __call__(self, scenario: EdgeCachingScenario) -> Solution:
        problem = pin_servers(scenario, self.servers)
        if scenario.predicted_problem is not None:
            problem = problem.with_demand(scenario.predicted_problem.demand)
        routing = route_to_nearest_replica(problem, Placement())
        return Solution(Placement(), routing)
