"""Named algorithm wrappers used across the benchmark harness.

Every wrapper is ``scenario -> Solution`` and plans on the scenario's
planning problem (the GPR-predicted demand when present, else the truth);
the runner then scores the resulting decisions against the true demand.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.baselines import candidate_path_baseline, shortest_path_baseline
from repro.core.algorithm1 import algorithm1
from repro.core.alternating import alternating_optimization
from repro.core.fcfr import solve_fcfr
from repro.core.msufp import solve_binary_cache_case, splittable_binary_cache
from repro.core.rnr import route_to_nearest_replica
from repro.core.solution import Placement, Solution
from repro.core.submodular import greedy_rnr_placement
from repro.experiments.scenarios import EdgeCachingScenario, pin_servers

Algorithm = Callable[[EdgeCachingScenario], Solution]


def alg1(scenario: EdgeCachingScenario) -> Solution:
    """Algorithm 1 (chunk level, unlimited link capacities)."""
    return algorithm1(scenario.planning_problem()).solution


def greedy(scenario: EdgeCachingScenario) -> Solution:
    """Greedy submodular placement + RNR (the paper's file-level proposal)."""
    problem = scenario.planning_problem()
    placement = greedy_rnr_placement(problem)
    return Solution(placement, route_to_nearest_replica(problem, placement))


def sp(scenario: EdgeCachingScenario) -> Solution:
    """[38]'s 'shortest path' benchmark."""
    return shortest_path_baseline(scenario.planning_problem())


def ksp(k: int = 10) -> Algorithm:
    """[3]'s benchmark with k candidate paths ('SP + RNR' at k = 1)."""

    def run(scenario: EdgeCachingScenario) -> Solution:
        return candidate_path_baseline(scenario.planning_problem(), k=k)

    run.__name__ = f"ksp_{k}"
    return run


def alternating(
    *,
    integral_routing: bool = True,
    mmufp_method: str = "randomized",
    n_samples: int = 16,
    max_iterations: int = 12,
) -> Algorithm:
    """The general-case alternating optimization (Section 4.3.3)."""

    def run(scenario: EdgeCachingScenario) -> Solution:
        rng = np.random.default_rng(scenario.config.seed + 104729)
        return alternating_optimization(
            scenario.planning_problem(),
            integral_routing=integral_routing,
            mmufp_method=mmufp_method,
            n_samples=n_samples,
            max_iterations=max_iterations,
            rng=rng,
        ).solution

    run.__name__ = "alternating" if integral_routing else "alternating_fr"
    return run


def fcfr(scenario: EdgeCachingScenario) -> Solution:
    """Exact FC-FR LP — the universal lower-bound reference."""
    return solve_fcfr(scenario.planning_problem()).solution


# ----------------------------------------------------------------------
# Binary-cache-capacity case (Fig. 6): the catalog is replicated on fixed
# servers; only source selection + routing are optimized.
# ----------------------------------------------------------------------


def alg2_binary(servers: list, K: int) -> Algorithm:
    """Algorithm 2 on the virtual-source reduction (K = 2 is [33])."""

    def run(scenario: EdgeCachingScenario) -> Solution:
        problem = pin_servers(scenario, servers)
        if scenario.predicted_problem is not None:
            problem = problem.with_demand(scenario.predicted_problem.demand)
        solution, _result = solve_binary_cache_case(problem, servers, K=K)
        return solution

    run.__name__ = f"alg2_K{K}"
    return run


def splittable_binary(servers: list) -> Algorithm:
    """The splittable-flow LP lower bound of Fig. 6."""

    def run(scenario: EdgeCachingScenario) -> Solution:
        problem = pin_servers(scenario, servers)
        if scenario.predicted_problem is not None:
            problem = problem.with_demand(scenario.predicted_problem.demand)
        solution, _cost = splittable_binary_cache(problem, servers)
        return solution

    run.__name__ = "splittable"
    return run


def rnr_binary(servers: list) -> Algorithm:
    """[3]'s capacity-oblivious RNR in the binary-cache case."""

    def run(scenario: EdgeCachingScenario) -> Solution:
        problem = pin_servers(scenario, servers)
        if scenario.predicted_problem is not None:
            problem = problem.with_demand(scenario.predicted_problem.demand)
        routing = route_to_nearest_replica(problem, Placement())
        return Solution(Placement(), routing)

    run.__name__ = "rnr"
    return run
