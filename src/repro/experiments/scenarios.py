"""Scenario builders for the paper's edge-caching evaluation (Section 6).

A scenario bundles the network (with the paper's cost/capacity
distributions), the catalog (chunk or file level), the true demand snapshot
from the synthetic trace, and optionally a GPR-predicted demand for the same
hour.  Every random choice is driven by explicit seeds so Monte Carlo runs
are reproducible.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

import numpy as np

from repro.core.problem import ProblemInstance, Request, pin_full_catalog
from repro.exceptions import InvalidProblemError
from repro.experiments.config import PredictionConfig, ScenarioConfig
from repro.graph import (
    abovenet,
    abvt,
    deltacom,
    edge_caching_roles,
    tinet,
)
from repro.graph.network import CacheNetwork
from repro.prediction.gpr import DemandPredictor
from repro.workload.catalog import CatalogSpec, chunk_level_catalog, file_level_catalog, top_videos
from repro.workload.requests import build_demand, edge_node_shares
from repro.workload.trace import TraceConfig, ViewTrace, synthesize_trace

Node = Hashable

_TOPOLOGIES = {
    "abovenet": abovenet,
    "abvt": abvt,
    "tinet": tinet,
    "deltacom": deltacom,
}


@dataclass
class EdgeCachingScenario:
    """A fully materialized evaluation instance."""

    config: ScenarioConfig
    problem: ProblemInstance
    origin: Node
    edge_nodes: list[Node]
    catalog_spec: CatalogSpec
    #: Per-video true request rates (views/hour) at the snapshot hour.
    video_rates: dict[str, float]
    #: Same-hour GPR-predicted rates (None unless prediction was requested).
    predicted_video_rates: dict[str, float] | None = None
    predicted_problem: ProblemInstance | None = None

    @property
    def demand(self) -> dict[Request, float]:
        return self.problem.demand

    def planning_problem(self) -> ProblemInstance:
        """The instance algorithms should optimize: predicted if available."""
        return self.predicted_problem or self.problem


def assign_paper_costs(
    network: CacheNetwork,
    origin: Node,
    rng: np.random.Generator,
    *,
    origin_cost_range: tuple[float, float] = (100.0, 200.0),
    link_cost_range: tuple[float, float] = (1.0, 20.0),
) -> None:
    """Link costs as in Section 6: expensive origin links, cheap internal ones."""
    for (u, v) in network.edges:
        if origin in (u, v):
            lo, hi = origin_cost_range
        else:
            lo, hi = link_cost_range
        network.graph.edges[u, v]["cost"] = float(rng.uniform(lo, hi))


def predicted_rates_for_hour(
    trace: ViewTrace,
    hour: int,
    prediction: PredictionConfig,
) -> dict[str, float]:
    """GPR prediction of each video's rate at evaluation hour ``hour``.

    Follows the paper's protocol: the model is (re)fit on history before the
    5-hour batch containing ``hour`` and predicts the batch; we return the
    prediction for the requested hour.
    """
    predictor = DemandPredictor(
        train_hours=prediction.train_hours,
        batch_hours=prediction.batch_hours,
        history_window=prediction.history_window,
        n_restarts=prediction.n_restarts,
        seed=prediction.seed,
    )
    out: dict[str, float] = {}
    for k, video in enumerate(trace.videos):
        series = trace.views[:, k]
        batch_start = (hour // prediction.batch_hours) * prediction.batch_hours
        pred = predictor.predict_series(
            series[: prediction.train_hours + batch_start + prediction.batch_hours],
            eval_hours=batch_start + prediction.batch_hours,
        )
        out[video.video_id] = float(pred[hour])
    return out


def build_scenario(
    config: ScenarioConfig,
    *,
    trace: ViewTrace | None = None,
    trace_config: TraceConfig | None = None,
    predicted_rates: dict[str, float] | None = None,
) -> EdgeCachingScenario:
    """Materialize one evaluation instance from a configuration.

    ``trace`` defaults to the synthetic Table-1 trace; pass ``predicted_rates``
    (e.g. from :func:`predicted_rates_for_hour`) to also build the predicted
    instance the algorithms plan against.
    """
    if config.topology not in _TOPOLOGIES:
        raise InvalidProblemError(f"unknown topology {config.topology!r}")
    rng = np.random.default_rng(config.seed)
    network = _TOPOLOGIES[config.topology]()
    origin, edge_nodes = edge_caching_roles(
        network, num_edge_nodes=config.num_edge_nodes
    )
    assign_paper_costs(
        network,
        origin,
        rng,
        origin_cost_range=config.origin_cost_range,
        link_cost_range=config.link_cost_range,
    )

    videos = top_videos(config.num_videos)
    if config.level == "chunk":
        catalog_spec = chunk_level_catalog(videos, chunk_mb=config.chunk_mb)
        item_sizes = None
        cache_capacity = float(config.cache_capacity)
    else:
        catalog_spec = file_level_catalog(videos)
        item_sizes = dict(catalog_spec.sizes or {})
        mean_size = float(np.mean(list(item_sizes.values())))
        cache_capacity = config.cache_capacity * mean_size

    trace_config = trace_config or TraceConfig()
    if trace is None:
        trace = synthesize_trace(videos=videos, config=trace_config)
    eval_start = trace_config.train_hours
    video_rates = {
        video.video_id: float(trace.views[eval_start + config.hour, k])
        for k, video in enumerate(trace.videos)
    }

    shares = edge_node_shares(edge_nodes, [v.video_id for v in videos], rng)

    def demand_from(rates: dict[str, float]) -> dict[Request, float]:
        if config.level == "file":
            # Heterogeneous model: rates are in MB/hour (Section 5.1).
            rates = {
                vid: rate * (item_sizes or {}).get(vid, 1.0)
                for vid, rate in rates.items()
            }
        return build_demand(rates, catalog_spec, edge_nodes, shares)

    demand = demand_from(video_rates)

    for v in edge_nodes:
        network.set_cache_capacity(v, cache_capacity)
    if config.link_capacity_fraction is not None:
        total = sum(demand.values())
        network.set_uniform_link_capacity(
            max(config.link_capacity_fraction * total, 1e-9)
        )

    pinned = pin_full_catalog(catalog_spec.items, [origin])
    problem = ProblemInstance(
        network=network,
        catalog=catalog_spec.items,
        demand=demand,
        item_sizes=item_sizes,
        pinned=pinned,
    )

    if config.link_capacity_fraction is not None and config.augment_origin_paths:
        # The paper augments "a cycle-free path" per edge node so the origin
        # can serve everything as a last resort.  We use hop-count shortest
        # paths: they generally differ from the cost-shortest paths the
        # algorithms prefer, so augmentation does not hand the shortest-path
        # baselines free capacity.
        import networkx as nx

        for s in edge_nodes:
            inflow = sum(
                rate for (_i, node), rate in demand.items() if node == s
            )
            path = nx.shortest_path(network.graph, origin, s)
            network.augment_capacity_along_path(path, inflow * config.augment_margin)

    predicted_problem = None
    if predicted_rates is not None:
        predicted_problem = problem.with_demand(demand_from(predicted_rates))

    return EdgeCachingScenario(
        config=config,
        problem=problem,
        origin=origin,
        edge_nodes=list(edge_nodes),
        catalog_spec=catalog_spec,
        video_rates=video_rates,
        predicted_video_rates=predicted_rates,
        predicted_problem=predicted_problem,
    )


def build_zipf_scenario(
    *,
    topology: str = "abovenet",
    num_items: int = 50,
    alpha: float = 0.8,
    total_rate: float = 1000.0,
    cache_capacity: float = 10.0,
    link_capacity_fraction: float | None = 0.05,
    num_edge_nodes: int | None = None,
    seed: int = 0,
) -> EdgeCachingScenario:
    """Synthetic Zipf workload (the conference version's evaluation).

    Same network protocol as :func:`build_scenario` (paper costs, edge
    roles, augmentation) but demand drawn from a Zipf(alpha) popularity law
    instead of the trace — handy for sweeps over catalog skew.
    """
    from repro.workload.zipf import zipf_demand

    config = ScenarioConfig(
        topology=topology,
        level="chunk",
        cache_capacity=cache_capacity,
        link_capacity_fraction=link_capacity_fraction,
        num_edge_nodes=num_edge_nodes,
        seed=seed,
    )
    rng = np.random.default_rng(seed)
    network = _TOPOLOGIES[topology]()
    origin, edge_nodes = edge_caching_roles(network, num_edge_nodes=num_edge_nodes)
    assign_paper_costs(network, origin, rng)
    items = tuple(f"item{k:03d}" for k in range(num_items))
    demand = zipf_demand(
        items, edge_nodes, total_rate=total_rate, alpha=alpha, rng=rng
    )
    for v in edge_nodes:
        network.set_cache_capacity(v, cache_capacity)
    if link_capacity_fraction is not None:
        network.set_uniform_link_capacity(
            max(link_capacity_fraction * total_rate, 1e-9)
        )
    problem = ProblemInstance(
        network=network,
        catalog=items,
        demand=demand,
        pinned=pin_full_catalog(items, [origin]),
    )
    if link_capacity_fraction is not None:
        import networkx as nx

        for s in edge_nodes:
            inflow = sum(rate for (_i, node), rate in demand.items() if node == s)
            path = nx.shortest_path(network.graph, origin, s)
            network.augment_capacity_along_path(path, inflow * config.augment_margin)
    catalog_spec = CatalogSpec(items=items, sizes=None, item_of_video={})
    return EdgeCachingScenario(
        config=config,
        problem=problem,
        origin=origin,
        edge_nodes=list(edge_nodes),
        catalog_spec=catalog_spec,
        video_rates={},
    )


def binary_cache_servers(scenario: EdgeCachingScenario) -> list[Node]:
    """The binary-cache-capacity case (Section 4.2): the origin plus the
    first edge node store the whole catalog; everything else stores nothing."""
    extra = scenario.edge_nodes[0]
    return [scenario.origin, extra]


def pin_servers(scenario: EdgeCachingScenario, servers: list[Node]) -> ProblemInstance:
    """Instance variant where ``servers`` pin the full catalog and caches are off."""
    problem = scenario.problem
    network = problem.network.copy()
    for v in network.cache_nodes():
        network.set_cache_capacity(v, 0.0)
    return ProblemInstance(
        network=network,
        catalog=problem.catalog,
        demand=dict(problem.demand),
        item_sizes=None if problem.item_sizes is None else dict(problem.item_sizes),
        pinned=pin_full_catalog(problem.catalog, servers),
    )
