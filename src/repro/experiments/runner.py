"""Monte Carlo experiment runner and per-algorithm evaluation records.

Each algorithm is a callable ``scenario -> Solution`` that plans on the
scenario's *planning* problem (predicted demand when available) and is
always evaluated against the *true* demand — the paper's light/dark bar
protocol.  The runner repeats scenarios over seeds and aggregates the
metrics the paper plots: routing cost, congestion, max cache occupancy,
and execution time (Tables 3-4).

The paper's protocol averages 100 independent runs; :func:`run_monte_carlo`
can execute them across processes (``parallel=True``).  Per-run seeds are
materialized up front (optionally via ``numpy.random.SeedSequence.spawn``,
see :class:`MonteCarloConfig`), every run is fully determined by its seed,
and records are collected in run-major order — so the parallel mode is
bit-identical to serial execution in everything except wall-clock timings.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import pickle
import statistics
import time
import traceback
from collections.abc import Callable, Iterable, Mapping, Sequence
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.evaluation import (
    congestion,
    max_cache_occupancy,
    routing_cost,
)
from repro.core.solution import Solution
from repro.exceptions import ReproError
from repro.experiments.config import MonteCarloConfig, ScenarioConfig
from repro.experiments.scenarios import EdgeCachingScenario, build_scenario
from repro.graph.backends import LazyRowBackend
from repro.graph.shm import (
    MatrixBroadcast,
    RowsBroadcast,
    SharedMatrixHandle,
    SharedRowsHandle,
    attach_and_register,
    attach_and_register_rows,
    graph_signature,
    register_matrix,
    register_rows,
    unregister_matrix,
    unregister_rows,
)
from repro.serving import ServingConfig, compile_tables, replay

if TYPE_CHECKING:
    from repro.core.context import SolverContext

Algorithm = Callable[[EdgeCachingScenario], Solution]

logger = logging.getLogger(__name__)

#: Exceptions an algorithm may raise that mark *its* run as failed instead of
#: aborting the whole campaign: the package's own errors plus the numerical
#: exceptions that escape numpy/scipy code paths (``LinAlgError`` is listed
#: explicitly because it does not derive from ``ValueError`` on all numpy
#: versions).
RECOVERABLE_ALGORITHM_ERRORS: tuple[type[BaseException], ...] = (
    ReproError,
    ValueError,
    ArithmeticError,
    np.linalg.LinAlgError,
)


@dataclass
class RunRecord:
    """Metrics of one algorithm on one Monte Carlo instance."""

    algorithm: str
    seed: int
    cost: float
    congestion: float
    occupancy: float
    seconds: float
    failed: bool = False
    extra: dict = field(default_factory=dict)


def _serving_metrics(
    scenario: EdgeCachingScenario,
    solution: Solution,
    serving_replay: ServingConfig,
) -> dict:
    """Streaming replay of the solved routing against the true demand.

    Returns a JSON-serializable summary for ``RunRecord.extra["serving"]``.
    Replay problems (e.g. a horizon that would exceed ``max_requests``)
    mark the summary as failed instead of failing the run — the planning
    metrics above it are already computed and stay valid.
    """
    try:
        tables = compile_tables(
            scenario.problem, solution.routing, allow_unrouted=True
        )
        report = replay(tables, serving_replay)
    except RECOVERABLE_ALGORITHM_ERRORS as exc:
        return {"error": str(exc), "error_type": type(exc).__name__}
    return {
        "generated": report.generated,
        "served": report.served,
        "served_fraction": report.served_fraction,
        "delivered_cost": report.delivered_cost,
        "requests_per_sec": report.requests_per_sec,
        "unrouted_types": report.unrouted_types,
        "horizon": report.horizon,
        "n_shards": report.n_shards,
    }


def evaluate_algorithm(
    name: str,
    algorithm: Algorithm,
    scenario: EdgeCachingScenario,
    serving_replay: ServingConfig | None = None,
) -> RunRecord:
    """Run one algorithm and measure it against the true demand.

    ``serving_replay`` additionally replays the solved routing through the
    streaming engine (:mod:`repro.serving`) and attaches the summary as
    ``extra["serving"]``.
    """
    start = time.perf_counter()
    try:
        solution = algorithm(scenario)
    except RECOVERABLE_ALGORITHM_ERRORS as exc:
        return RunRecord(
            algorithm=name,
            seed=scenario.config.seed,
            cost=float("inf"),
            congestion=float("inf"),
            occupancy=float("inf"),
            seconds=time.perf_counter() - start,
            failed=True,
            extra={
                "error": str(exc),
                "error_type": type(exc).__name__,
                "traceback": traceback.format_exc(),
            },
        )
    elapsed = time.perf_counter() - start
    problem = scenario.problem  # true demand
    # Algorithms may attach a JSON-serializable ``extra_metrics`` dict to the
    # returned solution (e.g. the timeline replay summary of
    # :mod:`repro.experiments.failure_timelines`); it rides along in the
    # record's ``extra`` so checkpoints and aggregation side-channels see it.
    extra = getattr(solution, "extra_metrics", None)
    extra = dict(extra) if extra else {}
    if serving_replay is not None:
        extra["serving"] = _serving_metrics(scenario, solution, serving_replay)
    return RunRecord(
        algorithm=name,
        seed=scenario.config.seed,
        cost=routing_cost(problem, solution.routing, demand=problem.demand),
        congestion=congestion(problem, solution.routing, demand=problem.demand),
        occupancy=max_cache_occupancy(problem, solution.placement),
        seconds=elapsed,
        extra=extra,
    )


def monte_carlo_seeds(monte_carlo: MonteCarloConfig) -> list[int]:
    """Materialize the per-run scenario seeds of a Monte Carlo protocol.

    With ``spawn_seeds`` the seeds come from
    ``numpy.random.SeedSequence(base_seed).spawn(n_runs)`` (independent
    streams); otherwise they are the legacy ``base_seed + run`` offsets.
    Either way the full list is derived up front, so serial and parallel
    execution see exactly the same seeds in the same order.
    """
    if monte_carlo.spawn_seeds:
        root = np.random.SeedSequence(monte_carlo.base_seed)
        return [
            int(child.generate_state(1, dtype=np.uint32)[0])
            for child in root.spawn(monte_carlo.n_runs)
        ]
    return [monte_carlo.base_seed + run for run in range(monte_carlo.n_runs)]


def _evaluate_run(
    task: tuple[
        ScenarioConfig,
        Sequence[tuple[str, Algorithm]],
        Callable[[ScenarioConfig], EdgeCachingScenario],
        ServingConfig | None,
    ],
) -> list[RunRecord]:
    """One Monte Carlo run: build the scenario, score every algorithm.

    Module-level so :class:`ProcessPoolExecutor` can pickle it; the scenario
    is built inside the worker so only the (small) config crosses the
    process boundary.
    """
    run_config, named_algorithms, builder, serving_replay = task
    scenario = builder(run_config)
    return [
        evaluate_algorithm(name, algorithm, scenario, serving_replay)
        for name, algorithm in named_algorithms
    ]


def _timeout_records(
    task, reason: str, *, seconds: float
) -> list[RunRecord]:
    """Failure records for every algorithm of a run that could not complete."""
    run_config, named_algorithms, _builder, _serving = task
    return [
        RunRecord(
            algorithm=name,
            seed=run_config.seed,
            cost=float("inf"),
            congestion=float("inf"),
            occupancy=float("inf"),
            seconds=seconds,
            failed=True,
            extra={"error": reason, "error_type": "Timeout"},
        )
        for name, _algorithm in named_algorithms
    ]


def _checkpoint_line(run_index: int, seed: int, records: list[RunRecord]) -> str:
    return json.dumps(
        {
            "run": run_index,
            "seed": seed,
            "records": [dataclasses.asdict(r) for r in records],
        },
        sort_keys=True,
    )


def load_checkpoint(path: str | Path) -> dict[int, list[RunRecord]]:
    """Completed runs of an interrupted campaign: run index -> records.

    The checkpoint is JSONL — one object per completed run with keys
    ``run`` (index into the campaign's seed list), ``seed``, and
    ``records`` (the serialized :class:`RunRecord` list).  Truncated last
    lines (a run killed mid-write) are skipped with a warning, so resuming
    after ``kill -9`` just re-executes that run.
    """
    completed: dict[int, list[RunRecord]] = {}
    path = Path(path)
    if not path.exists():
        return completed
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
            records = [RunRecord(**r) for r in payload["records"]]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            logger.warning(
                "skipping corrupt checkpoint line %d of %s (%s)", lineno, path, exc
            )
            continue
        completed[int(payload["run"])] = records
    return completed


def run_monte_carlo(
    config: ScenarioConfig,
    algorithms: Mapping[str, Algorithm],
    monte_carlo: MonteCarloConfig,
    *,
    scenario_builder: Callable[[ScenarioConfig], EdgeCachingScenario] | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
    run_timeout: float | None = None,
    checkpoint: str | Path | None = None,
    broadcast_context: "SolverContext | None" = None,
    serving_replay: ServingConfig | None = None,
) -> list[RunRecord]:
    """Repeat every algorithm over seeded scenario instances.

    ``parallel=True`` distributes runs over a ``ProcessPoolExecutor``
    (``max_workers`` processes; default: one per CPU).  Runs are
    independent — each is rebuilt in its worker from its materialized seed —
    and records come back in run-major, algorithm-insertion order, so
    results match serial execution bit-for-bit except for the measured
    ``seconds``.

    Hardening:

    - Algorithms and the scenario builder must be picklable (module-level
      callables); if submitting them fails, or a run's *result* cannot be
      pickled back, the affected runs degrade to serial execution with a
      logged warning instead of raising.
    - A crashed worker (``BrokenProcessPool``) likewise only degrades the
      runs that were still in flight: they are re-executed serially, in
      order, so the campaign still completes with the same records.
    - ``run_timeout`` (seconds, parallel mode only) bounds how long the
      runner waits for each run's result; a run that exceeds it is recorded
      as ``failed=True`` for every algorithm instead of hanging the
      campaign.  The timed-out worker is abandoned, not killed.
    - ``checkpoint`` names a JSONL file (see :func:`load_checkpoint`) that
      receives every completed run as soon as it finishes.  Re-running the
      same campaign with the same checkpoint path skips completed runs and
      returns records identical (except measured ``seconds``) to an
      uninterrupted campaign.
    - ``broadcast_context`` shares a healthy-instance
      :class:`~repro.core.context.SolverContext`'s distance state with
      every run, on either backend tier: a dense context exports its
      matrix once into shared memory (:class:`~repro.graph.shm.
      MatrixBroadcast`), a lazy context is primed with the solver row
      scope and exports just those rows (:class:`~repro.graph.shm.
      RowsBroadcast` — O(scope · |V|), never O(|V|²)).  Each pool worker
      maps the segment in its initializer, and
      ``SolverContext.from_problem`` reuses it for any scenario whose
      topology fingerprint matches (see :mod:`repro.graph.shm`).  The
      per-task pickle payload stays O(1) in the payload size.  Serial
      execution (and the serial-retry fallbacks) register the state
      in-process, so serial and parallel runs stay bit-identical.  The
      segment is always unlinked before returning, including the
      broken-pool and timeout paths.
    - ``serving_replay`` replays every solved routing through the streaming
      serving engine (:mod:`repro.serving`) against the true demand and
      attaches the summary to each record's ``extra["serving"]``.  Replay
      failures mark only that summary, never the run.
    """
    builder = scenario_builder or build_scenario
    tasks = [
        (
            replace(config, seed=seed),
            tuple(algorithms.items()),
            builder,
            serving_replay,
        )
        for seed in monte_carlo_seeds(monte_carlo)
    ]
    completed: dict[int, list[RunRecord]] = {}
    checkpoint_file = None
    if checkpoint is not None:
        completed = load_checkpoint(checkpoint)
        stale = [i for i in completed if i >= len(tasks)
                 or completed[i] and completed[i][0].seed != tasks[i][0].seed]
        for i in stale:
            logger.warning(
                "checkpoint run %d does not match this campaign's seeds; ignoring", i
            )
            completed.pop(i)
        if completed:
            logger.info(
                "resuming campaign from checkpoint %s (%d/%d runs done)",
                checkpoint, len(completed), len(tasks),
            )
        checkpoint_file = open(checkpoint, "a", encoding="utf-8")

    def finish_run(index: int, records: list[RunRecord]) -> None:
        completed[index] = records
        if checkpoint_file is not None:
            checkpoint_file.write(
                _checkpoint_line(index, tasks[index][0].seed, records) + "\n"
            )
            checkpoint_file.flush()

    broadcast: "MatrixBroadcast | RowsBroadcast | None" = None
    signature: str | None = None
    broadcast_lazy = broadcast_context is not None and isinstance(
        broadcast_context.backend, LazyRowBackend
    )
    if broadcast_context is not None:
        signature = graph_signature(broadcast_context.problem.network.graph)
        if broadcast_lazy:
            # Lazy tier: export only the consulted rows.  Priming fills the
            # solver scope (cache + pinned + requester rows) so every run
            # finds the rows it reads; the segment stays O(scope · |V|)
            # instead of O(|V|²).
            broadcast_context.prime_rows()
            store = broadcast_context.backend.row_store()
            broadcast = RowsBroadcast(
                store, broadcast_context.backend.nodes, signature
            )
            # In-process registration covers serial mode and serial retries.
            register_rows(signature, store)
        else:
            broadcast = MatrixBroadcast(broadcast_context.dm, signature)
            register_matrix(signature, broadcast_context.dm)

    pending = [i for i in range(len(tasks)) if i not in completed]
    try:
        serial_retry: list[int] = []
        if parallel and len(pending) > 1:
            serial_retry = _run_parallel(
                tasks, pending, finish_run,
                max_workers=max_workers, run_timeout=run_timeout,
                broadcast_handle=None if broadcast is None else broadcast.handle,
            )
        else:
            serial_retry = pending
        for index in serial_retry:
            finish_run(index, _evaluate_run(tasks[index]))
    finally:
        if checkpoint_file is not None:
            checkpoint_file.close()
        if broadcast is not None:
            if broadcast_lazy:
                unregister_rows(signature)
            else:
                unregister_matrix(signature)
            broadcast.close()
    return [record for index in range(len(tasks)) for record in completed[index]]


def _run_parallel(
    tasks,
    pending: list[int],
    finish_run: Callable[[int, list[RunRecord]], None],
    *,
    max_workers: int | None,
    run_timeout: float | None,
    broadcast_handle: "SharedMatrixHandle | SharedRowsHandle | None" = None,
) -> list[int]:
    """Run ``pending`` task indices in a process pool; return indices that
    must be retried serially (worker crash / unpicklable payloads)."""
    serial_retry: list[int] = []
    if broadcast_handle is not None:
        initializer = (
            attach_and_register_rows
            if isinstance(broadcast_handle, SharedRowsHandle)
            else attach_and_register
        )
        pool = ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=initializer,
            initargs=(broadcast_handle,),
        )
    else:
        pool = ProcessPoolExecutor(max_workers=max_workers)
    abandoned = False
    try:
        futures = {i: pool.submit(_evaluate_run, tasks[i]) for i in pending}
        for i in pending:
            try:
                finish_run(i, futures[i].result(timeout=run_timeout))
            except FutureTimeoutError:
                abandoned = True
                futures[i].cancel()
                logger.warning(
                    "run %d (seed %d) exceeded run_timeout=%.3gs; recording "
                    "it as failed", i, tasks[i][0].seed, run_timeout,
                )
                finish_run(
                    i,
                    _timeout_records(
                        tasks[i],
                        f"run exceeded run_timeout={run_timeout:.6g}s",
                        seconds=float(run_timeout),
                    ),
                )
            except BrokenExecutor:
                # Harvest whatever finished before the crash; everything else
                # (including the run that broke the pool) retries serially.
                remaining = pending[pending.index(i):]
                for j in remaining:
                    try:
                        finish_run(j, futures[j].result(timeout=0))
                    except Exception:
                        serial_retry.append(j)
                logger.warning(
                    "process pool broke at run %d (worker crash); re-running "
                    "%d affected runs serially", i, len(serial_retry),
                )
                break
            except (pickle.PicklingError, AttributeError, TypeError) as exc:
                logger.warning(
                    "run %d (seed %d) could not cross the process boundary "
                    "(%s); falling back to serial execution for it",
                    i, tasks[i][0].seed, exc,
                )
                serial_retry.append(i)
    finally:
        # wait=False so an abandoned (timed-out) worker cannot hang shutdown.
        pool.shutdown(wait=not abandoned, cancel_futures=True)
    return serial_retry


@dataclass
class Aggregate:
    """Mean/stdev summary of one algorithm over Monte Carlo runs."""

    algorithm: str
    runs: int
    failures: int
    mean_cost: float
    mean_congestion: float
    mean_occupancy: float
    mean_seconds: float
    std_cost: float = 0.0


def aggregate(records: Iterable[RunRecord]) -> list[Aggregate]:
    """Per-algorithm aggregation (failed runs excluded from the means)."""
    by_name: dict[str, list[RunRecord]] = {}
    for record in records:
        by_name.setdefault(record.algorithm, []).append(record)
    out: list[Aggregate] = []
    for name, recs in by_name.items():
        ok = [r for r in recs if not r.failed]
        failures = len(recs) - len(ok)
        if not ok:
            out.append(
                Aggregate(
                    algorithm=name,
                    runs=len(recs),
                    failures=failures,
                    mean_cost=float("inf"),
                    mean_congestion=float("inf"),
                    mean_occupancy=float("inf"),
                    mean_seconds=statistics.mean(r.seconds for r in recs),
                )
            )
            continue
        costs = [r.cost for r in ok]
        out.append(
            Aggregate(
                algorithm=name,
                runs=len(recs),
                failures=failures,
                mean_cost=statistics.mean(costs),
                mean_congestion=statistics.mean(r.congestion for r in ok),
                mean_occupancy=statistics.mean(r.occupancy for r in ok),
                mean_seconds=statistics.mean(r.seconds for r in ok),
                std_cost=statistics.pstdev(costs) if len(costs) > 1 else 0.0,
            )
        )
    return out
