"""Monte Carlo experiment runner and per-algorithm evaluation records.

Each algorithm is a callable ``scenario -> Solution`` that plans on the
scenario's *planning* problem (predicted demand when available) and is
always evaluated against the *true* demand — the paper's light/dark bar
protocol.  The runner repeats scenarios over seeds and aggregates the
metrics the paper plots: routing cost, congestion, max cache occupancy,
and execution time (Tables 3-4).

The paper's protocol averages 100 independent runs; :func:`run_monte_carlo`
can execute them across processes (``parallel=True``).  Per-run seeds are
materialized up front (optionally via ``numpy.random.SeedSequence.spawn``,
see :class:`MonteCarloConfig`), every run is fully determined by its seed,
and records are collected in run-major order — so the parallel mode is
bit-identical to serial execution in everything except wall-clock timings.
"""

from __future__ import annotations

import logging
import pickle
import statistics
import time
from collections.abc import Callable, Iterable, Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.evaluation import (
    congestion,
    max_cache_occupancy,
    routing_cost,
)
from repro.core.solution import Solution
from repro.exceptions import ReproError
from repro.experiments.config import MonteCarloConfig, ScenarioConfig
from repro.experiments.scenarios import EdgeCachingScenario, build_scenario

Algorithm = Callable[[EdgeCachingScenario], Solution]

logger = logging.getLogger(__name__)


@dataclass
class RunRecord:
    """Metrics of one algorithm on one Monte Carlo instance."""

    algorithm: str
    seed: int
    cost: float
    congestion: float
    occupancy: float
    seconds: float
    failed: bool = False
    extra: dict = field(default_factory=dict)


def evaluate_algorithm(
    name: str,
    algorithm: Algorithm,
    scenario: EdgeCachingScenario,
) -> RunRecord:
    """Run one algorithm and measure it against the true demand."""
    start = time.perf_counter()
    try:
        solution = algorithm(scenario)
    except ReproError as exc:
        return RunRecord(
            algorithm=name,
            seed=scenario.config.seed,
            cost=float("inf"),
            congestion=float("inf"),
            occupancy=float("inf"),
            seconds=time.perf_counter() - start,
            failed=True,
            extra={"error": str(exc)},
        )
    elapsed = time.perf_counter() - start
    problem = scenario.problem  # true demand
    return RunRecord(
        algorithm=name,
        seed=scenario.config.seed,
        cost=routing_cost(problem, solution.routing, demand=problem.demand),
        congestion=congestion(problem, solution.routing, demand=problem.demand),
        occupancy=max_cache_occupancy(problem, solution.placement),
        seconds=elapsed,
    )


def monte_carlo_seeds(monte_carlo: MonteCarloConfig) -> list[int]:
    """Materialize the per-run scenario seeds of a Monte Carlo protocol.

    With ``spawn_seeds`` the seeds come from
    ``numpy.random.SeedSequence(base_seed).spawn(n_runs)`` (independent
    streams); otherwise they are the legacy ``base_seed + run`` offsets.
    Either way the full list is derived up front, so serial and parallel
    execution see exactly the same seeds in the same order.
    """
    if monte_carlo.spawn_seeds:
        root = np.random.SeedSequence(monte_carlo.base_seed)
        return [
            int(child.generate_state(1, dtype=np.uint32)[0])
            for child in root.spawn(monte_carlo.n_runs)
        ]
    return [monte_carlo.base_seed + run for run in range(monte_carlo.n_runs)]


def _evaluate_run(
    task: tuple[
        ScenarioConfig,
        Sequence[tuple[str, Algorithm]],
        Callable[[ScenarioConfig], EdgeCachingScenario],
    ],
) -> list[RunRecord]:
    """One Monte Carlo run: build the scenario, score every algorithm.

    Module-level so :class:`ProcessPoolExecutor` can pickle it; the scenario
    is built inside the worker so only the (small) config crosses the
    process boundary.
    """
    run_config, named_algorithms, builder = task
    scenario = builder(run_config)
    return [
        evaluate_algorithm(name, algorithm, scenario)
        for name, algorithm in named_algorithms
    ]


def run_monte_carlo(
    config: ScenarioConfig,
    algorithms: Mapping[str, Algorithm],
    monte_carlo: MonteCarloConfig,
    *,
    scenario_builder: Callable[[ScenarioConfig], EdgeCachingScenario] | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
) -> list[RunRecord]:
    """Repeat every algorithm over seeded scenario instances.

    ``parallel=True`` distributes runs over a ``ProcessPoolExecutor``
    (``max_workers`` processes; default: one per CPU).  Runs are
    independent — each is rebuilt in its worker from its materialized seed —
    and records come back in run-major, algorithm-insertion order, so
    results match serial execution bit-for-bit except for the measured
    ``seconds``.  Algorithms and the scenario builder must be picklable
    (module-level callables); if they are not, the runner logs a warning
    and falls back to serial execution.
    """
    builder = scenario_builder or build_scenario
    tasks = [
        (replace(config, seed=seed), tuple(algorithms.items()), builder)
        for seed in monte_carlo_seeds(monte_carlo)
    ]
    if parallel and len(tasks) > 1:
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                per_run = list(pool.map(_evaluate_run, tasks))
            return [record for run_records in per_run for record in run_records]
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            logger.warning(
                "parallel Monte Carlo needs picklable algorithms/builder "
                "(%s); falling back to serial execution",
                exc,
            )
    records: list[RunRecord] = []
    for task in tasks:
        records.extend(_evaluate_run(task))
    return records


@dataclass
class Aggregate:
    """Mean/stdev summary of one algorithm over Monte Carlo runs."""

    algorithm: str
    runs: int
    failures: int
    mean_cost: float
    mean_congestion: float
    mean_occupancy: float
    mean_seconds: float
    std_cost: float = 0.0


def aggregate(records: Iterable[RunRecord]) -> list[Aggregate]:
    """Per-algorithm aggregation (failed runs excluded from the means)."""
    by_name: dict[str, list[RunRecord]] = {}
    for record in records:
        by_name.setdefault(record.algorithm, []).append(record)
    out: list[Aggregate] = []
    for name, recs in by_name.items():
        ok = [r for r in recs if not r.failed]
        failures = len(recs) - len(ok)
        if not ok:
            out.append(
                Aggregate(
                    algorithm=name,
                    runs=len(recs),
                    failures=failures,
                    mean_cost=float("inf"),
                    mean_congestion=float("inf"),
                    mean_occupancy=float("inf"),
                    mean_seconds=statistics.mean(r.seconds for r in recs),
                )
            )
            continue
        costs = [r.cost for r in ok]
        out.append(
            Aggregate(
                algorithm=name,
                runs=len(recs),
                failures=failures,
                mean_cost=statistics.mean(costs),
                mean_congestion=statistics.mean(r.congestion for r in ok),
                mean_occupancy=statistics.mean(r.occupancy for r in ok),
                mean_seconds=statistics.mean(r.seconds for r in ok),
                std_cost=statistics.pstdev(costs) if len(costs) > 1 else 0.0,
            )
        )
    return out
