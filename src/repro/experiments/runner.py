"""Monte Carlo experiment runner and per-algorithm evaluation records.

Each algorithm is a callable ``scenario -> Solution`` that plans on the
scenario's *planning* problem (predicted demand when available) and is
always evaluated against the *true* demand — the paper's light/dark bar
protocol.  The runner repeats scenarios over seeds and aggregates the
metrics the paper plots: routing cost, congestion, max cache occupancy,
and execution time (Tables 3-4).
"""

from __future__ import annotations

import statistics
import time
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field, replace

from repro.core.evaluation import (
    congestion,
    max_cache_occupancy,
    routing_cost,
)
from repro.core.solution import Solution
from repro.exceptions import ReproError
from repro.experiments.config import MonteCarloConfig, ScenarioConfig
from repro.experiments.scenarios import EdgeCachingScenario, build_scenario

Algorithm = Callable[[EdgeCachingScenario], Solution]


@dataclass
class RunRecord:
    """Metrics of one algorithm on one Monte Carlo instance."""

    algorithm: str
    seed: int
    cost: float
    congestion: float
    occupancy: float
    seconds: float
    failed: bool = False
    extra: dict = field(default_factory=dict)


def evaluate_algorithm(
    name: str,
    algorithm: Algorithm,
    scenario: EdgeCachingScenario,
) -> RunRecord:
    """Run one algorithm and measure it against the true demand."""
    start = time.perf_counter()
    try:
        solution = algorithm(scenario)
    except ReproError as exc:
        return RunRecord(
            algorithm=name,
            seed=scenario.config.seed,
            cost=float("inf"),
            congestion=float("inf"),
            occupancy=float("inf"),
            seconds=time.perf_counter() - start,
            failed=True,
            extra={"error": str(exc)},
        )
    elapsed = time.perf_counter() - start
    problem = scenario.problem  # true demand
    return RunRecord(
        algorithm=name,
        seed=scenario.config.seed,
        cost=routing_cost(problem, solution.routing, demand=problem.demand),
        congestion=congestion(problem, solution.routing, demand=problem.demand),
        occupancy=max_cache_occupancy(problem, solution.placement),
        seconds=elapsed,
    )


def run_monte_carlo(
    config: ScenarioConfig,
    algorithms: Mapping[str, Algorithm],
    monte_carlo: MonteCarloConfig,
    *,
    scenario_builder: Callable[[ScenarioConfig], EdgeCachingScenario] | None = None,
) -> list[RunRecord]:
    """Repeat every algorithm over seeded scenario instances."""
    builder = scenario_builder or build_scenario
    records: list[RunRecord] = []
    for run in range(monte_carlo.n_runs):
        run_config = replace(config, seed=monte_carlo.base_seed + run)
        scenario = builder(run_config)
        for name, algorithm in algorithms.items():
            records.append(evaluate_algorithm(name, algorithm, scenario))
    return records


@dataclass
class Aggregate:
    """Mean/stdev summary of one algorithm over Monte Carlo runs."""

    algorithm: str
    runs: int
    failures: int
    mean_cost: float
    mean_congestion: float
    mean_occupancy: float
    mean_seconds: float
    std_cost: float = 0.0


def aggregate(records: Iterable[RunRecord]) -> list[Aggregate]:
    """Per-algorithm aggregation (failed runs excluded from the means)."""
    by_name: dict[str, list[RunRecord]] = {}
    for record in records:
        by_name.setdefault(record.algorithm, []).append(record)
    out: list[Aggregate] = []
    for name, recs in by_name.items():
        ok = [r for r in recs if not r.failed]
        failures = len(recs) - len(ok)
        if not ok:
            out.append(
                Aggregate(
                    algorithm=name,
                    runs=len(recs),
                    failures=failures,
                    mean_cost=float("inf"),
                    mean_congestion=float("inf"),
                    mean_occupancy=float("inf"),
                    mean_seconds=statistics.mean(r.seconds for r in recs),
                )
            )
            continue
        costs = [r.cost for r in ok]
        out.append(
            Aggregate(
                algorithm=name,
                runs=len(recs),
                failures=failures,
                mean_cost=statistics.mean(costs),
                mean_congestion=statistics.mean(r.congestion for r in ok),
                mean_occupancy=statistics.mean(r.occupancy for r in ok),
                mean_seconds=statistics.mean(r.seconds for r in ok),
                std_cost=statistics.pstdev(costs) if len(costs) > 1 else 0.0,
            )
        )
    return out
