"""Plain-text reporting of experiment results (the tables the benches print)."""

from __future__ import annotations

import csv
import math
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.experiments.runner import Aggregate, RunRecord


def _fmt(value: float, width: int = 12) -> str:
    if value is None or (isinstance(value, float) and math.isinf(value)):
        return "inf".rjust(width)
    if abs(value) >= 1000:
        return f"{value:,.0f}".rjust(width)
    return f"{value:.4g}".rjust(width)


def format_aggregates(
    aggregates: Sequence[Aggregate],
    *,
    title: str = "",
    sort_by_cost: bool = False,
) -> str:
    """Render aggregates as an aligned text table."""
    rows = sorted(aggregates, key=lambda a: a.mean_cost) if sort_by_cost else list(
        aggregates
    )
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = (
        f"{'algorithm':<22}{'cost':>12}{'congestion':>12}"
        f"{'occupancy':>12}{'time (s)':>12}{'fails':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for agg in rows:
        lines.append(
            f"{agg.algorithm:<22}"
            f"{_fmt(agg.mean_cost)}"
            f"{_fmt(agg.mean_congestion)}"
            f"{_fmt(agg.mean_occupancy)}"
            f"{_fmt(agg.mean_seconds)}"
            f"{agg.failures:>7d}"
        )
    return "\n".join(lines)


def format_sweep(
    rows: Sequence[dict],
    columns: Sequence[str],
    *,
    title: str = "",
) -> str:
    """Render a parameter sweep (one dict per point) as an aligned table."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    widths = {c: max(16, len(c) + 2) for c in columns}
    header = "".join(c.rjust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                cells.append(_fmt(value, widths[c]))
            else:
                cells.append(str(value).rjust(widths[c]))
        lines.append("".join(cells))
    return "\n".join(lines)


def write_records_csv(records: Iterable[RunRecord], path: str | Path) -> None:
    """Persist raw Monte Carlo records for later analysis."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["algorithm", "seed", "cost", "congestion", "occupancy", "seconds", "failed"]
        )
        for r in records:
            writer.writerow(
                [r.algorithm, r.seed, r.cost, r.congestion, r.occupancy, r.seconds, r.failed]
            )


def write_sweep_csv(rows: Iterable[dict], columns: Sequence[str], path: str | Path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
