"""Configuration dataclasses for the paper's evaluation scenarios (Section 6)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ScenarioConfig:
    """Knobs of the edge-caching simulation.

    Defaults reproduce the paper's default setting: Abovenet topology,
    top-10 videos, 100-MB chunks (|C| = 54), cache size zeta = 12 chunks,
    link capacity kappa = 0.7% of the total request rate, origin-link costs
    in [100, 200] and other link costs in [1, 20].
    """

    topology: str = "abovenet"
    #: "chunk" (homogeneous items) or "file" (heterogeneous sizes, Section 5).
    level: str = "chunk"
    num_videos: int = 10
    chunk_mb: float = 100.0
    #: Cache size zeta: #chunks at chunk level / #average-size files at file level.
    cache_capacity: float = 12.0
    #: Link capacity as a fraction of the total request rate; None = unlimited.
    link_capacity_fraction: float | None = 0.007
    #: Augment capacities on an origin->edge path so the origin can always
    #: serve everything (the paper's feasibility guarantee).
    augment_origin_paths: bool = True
    #: Headroom multiplier on the augmentation, so planning on (imperfectly)
    #: predicted demand stays feasible too.
    augment_margin: float = 1.25
    #: Edge-node selection: None = all degree<=3 nodes (Abovenet default);
    #: an int = that many lowest-degree nodes (Appendix D uses 5).
    num_edge_nodes: int | None = None
    origin_cost_range: tuple[float, float] = (100.0, 200.0)
    link_cost_range: tuple[float, float] = (1.0, 20.0)
    #: Which evaluation-trace hour the demand snapshot comes from.
    hour: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.level not in ("chunk", "file"):
            raise ValueError("level must be 'chunk' or 'file'")
        if self.level == "file" and self.cache_capacity < 1:
            raise ValueError("file-level cache capacity must be >= 1 item")


@dataclass
class MonteCarloConfig:
    """Monte Carlo protocol: the paper averages over 100 runs; benches use fewer.

    ``spawn_seeds=True`` derives per-run seeds through
    ``numpy.random.SeedSequence(base_seed).spawn(n_runs)`` instead of the
    legacy ``base_seed + run`` offsets.  Spawned seeds give statistically
    independent streams and — because they are materialized up front — make
    parallel execution bit-identical to serial execution run-for-run.
    The default stays ``False`` for backward-compatible seed values.
    """

    n_runs: int = 5
    base_seed: int = 0
    spawn_seeds: bool = False


@dataclass
class PredictionConfig:
    """GPR demand-prediction protocol (footnote 6 of the paper)."""

    train_hours: int = 550
    batch_hours: int = 5
    #: History cap per refit; None = cumulative history as in the paper
    #: (kept finite by default so benches stay laptop-fast).
    history_window: int | None = 150
    n_restarts: int = 0
    seed: int = 0
