"""Online operation: hourly re-optimization driven by predicted demand.

The paper's evaluation "simulates a real-world scenario, where the network
provider adjusts caching and routing decisions on an hourly basis based on
the predicted demand" (Section 6), and its conclusion highlights that the
one-shot optimization "work[s] well in an online setting when combined with
reasonable demand prediction".  This module runs that loop end to end:

for each hour h of the evaluation window:
    1. predict every video's request rate for hour h (GPR refit every
       5 hours on history, footnote 6) — or use an oracle / perturbed rates;
    2. re-optimize caching + routing on the predicted instance;
    3. charge the decisions against the hour's TRUE demand.

The result is a per-hour cost/congestion series plus totals, enabling
apples-to-apples comparison of planning policies over a day of operation.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.evaluation import congestion, routing_cost
from repro.core.solution import Solution
from repro.exceptions import ReproError
from repro.experiments.config import PredictionConfig, ScenarioConfig
from repro.experiments.scenarios import EdgeCachingScenario, build_scenario
from repro.prediction.gpr import DemandPredictor
from repro.workload.catalog import top_videos
from repro.workload.trace import TraceConfig, ViewTrace, synthesize_trace

Algorithm = Callable[[EdgeCachingScenario], Solution]


@dataclass
class HourRecord:
    """Outcome of one re-optimization hour."""

    hour: int
    cost: float
    congestion: float
    predicted_total_rate: float
    true_total_rate: float
    failed: bool = False


@dataclass
class OnlineResult:
    """Per-hour trajectory of an online policy."""

    algorithm: str
    hours: list[HourRecord] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        return sum(h.cost for h in self.hours if not h.failed)

    @property
    def mean_congestion(self) -> float:
        ok = [h.congestion for h in self.hours if not h.failed]
        return sum(ok) / len(ok) if ok else float("inf")

    @property
    def worst_congestion(self) -> float:
        ok = [h.congestion for h in self.hours if not h.failed]
        return max(ok) if ok else float("inf")

    @property
    def failures(self) -> int:
        return sum(1 for h in self.hours if h.failed)


def predict_rate_matrix(
    trace: ViewTrace,
    eval_hours: int,
    prediction: PredictionConfig,
) -> dict[str, np.ndarray]:
    """GPR predictions for all videos over the whole evaluation window.

    One call per video covers every 5-hour batch (the paper's protocol), so
    the online loop below never refits twice for the same batch.
    """
    predictor = DemandPredictor(
        train_hours=prediction.train_hours,
        batch_hours=prediction.batch_hours,
        history_window=prediction.history_window,
        n_restarts=prediction.n_restarts,
        seed=prediction.seed,
    )
    out: dict[str, np.ndarray] = {}
    for k, video in enumerate(trace.videos):
        out[video.video_id] = predictor.predict_series(
            trace.views[:, k], eval_hours=eval_hours
        )
    return out


def run_online(
    config: ScenarioConfig,
    algorithm: Algorithm,
    *,
    name: str = "algorithm",
    hours: int = 12,
    prediction: PredictionConfig | None = None,
    rate_matrix: dict[str, np.ndarray] | None = None,
    trace: ViewTrace | None = None,
    trace_config: TraceConfig | None = None,
) -> OnlineResult:
    """Run the hourly loop for ``hours`` evaluation hours.

    ``prediction=None`` (and no ``rate_matrix``) means oracle planning on
    the true demand; pass a :class:`PredictionConfig` to fit GPR predictors,
    or a precomputed ``rate_matrix`` (e.g. from :func:`predict_rate_matrix`)
    to share predictions across policies.
    """
    trace_config = trace_config or TraceConfig()
    if trace is None:
        trace = synthesize_trace(videos=top_videos(config.num_videos), config=trace_config)
    if rate_matrix is None and prediction is not None:
        rate_matrix = predict_rate_matrix(trace, hours, prediction)

    result = OnlineResult(algorithm=name)
    for hour in range(hours):
        hour_config = replace(config, hour=hour)
        predicted_rates = None
        if rate_matrix is not None:
            predicted_rates = {
                vid: float(series[hour]) for vid, series in rate_matrix.items()
            }
        scenario = build_scenario(
            hour_config,
            trace=trace,
            trace_config=trace_config,
            predicted_rates=predicted_rates,
        )
        predicted_total = (
            sum(scenario.predicted_problem.demand.values())
            if scenario.predicted_problem is not None
            else sum(scenario.problem.demand.values())
        )
        try:
            solution = algorithm(scenario)
        except ReproError:
            result.hours.append(
                HourRecord(
                    hour=hour,
                    cost=float("inf"),
                    congestion=float("inf"),
                    predicted_total_rate=predicted_total,
                    true_total_rate=sum(scenario.problem.demand.values()),
                    failed=True,
                )
            )
            continue
        result.hours.append(
            HourRecord(
                hour=hour,
                cost=routing_cost(scenario.problem, solution.routing),
                congestion=congestion(scenario.problem, solution.routing),
                predicted_total_rate=predicted_total,
                true_total_rate=sum(scenario.problem.demand.values()),
            )
        )
    return result
