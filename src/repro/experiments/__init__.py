"""Evaluation harness: scenario builders, algorithm registry, Monte Carlo runner."""

from repro.experiments import algorithms
from repro.experiments.config import (
    MonteCarloConfig,
    PredictionConfig,
    ScenarioConfig,
)
from repro.experiments.reporting import (
    format_aggregates,
    format_sweep,
    write_records_csv,
    write_sweep_csv,
)
from repro.experiments.online import (
    HourRecord,
    OnlineResult,
    predict_rate_matrix,
    run_online,
)
from repro.experiments.failure_timelines import (
    TimelineAlgorithm,
    run_timeline_campaign,
    timeline_rows,
)
from repro.experiments.runner import (
    Aggregate,
    RunRecord,
    aggregate,
    evaluate_algorithm,
    load_checkpoint,
    monte_carlo_seeds,
    run_monte_carlo,
)
from repro.experiments.sweeps import SWEEPABLE, sweep_parameter
from repro.experiments.scenarios import (
    EdgeCachingScenario,
    assign_paper_costs,
    binary_cache_servers,
    build_scenario,
    build_zipf_scenario,
    pin_servers,
    predicted_rates_for_hour,
)

__all__ = [
    "ScenarioConfig",
    "MonteCarloConfig",
    "PredictionConfig",
    "EdgeCachingScenario",
    "build_scenario",
    "build_zipf_scenario",
    "assign_paper_costs",
    "binary_cache_servers",
    "pin_servers",
    "predicted_rates_for_hour",
    "RunRecord",
    "Aggregate",
    "evaluate_algorithm",
    "run_monte_carlo",
    "load_checkpoint",
    "monte_carlo_seeds",
    "aggregate",
    "format_aggregates",
    "format_sweep",
    "write_records_csv",
    "write_sweep_csv",
    "algorithms",
    "run_online",
    "OnlineResult",
    "HourRecord",
    "predict_rate_matrix",
    "sweep_parameter",
    "SWEEPABLE",
    "TimelineAlgorithm",
    "run_timeline_campaign",
    "timeline_rows",
]
