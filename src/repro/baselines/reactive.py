"""Reactive on-path caching (LRU / LFU), the ICN-style strawman.

The paper's premise is that *optimized* joint caching and routing beats the
reactive schemes deployed in information-centric networks, where requests
travel a fixed shortest path toward the origin, are answered by the first
on-path cache hit, and the response populates every cache it passes (leave
copy everywhere).  This module implements that dynamic — LRU or LFU
eviction — as an extension baseline so the gap can be measured directly
(`benchmarks/bench_ext_reactive.py`).

Items of heterogeneous size are supported: insertion evicts until the item
fits (skipping items larger than the whole cache).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable
from dataclasses import dataclass

import numpy as np

from repro.core.problem import Item, ProblemInstance
from repro.core.rnr import ShortestPathCache
from repro.exceptions import InvalidProblemError

Node = Hashable


class EvictingCache:
    """A single node's cache with LRU or LFU eviction."""

    def __init__(self, capacity: float, policy: str = "lru") -> None:
        if capacity < 0:
            raise InvalidProblemError("capacity must be nonnegative")
        if policy not in ("lru", "lfu"):
            raise InvalidProblemError("policy must be 'lru' or 'lfu'")
        self.capacity = float(capacity)
        self.policy = policy
        self._items: OrderedDict[Item, float] = OrderedDict()  # item -> size
        self._hits: dict[Item, int] = {}
        self._used = 0.0

    def __contains__(self, item: Item) -> bool:
        return item in self._items

    @property
    def used(self) -> float:
        return self._used

    def items(self) -> set[Item]:
        return set(self._items)

    def touch(self, item: Item) -> None:
        """Record a hit (moves to MRU position / bumps frequency)."""
        if item in self._items:
            self._items.move_to_end(item)
            self._hits[item] = self._hits.get(item, 0) + 1

    def insert(self, item: Item, size: float) -> bool:
        """Insert ``item``, evicting as needed.  False if it can never fit.

        Re-inserting a resident item with a different size updates the
        accounting (and evicts other items if the new size no longer fits)
        instead of silently keeping the stale size.
        """
        if size > self.capacity:
            if item in self._items:
                # The item can no longer fit at its new size: drop it.
                self._used -= self._items.pop(item)
                self._hits.pop(item, None)
            return False
        if item in self._items:
            self.touch(item)
            old_size = self._items[item]
            if size != old_size:
                self._items[item] = size
                self._used += size - old_size
                while self._used > self.capacity and len(self._items) > 1:
                    self._evict_one(exclude=item)
            return True
        while self._used + size > self.capacity and self._items:
            self._evict_one()
        self._items[item] = size
        self._hits.setdefault(item, 1)
        self._used += size
        return True

    def _evict_one(self, exclude: Item | None = None) -> None:
        if self.policy == "lru":
            victim = next(i for i in self._items if i != exclude)
        else:  # lfu: least frequently used, ties by LRU order
            victim = min(
                (i for i in self._items if i != exclude),
                key=lambda i: (self._hits.get(i, 0),),
            )
        size = self._items.pop(victim)
        self._hits.pop(victim, None)
        self._used -= size


@dataclass
class ReactiveResult:
    """Steady-state metrics of the reactive caching simulation."""

    policy: str
    requests: int
    #: Average routing cost per request, weighted into a cost *rate*
    #: comparable with repro.core.routing_cost (same demand volume).
    cost_rate: float
    #: Fraction of requests answered before reaching the origin.
    edge_hit_ratio: float


def simulate_reactive_caching(
    problem: ProblemInstance,
    *,
    policy: str = "lru",
    n_requests: int = 20_000,
    warmup_fraction: float = 0.25,
    rng: np.random.Generator | None = None,
) -> ReactiveResult:
    """Replay Poisson-sampled requests through on-path reactive caches.

    Requests are drawn proportionally to the instance's rates; each travels
    the cost-shortest path from its requester toward the origin (the pinned
    holder), is served at the first hit, and the returning response is
    inserted into every on-path cache (LCE).  The cost of the measurement
    phase is scaled to the instance's total demand so ``cost_rate``
    compares directly with optimized solutions' routing cost.
    """
    if n_requests <= 0:
        raise InvalidProblemError("n_requests must be positive")
    rng = rng or np.random.default_rng(0)
    sp = ShortestPathCache(problem)

    from repro.baselines.candidate_paths import origin_server

    origin = origin_server(problem)
    caches = {
        v: EvictingCache(problem.network.cache_capacity(v), policy)
        for v in problem.network.cache_nodes()
    }

    requests = problem.requests
    rates = np.array([problem.demand[r] for r in requests])
    probs = rates / rates.sum()
    # The request travels the cost-shortest s -> origin path and is charged
    # request-direction edge costs; on asymmetric-cost networks this differs
    # from reversing the origin -> s response path (which is a different
    # path) or charging response-direction costs.
    paths_to_origin = {
        s: sp.path(s, origin) for s in {s for (_i, s) in requests}
    }

    warmup = int(n_requests * warmup_fraction)
    measured_cost = 0.0
    measured = 0
    hits = 0
    draws = rng.choice(len(requests), size=n_requests, p=probs)
    for k, idx in enumerate(draws):
        item, s = requests[idx]
        path = paths_to_origin[s]  # s ... origin
        hit_position = len(path) - 1  # origin worst case
        for position, node in enumerate(path):
            cache = caches.get(node)
            if (node, item) in problem.pinned or (cache and item in cache):
                hit_position = position
                if cache and item in cache:
                    cache.touch(item)
                break
        cost = sum(
            problem.network.cost(path[p], path[p + 1])
            for p in range(hit_position)
        )
        # Leave copy everywhere on the way back (excluding the hit node).
        for node in path[:hit_position]:
            cache = caches.get(node)
            if cache is not None:
                cache.insert(item, problem.size_of(item))
        if k >= warmup:
            measured += 1
            measured_cost += cost
            if hit_position < len(path) - 1:
                hits += 1
    total_rate = float(rates.sum())
    return ReactiveResult(
        policy=policy,
        requests=measured,
        cost_rate=measured_cost / measured * total_rate if measured else 0.0,
        edge_hit_ratio=hits / measured if measured else 0.0,
    )
