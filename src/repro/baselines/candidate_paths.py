"""State-of-the-art benchmarks: Ioannidis & Yeh [3] and [38].

Both benchmarks predetermine *candidate paths* from the origin server to
each requester and only optimize within them — the key limitation the
paper's Algorithm 1 removes:

- ``[38] 'SP' / 'shortest path'``: requests travel the single least-cost
  server->requester path; caches on the path intercept.  Placement maximizes
  the caching gain along those fixed paths (pipage, as in Section 4.3.1).
- ``[3] 'k shortest paths' / 'SP + RNR' / 'k-SP + RNR'``: k candidate
  least-cost server->requester paths; joint placement + source selection is
  solved by an Algorithm-1-style LP + pipage where a node can serve a
  requester only along a candidate-path suffix; routing then serves each
  request from the nearest replica *on a candidate path* (restricted RNR).

For heterogeneous item sizes both benchmarks round with the equal-fraction
swap of (8)-(9) — which is only capacity-safe for equal sizes.  We reproduce
that faithfully (:func:`naive_equal_swap_round`), so their file-level
placements can exceed cache capacities exactly as the paper's Fig. 5 / 7 / 8
report.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.placement import extract_serving_paths, optimize_placement_lp
from repro.core.problem import Item, ProblemInstance
from repro.core.solution import Placement, Routing, Solution
from repro.exceptions import InfeasibleError, InvalidProblemError
from repro.flow.decomposition import PathFlow
from repro.flow.lp import LPBuilder
from repro.graph.shortest_paths import k_shortest_paths

if TYPE_CHECKING:
    from repro.core.context import SolverContext

Node = Hashable

_EPS = 1e-9


def origin_server(problem: ProblemInstance) -> Node:
    """The designated server: a pinned holder of every requested item."""
    requested = {i for (i, _s) in problem.demand}
    candidates = [
        v
        for v in sorted({v for (v, _i) in problem.pinned}, key=repr)
        if requested <= problem.pinned_items_at(v)
    ]
    if not candidates:
        raise InvalidProblemError(
            "candidate-path benchmarks need an origin pinning the full catalog"
        )
    return candidates[0]


@dataclass
class CandidatePathModel:
    """Candidate paths per requester plus the induced serving costs.

    ``serving[(v, s)]`` is the cheapest candidate-path *suffix* from node
    ``v`` to requester ``s`` (the only way [3] lets ``v`` serve ``s``), as a
    ``(cost, path)`` pair.
    """

    k: int
    server: Node
    paths: dict[Node, list[tuple[Node, ...]]] = field(default_factory=dict)
    serving: dict[tuple[Node, Node], tuple[float, tuple[Node, ...]]] = field(
        default_factory=dict
    )

    @classmethod
    def build(
        cls,
        problem: ProblemInstance,
        k: int,
        *,
        context: "SolverContext | None" = None,
    ) -> "CandidatePathModel":
        if k < 1:
            raise InvalidProblemError("k must be >= 1")
        server = origin_server(problem)
        graph = problem.network.graph
        link_cost = problem.network.cost if context is None else context.link_cost
        model = cls(k=k, server=server)
        requesters = sorted({s for (_i, s) in problem.demand}, key=repr)
        for s in requesters:
            if s == server:
                model.paths[s] = [(server,)]
                model.serving[(server, s)] = (0.0, (server,))
                continue
            paths = k_shortest_paths(graph, server, s, k)
            if not paths:
                raise InfeasibleError(f"requester {s!r} unreachable from the server")
            model.paths[s] = [tuple(p) for p in paths]
            for p in model.paths[s]:
                suffix_costs = [0.0] * len(p)
                for m in range(len(p) - 2, -1, -1):
                    suffix_costs[m] = suffix_costs[m + 1] + link_cost(p[m], p[m + 1])
                for m, v in enumerate(p):
                    cost, _ = model.serving.get((v, s), (float("inf"), ()))
                    if suffix_costs[m] < cost:
                        model.serving[(v, s)] = (suffix_costs[m], p[m:])
        return model

    def eligible_sources(self, s: Node) -> list[Node]:
        return sorted(
            {v for (v, ss) in self.serving if ss == s}, key=repr
        )

    def w_max(self) -> float:
        finite = [c for (c, _p) in self.serving.values()]
        return max(finite) if finite else 1.0


def naive_equal_swap_round(
    fractional: dict[tuple[Node, Item], float],
    weights: dict[tuple[Node, Item], float],
) -> dict[tuple[Node, Item], float]:
    """The benchmarks' pipage rounding: swap *equal fractions* of two items.

    Safe only when items have equal sizes; with heterogeneous sizes the
    rounded placement may exceed cache capacities — reproduced on purpose
    (see Fig. 5's max-cache-occupancy panels).
    """
    x = {k: min(1.0, max(0.0, v)) for k, v in fractional.items() if v > 1e-7}
    by_node: dict[Node, list[Item]] = {}
    for (v, i) in x:
        by_node.setdefault(v, []).append(i)
    for v in sorted(by_node, key=repr):
        items = sorted(by_node[v], key=repr)
        while True:
            fractional_items = [i for i in items if 1e-7 < x.get((v, i), 0.0) < 1 - 1e-7]
            if len(fractional_items) >= 2:
                i, j = fractional_items[0], fractional_items[1]
                total = x[(v, i)] + x[(v, j)]
                if weights.get((v, i), 0.0) >= weights.get((v, j), 0.0):
                    xi = min(1.0, total)
                    xj = total - xi
                else:
                    xj = min(1.0, total)
                    xi = total - xj
                for key, val in (((v, i), xi), ((v, j), xj)):
                    if val <= 1e-7:
                        x.pop(key, None)
                    else:
                        x[key] = val
                continue
            if len(fractional_items) == 1:
                x[(v, fractional_items[0])] = 1.0
                continue
            break
    return {k: 1.0 for k, v in x.items() if v >= 1 - 1e-7}


def _restricted_placement_lp(
    problem: ProblemInstance, model: CandidatePathModel
) -> Placement:
    """[3]'s MinCost-SR: Algorithm-1-style LP + pipage over candidate paths."""
    cache_nodes = [
        v
        for v in problem.network.cache_nodes()
        if problem.network.cache_capacity(v) > 0
    ]
    cache_set = set(cache_nodes)
    requested_items = sorted({i for (i, _s) in problem.demand}, key=repr)
    w_max = max(model.w_max(), 1.0)

    lp = LPBuilder(sense="max")
    for v in cache_nodes:
        for i in requested_items:
            if (v, i) not in problem.pinned:
                lp.add_variable(("x", v, i), lb=0.0, ub=1.0)
    eligible: dict = {}
    for (item, s), rate in problem.demand.items():
        sources = [
            v
            for v in model.eligible_sources(s)
            if v in cache_set or (v, item) in problem.pinned
        ]
        if not sources:
            raise InfeasibleError(f"request {(item, s)!r} has no candidate source")
        eligible[(item, s)] = sources
        for v in sources:
            r_key = ("r", v, item, s)
            z_key = ("z", v, item, s)
            lp.add_variable(r_key, lb=0.0, ub=1.0)
            lp.add_variable(z_key, lb=0.0, ub=1.0)
            lp.add_objective_terms({z_key: rate * w_max})
            coef = (w_max - model.serving[(v, s)][0]) / w_max
            if (v, item) in problem.pinned:
                lp.add_le({z_key: 1.0, r_key: 1.0}, 1.0 + coef)
            else:
                lp.add_le({z_key: 1.0, r_key: 1.0, ("x", v, item): -coef}, 1.0)
        lp.add_eq({("r", v, item, s): 1.0 for v in sources}, 1.0)
    for v in cache_nodes:
        coeffs = {
            ("x", v, i): problem.size_of(i)
            for i in requested_items
            if lp.has_variable(("x", v, i))
        }
        if coeffs:
            lp.add_le(coeffs, problem.network.cache_capacity(v))
    if lp.num_variables == 0:
        return Placement()
    solution = lp.solve()
    fractional = {
        (v, i): solution[("x", v, i)]
        for v in cache_nodes
        for i in requested_items
        if lp.has_variable(("x", v, i)) and solution[("x", v, i)] > 1e-9
    }
    weights: dict = {}
    for (item, s), rate in problem.demand.items():
        for v in eligible[(item, s)]:
            r_value = solution[("r", v, item, s)]
            if r_value <= 0:
                continue
            key = (v, item)
            weights[key] = weights.get(key, 0.0) + rate * r_value * (
                w_max - model.serving[(v, s)][0]
            )
    # The benchmarks always round by equal-fraction swaps (their published
    # scheme); for homogeneous sizes this is exactly Lemma 4.3's rounding.
    return Placement(naive_equal_swap_round(fractional, weights))


def _restricted_rnr_routing(
    problem: ProblemInstance, model: CandidatePathModel, placement: Placement
) -> Routing:
    """Serve each request from the cheapest candidate-path suffix."""
    routing = Routing()
    for (item, s), _rate in problem.demand.items():
        best_cost, best_path = float("inf"), None
        for v in model.eligible_sources(s):
            holds = (v, item) in problem.pinned or placement[(v, item)] >= 1 - 1e-6
            if not holds:
                continue
            cost, suffix = model.serving[(v, s)]
            if cost < best_cost:
                best_cost, best_path = cost, suffix
        if best_path is None:
            raise InfeasibleError(f"request {(item, s)!r} unserved on candidate paths")
        routing.paths[(item, s)] = [PathFlow(path=best_path, amount=1.0)]
    return routing


def candidate_path_baseline(
    problem: ProblemInstance,
    *,
    k: int = 10,
    context: "SolverContext | None" = None,
) -> Solution:
    """The benchmark of [3]: k-shortest-path MinCost-SR + restricted RNR.

    ``k=1`` gives the paper's 'SP + RNR' variant, ``k=10`` its recommended
    'k shortest paths' configuration.
    """
    model = CandidatePathModel.build(problem, k, context=context)
    placement = _restricted_placement_lp(problem, model)
    routing = _restricted_rnr_routing(problem, model, placement)
    return Solution(placement, routing)


def shortest_path_baseline(
    problem: ProblemInstance,
    *,
    context: "SolverContext | None" = None,
) -> Solution:
    """The benchmark of [38] ('SP'): placement on fixed shortest paths.

    Requests travel the single least-cost server->requester path; placement
    maximizes the caching gain (14) along those paths.  For homogeneous
    catalogs this uses the same pipage machinery as Section 4.3.1; for
    heterogeneous sizes it reproduces [38]'s equal-swap rounding (which can
    overfill caches).
    """
    model = CandidatePathModel.build(problem, 1, context=context)
    sp_routing = Routing()
    for (item, s), _rate in problem.demand.items():
        path = model.paths[s][0]
        sp_routing.paths[(item, s)] = [PathFlow(path=path, amount=1.0)]
    if problem.is_homogeneous():
        placement = optimize_placement_lp(problem, sp_routing, context=context)
    else:
        placement = _hetero_sp_placement(problem, sp_routing, context=context)
    routing = Routing()
    for (item, s), _rate in problem.demand.items():
        path = model.paths[s][0]
        # Interception: the response starts at the on-path replica nearest s.
        start = 0
        for m in range(1, len(path)):
            if (path[m], item) in problem.pinned or placement[(path[m], item)] >= 1 - 1e-6:
                start = m
        routing.paths[(item, s)] = [PathFlow(path=path[start:], amount=1.0)]
    return Solution(placement, routing)


def _hetero_sp_placement(
    problem: ProblemInstance,
    sp_routing: Routing,
    *,
    context: "SolverContext | None" = None,
) -> Placement:
    """[38]'s placement with heterogeneous sizes: LP + naive equal-swap round."""
    paths = extract_serving_paths(problem, sp_routing, context=context)
    cache_nodes = [
        v
        for v in problem.network.cache_nodes()
        if problem.network.cache_capacity(v) > 0
    ]
    cache_set = set(cache_nodes)
    requested_items = sorted({sp.item for sp in paths}, key=repr)
    lp = LPBuilder(sense="max")
    for v in cache_nodes:
        for i in requested_items:
            if (v, i) not in problem.pinned:
                lp.add_variable(("x", v, i), lb=0.0, ub=1.0)
    for idx, sp in enumerate(paths):
        length = len(sp.path)
        window_vars: dict = {}
        window_has_pin = False
        for kk in range(1, length):
            node = sp.path[length - kk]
            if (node, sp.item) in problem.pinned:
                window_has_pin = True
            elif node in cache_set and lp.has_variable(("x", node, sp.item)):
                key = ("x", node, sp.item)
                window_vars[key] = window_vars.get(key, 0.0) + 1.0
            link_cost = sp.suffix_cost[length - 1 - kk] - sp.suffix_cost[length - kk]
            if link_cost <= _EPS or window_has_pin:
                continue
            y_key = ("y", idx, kk)
            lp.add_variable(y_key, lb=0.0, ub=1.0)
            lp.add_objective_terms({y_key: sp.rate * link_cost})
            coeffs = {y_key: 1.0}
            coeffs.update({key: -c for key, c in window_vars.items()})
            lp.add_le(coeffs, 0.0)
    for v in cache_nodes:
        coeffs = {
            ("x", v, i): problem.size_of(i)
            for i in requested_items
            if lp.has_variable(("x", v, i))
        }
        if coeffs:
            lp.add_le(coeffs, problem.network.cache_capacity(v))
    if lp.num_variables == 0:
        return Placement()
    solution = lp.solve()
    fractional = {
        key[1:]: value
        for key, value in solution.values.items()
        if key[0] == "x" and value > 1e-9
    }
    weights: dict = {}
    for sp in paths:
        length = len(sp.path)
        for m in range(1, length):
            node = sp.path[m]
            key = (node, sp.item)
            if key in fractional or (node in cache_set and (node, sp.item) not in problem.pinned):
                weights[key] = weights.get(key, 0.0) + sp.rate * (
                    sp.suffix_cost[0] - sp.suffix_cost[m]
                )
    return Placement(naive_equal_swap_round(fractional, weights))
