"""Benchmark algorithms the paper compares against ([3], [38], [33])."""

from repro.baselines.candidate_paths import (
    CandidatePathModel,
    candidate_path_baseline,
    naive_equal_swap_round,
    origin_server,
    shortest_path_baseline,
)
from repro.baselines.reactive import (
    EvictingCache,
    ReactiveResult,
    simulate_reactive_caching,
)

__all__ = [
    "CandidatePathModel",
    "candidate_path_baseline",
    "shortest_path_baseline",
    "naive_equal_swap_round",
    "origin_server",
    "EvictingCache",
    "ReactiveResult",
    "simulate_reactive_caching",
]
