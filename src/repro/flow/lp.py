"""Sparse linear-program builder on top of ``scipy.optimize.linprog`` (HiGHS).

Every LP in the paper — the auxiliary LP (7) of Algorithm 1, the splittable
min-cost flows inside Algorithm 2, the placement LP (15), and the MMSFP
routing LPs — is assembled through :class:`LPBuilder`.  Two assembly styles
coexist:

- the **keyed API** (:meth:`LPBuilder.add_variable`, :meth:`LPBuilder.add_le`,
  ...): variables are registered under hashable keys (e.g. ``("x", v, i)``)
  so the calling code reads like the paper's math instead of juggling raw
  column indices;
- the **array API** (:meth:`LPBuilder.add_variable_block`,
  :meth:`LPBuilder.add_le_batch`, ...): whole variable blocks and constraint
  families are registered at once from numpy arrays / COO triplets, which is
  what the Deltacom-scale FC-FR, LP (7) and MSUFP assemblies use.  Block
  variables resolve to keys ``(name, *multi_index)`` on readback, so
  :class:`LPSolution` looks the same either way.

Both styles can be mixed freely in one builder; :meth:`LPBuilder.materialize`
reduces everything to one canonical CSR matrix per constraint sense
(duplicates summed, explicit zeros dropped, indices sorted), so two builders
describing the same LP — one keyed, one batched — hand *bit-identical*
inputs to HiGHS and therefore return bit-identical solutions.
"""

from __future__ import annotations

import math
import time
from collections.abc import Hashable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.exceptions import (
    InfeasibleError,
    InvalidProblemError,
    SolverError,
    UnboundedError,
)

Key = Hashable


@dataclass(frozen=True)
class VariableBlock:
    """A contiguous block of LP columns registered under one name.

    ``flat(*multi_index)`` maps (scalar or array) multi-indices to global
    column indices; on readback the block's variables appear in
    :attr:`LPSolution.values` under keys ``(name, *multi_index)``.
    """

    name: Key
    shape: tuple[int, ...]
    offset: int

    @property
    def size(self) -> int:
        return int(np.prod(self.shape, dtype=np.intp)) if self.shape else 1

    def flat(self, *multi_index):
        """Global column indices for ``multi_index`` (vectorized)."""
        if len(multi_index) != len(self.shape):
            raise ValueError(
                f"block {self.name!r} expects {len(self.shape)} indices, "
                f"got {len(multi_index)}"
            )
        return self.offset + np.ravel_multi_index(multi_index, self.shape)

    def indices(self) -> np.ndarray:
        """All global column indices of the block, in flat (C) order."""
        return self.offset + np.arange(self.size, dtype=np.intp)


@dataclass(frozen=True)
class MaterializedLP:
    """The assembled arrays handed to ``linprog`` (canonical CSR form)."""

    c: np.ndarray
    a_ub: sparse.csr_matrix | None
    b_ub: np.ndarray | None
    a_eq: sparse.csr_matrix | None
    b_eq: np.ndarray | None
    bounds: np.ndarray  # shape (n, 2)


#: Fallback chain handed to HiGHS: the default hybrid solver first, then the
#: dual simplex and interior-point codes explicitly.  A failure of one method
#: (iteration/time limit, numerical difficulties, an exception inside HiGHS)
#: moves on to the next; infeasible/unbounded verdicts are terminal.
DEFAULT_SOLVE_METHODS: tuple[str, ...] = ("highs", "highs-ds", "highs-ipm")

#: Statuses after which trying another method cannot help.
_TERMINAL_STATUSES = frozenset({0, 2, 3})


@dataclass(frozen=True)
class SolveAttempt:
    """One ``linprog`` call inside the fallback chain."""

    method: str
    #: ``linprog`` status (0 ok, 1 limit, 2 infeasible, 3 unbounded,
    #: 4 numerical); -1 when the call raised instead of returning.
    status: int
    message: str
    seconds: float
    #: Whether this attempt ran on the row-equilibrated (rescaled) LP.
    rescaled: bool = False


@dataclass(frozen=True)
class SolveReport:
    """Structured record of how an LP was (or was not) solved."""

    attempts: tuple[SolveAttempt, ...]
    #: The method that succeeded (``None`` if every attempt failed).
    method: str | None
    #: Whether the successful solve ran on the rescaled LP.
    rescaled: bool
    #: Total wall-clock across all attempts.
    seconds: float

    @property
    def num_attempts(self) -> int:
        return len(self.attempts)

    @property
    def succeeded(self) -> bool:
        return self.method is not None


@dataclass(frozen=True)
class LPSolution:
    """Optimal solution of an LP: objective value and per-key variable values."""

    objective: float
    values: dict[Key, float]
    #: Per-block value arrays (reshaped to the block's shape); keyed by name.
    block_values: dict[Key, np.ndarray] = field(
        default_factory=dict, compare=False, repr=False
    )
    #: How the solve went (fallback attempts, statuses, wall-clock).
    report: SolveReport | None = field(
        default=None, compare=False, repr=False
    )

    def __getitem__(self, key: Key) -> float:
        return self.values[key]

    def get(self, key: Key, default: float = 0.0) -> float:
        return self.values.get(key, default)

    def block(self, name: Key) -> np.ndarray:
        """Values of block ``name`` as an array shaped like the block."""
        return self.block_values[name]


@dataclass(frozen=True)
class _Batch:
    """One validated COO constraint batch (rows are batch-local)."""

    row: np.ndarray
    col: np.ndarray
    data: np.ndarray
    rhs: np.ndarray


class LPBuilder:
    """Incrementally build and solve a (sparse) linear program.

    Parameters
    ----------
    sense:
        ``"min"`` or ``"max"``.  Internally everything is minimized; for a
        maximization the objective is negated on the way in and out.
    """

    def __init__(self, sense: str = "min") -> None:
        if sense not in ("min", "max"):
            raise ValueError("sense must be 'min' or 'max'")
        self._sense = sense
        self._cols = 0
        self._index: dict[Key, int] = {}
        self._blocks: dict[Key, VariableBlock] = {}
        self._lb: list[float] = []
        self._ub: list[float] = []
        self._objective: dict[int, float] = {}
        #: Per-block objective contributions as (offset, flat cost array).
        self._objective_blocks: list[tuple[int, np.ndarray]] = []
        # Constraint storage: keyed rows as index->coef dicts, batches as COO.
        self._ub_rows: list[tuple[dict[int, float], float]] = []
        self._eq_rows: list[tuple[dict[int, float], float]] = []
        self._ub_batches: list[_Batch] = []
        self._eq_batches: list[_Batch] = []
        #: First reason this LP became trivially infeasible (e.g. a ``>= inf``
        #: row), reported by :meth:`solve` instead of feeding HiGHS ``-inf``.
        self._infeasible_reason: str | None = None

    # ------------------------------------------------------------------
    # Variables and objective
    # ------------------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return self._cols

    @property
    def num_constraints(self) -> int:
        return (
            len(self._ub_rows)
            + len(self._eq_rows)
            + sum(b.rhs.size for b in self._ub_batches)
            + sum(b.rhs.size for b in self._eq_batches)
        )

    def add_variable(
        self, key: Key, *, lb: float = 0.0, ub: float = math.inf, cost: float = 0.0
    ) -> Key:
        """Register variable ``key`` with bounds and objective coefficient."""
        if key in self._index:
            raise ValueError(f"variable {key!r} already defined")
        if math.isnan(lb) or math.isnan(ub):
            raise InvalidProblemError(f"variable {key!r} has NaN bounds")
        if math.isnan(cost):
            raise InvalidProblemError(f"variable {key!r} has NaN cost")
        idx = self._cols
        self._index[key] = idx
        self._cols += 1
        self._lb.append(float(lb))
        self._ub.append(float(ub))
        if cost:
            self._objective[idx] = float(cost)
        return key

    def add_variables(
        self, keys: Iterable[Key], *, lb: float = 0.0, ub: float = math.inf
    ) -> list[Key]:
        return [self.add_variable(k, lb=lb, ub=ub) for k in keys]

    def add_variable_block(
        self,
        name: Key,
        shape: int | tuple[int, ...],
        *,
        lb=0.0,
        ub=math.inf,
        cost=None,
    ) -> VariableBlock:
        """Register a contiguous numpy-indexed block of variables.

        ``lb``/``ub``/``cost`` may be scalars or arrays broadcastable to
        ``shape``.  The block's variables appear in the solution under keys
        ``(name, *multi_index)``; callers must not register keyed variables
        with colliding keys.
        """
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        shape = tuple(int(d) for d in shape)
        if not shape or any(d < 0 for d in shape):
            raise InvalidProblemError(f"block {name!r} has invalid shape {shape!r}")
        if name in self._blocks:
            raise ValueError(f"variable block {name!r} already defined")
        lb_arr = np.broadcast_to(np.asarray(lb, dtype=np.float64), shape).ravel()
        ub_arr = np.broadcast_to(np.asarray(ub, dtype=np.float64), shape).ravel()
        if np.isnan(lb_arr).any() or np.isnan(ub_arr).any():
            raise InvalidProblemError(f"block {name!r} has NaN bounds")
        block = VariableBlock(name=name, shape=shape, offset=self._cols)
        self._blocks[name] = block
        self._cols += block.size
        self._lb.extend(lb_arr.tolist())
        self._ub.extend(ub_arr.tolist())
        if cost is not None:
            cost_arr = np.ascontiguousarray(
                np.broadcast_to(np.asarray(cost, dtype=np.float64), shape),
                dtype=np.float64,
            ).ravel()
            if np.isnan(cost_arr).any():
                raise InvalidProblemError(f"block {name!r} has NaN cost")
            self._objective_blocks.append((block.offset, cost_arr))
        return block

    def block(self, name: Key) -> VariableBlock:
        return self._blocks[name]

    def has_variable(self, key: Key) -> bool:
        return key in self._index

    def set_objective_coefficient(self, key: Key, coefficient: float) -> None:
        self._objective[self._index[key]] = float(coefficient)

    def add_objective_terms(self, terms: Mapping[Key, float]) -> None:
        for key, coef in terms.items():
            idx = self._index[key]
            self._objective[idx] = self._objective.get(idx, 0.0) + float(coef)

    # ------------------------------------------------------------------
    # Constraints (keyed API)
    # ------------------------------------------------------------------

    def _row(self, coefficients: Mapping[Key, float]) -> dict[int, float]:
        row: dict[int, float] = {}
        for key, coef in coefficients.items():
            if not coef:
                continue
            if not math.isfinite(coef):
                raise InvalidProblemError(
                    f"non-finite coefficient {coef!r} for variable {key!r}"
                )
            idx = self._index[key]
            row[idx] = row.get(idx, 0.0) + float(coef)
        return row

    def _mark_infeasible(self, reason: str) -> None:
        if self._infeasible_reason is None:
            self._infeasible_reason = reason

    def add_le(self, coefficients: Mapping[Key, float], rhs: float) -> None:
        """Add ``sum(coef * var) <= rhs``.

        A ``+inf`` rhs is vacuous and skipped; a ``-inf`` rhs makes the whole
        LP trivially infeasible (reported by :meth:`solve` instead of feeding
        HiGHS an infinite bound); a NaN rhs raises
        :class:`~repro.exceptions.InvalidProblemError`.
        """
        rhs = float(rhs)
        if math.isnan(rhs):
            raise InvalidProblemError("constraint rhs is NaN in add_le")
        if math.isinf(rhs):
            if rhs > 0:
                return
            self._mark_infeasible("a <= -inf constraint can never hold")
            return
        self._ub_rows.append((self._row(coefficients), rhs))

    def add_ge(self, coefficients: Mapping[Key, float], rhs: float) -> None:
        """Add ``sum(coef * var) >= rhs`` (stored as the negated <= row).

        A ``-inf`` rhs is vacuous and skipped; a ``+inf`` rhs makes the LP
        trivially infeasible; a NaN rhs raises
        :class:`~repro.exceptions.InvalidProblemError`.
        """
        rhs = float(rhs)
        if math.isnan(rhs):
            raise InvalidProblemError("constraint rhs is NaN in add_ge")
        if math.isinf(rhs):
            if rhs < 0:
                return
            self._mark_infeasible("a >= +inf constraint can never hold")
            return
        row = {i: -c for i, c in self._row(coefficients).items()}
        self._ub_rows.append((row, -rhs))

    def add_eq(self, coefficients: Mapping[Key, float], rhs: float) -> None:
        """Add ``sum(coef * var) == rhs`` (finite rhs required)."""
        rhs = float(rhs)
        if math.isnan(rhs):
            raise InvalidProblemError("constraint rhs is NaN in add_eq")
        if math.isinf(rhs):
            self._mark_infeasible("an == +/-inf constraint can never hold")
            return
        self._eq_rows.append((self._row(coefficients), rhs))

    # ------------------------------------------------------------------
    # Constraints (array API)
    # ------------------------------------------------------------------

    def _validated_batch(self, row_idx, col_idx, data, rhs, kind: str) -> _Batch | None:
        row = np.asarray(row_idx, dtype=np.intp).ravel()
        col = np.asarray(col_idx, dtype=np.intp).ravel()
        data = np.asarray(data, dtype=np.float64).ravel()
        rhs = np.asarray(rhs, dtype=np.float64).ravel()
        if not (row.size == col.size == data.size):
            raise InvalidProblemError(
                f"COO triplet lengths differ in add_{kind}_batch: "
                f"{row.size}/{col.size}/{data.size}"
            )
        if rhs.size == 0:
            if row.size:
                raise InvalidProblemError(
                    f"add_{kind}_batch has entries but an empty rhs"
                )
            return None
        if np.isnan(rhs).any():
            raise InvalidProblemError(f"constraint rhs contains NaN in add_{kind}_batch")
        if data.size and not np.isfinite(data).all():
            raise InvalidProblemError(
                f"non-finite coefficient in add_{kind}_batch"
            )
        if row.size and (row.min() < 0 or row.max() >= rhs.size):
            raise InvalidProblemError(
                f"row index out of range in add_{kind}_batch"
            )
        if col.size and (col.min() < 0 or col.max() >= self._cols):
            raise InvalidProblemError(
                f"column index out of range in add_{kind}_batch"
            )
        return _Batch(row=row, col=col, data=data, rhs=rhs)

    def add_le_batch(self, row_idx, col_idx, data, rhs) -> None:
        """Add a family of ``<=`` rows from COO triplets.

        ``row_idx``/``col_idx``/``data`` are parallel arrays of matrix
        entries (rows are local to this batch, columns are global indices —
        use :meth:`VariableBlock.flat`); ``rhs`` holds one bound per row.
        Rows with ``+inf`` rhs are vacuous and dropped; any ``-inf`` rhs
        marks the LP trivially infeasible; NaN raises
        :class:`~repro.exceptions.InvalidProblemError`.  Duplicate
        ``(row, col)`` entries are summed.
        """
        batch = self._validated_batch(row_idx, col_idx, data, rhs, "le")
        if batch is None:
            return
        if np.isneginf(batch.rhs).any():
            self._mark_infeasible("a <= -inf constraint can never hold")
            return
        vacuous = np.isposinf(batch.rhs)
        if vacuous.any():
            keep_rows = ~vacuous
            new_row_of = np.cumsum(keep_rows) - 1
            entry_keep = keep_rows[batch.row]
            batch = _Batch(
                row=new_row_of[batch.row[entry_keep]],
                col=batch.col[entry_keep],
                data=batch.data[entry_keep],
                rhs=batch.rhs[keep_rows],
            )
            if batch.rhs.size == 0:
                return
        self._ub_batches.append(batch)

    def add_ge_batch(self, row_idx, col_idx, data, rhs) -> None:
        """Add a family of ``>=`` rows (negated into the ``<=`` storage)."""
        batch = self._validated_batch(row_idx, col_idx, data, rhs, "ge")
        if batch is None:
            return
        if np.isposinf(batch.rhs).any():
            self._mark_infeasible("a >= +inf constraint can never hold")
            return
        self.add_le_batch(batch.row, batch.col, -batch.data, -batch.rhs)

    def add_eq_batch(self, row_idx, col_idx, data, rhs) -> None:
        """Add a family of ``==`` rows from COO triplets (finite rhs)."""
        batch = self._validated_batch(row_idx, col_idx, data, rhs, "eq")
        if batch is None:
            return
        if np.isinf(batch.rhs).any():
            self._mark_infeasible("an == +/-inf constraint can never hold")
            return
        self._eq_batches.append(batch)

    # ------------------------------------------------------------------
    # Materialization and solving
    # ------------------------------------------------------------------

    def _combine(
        self,
        rows: list[tuple[dict[int, float], float]],
        batches: list[_Batch],
    ) -> tuple[sparse.csr_matrix | None, np.ndarray | None]:
        n_rows = len(rows) + sum(b.rhs.size for b in batches)
        if n_rows == 0:
            return None, None
        row_parts: list[np.ndarray] = []
        col_parts: list[np.ndarray] = []
        data_parts: list[np.ndarray] = []
        rhs_parts: list[np.ndarray] = []
        if rows:
            data, row_idx, col_idx, rhs = [], [], [], []
            for r, (row, b) in enumerate(rows):
                rhs.append(b)
                for idx, coef in row.items():
                    row_idx.append(r)
                    col_idx.append(idx)
                    data.append(coef)
            row_parts.append(np.asarray(row_idx, dtype=np.intp))
            col_parts.append(np.asarray(col_idx, dtype=np.intp))
            data_parts.append(np.asarray(data, dtype=np.float64))
            rhs_parts.append(np.asarray(rhs, dtype=np.float64))
        offset = len(rows)
        for b in batches:
            row_parts.append(b.row + offset)
            col_parts.append(b.col)
            data_parts.append(b.data)
            rhs_parts.append(b.rhs)
            offset += b.rhs.size
        mat = sparse.csr_matrix(
            (
                np.concatenate(data_parts) if data_parts else np.empty(0),
                (
                    np.concatenate(row_parts) if row_parts else np.empty(0, np.intp),
                    np.concatenate(col_parts) if col_parts else np.empty(0, np.intp),
                ),
            ),
            shape=(n_rows, self._cols),
        )
        # Canonical form: duplicates summed (done by the COO->CSR conversion),
        # explicit zeros dropped, indices sorted — so keyed and batched
        # assemblies of the same LP produce bit-identical matrices.
        mat.sum_duplicates()
        mat.eliminate_zeros()
        mat.sort_indices()
        return mat, np.concatenate(rhs_parts)

    def materialize(self) -> MaterializedLP:
        """Assemble the canonical arrays that :meth:`solve` hands to HiGHS."""
        n = self._cols
        sign = 1.0 if self._sense == "min" else -1.0
        c = np.zeros(n)
        for idx, coef in self._objective.items():
            c[idx] = coef
        for offset, cost_arr in self._objective_blocks:
            c[offset : offset + cost_arr.size] += cost_arr
        if sign != 1.0:
            c = sign * c
        a_ub, b_ub = self._combine(self._ub_rows, self._ub_batches)
        a_eq, b_eq = self._combine(self._eq_rows, self._eq_batches)
        bounds = np.column_stack(
            [np.asarray(self._lb, dtype=np.float64), np.asarray(self._ub, dtype=np.float64)]
        )
        return MaterializedLP(c=c, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq, bounds=bounds)

    def _values_from(self, x: np.ndarray) -> tuple[dict[Key, float], dict[Key, np.ndarray]]:
        values = {key: float(x[idx]) for key, idx in self._index.items()}
        block_values: dict[Key, np.ndarray] = {}
        for name, block in self._blocks.items():
            flat = x[block.offset : block.offset + block.size]
            block_values[name] = flat.reshape(block.shape).copy()
            if block.size:
                index_arrays = np.unravel_index(
                    np.arange(block.size, dtype=np.intp), block.shape
                )
                columns = [a.tolist() for a in index_arrays]
                flat_list = flat.tolist()
                for k, multi in enumerate(zip(*columns)):
                    values[(name, *multi)] = flat_list[k]
        return values, block_values

    @staticmethod
    def _rescaled(lp: MaterializedLP) -> MaterializedLP:
        """Row-equilibrated copy of ``lp`` (same feasible set and optimum).

        Each inequality/equality row (and its rhs) is divided by the row's
        largest absolute coefficient — an exact reformulation that tames the
        wide coefficient ranges behind most HiGHS "numerical difficulties"
        failures.  Variable bounds and the objective are untouched, so the
        solution vector maps back 1:1.
        """

        def scale(a, b):
            if a is None:
                return None, None
            row_max = np.abs(a).max(axis=1)
            row_max = np.asarray(row_max.todense()).ravel()
            factors = np.where(row_max > 0, row_max, 1.0)
            d = sparse.diags(1.0 / factors).tocsr()
            return (d @ a).tocsr(), b / factors

        a_ub, b_ub = scale(lp.a_ub, lp.b_ub)
        a_eq, b_eq = scale(lp.a_eq, lp.b_eq)
        return MaterializedLP(
            c=lp.c, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq, bounds=lp.bounds
        )

    def solve(
        self,
        *,
        methods: Sequence[str] | None = None,
        time_limit: float | None = None,
        rescale_retry: bool = True,
    ) -> LPSolution:
        """Solve the LP with a hardened HiGHS fallback chain.

        Methods from ``methods`` (default :data:`DEFAULT_SOLVE_METHODS`:
        ``highs`` → ``highs-ds`` → ``highs-ipm``) are tried in order, each
        under the per-attempt ``time_limit`` (seconds; ``None`` = unlimited).
        An attempt that hits a limit, reports numerical difficulties, or
        raises inside HiGHS moves on to the next method; infeasible and
        unbounded verdicts are terminal.  If the whole chain fails and
        ``rescale_retry`` is on, the chain runs once more on a
        row-equilibrated (exactly equivalent) LP.  The returned solution
        carries a :class:`SolveReport` listing every attempt.

        Raises
        ------
        InfeasibleError
            The LP has no feasible point (HiGHS status 2, or a trivially
            infeasible constraint such as ``>= +inf`` was added).
        UnboundedError
            The objective can be improved without limit (HiGHS status 3).
        SolverError
            The LP is empty, or every attempt of the fallback chain failed
            (iteration/time limits, numerical difficulties, ...).
        """
        if self._cols == 0:
            raise SolverError("LP has no variables")
        if self._infeasible_reason is not None:
            raise InfeasibleError(
                f"LP is trivially infeasible: {self._infeasible_reason}"
            )
        x, fun, report = _solve_materialized(
            self.materialize(),
            methods=methods,
            time_limit=time_limit,
            rescale_retry=rescale_retry,
        )
        sign = 1.0 if self._sense == "min" else -1.0
        values, block_values = self._values_from(x)
        return LPSolution(
            objective=sign * fun,
            values=values,
            block_values=block_values,
            report=report,
        )

    # ------------------------------------------------------------------
    # Templates
    # ------------------------------------------------------------------

    def freeze(self) -> "LPTemplate":
        """Snapshot this LP as a reusable :class:`LPTemplate`.

        The template owns one materialized copy of the LP; its rhs, variable
        bounds, and objective can be patched between solves without
        re-running :meth:`materialize` (the CSR matrices are assembled once
        and never touched again).  A template solve with untouched arrays is
        bit-identical to :meth:`solve` on this builder; a patched solve is
        bit-identical to a fresh assembly producing the same arrays, because
        :meth:`materialize` is deterministic.  Mutating the builder after
        ``freeze()`` does not affect existing templates.
        """
        if self._cols == 0:
            raise SolverError("LP has no variables")
        if self._infeasible_reason is not None:
            raise InfeasibleError(
                f"LP is trivially infeasible: {self._infeasible_reason}"
            )
        return LPTemplate(
            lp=self.materialize(),
            sense=self._sense,
            index=dict(self._index),
            blocks=dict(self._blocks),
        )


def _solve_materialized(
    lp: MaterializedLP,
    *,
    methods: Sequence[str] | None = None,
    time_limit: float | None = None,
    rescale_retry: bool = True,
) -> tuple[np.ndarray, float, SolveReport]:
    """Run the hardened HiGHS fallback chain on assembled arrays.

    Shared by :meth:`LPBuilder.solve` and :meth:`LPTemplate.solve`; returns
    ``(x, fun, report)`` and raises the same exceptions as
    :meth:`LPBuilder.solve`.
    """
    methods = tuple(methods) if methods is not None else DEFAULT_SOLVE_METHODS
    if not methods:
        raise SolverError("no solve methods given")
    options = {} if time_limit is None else {"time_limit": float(time_limit)}
    attempts: list[SolveAttempt] = []
    total_start = time.perf_counter()

    def attempt_chain(current: MaterializedLP, rescaled: bool):
        for method in methods:
            start = time.perf_counter()
            try:
                result = linprog(
                    current.c,
                    A_ub=current.a_ub,
                    b_ub=current.b_ub,
                    A_eq=current.a_eq,
                    b_eq=current.b_eq,
                    bounds=current.bounds,
                    method=method,
                    options=dict(options),
                )
            except Exception as exc:  # a HiGHS crash must not kill the chain
                attempts.append(
                    SolveAttempt(
                        method=method,
                        status=-1,
                        message=f"{type(exc).__name__}: {exc}",
                        seconds=time.perf_counter() - start,
                        rescaled=rescaled,
                    )
                )
                continue
            attempts.append(
                SolveAttempt(
                    method=method,
                    status=int(result.status),
                    message=str(result.message),
                    seconds=time.perf_counter() - start,
                    rescaled=rescaled,
                )
            )
            if result.status in _TERMINAL_STATUSES:
                return result
        return None

    result = attempt_chain(lp, rescaled=False)
    rescaled = False
    if result is None and rescale_retry:
        result = attempt_chain(LPBuilder._rescaled(lp), rescaled=True)
        rescaled = result is not None
    report = SolveReport(
        attempts=tuple(attempts),
        method=attempts[-1].method if result is not None else None,
        rescaled=rescaled,
        seconds=time.perf_counter() - total_start,
    )
    if result is None:
        trail = "; ".join(
            f"{a.method}{' (rescaled)' if a.rescaled else ''}: "
            f"status {a.status} ({a.message})"
            for a in attempts
        )
        raise SolverError(
            f"LP solver failed after {len(attempts)} attempts: {trail}"
        )
    if result.status == 2:
        raise InfeasibleError("LP is infeasible")
    if result.status == 3:
        raise UnboundedError(
            "LP is unbounded: the objective can improve without limit; "
            "check for a missing capacity constraint or variable bound "
            f"({result.message})"
        )
    return result.x, float(result.fun), report


class LPTemplate:
    """A frozen LP whose rhs/bounds/objective patch in place between solves.

    Produced by :meth:`LPBuilder.freeze`.  The constraint *structure* (both
    CSR matrices) is immutable; only

    - inequality/equality right-hand sides (:meth:`set_b_ub` /
      :meth:`set_b_eq`),
    - variable bounds (:meth:`set_bounds` / :meth:`set_block_bounds`), and
    - objective coefficients (:meth:`set_objective` /
      :meth:`set_block_objective`)

    may change.  Patch rules: a patch must describe the LP a fresh
    :class:`LPBuilder` assembly *would* have produced — same rows in the
    same order, same sparsity pattern — so a patched solve stays
    bit-identical to the from-scratch solve it replaces (``materialize`` is
    deterministic, and HiGHS sees identical arrays).  Changing which
    coefficients are zero/nonzero, adding rows, or flipping a bound between
    finite and infinite in a way a fresh assembly would have *dropped* the
    row for requires a new builder, not a patch.
    """

    def __init__(
        self,
        *,
        lp: MaterializedLP,
        sense: str,
        index: dict[Key, int],
        blocks: dict[Key, VariableBlock],
    ) -> None:
        self._sense = sense
        self._index = index
        self._blocks = blocks
        self._sign = 1.0 if sense == "min" else -1.0
        # Writable copies of the patchable arrays; CSR structure is shared.
        self._c = lp.c.copy()
        self._b_ub = None if lp.b_ub is None else lp.b_ub.copy()
        self._b_eq = None if lp.b_eq is None else lp.b_eq.copy()
        self._bounds = lp.bounds.copy()
        self._a_ub = lp.a_ub
        self._a_eq = lp.a_eq

    # -- introspection --------------------------------------------------

    @property
    def num_variables(self) -> int:
        return self._bounds.shape[0]

    @property
    def num_ub_rows(self) -> int:
        return 0 if self._b_ub is None else int(self._b_ub.size)

    @property
    def num_eq_rows(self) -> int:
        return 0 if self._b_eq is None else int(self._b_eq.size)

    def block(self, name: Key) -> VariableBlock:
        return self._blocks[name]

    def column_of(self, key: Key) -> int:
        return self._index[key]

    # -- patching -------------------------------------------------------

    def set_b_ub(self, rows, values) -> None:
        """Patch inequality rhs entries (global ``<=`` row indices).

        Rows added via ``add_ge``/``add_ge_batch`` are stored negated, so
        patch them with the *negated* bound, exactly as a fresh assembly
        would store it.
        """
        if self._b_ub is None:
            raise InvalidProblemError("template has no inequality rows")
        values = np.asarray(values, dtype=np.float64)
        if np.isnan(values).any():
            raise InvalidProblemError("rhs patch contains NaN")
        self._b_ub[rows] = values

    def set_b_eq(self, rows, values) -> None:
        """Patch equality rhs entries (global ``==`` row indices)."""
        if self._b_eq is None:
            raise InvalidProblemError("template has no equality rows")
        values = np.asarray(values, dtype=np.float64)
        if not np.isfinite(values).all():
            raise InvalidProblemError("equality rhs patch must be finite")
        self._b_eq[rows] = values

    def set_bounds(self, key: Key, *, lb: float | None = None, ub: float | None = None) -> None:
        """Patch one keyed variable's bounds."""
        idx = self._index[key]
        if lb is not None:
            self._bounds[idx, 0] = float(lb)
        if ub is not None:
            self._bounds[idx, 1] = float(ub)

    def set_block_bounds(self, name: Key, *, lb=None, ub=None) -> None:
        """Patch a variable block's bounds (scalars or block-shaped arrays)."""
        block = self._blocks[name]
        sl = slice(block.offset, block.offset + block.size)
        if lb is not None:
            arr = np.broadcast_to(np.asarray(lb, dtype=np.float64), block.shape)
            self._bounds[sl, 0] = arr.ravel()
        if ub is not None:
            arr = np.broadcast_to(np.asarray(ub, dtype=np.float64), block.shape)
            self._bounds[sl, 1] = arr.ravel()
        if np.isnan(self._bounds[sl]).any():
            raise InvalidProblemError(f"bounds patch for block {name!r} has NaN")

    def set_objective(self, key: Key, cost: float) -> None:
        """Patch one keyed variable's objective coefficient."""
        if math.isnan(cost):
            raise InvalidProblemError(f"objective patch for {key!r} is NaN")
        self._c[self._index[key]] = self._sign * float(cost)

    def set_block_objective(self, name: Key, cost) -> None:
        """Patch a variable block's objective coefficients."""
        block = self._blocks[name]
        arr = np.broadcast_to(np.asarray(cost, dtype=np.float64), block.shape).ravel()
        if np.isnan(arr).any():
            raise InvalidProblemError(f"objective patch for block {name!r} has NaN")
        self._c[block.offset : block.offset + block.size] = self._sign * arr

    # -- solving --------------------------------------------------------

    def materialized(self) -> MaterializedLP:
        """Current patched arrays in :class:`MaterializedLP` form."""
        return MaterializedLP(
            c=self._c,
            a_ub=self._a_ub,
            b_ub=self._b_ub,
            a_eq=self._a_eq,
            b_eq=self._b_eq,
            bounds=self._bounds,
        )

    def solve(
        self,
        *,
        methods: Sequence[str] | None = None,
        time_limit: float | None = None,
        rescale_retry: bool = True,
    ) -> LPSolution:
        """Solve the patched LP (same fallback chain and exceptions as
        :meth:`LPBuilder.solve`)."""
        x, fun, report = _solve_materialized(
            self.materialized(),
            methods=methods,
            time_limit=time_limit,
            rescale_retry=rescale_retry,
        )
        values: dict[Key, float] = {
            key: float(x[idx]) for key, idx in self._index.items()
        }
        block_values: dict[Key, np.ndarray] = {}
        for name, block in self._blocks.items():
            flat = x[block.offset : block.offset + block.size]
            block_values[name] = flat.reshape(block.shape).copy()
            if block.size:
                index_arrays = np.unravel_index(
                    np.arange(block.size, dtype=np.intp), block.shape
                )
                columns = [a.tolist() for a in index_arrays]
                flat_list = flat.tolist()
                for k, multi in enumerate(zip(*columns)):
                    values[(name, *multi)] = flat_list[k]
        return LPSolution(
            objective=self._sign * fun,
            values=values,
            block_values=block_values,
            report=report,
        )
