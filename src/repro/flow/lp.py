"""Sparse linear-program builder on top of ``scipy.optimize.linprog`` (HiGHS).

Every LP in the paper — the auxiliary LP (7) of Algorithm 1, the splittable
min-cost flows inside Algorithm 2, the placement LP (15), and the MMSFP
routing LPs — is assembled through :class:`LPBuilder`.  Variables are
registered under hashable keys (e.g. ``("x", v, i)``) so the calling code
reads like the paper's math instead of juggling raw column indices.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterable, Mapping
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.exceptions import InfeasibleError, SolverError

Key = Hashable


@dataclass(frozen=True)
class LPSolution:
    """Optimal solution of an LP: objective value and per-key variable values."""

    objective: float
    values: dict[Key, float]

    def __getitem__(self, key: Key) -> float:
        return self.values[key]

    def get(self, key: Key, default: float = 0.0) -> float:
        return self.values.get(key, default)


class LPBuilder:
    """Incrementally build and solve a (sparse) linear program.

    Parameters
    ----------
    sense:
        ``"min"`` or ``"max"``.  Internally everything is minimized; for a
        maximization the objective is negated on the way in and out.
    """

    def __init__(self, sense: str = "min") -> None:
        if sense not in ("min", "max"):
            raise ValueError("sense must be 'min' or 'max'")
        self._sense = sense
        self._index: dict[Key, int] = {}
        self._lb: list[float] = []
        self._ub: list[float] = []
        self._objective: dict[int, float] = {}
        # Constraint storage as COO triplets.
        self._ub_rows: list[tuple[dict[int, float], float]] = []
        self._eq_rows: list[tuple[dict[int, float], float]] = []

    # ------------------------------------------------------------------
    # Variables and objective
    # ------------------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self._index)

    @property
    def num_constraints(self) -> int:
        return len(self._ub_rows) + len(self._eq_rows)

    def add_variable(
        self, key: Key, *, lb: float = 0.0, ub: float = math.inf, cost: float = 0.0
    ) -> Key:
        """Register variable ``key`` with bounds and objective coefficient."""
        if key in self._index:
            raise ValueError(f"variable {key!r} already defined")
        idx = len(self._lb)
        self._index[key] = idx
        self._lb.append(lb)
        self._ub.append(ub)
        if cost:
            self._objective[idx] = cost
        return key

    def add_variables(
        self, keys: Iterable[Key], *, lb: float = 0.0, ub: float = math.inf
    ) -> list[Key]:
        return [self.add_variable(k, lb=lb, ub=ub) for k in keys]

    def has_variable(self, key: Key) -> bool:
        return key in self._index

    def set_objective_coefficient(self, key: Key, coefficient: float) -> None:
        self._objective[self._index[key]] = float(coefficient)

    def add_objective_terms(self, terms: Mapping[Key, float]) -> None:
        for key, coef in terms.items():
            idx = self._index[key]
            self._objective[idx] = self._objective.get(idx, 0.0) + float(coef)

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------

    def _row(self, coefficients: Mapping[Key, float]) -> dict[int, float]:
        row: dict[int, float] = {}
        for key, coef in coefficients.items():
            if not coef:
                continue
            idx = self._index[key]
            row[idx] = row.get(idx, 0.0) + float(coef)
        return row

    def add_le(self, coefficients: Mapping[Key, float], rhs: float) -> None:
        """Add ``sum(coef * var) <= rhs``.  Rows with no finite rhs are skipped."""
        if math.isinf(rhs) and rhs > 0:
            return
        self._ub_rows.append((self._row(coefficients), float(rhs)))

    def add_ge(self, coefficients: Mapping[Key, float], rhs: float) -> None:
        """Add ``sum(coef * var) >= rhs`` (stored as the negated <= row)."""
        if math.isinf(rhs) and rhs < 0:
            return
        row = {i: -c for i, c in self._row(coefficients).items()}
        self._ub_rows.append((row, -float(rhs)))

    def add_eq(self, coefficients: Mapping[Key, float], rhs: float) -> None:
        """Add ``sum(coef * var) == rhs``."""
        self._eq_rows.append((self._row(coefficients), float(rhs)))

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(self) -> LPSolution:
        """Solve the LP with HiGHS; raise on infeasibility or solver failure."""
        n = self.num_variables
        if n == 0:
            raise SolverError("LP has no variables")
        sign = 1.0 if self._sense == "min" else -1.0
        c = np.zeros(n)
        for idx, coef in self._objective.items():
            c[idx] = sign * coef

        def to_matrix(rows: list[tuple[dict[int, float], float]]):
            if not rows:
                return None, None
            data, row_idx, col_idx, rhs = [], [], [], []
            for r, (row, b) in enumerate(rows):
                rhs.append(b)
                for idx, coef in row.items():
                    row_idx.append(r)
                    col_idx.append(idx)
                    data.append(coef)
            mat = sparse.csr_matrix(
                (data, (row_idx, col_idx)), shape=(len(rows), n)
            )
            return mat, np.array(rhs)

        a_ub, b_ub = to_matrix(self._ub_rows)
        a_eq, b_eq = to_matrix(self._eq_rows)
        bounds = list(zip(self._lb, self._ub))
        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
        )
        if result.status == 2:
            raise InfeasibleError("LP is infeasible")
        if result.status != 0:
            raise SolverError(f"LP solver failed: {result.message}")
        values = {key: float(result.x[idx]) for key, idx in self._index.items()}
        return LPSolution(objective=sign * float(result.fun), values=values)
