"""Splittable -> unsplittable flow rounding ([33, Algorithm 2], Skutella 2002).

Given a single-source splittable flow satisfying demands whose pairwise
ratios are integer powers of two, produce one path per commodity such that

- the total (demand-weighted) path cost does not exceed the cost of the
  input flow (Lemma 4.6(i)), and
- on every link, all but the single largest commodity fit within the input
  flow value (Lemma 4.6(ii)).

The construction processes demand values from smallest to largest.  At each
value ``delta`` the flow is first made *delta-integral* — every link load a
multiple of ``delta`` — by canceling flow around cycles of non-integral
links in the cost-non-increasing direction; mod-``delta`` flow conservation
guarantees every node incident to a non-integral link has at least two such
links, so such a cycle always exists.  Then every commodity of demand
``delta`` is routed on a cheapest path inside the flow's support and its
flow is removed.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Mapping
from dataclasses import dataclass

import networkx as nx

from repro.exceptions import InvalidProblemError, SolverError
from repro.graph.network import COST

Node = Hashable
Edge = tuple[Node, Node]


@dataclass(frozen=True)
class _Demand:
    commodity: Hashable
    sink: Node
    value: float
    level: int  # value == delta_min * 2**level


def _mod(value: float, delta: float) -> float:
    m = math.fmod(value, delta)
    if m < 0:
        m += delta
    return m


def _is_multiple(value: float, delta: float, tol: float) -> bool:
    m = _mod(value, delta)
    return m <= tol or delta - m <= tol


def _snap(value: float, delta: float, tol: float) -> float:
    k = round(value / delta)
    if abs(value - k * delta) <= tol:
        return k * delta
    return value


def _classify_levels(
    commodities: list[tuple[Hashable, Node, float]],
    *,
    rel_tol: float = 1e-6,
) -> list[_Demand]:
    demands = [d for _, _, d in commodities]
    if any(d <= 0 for d in demands):
        raise InvalidProblemError("demands must be positive")
    d_min = min(demands)
    out = []
    for cid, sink, value in commodities:
        level_f = math.log2(value / d_min)
        level = round(level_f)
        if abs(level_f - level) > rel_tol:
            raise InvalidProblemError(
                f"demand {value} of {cid!r} is not a power-of-two multiple of {d_min}"
            )
        out.append(_Demand(commodity=cid, sink=sink, value=value, level=level))
    return out


def _make_delta_integral(
    flow: dict[Edge, float],
    delta: float,
    costs: Mapping[Edge, float],
    tol: float,
) -> None:
    """Cancel cycles of non-delta-integral links until none remain (in place)."""
    max_rounds = 4 * len(flow) + len(flow) ** 2 + 64
    for _ in range(max_rounds):
        nonintegral = [e for e, f in flow.items() if not _is_multiple(f, delta, tol)]
        if not nonintegral:
            return
        cycle = _find_cycle(nonintegral)
        # Orient so the cost change per unit is non-positive.
        unit_cost = sum(direction * costs.get(edge, 0.0) for edge, direction in cycle)
        if unit_cost > 0:
            cycle = [(edge, -direction) for edge, direction in cycle]
        eps = math.inf
        for edge, direction in cycle:
            m = _mod(flow[edge], delta)
            gap = delta - m if direction > 0 else m
            eps = min(eps, gap)
        if not (eps > tol):
            raise SolverError("cycle canceling stalled (numerical issue)")
        for edge, direction in cycle:
            flow[edge] = _snap(flow[edge] + direction * eps, delta, tol)
            if flow[edge] < 0:
                if flow[edge] < -tol:
                    raise SolverError("cycle canceling produced negative flow")
                flow[edge] = 0.0
    raise SolverError("delta-integralization did not converge")


def _find_cycle(edges: list[Edge]) -> list[tuple[Edge, int]]:
    """A cycle in the undirected multigraph spanned by the given directed edges.

    Returns ``[(edge, direction), ...]`` where direction ``+1`` means the
    cycle traverses the edge forward (flow increases when augmenting).
    """
    adjacency: dict[Node, list[tuple[Node, Edge, int]]] = {}
    for edge in sorted(edges, key=repr):
        u, v = edge
        adjacency.setdefault(u, []).append((v, edge, +1))
        adjacency.setdefault(v, []).append((u, edge, -1))
    start = min(adjacency, key=repr)
    trail_nodes = [start]
    trail_steps: list[tuple[Edge, int]] = []
    index = {start: 0}
    used: set[Edge] = set()
    for _ in range(len(adjacency) + 1):
        current = trail_nodes[-1]
        step = next(
            (
                (other, edge, direction)
                for other, edge, direction in adjacency[current]
                if edge not in used
            ),
            None,
        )
        if step is None:
            raise SolverError(
                "mod-delta conservation violated: dead end while searching cycle"
            )
        other, edge, direction = step
        used.add(edge)
        if other in index:
            p = index[other]
            return trail_steps[p:] + [(edge, direction)]
        index[other] = len(trail_nodes)
        trail_nodes.append(other)
        trail_steps.append((edge, direction))
    raise SolverError("cycle search did not terminate")


def _cheapest_support_path(
    flow: Mapping[Edge, float],
    costs: Mapping[Edge, float],
    source: Node,
    sink: Node,
    delta: float,
    tol: float,
) -> tuple[Node, ...]:
    support = nx.DiGraph()
    support.add_node(source)
    for (u, v), f in flow.items():
        if f >= delta - tol:
            support.add_edge(u, v, **{COST: costs.get((u, v), 0.0)})
    from repro.graph.shortest_paths import reconstruct_path, single_source_dijkstra

    dist, pred = single_source_dijkstra(support, source)
    if sink not in dist:
        raise SolverError(
            f"no support path from {source!r} to {sink!r} at level {delta}"
        )
    return tuple(reconstruct_path(pred, source, sink))


def round_to_unsplittable(
    costs: Mapping[Edge, float],
    source: Node,
    commodities: list[tuple[Hashable, Node, float]],
    flow: Mapping[Edge, float],
    *,
    tolerance: float = 1e-7,
) -> dict[Hashable, tuple[Node, ...]]:
    """Round a splittable flow into one path per commodity (Lemma 4.6).

    Parameters
    ----------
    costs:
        Per-link routing costs (links absent from the mapping cost 0; this is
        how virtual links are naturally handled).
    source:
        The common source of all commodities.
    commodities:
        ``(commodity_id, sink, demand)`` triples; demands must pairwise differ
        by integer powers of two.
    flow:
        Link-level splittable flow satisfying exactly those demands.

    Returns
    -------
    dict mapping commodity id to its routing path (tuple of nodes).
    """
    if not commodities:
        return {}
    ids = [cid for cid, _, _ in commodities]
    if len(set(ids)) != len(ids):
        raise InvalidProblemError("commodity ids must be unique")
    demands = _classify_levels(commodities)
    d_min = min(d.value for d in demands)
    working: dict[Edge, float] = {e: f for e, f in flow.items() if f > tolerance}
    paths: dict[Hashable, tuple[Node, ...]] = {}
    for level in sorted({d.level for d in demands}):
        delta = d_min * (2.0**level)
        tol = tolerance * max(1.0, delta)
        _make_delta_integral(working, delta, costs, tol)
        at_level = sorted(
            (d for d in demands if d.level == level), key=lambda d: repr(d.commodity)
        )
        for demand in at_level:
            if demand.sink == source:
                paths[demand.commodity] = (source,)
                continue
            path = _cheapest_support_path(
                working, costs, source, demand.sink, delta, tol
            )
            for u, v in zip(path[:-1], path[1:]):
                new_value = _snap(working[(u, v)] - delta, delta, tol)
                if new_value <= tol:
                    del working[(u, v)]
                else:
                    working[(u, v)] = new_value
            paths[demand.commodity] = path
    return paths
