"""Minimum-cost splittable flows (single-source and multicommodity) via LP.

Two building blocks used throughout the paper's algorithms:

- :func:`min_cost_single_source_flow` — the splittable relaxation at the
  heart of Algorithm 2 (line 1).  Because all commodities share the single
  (virtual) source and costs are per-unit, the per-commodity LP aggregates
  exactly into a standard arc-based min-cost flow with one balance constraint
  per node, which is dramatically cheaper to solve.
- :func:`min_cost_multicommodity_flow` — MMSFP (Section 4.3.2): one
  single-source flow per *commodity group* (in our use, per content item
  rooted at its virtual source), coupled only through shared link capacities.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Mapping
from dataclasses import dataclass, field

import networkx as nx

from repro.exceptions import InfeasibleError, InvalidProblemError
from repro.flow.lp import LPBuilder
from repro.graph.network import CAPACITY, COST

Node = Hashable
Edge = tuple[Node, Node]

_EPS = 1e-9


@dataclass(frozen=True)
class Commodity:
    """A single-source commodity group: ship ``demands[t]`` from ``source`` to each ``t``."""

    name: Hashable
    source: Node
    demands: Mapping[Node, float] = field(default_factory=dict)

    @property
    def total_demand(self) -> float:
        return sum(self.demands.values())


def _validate(graph: nx.DiGraph, source: Node, demands: Mapping[Node, float]) -> None:
    if source not in graph:
        raise InvalidProblemError(f"source {source!r} not in graph")
    for t, d in demands.items():
        if t not in graph:
            raise InvalidProblemError(f"sink {t!r} not in graph")
        if d < 0:
            raise InvalidProblemError(f"negative demand at {t!r}")


def min_cost_single_source_flow(
    graph: nx.DiGraph,
    source: Node,
    demands: Mapping[Node, float],
    *,
    cost_attr: str = COST,
    capacity_attr: str = CAPACITY,
) -> tuple[dict[Edge, float], float]:
    """Cheapest splittable flow shipping ``demands`` from ``source``.

    Returns ``(flow, cost)`` where ``flow[(u, v)]`` is the aggregate amount on
    each link (zero entries omitted).  Raises :class:`InfeasibleError` when
    the demands cannot be routed within link capacities.
    """
    _validate(graph, source, demands)
    demands = {t: d for t, d in demands.items() if d > _EPS}
    if not demands:
        return {}, 0.0

    lp = LPBuilder(sense="min")
    for u, v, data in graph.edges(data=True):
        lp.add_variable(
            ("f", u, v),
            lb=0.0,
            ub=data.get(capacity_attr, math.inf),
            cost=data.get(cost_attr, 1.0),
        )
    total = sum(demands.values())
    for node in graph.nodes:
        balance = {}
        for _, v in graph.out_edges(node):
            balance[("f", node, v)] = balance.get(("f", node, v), 0.0) + 1.0
        for u, _ in graph.in_edges(node):
            balance[("f", u, node)] = balance.get(("f", u, node), 0.0) - 1.0
        if node == source:
            rhs = total - demands.get(node, 0.0)
        else:
            rhs = -demands.get(node, 0.0)
        lp.add_eq(balance, rhs)
    solution = lp.solve()
    flow = {
        (u, v): value
        for (_, u, v), value in solution.values.items()
        if value > _EPS
    }
    return flow, solution.objective


def min_cost_multicommodity_flow(
    graph: nx.DiGraph,
    commodities: list[Commodity],
    *,
    cost_attr: str = COST,
    capacity_attr: str = CAPACITY,
) -> tuple[dict[Hashable, dict[Edge, float]], float]:
    """Cheapest splittable multicommodity flow under shared link capacities.

    Each :class:`Commodity` is itself a single-source/multi-sink group (so a
    content item with many requesters is *one* commodity here — its
    per-requester split is recovered later by path decomposition).  Returns
    ``(flows, cost)`` with ``flows[name][(u, v)]`` the per-commodity loads.
    """
    if not commodities:
        return {}, 0.0
    names = [c.name for c in commodities]
    if len(set(names)) != len(names):
        raise InvalidProblemError("commodity names must be unique")

    lp = LPBuilder(sense="min")
    for commodity in commodities:
        _validate(graph, commodity.source, commodity.demands)
        for u, v, data in graph.edges(data=True):
            lp.add_variable(
                ("f", commodity.name, u, v),
                lb=0.0,
                cost=data.get(cost_attr, 1.0),
            )
    # Shared capacity constraints.
    for u, v, data in graph.edges(data=True):
        cap = data.get(capacity_attr, math.inf)
        if math.isinf(cap):
            continue
        lp.add_le({("f", c.name, u, v): 1.0 for c in commodities}, cap)
    # Per-commodity balance.
    for commodity in commodities:
        demands = {t: d for t, d in commodity.demands.items() if d > _EPS}
        total = sum(demands.values())
        for node in graph.nodes:
            balance = {}
            for _, v in graph.out_edges(node):
                key = ("f", commodity.name, node, v)
                balance[key] = balance.get(key, 0.0) + 1.0
            for u, _ in graph.in_edges(node):
                key = ("f", commodity.name, u, node)
                balance[key] = balance.get(key, 0.0) - 1.0
            if node == commodity.source:
                rhs = total - demands.get(node, 0.0)
            else:
                rhs = -demands.get(node, 0.0)
            lp.add_eq(balance, rhs)
    solution = lp.solve()
    flows: dict[Hashable, dict[Edge, float]] = {c.name: {} for c in commodities}
    for (_, name, u, v), value in solution.values.items():
        if value > _EPS:
            flows[name][(u, v)] = value
    return flows, solution.objective
