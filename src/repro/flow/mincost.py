"""Minimum-cost splittable flows (single-source and multicommodity) via LP.

Two building blocks used throughout the paper's algorithms:

- :func:`min_cost_single_source_flow` — the splittable relaxation at the
  heart of Algorithm 2 (line 1).  Because all commodities share the single
  (virtual) source and costs are per-unit, the per-commodity LP aggregates
  exactly into a standard arc-based min-cost flow with one balance constraint
  per node, which is dramatically cheaper to solve.
- :func:`min_cost_multicommodity_flow` — MMSFP (Section 4.3.2): one
  single-source flow per *commodity group* (in our use, per content item
  rooted at its virtual source), coupled only through shared link capacities.

Both default to the array assembly path (``assembly="array"``): the node-arc
incidence of the graph is materialized once as COO index arrays
(:func:`arc_incidence`, cached per graph object and reused across Algorithm 2
iterations) and the balance/capacity families are registered through
:meth:`~repro.flow.lp.LPBuilder.add_eq_batch` /
:meth:`~repro.flow.lp.LPBuilder.add_le_batch` instead of per-key dict rows.
``assembly="dict"`` keeps the original keyed assembly; both produce
bit-identical LPs (see ``tests/core/test_lp_assembly_parity.py``).
"""

from __future__ import annotations

import math
import weakref
from collections.abc import Hashable, Mapping
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.exceptions import InvalidProblemError
from repro.flow.lp import LPBuilder
from repro.graph.network import CAPACITY, COST

Node = Hashable
Edge = tuple[Node, Node]

_EPS = 1e-9


@dataclass(frozen=True)
class ArcIncidence:
    """Node-arc incidence of a digraph as index arrays for LP assembly.

    ``tail_idx[k]`` / ``head_idx[k]`` are the node indices of edge
    ``edges[k]``; flow conservation at node ``n`` sums ``+f_k`` over edges
    with ``tail_idx[k] == n`` and ``-f_k`` over edges with
    ``head_idx[k] == n``.  The structure is topology-only (costs and
    capacities are read fresh at each solve), so it can be cached per graph
    and reused across Algorithm 2 iterations.
    """

    nodes: tuple[Node, ...]
    edges: tuple[Edge, ...]
    node_index: dict[Node, int] = field(compare=False)
    tail_idx: np.ndarray = field(compare=False)
    head_idx: np.ndarray = field(compare=False)

    @classmethod
    def from_graph(cls, graph: nx.DiGraph) -> "ArcIncidence":
        nodes = tuple(graph.nodes)
        edges = tuple(graph.edges)
        node_index = {v: k for k, v in enumerate(nodes)}
        tail_idx = np.fromiter(
            (node_index[u] for u, _ in edges), dtype=np.intp, count=len(edges)
        )
        head_idx = np.fromiter(
            (node_index[v] for _, v in edges), dtype=np.intp, count=len(edges)
        )
        return cls(
            nodes=nodes,
            edges=edges,
            node_index=node_index,
            tail_idx=tail_idx,
            head_idx=head_idx,
        )


_INCIDENCE_CACHE: "weakref.WeakKeyDictionary[nx.DiGraph, ArcIncidence]" = (
    weakref.WeakKeyDictionary()
)


def arc_incidence(graph: nx.DiGraph) -> ArcIncidence:
    """Cached :class:`ArcIncidence` of ``graph`` (rebuilt if topology changed)."""
    cached = _INCIDENCE_CACHE.get(graph)
    if (
        cached is not None
        and len(cached.nodes) == graph.number_of_nodes()
        and cached.edges == tuple(graph.edges)
    ):
        return cached
    built = ArcIncidence.from_graph(graph)
    try:
        _INCIDENCE_CACHE[graph] = built
    except TypeError:  # pragma: no cover - non-weakrefable graph subclass
        pass
    return built


@dataclass(frozen=True)
class Commodity:
    """A single-source commodity group: ship ``demands[t]`` from ``source`` to each ``t``."""

    name: Hashable
    source: Node
    demands: Mapping[Node, float] = field(default_factory=dict)

    @property
    def total_demand(self) -> float:
        return sum(self.demands.values())


def _validate(graph: nx.DiGraph, source: Node, demands: Mapping[Node, float]) -> None:
    if source not in graph:
        raise InvalidProblemError(f"source {source!r} not in graph")
    for t, d in demands.items():
        if t not in graph:
            raise InvalidProblemError(f"sink {t!r} not in graph")
        if d < 0:
            raise InvalidProblemError(f"negative demand at {t!r}")


def _check_assembly(assembly: str) -> None:
    if assembly not in ("array", "dict"):
        raise InvalidProblemError("assembly must be 'array' or 'dict'")


def _balance_rhs(
    inc: ArcIncidence, source: Node, demands: Mapping[Node, float], total: float
) -> np.ndarray:
    rhs = np.zeros(len(inc.nodes))
    for t, d in demands.items():
        rhs[inc.node_index[t]] = -d
    src = inc.node_index[source]
    rhs[src] = total - demands.get(source, 0.0)
    return rhs


def min_cost_single_source_flow(
    graph: nx.DiGraph,
    source: Node,
    demands: Mapping[Node, float],
    *,
    cost_attr: str = COST,
    capacity_attr: str = CAPACITY,
    assembly: str = "array",
    incidence: ArcIncidence | None = None,
) -> tuple[dict[Edge, float], float]:
    """Cheapest splittable flow shipping ``demands`` from ``source``.

    Returns ``(flow, cost)`` where ``flow[(u, v)]`` is the aggregate amount on
    each link (zero entries omitted).  Raises :class:`InfeasibleError` when
    the demands cannot be routed within link capacities.  ``assembly``
    selects the LP assembly path (``"array"`` COO batches, ``"dict"`` keyed
    rows); ``incidence`` lets callers reuse a prebuilt :class:`ArcIncidence`.
    """
    _check_assembly(assembly)
    _validate(graph, source, demands)
    demands = {t: d for t, d in demands.items() if d > _EPS}
    if not demands:
        return {}, 0.0
    total = sum(demands.values())

    if assembly == "dict":
        lp = LPBuilder(sense="min")
        for u, v, data in graph.edges(data=True):
            lp.add_variable(
                ("f", u, v),
                lb=0.0,
                ub=data.get(capacity_attr, math.inf),
                cost=data.get(cost_attr, 1.0),
            )
        for node in graph.nodes:
            balance = {}
            for _, v in graph.out_edges(node):
                balance[("f", node, v)] = balance.get(("f", node, v), 0.0) + 1.0
            for u, _ in graph.in_edges(node):
                balance[("f", u, node)] = balance.get(("f", u, node), 0.0) - 1.0
            if node == source:
                rhs = total - demands.get(node, 0.0)
            else:
                rhs = -demands.get(node, 0.0)
            lp.add_eq(balance, rhs)
        solution = lp.solve()
        flow = {
            (u, v): value
            for (_, u, v), value in solution.values.items()
            if value > _EPS
        }
        return flow, solution.objective

    inc = incidence if incidence is not None else arc_incidence(graph)
    n_edges = len(inc.edges)
    costs = np.fromiter(
        (d.get(cost_attr, 1.0) for _, _, d in graph.edges(data=True)),
        dtype=np.float64,
        count=n_edges,
    )
    caps = np.fromiter(
        (d.get(capacity_attr, math.inf) for _, _, d in graph.edges(data=True)),
        dtype=np.float64,
        count=n_edges,
    )
    lp = LPBuilder(sense="min")
    fb = lp.add_variable_block("f", (n_edges,), lb=0.0, ub=caps, cost=costs)
    cols = fb.indices()
    lp.add_eq_batch(
        np.concatenate([inc.tail_idx, inc.head_idx]),
        np.concatenate([cols, cols]),
        np.concatenate([np.ones(n_edges), -np.ones(n_edges)]),
        _balance_rhs(inc, source, demands, total),
    )
    solution = lp.solve()
    values = solution.block("f")
    flow = {
        inc.edges[k]: float(values[k]) for k in np.flatnonzero(values > _EPS)
    }
    return flow, solution.objective


def min_cost_multicommodity_flow(
    graph: nx.DiGraph,
    commodities: list[Commodity],
    *,
    cost_attr: str = COST,
    capacity_attr: str = CAPACITY,
    assembly: str = "array",
) -> tuple[dict[Hashable, dict[Edge, float]], float]:
    """Cheapest splittable multicommodity flow under shared link capacities.

    Each :class:`Commodity` is itself a single-source/multi-sink group (so a
    content item with many requesters is *one* commodity here — its
    per-requester split is recovered later by path decomposition).  Returns
    ``(flows, cost)`` with ``flows[name][(u, v)]`` the per-commodity loads.
    """
    _check_assembly(assembly)
    if not commodities:
        return {}, 0.0
    names = [c.name for c in commodities]
    if len(set(names)) != len(names):
        raise InvalidProblemError("commodity names must be unique")

    if assembly == "dict":
        lp = LPBuilder(sense="min")
        for commodity in commodities:
            _validate(graph, commodity.source, commodity.demands)
            for u, v, data in graph.edges(data=True):
                lp.add_variable(
                    ("f", commodity.name, u, v),
                    lb=0.0,
                    cost=data.get(cost_attr, 1.0),
                )
        # Shared capacity constraints.
        for u, v, data in graph.edges(data=True):
            cap = data.get(capacity_attr, math.inf)
            if math.isinf(cap):
                continue
            lp.add_le({("f", c.name, u, v): 1.0 for c in commodities}, cap)
        # Per-commodity balance.
        for commodity in commodities:
            demands = {t: d for t, d in commodity.demands.items() if d > _EPS}
            total = sum(demands.values())
            for node in graph.nodes:
                balance = {}
                for _, v in graph.out_edges(node):
                    key = ("f", commodity.name, node, v)
                    balance[key] = balance.get(key, 0.0) + 1.0
                for u, _ in graph.in_edges(node):
                    key = ("f", commodity.name, u, node)
                    balance[key] = balance.get(key, 0.0) - 1.0
                if node == commodity.source:
                    rhs = total - demands.get(node, 0.0)
                else:
                    rhs = -demands.get(node, 0.0)
                lp.add_eq(balance, rhs)
        solution = lp.solve()
        flows: dict[Hashable, dict[Edge, float]] = {c.name: {} for c in commodities}
        for (_, name, u, v), value in solution.values.items():
            if value > _EPS:
                flows[name][(u, v)] = value
        return flows, solution.objective

    inc = arc_incidence(graph)
    n_edges = len(inc.edges)
    n_comm = len(commodities)
    costs = np.fromiter(
        (d.get(cost_attr, 1.0) for _, _, d in graph.edges(data=True)),
        dtype=np.float64,
        count=n_edges,
    )
    caps = np.fromiter(
        (d.get(capacity_attr, math.inf) for _, _, d in graph.edges(data=True)),
        dtype=np.float64,
        count=n_edges,
    )
    lp = LPBuilder(sense="min")
    offsets = np.empty(n_comm, dtype=np.intp)
    for k, commodity in enumerate(commodities):
        _validate(graph, commodity.source, commodity.demands)
        block = lp.add_variable_block(
            ("f", commodity.name), (n_edges,), lb=0.0, cost=costs
        )
        offsets[k] = block.offset
    # Shared capacity constraints over finitely-capacitated links.
    finite = np.flatnonzero(np.isfinite(caps))
    if finite.size:
        e_rep = np.repeat(finite, n_comm)
        c_rep = np.tile(np.arange(n_comm, dtype=np.intp), finite.size)
        lp.add_le_batch(
            np.repeat(np.arange(finite.size, dtype=np.intp), n_comm),
            offsets[c_rep] + e_rep,
            np.ones(e_rep.size),
            caps[finite],
        )
    # Per-commodity balance.
    edge_cols = np.arange(n_edges, dtype=np.intp)
    ones = np.ones(n_edges)
    for k, commodity in enumerate(commodities):
        demands = {t: d for t, d in commodity.demands.items() if d > _EPS}
        total = sum(demands.values())
        lp.add_eq_batch(
            np.concatenate([inc.tail_idx, inc.head_idx]),
            np.concatenate([offsets[k] + edge_cols, offsets[k] + edge_cols]),
            np.concatenate([ones, -ones]),
            _balance_rhs(inc, commodity.source, demands, total),
        )
    solution = lp.solve()
    flows = {}
    for commodity in commodities:
        values = solution.block(("f", commodity.name))
        flows[commodity.name] = {
            inc.edges[k]: float(values[k]) for k in np.flatnonzero(values > _EPS)
        }
    return flows, solution.objective
