"""Flow substrate: LP solving, min-cost flows, decomposition, unsplittable rounding."""

from repro.flow.lp import (
    DEFAULT_SOLVE_METHODS,
    LPBuilder,
    LPSolution,
    MaterializedLP,
    SolveAttempt,
    SolveReport,
    VariableBlock,
)
from repro.flow.mincost import (
    ArcIncidence,
    Commodity,
    arc_incidence,
    min_cost_multicommodity_flow,
    min_cost_single_source_flow,
)
from repro.flow.decomposition import PathFlow, decompose_single_source_flow
from repro.flow.ssp import min_cost_flow_ssp
from repro.flow.unsplittable import round_to_unsplittable

#: Absolute tolerance used when comparing flow values.
EPS = 1e-9

__all__ = [
    "EPS",
    "LPBuilder",
    "DEFAULT_SOLVE_METHODS",
    "SolveAttempt",
    "SolveReport",
    "LPSolution",
    "MaterializedLP",
    "VariableBlock",
    "ArcIncidence",
    "arc_incidence",
    "Commodity",
    "min_cost_single_source_flow",
    "min_cost_multicommodity_flow",
    "min_cost_flow_ssp",
    "PathFlow",
    "decompose_single_source_flow",
    "round_to_unsplittable",
]
