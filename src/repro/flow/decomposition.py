"""Flow -> path decomposition (the Edmonds-Karp-style conversion of [36]).

Given an aggregate single-source flow and per-sink demands, peel off
source->sink paths until every demand is covered.  Cycles encountered during
the backward walk are canceled (they can only exist through numerical noise
or zero-cost circulation and never carry required flow).

Each peeling step either exhausts a sink's remaining demand or zeroes at
least one link, so a sink receives at most ``|E|`` paths — the property the
paper uses in the proof of Theorem 4.7.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from dataclasses import dataclass

from repro.exceptions import DecompositionError

Node = Hashable
Edge = tuple[Node, Node]

_EPS = 1e-9


@dataclass(frozen=True)
class PathFlow:
    """An amount of flow carried along one concrete node path."""

    path: tuple[Node, ...]
    amount: float

    @property
    def source(self) -> Node:
        return self.path[0]

    @property
    def sink(self) -> Node:
        return self.path[-1]

    def edges(self) -> list[Edge]:
        return list(zip(self.path[:-1], self.path[1:]))


def decompose_single_source_flow(
    flow: Mapping[Edge, float],
    source: Node,
    demands: Mapping[Node, float],
    *,
    tolerance: float = 1e-7,
) -> dict[Node, list[PathFlow]]:
    """Decompose ``flow`` into per-sink path flows covering ``demands``.

    Parameters
    ----------
    flow:
        Aggregate link loads; must conserve flow with excess ``demands[t]``
        at each sink and ``-sum(demands)`` at ``source``.
    tolerance:
        Demand slack that is forgiven (LP solutions carry ~1e-9 noise).

    Raises
    ------
    DecompositionError
        If demands cannot be covered by the given flow.
    """
    residual: dict[Edge, float] = {e: f for e, f in flow.items() if f > _EPS}
    in_map: dict[Node, set[Node]] = {}
    for (u, v) in residual:
        in_map.setdefault(v, set()).add(u)

    def reduce_edge(u: Node, v: Node, amount: float) -> None:
        remaining = residual[(u, v)] - amount
        if remaining <= _EPS:
            del residual[(u, v)]
            in_map[v].discard(u)
        else:
            residual[(u, v)] = remaining

    result: dict[Node, list[PathFlow]] = {t: [] for t in demands}
    max_steps = 50 * (len(flow) + 1) * (len(demands) + 1) + 1000
    steps = 0
    for sink in demands:
        remaining = float(demands[sink])
        if remaining <= tolerance:
            continue
        if sink == source:
            result[sink].append(PathFlow(path=(source,), amount=remaining))
            continue
        while remaining > tolerance:
            steps += 1
            if steps > max_steps:
                raise DecompositionError("path peeling did not terminate")
            walk = [sink]
            position = {sink: 0}
            found = False
            while True:
                current = walk[-1]
                preds = in_map.get(current)
                if not preds:
                    raise DecompositionError(
                        f"flow cannot cover demand at {sink!r}: no inflow at {current!r}"
                    )
                # Deterministic choice: largest residual, ties by repr.
                u = max(preds, key=lambda p: (residual[(p, current)], repr(p)))
                if u == source:
                    walk.append(u)
                    found = True
                    break
                if u in position:
                    # Cancel the cycle u -> ... -> u found in the walk.
                    cycle_nodes = walk[position[u]:] + [u]
                    cycle_edges = [
                        (cycle_nodes[k + 1], cycle_nodes[k])
                        for k in range(len(cycle_nodes) - 1)
                    ]
                    bottleneck = min(residual[e] for e in cycle_edges)
                    for e in cycle_edges:
                        reduce_edge(*e, amount=bottleneck)
                    del walk[position[u] + 1 :]
                    position = {n: k for k, n in enumerate(walk)}
                    continue
                position[u] = len(walk)
                walk.append(u)
            if found:
                path = tuple(reversed(walk))
                edges = list(zip(path[:-1], path[1:]))
                bottleneck = min(residual[e] for e in edges)
                amount = min(bottleneck, remaining)
                for e in edges:
                    reduce_edge(*e, amount=amount)
                remaining -= amount
                result[sink].append(PathFlow(path=path, amount=amount))
    return result


def split_with_removal_quotas(
    paths_by_sink: Mapping[Node, list[PathFlow]],
    commodities: list[tuple[Hashable, Node, float, float]],
    *,
    costs: Mapping[Edge, float] | None = None,
    tolerance: float = 1e-7,
) -> dict[Hashable, list[PathFlow]]:
    """Split per-sink path flows among commodities, steering expensive slices
    toward commodities that will later *remove* them.

    ``commodities`` is ``(commodity_id, sink, demand, removal_quota)`` where
    ``removal_quota = demand - rounded_demand`` is how much flow the caller
    will subsequently trim from the commodity's most expensive paths
    (Algorithm 2, line 4).  Assigning the most expensive slices to the
    commodities with the largest remaining quota maximizes the chance that
    every retained slice is cheap — the premise behind Theorem 4.7's cost
    bound (inequality (30)).

    Falls back to plain greedy assignment when ``costs`` is None.
    """
    if costs is None:
        return split_among_commodities(
            paths_by_sink,
            [(cid, sink, demand) for cid, sink, demand, _q in commodities],
            tolerance=tolerance,
        )

    def cost_of(path: tuple) -> float:
        return sum(costs.get(e, 0.0) for e in zip(path[:-1], path[1:]))

    out: dict[Hashable, list[PathFlow]] = {c[0]: [] for c in commodities}
    by_sink: dict[Node, list[list]] = {}
    for cid, sink, demand, quota in commodities:
        by_sink.setdefault(sink, []).append(
            [cid, float(demand), min(float(quota), float(demand))]
        )
    for sink, members in by_sink.items():
        slices = sorted(
            ([pf.amount, pf.path] for pf in paths_by_sink.get(sink, [])),
            key=lambda slot: cost_of(slot[1]),
            reverse=True,
        )
        # Pass 1 (expensive slices -> quota): consume removal quotas first.
        for slot in slices:
            for member in sorted(members, key=lambda m: -m[2]):
                if slot[0] <= _EPS:
                    break
                take = min(slot[0], member[1], member[2])
                if take <= _EPS:
                    continue
                slot[0] -= take
                member[1] -= take
                member[2] -= take
                out[member[0]].append(PathFlow(path=slot[1], amount=take))
        # Pass 2 (cheapest first): fill remaining demand.
        for slot in reversed(slices):
            for member in members:
                if slot[0] <= _EPS:
                    break
                take = min(slot[0], member[1])
                if take <= _EPS:
                    continue
                slot[0] -= take
                member[1] -= take
                out[member[0]].append(PathFlow(path=slot[1], amount=take))
        for member in members:
            if member[1] > tolerance:
                raise DecompositionError(
                    f"not enough path flow at sink {sink!r} for {member[0]!r}"
                )
    return out


def split_among_commodities(
    paths_by_sink: Mapping[Node, list[PathFlow]],
    commodities: list[tuple[Hashable, Node, float]],
    *,
    tolerance: float = 1e-7,
) -> dict[Hashable, list[PathFlow]]:
    """Split per-sink path flows among commodities sharing that sink.

    ``commodities`` is a list of ``(commodity_id, sink, demand)``.  Several
    request types ``(i, s)`` map to the same physical destination ``s``;
    since they are interchangeable from a routing standpoint, each one is
    greedily assigned slices of the sink's path flows.
    """
    remaining_paths: dict[Node, list[list[float | tuple]]] = {
        t: [[pf.amount, pf.path] for pf in pfs] for t, pfs in paths_by_sink.items()
    }
    out: dict[Hashable, list[PathFlow]] = {}
    for cid, sink, demand in commodities:
        out[cid] = []
        need = float(demand)
        queue = remaining_paths.get(sink, [])
        index = 0
        while need > tolerance and index < len(queue):
            slot = queue[index]
            available = slot[0]
            if available <= _EPS:
                index += 1
                continue
            take = min(available, need)
            slot[0] = available - take
            need -= take
            out[cid].append(PathFlow(path=slot[1], amount=take))
            if slot[0] <= _EPS:
                index += 1
        if need > tolerance:
            raise DecompositionError(
                f"not enough path flow at sink {sink!r} for commodity {cid!r}"
            )
    return out
