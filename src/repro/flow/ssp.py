"""Combinatorial min-cost flow: successive shortest paths with potentials.

An alternative engine to the LP of :mod:`repro.flow.mincost` for the
single-source splittable flows at the heart of Algorithm 2.  The classic
algorithm maintains Johnson potentials so every augmentation is a plain
Dijkstra run on reduced costs:

1. start from the zero flow and potentials = shortest-path distances;
2. repeatedly send flow from the source to the nearest sink with unmet
   demand along a shortest path of the residual network;
3. update potentials with the new distances.

With nonnegative costs this returns an exact optimum.  It solves the
paper-scale instances noticeably faster than the LP (see
``benchmarks/bench_ablation_flow_engine.py``) and serves as an independent
cross-check of the LP solver in the property tests.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Hashable, Mapping

import networkx as nx

from repro.exceptions import InfeasibleError, InvalidProblemError
from repro.graph.network import CAPACITY, COST

Node = Hashable
Edge = tuple[Node, Node]

_EPS = 1e-9


def min_cost_flow_ssp(
    graph: nx.DiGraph,
    source: Node,
    demands: Mapping[Node, float],
    *,
    cost_attr: str = COST,
    capacity_attr: str = CAPACITY,
) -> tuple[dict[Edge, float], float]:
    """Exact min-cost single-source flow by successive shortest paths.

    Same contract as :func:`repro.flow.mincost.min_cost_single_source_flow`.
    """
    if source not in graph:
        raise InvalidProblemError(f"source {source!r} not in graph")
    remaining: dict[Node, float] = {}
    for sink, demand in demands.items():
        if sink not in graph:
            raise InvalidProblemError(f"sink {sink!r} not in graph")
        if demand < 0:
            raise InvalidProblemError("demands must be nonnegative")
        if sink != source and demand > _EPS:
            remaining[sink] = float(demand)
    flow: dict[Edge, float] = {}
    if not remaining:
        return flow, 0.0

    costs = {
        (u, v): data.get(cost_attr, 1.0) for u, v, data in graph.edges(data=True)
    }
    caps = {
        (u, v): data.get(capacity_attr, math.inf)
        for u, v, data in graph.edges(data=True)
    }
    if any(c < 0 for c in costs.values()):
        raise InvalidProblemError("costs must be nonnegative")
    in_edges: dict[Node, list[Node]] = {v: [] for v in graph.nodes}
    out_edges: dict[Node, list[Node]] = {v: [] for v in graph.nodes}
    for (u, v) in costs:
        out_edges[u].append(v)
        in_edges[v].append(u)
        flow[(u, v)] = 0.0

    potential: dict[Node, float] = {v: 0.0 for v in graph.nodes}

    counter = itertools.count()
    while remaining:
        # Dijkstra on reduced costs over the residual network.
        dist: dict[Node, float] = {source: 0.0}
        pred: dict[Node, tuple[Edge, int]] = {}
        done: set[Node] = set()
        heap = [(0.0, next(counter), source)]
        while heap:
            d, _, u = heapq.heappop(heap)
            if u in done:
                continue
            done.add(u)
            for v in out_edges[u]:
                if caps[(u, v)] - flow[(u, v)] > _EPS and v not in done:
                    reduced = costs[(u, v)] + potential[u] - potential[v]
                    nd = d + max(reduced, 0.0)
                    if nd < dist.get(v, math.inf) - 1e-15:
                        dist[v] = nd
                        pred[v] = ((u, v), +1)
                        heapq.heappush(heap, (nd, next(counter), v))
            for v in in_edges[u]:
                if flow[(v, u)] > _EPS and v not in done:
                    reduced = -costs[(v, u)] + potential[u] - potential[v]
                    nd = d + max(reduced, 0.0)
                    if nd < dist.get(v, math.inf) - 1e-15:
                        dist[v] = nd
                        pred[v] = ((v, u), -1)
                        heapq.heappush(heap, (nd, next(counter), v))

        target = None
        best = math.inf
        for sink in remaining:
            d = dist.get(sink, math.inf)
            if d < best:
                best, target = d, sink
        if target is None:
            raise InfeasibleError("remaining demand is unreachable within capacities")

        # Trace the augmenting path and its bottleneck.
        path: list[tuple[Edge, int]] = []
        node = target
        while node != source:
            edge, direction = pred[node]
            path.append((edge, direction))
            node = edge[0] if direction > 0 else edge[1]
        bottleneck = remaining[target]
        for edge, direction in path:
            if direction > 0:
                bottleneck = min(bottleneck, caps[edge] - flow[edge])
            else:
                bottleneck = min(bottleneck, flow[edge])
        for edge, direction in path:
            flow[edge] += direction * bottleneck
            if flow[edge] < 0:
                flow[edge] = 0.0
        remaining[target] -= bottleneck
        if remaining[target] <= _EPS:
            del remaining[target]
        for v, d in dist.items():
            potential[v] += d

    total_cost = sum(costs[e] * f for e, f in flow.items() if f > _EPS)
    return {e: f for e, f in flow.items() if f > _EPS}, total_cost
