"""Prediction-quality metrics (for Fig. 4-style evaluation).

Standard point-forecast errors plus Gaussian-interval coverage, so the GPR
demand predictor can be scored the way forecasting papers do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import PredictionError


def _validate(truth: np.ndarray, predicted: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    truth = np.asarray(truth, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if truth.shape != predicted.shape or truth.size == 0:
        raise PredictionError("truth and prediction must be same-shaped, nonempty")
    return truth, predicted


def mape(truth: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute percentage error (truth must be positive)."""
    truth, predicted = _validate(truth, predicted)
    if (truth <= 0).any():
        raise PredictionError("MAPE needs strictly positive truth values")
    return float(np.mean(np.abs(predicted - truth) / truth))


def rmse(truth: np.ndarray, predicted: np.ndarray) -> float:
    """Root mean squared error."""
    truth, predicted = _validate(truth, predicted)
    return float(np.sqrt(np.mean((predicted - truth) ** 2)))


def mae(truth: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute error."""
    truth, predicted = _validate(truth, predicted)
    return float(np.mean(np.abs(predicted - truth)))


def interval_coverage(
    truth: np.ndarray,
    mean: np.ndarray,
    std: np.ndarray,
    *,
    z: float = 1.96,
) -> float:
    """Fraction of truths inside the +-z*std Gaussian band (0.95 nominal)."""
    truth, mean = _validate(truth, mean)
    std = np.asarray(std, dtype=float)
    if std.shape != truth.shape or (std < 0).any():
        raise PredictionError("std must be same-shaped and nonnegative")
    inside = np.abs(truth - mean) <= z * std
    return float(np.mean(inside))


@dataclass(frozen=True)
class ForecastScore:
    """All metrics of one forecast in one record."""

    mape: float
    rmse: float
    mae: float
    coverage_95: float | None


def score_forecast(
    truth: np.ndarray,
    predicted: np.ndarray,
    std: np.ndarray | None = None,
) -> ForecastScore:
    """Bundle the point metrics (and coverage when a std is available)."""
    return ForecastScore(
        mape=mape(truth, predicted),
        rmse=rmse(truth, predicted),
        mae=mae(truth, predicted),
        coverage_95=(
            None if std is None else interval_coverage(truth, predicted, std)
        ),
    )
