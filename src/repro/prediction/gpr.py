"""Gaussian-process regression with maximum-marginal-likelihood fitting.

A from-scratch replacement for the scikit-learn GPR the paper uses for
demand prediction: Cholesky-based exact inference, log-marginal-likelihood
hyperparameter optimization with L-BFGS-B and random restarts, and target
normalization.  Gradients are approximated by finite differences — model
sizes here (a few hundred training hours) keep that comfortably cheap.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg
from scipy.optimize import minimize

from repro.exceptions import PredictionError
from repro.prediction.kernels import Kernel, paper_kernel

_JITTER = 1e-10
#: Jitter escalation ceiling for the final Cholesky in :meth:`fit`.
_MAX_JITTER = 1e-2


def _stable_cholesky(k: np.ndarray, *, jitter: float = _JITTER) -> np.ndarray:
    """Lower Cholesky of ``k + jitter * I`` with jitter escalation.

    A marginal-likelihood optimum can sit arbitrarily close to a singular
    kernel matrix (e.g. a length-scale so large that all inputs become
    indistinguishable); instead of letting ``LinAlgError`` escape, retry
    with a 10x larger diagonal until ``_MAX_JITTER`` (scaled by the kernel's
    diagonal magnitude) and raise :class:`PredictionError` beyond that.
    """
    scale = max(1.0, float(np.mean(np.diag(k))))
    eye = np.eye(len(k))
    while jitter <= _MAX_JITTER * scale:
        try:
            return linalg.cholesky(k + jitter * eye, lower=True)
        except linalg.LinAlgError:
            jitter *= 10.0
    raise PredictionError(
        "kernel matrix is not positive definite even with jitter "
        f"{_MAX_JITTER * scale:g}; the optimized hyperparameters are "
        "degenerate for this training set"
    )


class GaussianProcessRegressor:
    """Exact GP regression: fit hyperparameters, predict mean and std.

    Parameters
    ----------
    kernel:
        Covariance kernel (defaults to the paper's
        ``constant * (RBF + periodic) + white``).
    n_restarts:
        Extra random restarts of the marginal-likelihood optimization.
    normalize_y:
        Standardize targets before fitting (recommended for view counts).
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        *,
        n_restarts: int = 2,
        normalize_y: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.kernel = kernel or paper_kernel()
        self.n_restarts = int(n_restarts)
        self.normalize_y = normalize_y
        self._rng = rng or np.random.default_rng(0)
        self._x: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0

    # ------------------------------------------------------------------

    def log_marginal_likelihood(self, theta: np.ndarray | None = None) -> float:
        """LML of the training data under hyperparameters ``theta``.

        Evaluating at an explicit ``theta`` is side-effect free: the
        kernel's hyperparameters are restored afterwards, so exploratory
        evaluations cannot corrupt a fitted model.
        """
        if self._x is None:
            raise PredictionError("call fit() first")
        if theta is None:
            return self._lml()
        previous = self.kernel.theta.copy()
        self.kernel.theta = np.asarray(theta, dtype=float)
        try:
            return self._lml()
        finally:
            self.kernel.theta = previous

    def _lml(self) -> float:
        """LML of the training data under the kernel's current theta."""
        k = self.kernel(self._x) + _JITTER * np.eye(len(self._x))
        try:
            chol = linalg.cholesky(k, lower=True)
        except linalg.LinAlgError:
            return -np.inf
        alpha = linalg.cho_solve((chol, True), self._y_train)
        lml = -0.5 * float(self._y_train @ alpha)
        lml -= float(np.sum(np.log(np.diag(chol))))
        lml -= 0.5 * len(self._x) * np.log(2 * np.pi)
        return lml

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Fit hyperparameters by maximizing the log marginal likelihood."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim == 1:
            x = x[:, None]
        if len(x) != len(y):
            raise PredictionError("x and y must have the same length")
        if len(x) < 2:
            raise PredictionError("need at least 2 training points")
        self._x = x
        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std()) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._y_train = (y - self._y_mean) / self._y_std

        bounds = self.kernel.bounds

        def objective(theta):
            return -self.log_marginal_likelihood(theta)

        candidates = [self.kernel.theta.copy()]
        for _ in range(self.n_restarts):
            candidates.append(
                np.array([self._rng.uniform(lo, hi) for lo, hi in bounds])
            )
        best_theta, best_value = None, np.inf
        for start in candidates:
            result = minimize(
                objective,
                start,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": 60},
            )
            if result.fun < best_value:
                best_theta, best_value = result.x, result.fun
        if best_theta is None or not np.isfinite(best_value):
            raise PredictionError("marginal likelihood optimization failed")
        self.kernel.theta = best_theta

        k = self.kernel(self._x)
        self._chol = _stable_cholesky(k)
        self._alpha = linalg.cho_solve((self._chol, True), self._y_train)
        return self

    def predict(
        self, x_star: np.ndarray, *, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and optionally std) at the query points."""
        if self._alpha is None or self._x is None or self._chol is None:
            raise PredictionError("call fit() first")
        x_star = np.asarray(x_star, dtype=float)
        if x_star.ndim == 1:
            x_star = x_star[:, None]
        k_star = self.kernel(x_star, self._x)
        mean = k_star @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = linalg.solve_triangular(self._chol, k_star.T, lower=True)
        prior_var = np.diag(self.kernel(x_star)).copy()
        var = np.maximum(prior_var - np.sum(v**2, axis=0), 0.0)
        return mean, np.sqrt(var) * self._y_std


class DemandPredictor:
    """Hour-ahead request-rate prediction, batched as in the paper.

    The paper predicts "five hours at a time, then retrain[s] the model
    using the cumulative history" (footnote 6).  ``predict_series`` walks a
    full view series that way and returns the predicted evaluation window.
    """

    def __init__(
        self,
        *,
        train_hours: int = 550,
        batch_hours: int = 5,
        history_window: int | None = 200,
        n_restarts: int = 1,
        seed: int = 0,
    ) -> None:
        if train_hours < 2:
            raise PredictionError("train_hours must be >= 2")
        self.train_hours = train_hours
        self.batch_hours = max(1, batch_hours)
        #: Cap on the history length used per refit (None = cumulative, as in
        #: the paper; a window keeps the O(n^3) Cholesky cheap in benches).
        self.history_window = history_window
        self.n_restarts = n_restarts
        self.seed = seed

    def predict_series(self, series: np.ndarray, eval_hours: int) -> np.ndarray:
        """Predict ``series[train_hours : train_hours + eval_hours]``.

        ``series`` must contain at least ``train_hours + eval_hours`` values;
        the prediction for each 5-hour batch uses only hours before it.
        """
        series = np.asarray(series, dtype=float)
        if len(series) < self.train_hours + eval_hours:
            raise PredictionError("series shorter than train + eval window")
        out = np.empty(eval_hours)
        t = self.train_hours
        produced = 0
        rng = np.random.default_rng(self.seed)
        while produced < eval_hours:
            batch = min(self.batch_hours, eval_hours - produced)
            start = 0 if self.history_window is None else max(0, t - self.history_window)
            x_train = np.arange(start, t, dtype=float)
            y_train = series[start:t]
            gpr = GaussianProcessRegressor(
                n_restarts=self.n_restarts,
                rng=np.random.default_rng(int(rng.integers(2**31))),
            )
            gpr.fit(x_train, y_train)
            x_star = np.arange(t, t + batch, dtype=float)
            pred = gpr.predict(x_star)
            floor = max(1e-6, float(y_train.min()) * 1e-3)
            out[produced : produced + batch] = np.maximum(pred, floor)
            t += batch
            produced += batch
        return out
