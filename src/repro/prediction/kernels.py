"""Covariance kernels for Gaussian-process regression.

The paper predicts hourly request rates with scikit-learn's GPR using
"white noise, periodic, and radial-basis function kernels" (Section 6);
scikit-learn is not a dependency here, so the kernel algebra is implemented
from scratch: RBF, ExpSineSquared (periodic), White, Constant, and Sum /
Product composition.  Hyperparameters live in log space (``theta``) so the
marginal-likelihood optimizer works on an unconstrained-ish scale.
"""

from __future__ import annotations

import numpy as np


def _as_2d(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=float)
    if x.ndim == 1:
        x = x[:, None]
    return x


def _sqdist(x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
    return np.sum((x1[:, None, :] - x2[None, :, :]) ** 2, axis=-1)


class Kernel:
    """Base class: callable covariance with log-space hyperparameters."""

    def __call__(self, x1: np.ndarray, x2: np.ndarray | None = None) -> np.ndarray:
        raise NotImplementedError

    @property
    def theta(self) -> np.ndarray:
        """Log-hyperparameters (flattened)."""
        raise NotImplementedError

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        raise NotImplementedError

    @property
    def bounds(self) -> list[tuple[float, float]]:
        """Log-space box bounds, one pair per theta entry."""
        raise NotImplementedError

    def __add__(self, other: "Kernel") -> "Sum":
        return Sum(self, other)

    def __mul__(self, other: "Kernel") -> "Product":
        return Product(self, other)


class RBF(Kernel):
    """Squared-exponential kernel ``exp(-d^2 / (2 l^2))``."""

    def __init__(
        self, length_scale: float = 1.0, length_scale_bounds=(1e-2, 1e4)
    ) -> None:
        self.length_scale = float(length_scale)
        self._bounds = length_scale_bounds

    def __call__(self, x1, x2=None):
        x1 = _as_2d(x1)
        x2 = x1 if x2 is None else _as_2d(x2)
        return np.exp(-0.5 * _sqdist(x1, x2) / self.length_scale**2)

    @property
    def theta(self):
        return np.array([np.log(self.length_scale)])

    @theta.setter
    def theta(self, value):
        self.length_scale = float(np.exp(value[0]))

    @property
    def bounds(self):
        lo, hi = self._bounds
        return [(np.log(lo), np.log(hi))]


class Periodic(Kernel):
    """ExpSineSquared kernel ``exp(-2 sin^2(pi d / p) / l^2)``.

    The period defaults to 24 (hours): the diurnal cycle of view counts.
    """

    def __init__(
        self,
        length_scale: float = 1.0,
        period: float = 24.0,
        length_scale_bounds=(1e-2, 1e4),
        period_bounds=(1.0, 1e3),
    ) -> None:
        self.length_scale = float(length_scale)
        self.period = float(period)
        self._ls_bounds = length_scale_bounds
        self._p_bounds = period_bounds

    def __call__(self, x1, x2=None):
        x1 = _as_2d(x1)
        x2 = x1 if x2 is None else _as_2d(x2)
        d = np.sqrt(np.maximum(_sqdist(x1, x2), 0.0))
        return np.exp(-2.0 * np.sin(np.pi * d / self.period) ** 2 / self.length_scale**2)

    @property
    def theta(self):
        return np.array([np.log(self.length_scale), np.log(self.period)])

    @theta.setter
    def theta(self, value):
        self.length_scale = float(np.exp(value[0]))
        self.period = float(np.exp(value[1]))

    @property
    def bounds(self):
        return [
            (np.log(self._ls_bounds[0]), np.log(self._ls_bounds[1])),
            (np.log(self._p_bounds[0]), np.log(self._p_bounds[1])),
        ]


class White(Kernel):
    """White-noise kernel: ``sigma^2 I`` on identical inputs, 0 elsewhere."""

    def __init__(self, noise_level: float = 1.0, noise_level_bounds=(1e-8, 1e2)):
        self.noise_level = float(noise_level)
        self._bounds = noise_level_bounds

    def __call__(self, x1, x2=None):
        x1 = _as_2d(x1)
        if x2 is None:
            return self.noise_level * np.eye(len(x1))
        return np.zeros((len(x1), len(_as_2d(x2))))

    @property
    def theta(self):
        return np.array([np.log(self.noise_level)])

    @theta.setter
    def theta(self, value):
        self.noise_level = float(np.exp(value[0]))

    @property
    def bounds(self):
        lo, hi = self._bounds
        return [(np.log(lo), np.log(hi))]


class Constant(Kernel):
    """Constant variance kernel (an output scale when multiplied in)."""

    def __init__(self, value: float = 1.0, value_bounds=(1e-4, 1e4)):
        self.value = float(value)
        self._bounds = value_bounds

    def __call__(self, x1, x2=None):
        x1 = _as_2d(x1)
        n2 = len(x1) if x2 is None else len(_as_2d(x2))
        return np.full((len(x1), n2), self.value)

    @property
    def theta(self):
        return np.array([np.log(self.value)])

    @theta.setter
    def theta(self, value):
        self.value = float(np.exp(value[0]))

    @property
    def bounds(self):
        lo, hi = self._bounds
        return [(np.log(lo), np.log(hi))]


class _Composite(Kernel):
    def __init__(self, left: Kernel, right: Kernel) -> None:
        self.left = left
        self.right = right

    @property
    def theta(self):
        return np.concatenate([self.left.theta, self.right.theta])

    @theta.setter
    def theta(self, value):
        k = len(self.left.theta)
        self.left.theta = value[:k]
        self.right.theta = value[k:]

    @property
    def bounds(self):
        return self.left.bounds + self.right.bounds


class Sum(_Composite):
    def __call__(self, x1, x2=None):
        return self.left(x1, x2) + self.right(x1, x2)


class Product(_Composite):
    def __call__(self, x1, x2=None):
        return self.left(x1, x2) * self.right(x1, x2)


def paper_kernel() -> Kernel:
    """The paper's kernel: constant * (RBF + periodic) + white noise."""
    return Constant(1.0) * (RBF(24.0) + Periodic(1.0, 24.0)) + White(0.1)
