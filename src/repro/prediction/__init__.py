"""Demand prediction: Gaussian-process regression with the paper's kernel."""

from repro.prediction.gpr import DemandPredictor, GaussianProcessRegressor
from repro.prediction.metrics import (
    ForecastScore,
    interval_coverage,
    mae,
    mape,
    rmse,
    score_forecast,
)
from repro.prediction.kernels import (
    RBF,
    Constant,
    Kernel,
    Periodic,
    Product,
    Sum,
    White,
    paper_kernel,
)

__all__ = [
    "GaussianProcessRegressor",
    "DemandPredictor",
    "Kernel",
    "RBF",
    "Periodic",
    "White",
    "Constant",
    "Sum",
    "Product",
    "paper_kernel",
    "mape",
    "rmse",
    "mae",
    "interval_coverage",
    "score_forecast",
    "ForecastScore",
]
