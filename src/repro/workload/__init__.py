"""Workload substrate: catalogs, traces, request matrices, Zipf, regimes."""

from repro.workload.catalog import (
    TABLE1_VIDEOS,
    CatalogSpec,
    Video,
    chunk_level_catalog,
    file_level_catalog,
    top_videos,
)
from repro.workload.requests import (
    DemandReport,
    build_demand,
    build_demand_report,
    edge_node_shares,
    perturb_demand,
    total_chunk_rate,
)
from repro.workload.statistics import (
    TraceSummary,
    autocorrelation,
    demand_concentration,
    fit_zipf_exponent,
    peak_to_mean_ratio,
    per_node_demand,
    summarize_trace,
)
from repro.workload.nonstationary import (
    CompositeRegime,
    DiurnalCycle,
    FlashCrowd,
    PopularityChurn,
    WorkloadRegime,
)
from repro.workload.trace import (
    TraceConfig,
    ViewTrace,
    split_train_eval,
    synthesize_trace,
)
from repro.workload.zipf import zipf_demand, zipf_popularity

__all__ = [
    "Video",
    "TABLE1_VIDEOS",
    "top_videos",
    "CatalogSpec",
    "chunk_level_catalog",
    "file_level_catalog",
    "ViewTrace",
    "TraceConfig",
    "synthesize_trace",
    "split_train_eval",
    "edge_node_shares",
    "DemandReport",
    "build_demand",
    "build_demand_report",
    "total_chunk_rate",
    "perturb_demand",
    "zipf_demand",
    "zipf_popularity",
    "TraceSummary",
    "summarize_trace",
    "fit_zipf_exponent",
    "peak_to_mean_ratio",
    "autocorrelation",
    "demand_concentration",
    "per_node_demand",
    "WorkloadRegime",
    "FlashCrowd",
    "DiurnalCycle",
    "PopularityChurn",
    "CompositeRegime",
]
