"""Workload statistics: popularity skew, temporal shape, demand summaries.

Utilities for characterizing a trace or a request matrix the way the
caching literature does — Zipf exponent of the popularity law, peak-to-mean
ratio of the diurnal cycle, demand concentration — used by the trace bench
and handy when swapping in one's own workload.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.problem import Request
from repro.exceptions import InvalidProblemError
from repro.workload.trace import ViewTrace


@dataclass(frozen=True)
class TraceSummary:
    """Headline statistics of a view trace."""

    num_videos: int
    num_hours: int
    total_views: float
    zipf_alpha: float
    peak_to_mean: float
    diurnal_autocorrelation: float


def fit_zipf_exponent(popularity: np.ndarray) -> float:
    """Least-squares Zipf exponent of a popularity vector.

    Fits ``log(count_k) ~ -alpha * log(rank_k)`` over the positive entries;
    the returned ``alpha`` is the slope magnitude (0 = uniform).
    """
    counts = np.sort(np.asarray(popularity, dtype=float))[::-1]
    counts = counts[counts > 0]
    if len(counts) < 2:
        raise InvalidProblemError("need at least 2 positive popularity values")
    ranks = np.arange(1, len(counts) + 1, dtype=float)
    slope, _intercept = np.polyfit(np.log(ranks), np.log(counts), 1)
    return float(-slope)


def peak_to_mean_ratio(series: np.ndarray) -> float:
    """Peak-hour to mean-hour ratio of one time series."""
    series = np.asarray(series, dtype=float)
    if series.size == 0 or series.mean() <= 0:
        raise InvalidProblemError("series must be nonempty and positive on average")
    return float(series.max() / series.mean())


def autocorrelation(series: np.ndarray, lag: int) -> float:
    """Normalized autocorrelation at the given lag."""
    series = np.asarray(series, dtype=float)
    if lag <= 0 or lag >= len(series):
        raise InvalidProblemError("lag must be in (0, len(series))")
    x = (series - series.mean()) / (series.std() or 1.0)
    return float(np.mean(x[:-lag] * x[lag:]))


def summarize_trace(trace: ViewTrace) -> TraceSummary:
    """Compute the headline statistics of a trace (aggregate over videos)."""
    totals = trace.views.sum(axis=0)
    aggregate = trace.views.sum(axis=1)
    return TraceSummary(
        num_videos=len(trace.videos),
        num_hours=trace.num_hours,
        total_views=float(totals.sum()),
        zipf_alpha=fit_zipf_exponent(totals),
        peak_to_mean=peak_to_mean_ratio(aggregate),
        diurnal_autocorrelation=autocorrelation(aggregate, 24)
        if trace.num_hours > 24
        else float("nan"),
    )


def demand_concentration(demand: Mapping[Request, float], top_fraction: float = 0.1) -> float:
    """Share of total demand carried by the busiest ``top_fraction`` requests."""
    if not 0 < top_fraction <= 1:
        raise InvalidProblemError("top_fraction must be in (0, 1]")
    rates = np.sort(np.array(list(demand.values()), dtype=float))[::-1]
    if rates.size == 0:
        raise InvalidProblemError("demand is empty")
    k = max(1, int(round(top_fraction * rates.size)))
    return float(rates[:k].sum() / rates.sum())


def per_node_demand(demand: Mapping[Request, float]) -> dict:
    """Total request rate per requesting node."""
    out: dict = {}
    for (_item, node), rate in demand.items():
        out[node] = out.get(node, 0.0) + rate
    return out
