"""Zipf-distributed synthetic demand (the workload of the conference version).

The preliminary ICDCS'22 evaluation generated requests from a Zipf
popularity law, the standard model for content catalogs; we keep it for
synthetic sweeps and unit tests where trace realism is unnecessary.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.core.problem import Request
from repro.exceptions import InvalidProblemError

Node = Hashable


def zipf_popularity(num_items: int, alpha: float = 0.8) -> np.ndarray:
    """Normalized Zipf weights over ranks ``k = 1..num_items``: p_k ~ 1 / k^alpha."""
    if num_items < 1:
        raise InvalidProblemError("need at least one item")
    if alpha < 0:
        raise InvalidProblemError("alpha must be nonnegative")
    ranks = np.arange(1, num_items + 1, dtype=float)
    weights = ranks**-alpha
    return weights / weights.sum()


def zipf_demand(
    items: Sequence[Hashable],
    edge_nodes: Sequence[Node],
    *,
    total_rate: float,
    alpha: float = 0.8,
    rng: np.random.Generator | None = None,
) -> dict[Request, float]:
    """Zipf demand of total volume ``total_rate`` spread over edge nodes.

    Item popularity follows Zipf(alpha); each item's demand is split over the
    edge nodes with Dirichlet weights (randomly, as in Section 6).

    Per-request rates below ``1e-12`` are dropped, so the returned rates can
    sum to slightly less than ``total_rate`` (long catalog tails produce
    vanishing rates that would only add LP columns without affecting cost).
    """
    if total_rate <= 0:
        raise InvalidProblemError("total_rate must be positive")
    if not edge_nodes:
        raise InvalidProblemError("need at least one edge node")
    rng = rng or np.random.default_rng()
    popularity = zipf_popularity(len(items), alpha)
    demand: dict[Request, float] = {}
    for item, p in zip(items, popularity):
        weights = rng.dirichlet(np.ones(len(edge_nodes)))
        for node, w in zip(edge_nodes, weights):
            rate = total_rate * float(p) * float(w)
            if rate > 1e-12:
                demand[(item, node)] = rate
    return demand
