"""Request-matrix construction: spread video demand over edge nodes.

The paper "randomly distribute[s] the requests for each video among the edge
nodes"; a video request at chunk level expands into one request per chunk
(the application layer reassembles chunks, Section 6).  Fig. 13 additionally
needs synthetically perturbed demand to study sensitivity to prediction
error.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.problem import Request
from repro.exceptions import InvalidProblemError
from repro.workload.catalog import CatalogSpec

Node = Hashable


def edge_node_shares(
    edge_nodes: Sequence[Node],
    video_ids: Sequence[str],
    rng: np.random.Generator,
) -> dict[str, np.ndarray]:
    """Random per-video distribution weights over edge nodes (Dirichlet)."""
    if not edge_nodes:
        raise InvalidProblemError("need at least one edge node")
    return {
        vid: rng.dirichlet(np.ones(len(edge_nodes)))
        for vid in video_ids
    }


@dataclass(frozen=True)
class DemandReport:
    """Result of :func:`build_demand_report`: demand plus cutoff accounting.

    ``dropped_mass`` is in item-request rate units (the same unit as
    :func:`total_chunk_rate`), so demand conservation is checkable as
    ``sum(demand.values()) + dropped_mass == total_chunk_rate(...)``.
    """

    demand: dict[Request, float]
    #: Item-request rate lost to the ``min_rate`` cutoff.
    dropped_mass: float
    #: Number of ``(item, node)`` entries suppressed by the cutoff.
    dropped_entries: int


def build_demand_report(
    video_rates: Mapping[str, float],
    catalog: CatalogSpec,
    edge_nodes: Sequence[Node],
    shares: Mapping[str, np.ndarray],
    *,
    min_rate: float = 1e-9,
) -> DemandReport:
    """Expand per-video rates into per-(item, edge-node) request rates.

    A video viewed ``r`` times per hour at an edge node generates ``r``
    requests per hour for *each* of its items (all chunks at chunk level, the
    single file at file level).

    Cutoff contract (mirrors ``zipf_demand``'s documented 1e-12 rule): a
    per-node rate at or below ``min_rate`` is dropped — vanishing rates only
    add LP columns without affecting cost — so the returned rates can sum to
    slightly less than the video rates imply.  Unlike the old silent drop,
    the lost mass is accounted: it is returned as ``dropped_mass`` (in
    item-request units) alongside the demand.
    """
    demand: dict[Request, float] = {}
    dropped_mass = 0.0
    dropped_entries = 0
    for vid, rate in video_rates.items():
        if vid not in catalog.item_of_video:
            raise InvalidProblemError(f"video {vid!r} not in catalog spec")
        weights = shares[vid]
        if len(weights) != len(edge_nodes):
            raise InvalidProblemError("share vector does not match edge nodes")
        items = catalog.item_of_video[vid]
        for node, weight in zip(edge_nodes, weights):
            node_rate = rate * float(weight)
            if node_rate <= min_rate:
                dropped_mass += node_rate * len(items)
                dropped_entries += len(items)
                continue
            for item in items:
                demand[(item, node)] = demand.get((item, node), 0.0) + node_rate
    return DemandReport(
        demand=demand, dropped_mass=dropped_mass, dropped_entries=dropped_entries
    )


def build_demand(
    video_rates: Mapping[str, float],
    catalog: CatalogSpec,
    edge_nodes: Sequence[Node],
    shares: Mapping[str, np.ndarray],
    *,
    min_rate: float = 1e-9,
    strict: bool = False,
) -> dict[Request, float]:
    """Demand-only wrapper around :func:`build_demand_report`.

    ``strict=True`` raises :class:`InvalidProblemError` if the ``min_rate``
    cutoff dropped any demand mass, for callers that must conserve the video
    rates exactly; the default tolerates the documented cutoff but the
    dropped mass is always available via :func:`build_demand_report`.
    """
    report = build_demand_report(
        video_rates, catalog, edge_nodes, shares, min_rate=min_rate
    )
    if strict and report.dropped_mass > 0.0:
        raise InvalidProblemError(
            f"min_rate={min_rate:g} cutoff dropped {report.dropped_entries} "
            f"demand entries totalling {report.dropped_mass:g} item-requests/"
            "hour; lower min_rate or use build_demand_report()"
        )
    return report.demand


def total_chunk_rate(
    video_rates: Mapping[str, float], catalog: CatalogSpec
) -> float:
    """Total item-request rate (the paper's 'chunks/hour' denominator)."""
    return sum(
        rate * len(catalog.item_of_video[vid])
        for vid, rate in video_rates.items()
    )


def perturb_demand(
    demand: Mapping[Request, float],
    sigma: float,
    rng: np.random.Generator,
    *,
    relative: bool = True,
) -> dict[Request, float]:
    """Synthetic prediction error for Fig. 13: N(0, sigma^2) noise per rate.

    ``relative=True`` scales the noise by each rate (so ``sigma`` is the
    relative RMS error); rates are clipped to stay positive.
    """
    if sigma < 0:
        raise InvalidProblemError("sigma must be nonnegative")
    out: dict[Request, float] = {}
    for request, rate in demand.items():
        scale = rate if relative else 1.0
        noisy = rate + float(rng.normal(0.0, sigma)) * scale
        out[request] = max(noisy, rate * 1e-3)
    return out
