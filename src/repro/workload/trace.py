"""Synthetic view traces reproducing the statistics of the paper's Table 1.

The authors collected #views/hour of the top YouTube videos over 100
consecutive hours (plus 550 training hours).  We substitute a synthetic
trace whose per-video totals over the evaluation window equal Table 1
exactly, with the diurnal shape visible in the paper's Fig. 4: a smooth
daily cycle plus a slow trend and multiplicative noise.

The caching/routing algorithms only consume per-hour request rates, so any
trace with matching marginals and similar temporal smoothness exercises the
same code paths — including the realism of Gaussian-process demand
prediction (whose errors grow with the noise level configured here).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.catalog import TABLE1_VIDEOS, Video


@dataclass
class ViewTrace:
    """Hourly view counts: ``views[t, k]`` = #views of ``videos[k]`` in hour t."""

    videos: tuple[Video, ...]
    views: np.ndarray

    def __post_init__(self) -> None:
        if self.views.shape != (self.views.shape[0], len(self.videos)):
            raise ValueError("views must be (hours, n_videos)")

    @property
    def num_hours(self) -> int:
        return int(self.views.shape[0])

    def series(self, video_id: str) -> np.ndarray:
        for k, video in enumerate(self.videos):
            if video.video_id == video_id:
                return self.views[:, k]
        raise KeyError(video_id)

    def rates_at(self, hour: int) -> dict[str, float]:
        """Per-video request rate (views/hour) in the given hour."""
        return {
            video.video_id: float(self.views[hour, k])
            for k, video in enumerate(self.videos)
        }

    def window(self, start: int, stop: int) -> "ViewTrace":
        return ViewTrace(videos=self.videos, views=self.views[start:stop].copy())

    def total_views(self, video_id: str) -> float:
        return float(self.series(video_id).sum())


@dataclass
class TraceConfig:
    """Shape parameters of the synthetic trace."""

    #: Evaluation window length; per-video totals over THIS window match Table 1.
    eval_hours: int = 100
    #: Training prefix available to the demand predictor.
    train_hours: int = 550
    #: Relative amplitude of the 24h cycle.
    daily_amplitude: float = 0.35
    #: Relative amplitude of a slow (one week-ish) popularity drift.
    trend_amplitude: float = 0.2
    #: Std-dev of the multiplicative log-normal noise.
    noise_sigma: float = 0.08
    seed: int = 0

    @property
    def total_hours(self) -> int:
        return self.train_hours + self.eval_hours


def synthesize_trace(
    videos: tuple[Video, ...] = TABLE1_VIDEOS,
    config: TraceConfig | None = None,
) -> ViewTrace:
    """Generate the full (train + eval) trace.

    Per-video totals over the final ``eval_hours`` equal ``video.total_views``
    exactly (up to float rounding), matching Table 1.
    """
    config = config or TraceConfig()
    rng = np.random.default_rng(config.seed)
    hours = np.arange(config.total_hours, dtype=float)
    columns = []
    for k, video in enumerate(videos):
        phase = rng.uniform(0.0, 24.0)
        slow_phase = rng.uniform(0.0, 2 * np.pi)
        daily = 1.0 + config.daily_amplitude * np.sin(
            2 * np.pi * (hours - phase) / 24.0
        )
        trend = 1.0 + config.trend_amplitude * np.sin(
            2 * np.pi * hours / 168.0 + slow_phase
        )
        noise = rng.lognormal(mean=0.0, sigma=config.noise_sigma, size=len(hours))
        shape = daily * trend * noise
        shape = np.maximum(shape, 1e-6)
        column = shape.copy()
        eval_slice = column[config.train_hours :]
        column *= video.total_views / eval_slice.sum()
        columns.append(column)
    return ViewTrace(videos=videos, views=np.column_stack(columns))


def split_train_eval(
    trace: ViewTrace, config: TraceConfig
) -> tuple[ViewTrace, ViewTrace]:
    """Split the full trace into the training prefix and evaluation window."""
    return (
        trace.window(0, config.train_hours),
        trace.window(config.train_hours, config.total_hours),
    )
