"""Content catalogs: the paper's YouTube videos (Table 1) and chunking.

The original trace — #views per hour of the top YouTube videos collected in
November 2021 — is not public, so we embed the *published statistics* of
Table 1 verbatim (video id, size in MB, #100-MB chunks, total #views over the
100 evaluation hours) and synthesize hourly view counts matching them (see
:mod:`repro.workload.trace`).

Two simulation granularities (Section 6):

- *chunk level*: each video is split into fixed-size chunks (last chunk
  padded), giving a homogeneous catalog;
- *file level*: each video is one item of heterogeneous size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Video:
    """One video of the evaluation trace."""

    video_id: str
    size_mb: float
    total_views: float

    def num_chunks(self, chunk_mb: float = 100.0) -> int:
        """Number of ``chunk_mb``-sized chunks (last chunk padded, fn. 4)."""
        return max(1, math.ceil(self.size_mb / chunk_mb))

    def chunk_ids(self, chunk_mb: float = 100.0) -> list[str]:
        return [
            f"{self.video_id}#c{k}" for k in range(self.num_chunks(chunk_mb))
        ]


#: Table 1 of the paper, verbatim.
TABLE1_VIDEOS: tuple[Video, ...] = (
    Video("dNCWe_6HAM8", 450.8789, 14144021),
    Video("f5_wn8mexmM", 611.7188, 6046921),
    Video("3YqPKLZF_WU", 746.1914, 3516996),
    Video("2dTMIH5gCHg", 387.5977, 2724433),
    Video("CULF91XH87w", 851.6602, 1935258),
    Video("QDYDRA5JPLE", 427.1484, 1606676),
    Video("LWAI7HkQMyc", 158.2031, 2701699),
    Video("Zpi7CTDvi1A", 709.2773, 1286994),
    Video("vH7n1vj-cwQ", 155.5664, 128860),
    Video("JNCkUEeUFy0", 308.4961, 369157),
    Video("CaimKeDcudo", 337.5, 613737),
    Video("gXH7_XaGuPc", 680.2734, 368432),
)


def top_videos(n: int) -> tuple[Video, ...]:
    """The first ``n`` videos of Table 1 (the paper's default is the top 10)."""
    if not 1 <= n <= len(TABLE1_VIDEOS):
        raise ValueError(f"n must be in [1, {len(TABLE1_VIDEOS)}]")
    return TABLE1_VIDEOS[:n]


@dataclass(frozen=True)
class CatalogSpec:
    """A concrete catalog derived from a set of videos.

    ``items`` are content-item ids; ``sizes`` maps item -> size (MB), or
    ``None`` in the homogeneous chunk-level model; ``item_of_video`` maps
    video id -> the list of items a request for that video touches.
    """

    items: tuple[str, ...]
    sizes: dict[str, float] | None
    item_of_video: dict[str, tuple[str, ...]]

    @property
    def num_items(self) -> int:
        return len(self.items)


def chunk_level_catalog(
    videos: tuple[Video, ...], *, chunk_mb: float = 100.0
) -> CatalogSpec:
    """Split videos into equal-size chunks (homogeneous item model)."""
    items: list[str] = []
    mapping: dict[str, tuple[str, ...]] = {}
    for video in videos:
        chunk_ids = tuple(video.chunk_ids(chunk_mb))
        items.extend(chunk_ids)
        mapping[video.video_id] = chunk_ids
    return CatalogSpec(items=tuple(items), sizes=None, item_of_video=mapping)


def file_level_catalog(videos: tuple[Video, ...]) -> CatalogSpec:
    """One heterogeneous-size item per video (Section 5's model)."""
    items = tuple(v.video_id for v in videos)
    sizes = {v.video_id: v.size_mb for v in videos}
    mapping = {v.video_id: (v.video_id,) for v in videos}
    return CatalogSpec(items=items, sizes=sizes, item_of_video=mapping)
