"""Non-stationary workload regimes: flash crowds, diurnal cycles, churn.

The streaming engine replays a *stationary* Poisson process per request
type; real traffic is anything but.  Following the generator shapes of
the Icarus workload configs (stationary / bursty / trace-driven), a
:class:`WorkloadRegime` turns the static per-type rates of a compiled
:class:`~repro.serving.tables.RoutingTables` into a piecewise-constant
rate *process*:

- :class:`FlashCrowd` — a sudden hotspot: the rates of a few items are
  multiplied (default 100x) inside a time window;
- :class:`DiurnalCycle` — sinusoidal rate-of-day modulation, discretized
  into ``steps`` constant plateaus per period;
- :class:`PopularityChurn` — Zipf-rank shuffling: at every ``interval``
  boundary a seeded permutation reassigns the items' aggregate
  popularity weights, conserving the total demand rate exactly;
- :class:`CompositeRegime` — the product of several regimes.

A regime exposes ``breakpoints(horizon)`` (where the multipliers change)
and ``multipliers(t, tables)`` (per-type factors for the segment that
*starts* at ``t``).  The segmented timeline replay
(:func:`repro.robustness.streaming.replay_timeline_streaming`) merges
these breakpoints with failure-event boundaries and scales each
segment's degraded tables, so failures during a flash crowd — the chaos
harness's target scenario — are exercised directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.serving.tables import RoutingTables

__all__ = [
    "WorkloadRegime",
    "FlashCrowd",
    "DiurnalCycle",
    "PopularityChurn",
    "CompositeRegime",
]

_EPS = 1e-12


class WorkloadRegime:
    """Piecewise-constant per-type rate modulation (base: no-op)."""

    def breakpoints(self, horizon: float) -> tuple[float, ...]:
        """Times in ``(0, horizon)`` where the multipliers change."""
        return ()

    def multipliers(self, t: float, tables: RoutingTables) -> np.ndarray:
        """Per-type rate factors for the segment starting at ``t``."""
        return np.ones(tables.num_types)

    def scale(self, tables: RoutingTables, t: float) -> RoutingTables:
        """``tables`` with rates scaled for the segment starting at ``t``.

        Returns the input object unchanged when every factor is 1.
        """
        mult = self.multipliers(t, tables)
        if np.all(mult == 1.0):
            return tables
        return replace(tables, rates=tables.rates * mult)


@dataclass(frozen=True)
class FlashCrowd(WorkloadRegime):
    """A ``multiplier``-times hotspot on ``hot_items`` during a window."""

    start: float
    duration: float
    hot_items: tuple = ()
    multiplier: float = 100.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise InvalidProblemError("flash crowd duration must be > 0")
        if self.multiplier <= 0:
            raise InvalidProblemError("flash crowd multiplier must be > 0")

    def breakpoints(self, horizon: float) -> tuple[float, ...]:
        return tuple(
            t for t in (self.start, self.start + self.duration)
            if 0.0 < t < horizon
        )

    def multipliers(self, t: float, tables: RoutingTables) -> np.ndarray:
        mult = np.ones(tables.num_types)
        if not self.start <= t < self.start + self.duration:
            return mult
        hot = set(self.hot_items)
        hot_ids = [k for k, item in enumerate(tables.items) if item in hot]
        if hot_ids:
            mult[np.isin(tables.type_item, hot_ids)] = self.multiplier
        return mult


@dataclass(frozen=True)
class DiurnalCycle(WorkloadRegime):
    """Sinusoidal rate modulation, discretized into constant plateaus.

    The factor on plateau ``k`` is ``1 + amplitude * sin(2*pi * (m /
    period + phase))`` evaluated at the plateau midpoint ``m``; with
    ``amplitude < 1`` rates stay positive.
    """

    period: float
    amplitude: float = 0.5
    steps: int = 24
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise InvalidProblemError("diurnal period must be > 0")
        if not 0.0 <= self.amplitude < 1.0:
            raise InvalidProblemError("diurnal amplitude must be in [0, 1)")
        if self.steps < 2:
            raise InvalidProblemError("diurnal steps must be >= 2")

    def breakpoints(self, horizon: float) -> tuple[float, ...]:
        step = self.period / self.steps
        n = int(np.floor(horizon / step))
        return tuple(
            t for t in (step * k for k in range(1, n + 1)) if t < horizon
        )

    def _factor(self, t: float) -> float:
        step = self.period / self.steps
        k = int(np.floor((t + _EPS) / step))
        mid = (k + 0.5) * step
        return 1.0 + self.amplitude * float(
            np.sin(2.0 * np.pi * (mid / self.period + self.phase))
        )

    def multipliers(self, t: float, tables: RoutingTables) -> np.ndarray:
        return np.full(tables.num_types, self._factor(t))


@dataclass(frozen=True)
class PopularityChurn(WorkloadRegime):
    """Zipf-rank shuffling: item popularity weights permute over time.

    Every ``interval`` a seeded permutation ``pi_k`` reassigns aggregate
    item weights: an item ``i`` whose base aggregate rate is ``w_i``
    runs at ``w_{pi_k(i)}`` during epoch ``k`` (epoch 0 is the identity).
    Every type of item ``i`` is scaled by the same factor
    ``w_{pi_k(i)} / w_i``, so the *total* demand rate is conserved
    exactly across every shuffle — the invariant the chaos harness
    checks under churn.
    """

    interval: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise InvalidProblemError("churn interval must be > 0")

    def breakpoints(self, horizon: float) -> tuple[float, ...]:
        n = int(np.floor(horizon / self.interval))
        return tuple(
            t
            for t in (self.interval * k for k in range(1, n + 1))
            if t < horizon
        )

    def _epoch(self, t: float) -> int:
        return int(np.floor((t + _EPS) / self.interval))

    def _item_weights(self, tables: RoutingTables) -> np.ndarray:
        w = np.zeros(len(tables.items))
        np.add.at(w, tables.type_item, tables.rates)
        return w

    def multipliers(self, t: float, tables: RoutingTables) -> np.ndarray:
        epoch = self._epoch(t)
        if epoch == 0:
            return np.ones(tables.num_types)
        n_items = len(tables.items)
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(epoch,))
        )
        w = self._item_weights(tables)
        # Permute weights among the positive-weight items only: mapping a
        # live item onto a zero-weight slot would destroy (or conjure)
        # demand mass and break exact conservation.
        pos = np.flatnonzero(w > 0)
        factor = np.ones(n_items)
        if len(pos) > 1:
            perm = rng.permutation(len(pos))
            factor[pos] = w[pos[perm]] / w[pos]
        return factor[tables.type_item]


@dataclass(frozen=True)
class CompositeRegime(WorkloadRegime):
    """Product of several regimes (union of their breakpoints)."""

    regimes: tuple[WorkloadRegime, ...] = field(default=())

    def breakpoints(self, horizon: float) -> tuple[float, ...]:
        times: set[float] = set()
        for regime in self.regimes:
            times.update(regime.breakpoints(horizon))
        return tuple(sorted(times))

    def multipliers(self, t: float, tables: RoutingTables) -> np.ndarray:
        mult = np.ones(tables.num_types)
        for regime in self.regimes:
            mult = mult * regime.multipliers(t, tables)
        return mult
