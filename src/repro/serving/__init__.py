"""Streaming request-level serving engine (vectorized replay at scale).

The event-driven :mod:`repro.simulation` validates routings one request at
a time; this package replays the same request process as bulk numpy arrays
— millions of requests per second — and is the substrate for online
adaptive baselines and non-stationary workload suites.  ``simulate()``
remains the oracle: the parity suite pins this engine's aggregates against
it on small instances.

Quick start::

    from repro.serving import ServingConfig, compile_tables, replay

    tables = compile_tables(problem, solution.routing)
    report = replay(tables, ServingConfig(horizon=1.0, seed=0))
    report.served_fraction, report.delivered_cost, report.empirical_loads
"""

from repro.serving.degraded import TableDegradation, degrade_tables
from repro.serving.engine import (
    RequestBatch,
    ServingConfig,
    ServingReport,
    generate_requests,
    horizon_for_requests,
    replay,
    serve_batch,
)
from repro.serving.sharding import replay_parallel
from repro.serving.tables import RoutingTables, compile_tables

__all__ = [
    "RequestBatch",
    "RoutingTables",
    "ServingConfig",
    "ServingReport",
    "TableDegradation",
    "compile_tables",
    "degrade_tables",
    "generate_requests",
    "horizon_for_requests",
    "replay",
    "replay_parallel",
    "replay_solution",
    "serve_batch",
]


def replay_solution(problem, routing, config=None, *, allow_unrouted=False,
                    parallel=False, max_workers=None):
    """Compile ``routing`` over ``problem`` and replay it in one call."""
    tables = compile_tables(problem, routing, allow_unrouted=allow_unrouted)
    if parallel:
        return replay_parallel(tables, config, max_workers=max_workers)
    return replay(tables, config)
