"""Process-pool execution of the streaming replay over shared tables.

The compiled :class:`~repro.serving.tables.RoutingTables` can be tens of
megabytes on production instances; shipping them per task would dominate
the replay.  Instead the owner exports the numeric payload once through
:class:`repro.graph.shm.BundleBroadcast` (the same segment-lifecycle
discipline as the distance-matrix broadcast of PR 4), each pool worker
attaches it in its initializer and registers the reconstructed tables in a
process-local registry keyed by the segment name, and per-shard tasks carry
only ``(segment name, shard index)`` — O(1) in the table size.

Shard streams come from the same up-front ``SeedSequence.spawn`` list the
serial path consumes, and shard accumulators merge in shard-index order, so
``replay_parallel`` is bit-identical to :func:`repro.serving.engine.replay`
with the same ``n_shards`` — everything except wall-clock timing.  Worker
failures (broken pool, unpicklable payloads) degrade the affected shards to
serial execution with a logged warning instead of raising.
"""

from __future__ import annotations

import logging
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

import numpy as np

from repro.graph.shm import BundleBroadcast, BundleHandle, attach_bundle
from repro.serving.engine import (
    ServingConfig,
    ServingReport,
    ShardAccumulator,
    _empty_accumulator,
    build_report,
    replay,
    run_shard,
    shard_seed_sequences,
)
from repro.serving.tables import RoutingTables

__all__ = ["replay_parallel", "register_tables", "unregister_tables"]

logger = logging.getLogger(__name__)

#: Process-local registry: shm segment name -> attached tables.
_TABLES: dict[str, RoutingTables] = {}


def register_tables(key: str, tables: RoutingTables) -> None:
    _TABLES[key] = tables


def unregister_tables(key: str) -> None:
    _TABLES.pop(key, None)


def _attach_and_register_tables(handle: BundleHandle, labels) -> None:
    """Pool-initializer entry point: map the bundle, rebuild the tables."""
    register_tables(
        handle.shm_name, RoutingTables.from_arrays(labels, attach_bundle(handle))
    )


def _run_shard_task(
    task: tuple[str, ServingConfig, int, np.random.SeedSequence],
) -> ShardAccumulator:
    """One shard inside a worker; tables come from the local registry."""
    key, config, _shard_index, seed_seq = task
    return run_shard(_TABLES[key], config, seed_seq)


def replay_parallel(
    tables: RoutingTables,
    config: ServingConfig | None = None,
    *,
    max_workers: int | None = None,
) -> ServingReport:
    """Pooled streaming replay, bit-identical to the serial :func:`replay`.

    With one shard there is nothing to distribute, so the call degrades to
    the serial path (same stream, same result).
    """
    config = config or ServingConfig()
    if config.n_shards == 1:
        return replay(tables, config)
    import time

    start = time.perf_counter()
    seed_seqs = shard_seed_sequences(config)
    results: dict[int, ShardAccumulator] = {}
    broadcast = BundleBroadcast(tables.as_arrays())
    key = broadcast.handle.shm_name
    # The owner can serve retries from its own tables object.
    register_tables(key, tables)
    try:
        tasks = [
            (key, config, shard, seed_seq)
            for shard, seed_seq in enumerate(seed_seqs)
        ]
        serial_retry: list[int] = []
        try:
            with ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_attach_and_register_tables,
                initargs=(broadcast.handle, tables.labels()),
            ) as pool:
                futures = {
                    shard: pool.submit(_run_shard_task, task)
                    for shard, task in enumerate(tasks)
                }
                for shard in range(config.n_shards):
                    try:
                        results[shard] = futures[shard].result()
                    except BrokenExecutor:
                        serial_retry = [
                            s for s in range(shard, config.n_shards)
                            if s not in results
                        ]
                        logger.warning(
                            "serving pool broke at shard %d; re-running %d "
                            "shards serially", shard, len(serial_retry),
                        )
                        break
        except (OSError, BrokenExecutor) as exc:
            serial_retry = [s for s in range(config.n_shards) if s not in results]
            logger.warning(
                "serving pool unavailable (%s); running %d shards serially",
                exc, len(serial_retry),
            )
        for shard in serial_retry:
            results[shard] = run_shard(tables, config, seed_seqs[shard])
    finally:
        unregister_tables(key)
        broadcast.close()

    total = _empty_accumulator(tables)
    for shard in range(config.n_shards):
        total.merge(results[shard])
    elapsed = time.perf_counter() - start
    return build_report(tables, config, total, elapsed_seconds=elapsed)
