"""Failure masking of compiled routing tables (degraded serving state).

The streaming engine replays a static :class:`~repro.serving.tables.
RoutingTables`; this module makes those tables failure-aware without a
recompile.  :func:`degrade_tables` takes a compiled table and a
:class:`TableDegradation` (down nodes, down directed links, wiped cached
copies) and returns a new table in the *same type/path/edge id space*
where

- every path that traverses a down element, starts at a down or wiped
  source, or belongs to a dead requester has its ``path_amount`` zeroed
  and is dropped from its type's Walker–Vose alias slots;
- ``served_prob`` is recomputed per affected type as ``min(1, sum of
  surviving fractions)`` with the exact float-op sequence of
  :func:`~repro.serving.tables.compile_tables`, so a type whose replicas
  all died carries its whole mass as explicit unserved;
- arrival ``rates`` are left untouched: a dead requester keeps
  *generating* demand (it is offered load), it just serves nothing — the
  same accounting the timeline controller uses, which is what makes the
  degraded tables' analytic rates match the controller's
  piecewise-constant integration exactly.

Masking semantics mirror ``TimelineController._rates()`` clause for
clause: a path delivers iff its requester is up, every node and directed
edge on it is up, and its source still holds the item.  Because the
alias rebuild consumes the surviving amounts through the same operation
sequence as a fresh compile, degrading is **bit-identical** to
recompiling the masked routing (the degraded-tables test suite pins
this against enumerated single-link/node scenarios).

Sharing: unchanged arrays (costs, CSR layouts, sizes) are shared with
the input tables, never copied — treat compiled tables as immutable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.serving.tables import Edge, Node, RoutingTables, _alias_table

if TYPE_CHECKING:
    from repro.robustness.faults import FailureScenario

__all__ = ["TableDegradation", "degrade_tables"]


@dataclass(frozen=True)
class TableDegradation:
    """Liveness state to mask a compiled table with.

    ``down_links`` holds *directed* edges (a bidirectional link failure
    contributes both orientations); ``wiped`` holds ``(node, item)``
    pairs whose cached copy is gone while the node itself is up — e.g. a
    cache that flapped and lost its contents.  Callers deriving ``wiped``
    from a placement must exclude pinned pairs (permanent copies).
    """

    down_nodes: frozenset[Node] = frozenset()
    down_links: frozenset[Edge] = frozenset()
    wiped: frozenset[tuple[Node, object]] = frozenset()

    @property
    def empty(self) -> bool:
        return not (self.down_nodes or self.down_links or self.wiped)

    @classmethod
    def from_scenario(cls, scenario: "FailureScenario") -> "TableDegradation":
        """Liveness mask of a static failure scenario.

        Node-incident links need no enumeration: masking treats an edge
        as dead when either endpoint is down.  Capacity degradations do
        not change liveness and are ignored.
        """
        from repro.robustness.faults import LinkFailure, NodeFailure

        down_nodes: set[Node] = set()
        down_links: set[Edge] = set()
        for fault in scenario.faults:
            if isinstance(fault, LinkFailure):
                down_links.add((fault.u, fault.v))
                if fault.both_directions:
                    down_links.add((fault.v, fault.u))
            elif isinstance(fault, NodeFailure):
                down_nodes.add(fault.node)
        return cls(
            down_nodes=frozenset(down_nodes), down_links=frozenset(down_links)
        )


def _as_degradation(failure) -> TableDegradation:
    if isinstance(failure, TableDegradation):
        return failure
    return TableDegradation.from_scenario(failure)


def _dead_paths(
    tables: RoutingTables, degr: TableDegradation
) -> tuple[np.ndarray, np.ndarray]:
    """(per-path dead mask, per-type requester-down mask)."""
    n_nodes = len(tables.nodes)
    node_down = np.zeros(n_nodes, dtype=bool)
    if degr.down_nodes:
        node_idx = tables.node_index()
        for v in degr.down_nodes:
            k = node_idx.get(v)
            if k is not None:
                node_down[k] = True

    edge_down = node_down[tables.edge_src] | node_down[tables.edge_dst]
    if degr.down_links:
        edge_idx = {e: k for k, e in enumerate(tables.edges)}
        for e in degr.down_links:
            k = edge_idx.get(e)
            if k is not None:
                edge_down[k] = True

    n_paths = tables.num_paths
    path_dead = node_down[tables.path_src]
    if edge_down.any():
        counts = np.diff(tables.path_edge_ptr)
        owner = np.repeat(np.arange(n_paths, dtype=np.int64), counts)
        np.logical_or.at(path_dead, owner, edge_down[tables.path_edges])

    if degr.wiped:
        node_idx = tables.node_index()
        item_idx = {i: k for k, i in enumerate(tables.items)}
        n_items = len(tables.items)
        wiped_flat = [
            node_idx[v] * n_items + item_idx[i]
            for v, i in degr.wiped
            if v in node_idx and i in item_idx
        ]
        if wiped_flat:
            flat = (
                tables.path_src * np.int64(n_items)
                + tables.type_item[tables.path_type]
            )
            path_dead |= np.isin(
                flat, np.asarray(wiped_flat, dtype=np.int64)
            )

    req_down = node_down[tables.type_req]
    path_dead |= req_down[tables.path_type]
    return path_dead, req_down


def degrade_tables(
    tables: RoutingTables, failure: "TableDegradation | FailureScenario"
) -> RoutingTables:
    """Mask ``tables`` with a failure state; see the module docstring.

    ``failure`` is a :class:`TableDegradation` or a static
    :class:`~repro.robustness.faults.FailureScenario` (converted via
    :meth:`TableDegradation.from_scenario`).  Returns the input object
    unchanged when nothing is masked.
    """
    degr = _as_degradation(failure)
    if degr.empty:
        return tables
    path_dead, req_down = _dead_paths(tables, degr)
    if not path_dead.any():
        return tables

    n_types = tables.num_types
    affected = np.zeros(n_types, dtype=bool)
    affected[tables.path_type[path_dead]] = True

    path_amount = tables.path_amount.copy()
    path_amount[path_dead] = 0.0
    served_prob = tables.served_prob.copy()

    slot_ptr = np.zeros(n_types + 1, dtype=np.int64)
    prob_parts: list[np.ndarray] = []
    path_parts: list[np.ndarray] = []
    alias_parts: list[np.ndarray] = []
    base_ptr = tables.slot_ptr
    for t in range(n_types):
        if not affected[t]:
            lo, hi = base_ptr[t], base_ptr[t + 1]
            slot_ptr[t + 1] = slot_ptr[t] + (hi - lo)
            if hi > lo:
                prob_parts.append(tables.slot_prob[lo:hi])
                path_parts.append(tables.slot_path[lo:hi])
                alias_parts.append(tables.slot_alias[lo:hi])
            continue
        p_lo = int(np.searchsorted(tables.path_type, t, side="left"))
        p_hi = int(np.searchsorted(tables.path_type, t, side="right"))
        ids = np.arange(p_lo, p_hi, dtype=np.int64)[~path_dead[p_lo:p_hi]]
        if len(ids) == 0:
            served_prob[t] = 0.0
            slot_ptr[t + 1] = slot_ptr[t]
            continue
        # Same op sequence as compile_tables: sum the surviving amounts,
        # clamp, normalize a fresh copy, and rebuild the alias table —
        # identical floats in, bit-identical alias tables out.
        amounts = tables.path_amount[ids]
        served_prob[t] = min(1.0, float(amounts.sum()))
        probs = amounts.copy()
        probs /= probs.sum()
        accept, alias = _alias_table(probs)
        prob_parts.append(accept)
        path_parts.append(ids)
        alias_parts.append(ids[alias])
        slot_ptr[t + 1] = slot_ptr[t] + len(ids)

    return replace(
        tables,
        served_prob=served_prob,
        path_amount=path_amount,
        slot_ptr=slot_ptr,
        slot_prob=(
            np.concatenate(prob_parts) if prob_parts else np.zeros(0)
        ),
        slot_path=(
            np.concatenate(path_parts)
            if path_parts
            else np.zeros(0, dtype=np.int64)
        ),
        slot_alias=(
            np.concatenate(alias_parts)
            if alias_parts
            else np.zeros(0, dtype=np.int64)
        ),
        unrouted_types=int((served_prob == 0.0).sum()),
    )
