"""Vectorized streaming replay of a routing at the request level.

Where :func:`repro.simulation.simulate` dispatches every request through a
Python event loop, this engine processes the whole stream as numpy arrays:

1. arrivals are drawn in bulk — one Poisson count per request type, uniform
   order statistics for timestamps (the same marginal process as the event
   simulator's exponential inter-arrival draws);
2. each request picks a serving path with one vectorized alias-table lookup
   against the precompiled :class:`~repro.serving.tables.RoutingTables`;
3. per-link volumes, served counts, and delivered cost accumulate with
   weighted ``bincount`` scatter ops.

The engine is *fluid*: it validates generated counts, per-link empirical
loads, served fractions, and delivered cost against the event simulator
(the parity suite pins this), but it does not model queueing latency —
that remains the event simulator's job on small instances.

Sharding (``ServingConfig.n_shards > 1``) thins each type's Poisson process
into ``n`` independent processes of rate ``lambda / n`` with per-shard
``SeedSequence.spawn`` streams; shard accumulators merge in shard-index
order, so the serial path here is bit-identical to the process-pool path in
:mod:`repro.serving.sharding`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.serving.tables import Edge, RoutingTables

__all__ = [
    "ServingConfig",
    "ServingReport",
    "RequestBatch",
    "generate_requests",
    "serve_batch",
    "replay",
]


@dataclass(frozen=True)
class ServingConfig:
    """Replay horizon, seeding, and sharding of the request stream."""

    horizon: float = 1.0
    seed: int = 0
    #: Number of stream shards.  Results depend on the shard count (each
    #: shard has its own spawned stream) but not on whether shards run
    #: serially or in a process pool.
    n_shards: int = 1
    #: Guard against runaway instances: expected arrivals above this raise.
    max_requests: int = 50_000_000

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise InvalidProblemError("horizon must be positive")
        if self.n_shards < 1:
            raise InvalidProblemError("n_shards must be >= 1")


@dataclass
class RequestBatch:
    """One shard's arrivals as a struct-of-arrays, time-ordered."""

    #: Arrival times, sorted ascending, in ``[0, horizon)``.
    timestamps: np.ndarray
    #: Request-type index per arrival (row into the tables' type arrays).
    type_ids: np.ndarray

    def __len__(self) -> int:
        return len(self.type_ids)

    def item_ids(self, tables: RoutingTables) -> list:
        """Requested item per arrival (label lookup, O(n) Python)."""
        return [tables.types[t][0] for t in self.type_ids]

    def requester_ids(self, tables: RoutingTables) -> list:
        """Requesting node per arrival (label lookup, O(n) Python)."""
        return [tables.types[t][1] for t in self.type_ids]


@dataclass
class ShardAccumulator:
    """Raw per-shard aggregates; merged in shard order by :func:`replay`."""

    generated: np.ndarray  # int64 per type
    served: np.ndarray  # int64 per type
    path_counts: np.ndarray  # int64 per path
    edge_volume: np.ndarray  # float64 per edge (size-weighted)
    delivered_cost: float

    def merge(self, other: "ShardAccumulator") -> None:
        self.generated += other.generated
        self.served += other.served
        self.path_counts += other.path_counts
        self.edge_volume += other.edge_volume
        self.delivered_cost += other.delivered_cost


@dataclass
class ServingReport:
    """Aggregated outcome of one streaming replay."""

    generated: int
    served: int
    unserved: int
    #: Sum of path costs over served requests (cf. objective (1a) scaled by
    #: the horizon: ``delivered_cost / horizon`` estimates the routing cost).
    delivered_cost: float
    #: Empirical traffic (size per unit time) per link.
    empirical_loads: dict[Edge, float] = field(default_factory=dict)
    #: The analytic loads of constraint (1b), for comparison.
    analytic_loads: dict[Edge, float] = field(default_factory=dict)
    #: Demand types with no (or zero-fraction) routing in the tables.
    unrouted_types: int = 0
    horizon: float = 1.0
    n_shards: int = 1
    #: Wall-clock time of the replay (generation + matching + accumulation).
    elapsed_seconds: float = 0.0
    #: Per-type generated/served counts (tables' type order).
    per_type_generated: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    per_type_served: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def served_fraction(self) -> float:
        """Served share of generated requests; NaN when nothing arrived."""
        if self.generated == 0:
            return float("nan")
        return self.served / self.generated

    @property
    def requests_per_sec(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("nan")
        return self.generated / self.elapsed_seconds


def generate_requests(
    tables: RoutingTables,
    horizon: float,
    rng: np.random.Generator,
    *,
    rate_scale: float = 1.0,
    max_requests: int | None = None,
) -> RequestBatch:
    """Draw one shard's arrivals in bulk.

    Counts per type are Poisson(rate * horizon * rate_scale); timestamps are
    uniform order statistics over the horizon — together exactly a Poisson
    process per type, matching the event simulator's exponential
    inter-arrival construction in distribution.
    """
    if horizon <= 0:
        raise InvalidProblemError("horizon must be positive")
    if not math.isfinite(rate_scale) or rate_scale < 0:
        raise InvalidProblemError(f"rate_scale must be finite and >= 0, got {rate_scale!r}")
    total_rate = tables.total_rate
    if not math.isfinite(total_rate) or (tables.rates < 0).any():
        raise InvalidProblemError(
            f"tables carry a degenerate demand rate (total {total_rate!r})"
        )
    if total_rate * rate_scale <= 0.0:
        # All-replicas-dead / zero-demand segment: an empty, well-formed
        # batch instead of degenerate Poisson draws.  No randomness is
        # consumed, so downstream segments keep their streams aligned.
        return RequestBatch(
            timestamps=np.zeros(0), type_ids=np.zeros(0, dtype=np.int64)
        )
    expected = total_rate * horizon * rate_scale
    if max_requests is not None and expected > max_requests:
        raise InvalidProblemError(
            f"replay would generate ~{expected:.0f} arrivals"
            f" > max_requests={max_requests}; lower the horizon or scale"
            " the instance down"
        )
    counts = rng.poisson(tables.rates * (horizon * rate_scale))
    total = int(counts.sum())
    type_ids = np.repeat(
        np.arange(tables.num_types, dtype=np.int64), counts
    )
    timestamps = rng.random(total) * horizon
    order = np.argsort(timestamps, kind="stable")
    return RequestBatch(timestamps=timestamps[order], type_ids=type_ids[order])


def serve_batch(
    tables: RoutingTables,
    batch: RequestBatch,
    rng: np.random.Generator,
) -> ShardAccumulator:
    """Match one batch against the tables; no per-request Python dispatch."""
    type_ids = batch.type_ids
    generated = np.bincount(type_ids, minlength=tables.num_types)

    # Serve/drop draw: a type whose fractions sum to f < 1 serves each
    # arrival with probability f (types with no routing have f = 0).
    u = rng.random(len(type_ids))
    served_mask = u < tables.served_prob[type_ids]
    served_types = type_ids[served_mask]
    served = np.bincount(served_types, minlength=tables.num_types)

    # Alias-table path choice for the served requests: slot uniform within
    # the type's slot range, accept/reject against the precomputed
    # thresholds (one uniform for slot+acceptance via the floor/frac trick).
    lo = tables.slot_ptr[served_types]
    k = tables.slot_ptr[served_types + 1] - lo
    v = rng.random(len(served_types)) * k
    local = v.astype(np.int64)
    # Guard the measure-zero v == k edge produced by float rounding.
    np.minimum(local, k - 1, out=local)
    slot = lo + local
    frac = v - local
    paths = np.where(
        frac < tables.slot_prob[slot],
        tables.slot_path[slot],
        tables.slot_alias[slot],
    )

    path_counts = np.bincount(paths, minlength=tables.num_paths)
    volume = path_counts * tables.item_sizes[tables.path_type]
    edge_volume = np.bincount(
        tables.path_edges,
        weights=np.repeat(volume, np.diff(tables.path_edge_ptr)),
        minlength=len(tables.edges),
    )
    delivered_cost = float(path_counts @ tables.path_cost)
    return ShardAccumulator(
        generated=generated.astype(np.int64),
        served=served.astype(np.int64),
        path_counts=path_counts.astype(np.int64),
        edge_volume=edge_volume,
        delivered_cost=delivered_cost,
    )


def shard_seed_sequences(config: ServingConfig) -> list[np.random.SeedSequence]:
    """Per-shard independent streams, materialized up front.

    Mirrors the Monte Carlo runner's discipline: the full list is derived
    from the base seed before any work happens, so serial and pooled
    execution consume exactly the same streams in the same order.
    """
    return np.random.SeedSequence(config.seed).spawn(config.n_shards)


def run_shard(
    tables: RoutingTables,
    config: ServingConfig,
    seed_seq: np.random.SeedSequence,
) -> ShardAccumulator:
    """Generate and serve one shard (rate thinned by ``1 / n_shards``)."""
    rng = np.random.default_rng(seed_seq)
    batch = generate_requests(
        tables,
        config.horizon,
        rng,
        rate_scale=1.0 / config.n_shards,
        max_requests=config.max_requests,
    )
    return serve_batch(tables, batch, rng)


def _empty_accumulator(tables: RoutingTables) -> ShardAccumulator:
    return ShardAccumulator(
        generated=np.zeros(tables.num_types, dtype=np.int64),
        served=np.zeros(tables.num_types, dtype=np.int64),
        path_counts=np.zeros(tables.num_paths, dtype=np.int64),
        edge_volume=np.zeros(len(tables.edges)),
        delivered_cost=0.0,
    )


def build_report(
    tables: RoutingTables,
    config: ServingConfig,
    total: ShardAccumulator,
    *,
    elapsed_seconds: float,
) -> ServingReport:
    """Assemble the user-facing report from merged shard accumulators."""
    generated = int(total.generated.sum())
    served = int(total.served.sum())
    empirical = {
        edge: float(vol) / config.horizon
        for edge, vol in zip(tables.edges, total.edge_volume)
        if vol > 0.0
    }
    return ServingReport(
        generated=generated,
        served=served,
        unserved=generated - served,
        delivered_cost=total.delivered_cost,
        empirical_loads=empirical,
        analytic_loads=tables.expected_loads(),
        unrouted_types=tables.unrouted_types,
        horizon=config.horizon,
        n_shards=config.n_shards,
        elapsed_seconds=elapsed_seconds,
        per_type_generated=total.generated,
        per_type_served=total.served,
    )


def replay(
    tables: RoutingTables,
    config: ServingConfig | None = None,
) -> ServingReport:
    """Serial streaming replay (shards run in-process, in shard order).

    The expected request volume is validated against
    ``config.max_requests`` before any generation happens, mirroring the
    event simulator's guard.
    """
    config = config or ServingConfig()
    expected = tables.total_rate * config.horizon
    if expected > config.max_requests:
        raise InvalidProblemError(
            f"replay would generate ~{expected:.0f} arrivals"
            f" > max_requests={config.max_requests}"
        )
    start = time.perf_counter()
    total = _empty_accumulator(tables)
    for seed_seq in shard_seed_sequences(config):
        total.merge(run_shard(tables, config, seed_seq))
    elapsed = time.perf_counter() - start
    return build_report(tables, config, total, elapsed_seconds=elapsed)


def horizon_for_requests(tables: RoutingTables, n_requests: float) -> float:
    """Horizon that yields ``n_requests`` expected arrivals.

    Raises :class:`InvalidProblemError` (never ``ZeroDivisionError``) when
    the tables carry no positive finite demand rate — e.g. a degraded
    segment in which every replica died and demand was dropped.
    """
    if n_requests <= 0 or not math.isfinite(float(n_requests)):
        raise InvalidProblemError("n_requests must be positive and finite")
    rate = tables.total_rate
    if rate <= 0 or not math.isfinite(rate):
        raise InvalidProblemError(
            "tables carry no positive demand rate (all-replicas-dead or "
            "zero-demand segment); cannot size a horizon"
        )
    return float(n_requests) / rate
