"""Compile a (problem, routing) pair into flat arrays for bulk replay.

The event simulator walks Python objects per request; the streaming engine
(:mod:`repro.serving.engine`) instead matches whole request batches against
precompiled tables:

- request types ``(item, s)`` are indexed ``0..R-1`` in the deterministic
  ``ProblemInstance.requests`` order;
- each type's serving paths become rows of a flat *path table* (per-path
  cost, item size, and a CSR layout of edge ids), so per-link accumulation
  is one weighted ``bincount`` over edge ids;
- each type's path-choice distribution becomes a Walker *alias table*
  (``slot_prob``/``slot_path``/``slot_alias``), so drawing one path per
  request is O(1) and fully vectorizable.

Semantics mirror the event simulator with one deliberate exception: the
event loop *normalizes* path fractions (a partially served type still
routes every arrival), while the tables keep the unserved mass explicit —
a type whose fractions sum to ``f < 1`` serves each arrival with
probability ``f`` and counts the rest as unserved.  For fully served
routings (the parity suite's regime) the two agree.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

import numpy as np

from repro.core.problem import ProblemInstance, Request
from repro.core.solution import Routing
from repro.exceptions import InvalidProblemError

Node = Hashable
Edge = tuple[Node, Node]

#: Fractions below this are treated as zero (matches Routing's _EPS scale).
_EPS = 1e-12


def _alias_table(probs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vose alias table for one discrete distribution.

    Returns ``(accept, alias)``: drawing ``slot ~ U{0..K-1}`` and
    ``u ~ U[0,1)``, the outcome is ``slot`` if ``u < accept[slot]`` else
    ``alias[slot]``.
    """
    k = len(probs)
    accept = probs * k
    alias = np.arange(k, dtype=np.int64)
    small = [i for i in range(k) if accept[i] < 1.0]
    large = [i for i in range(k) if accept[i] >= 1.0]
    while small and large:
        s, l = small.pop(), large.pop()
        alias[s] = l
        accept[l] -= 1.0 - accept[s]
        (small if accept[l] < 1.0 else large).append(l)
    # Numerical leftovers: everything remaining accepts with certainty.
    for i in small + large:
        accept[i] = 1.0
    return accept, alias


@dataclass
class RoutingTables:
    """Array view of one routing over one problem's demand.

    Small label tuples (``types``, ``edges``) stay Python objects; every
    per-request-type / per-path quantity is a numpy array so the engine can
    process millions of requests without touching Python dispatch.
    """

    #: Request types in deterministic order (``ProblemInstance.requests``).
    types: tuple[Request, ...]
    #: Edges referenced by any serving path (indexing ``edge_*`` arrays).
    edges: tuple[Edge, ...]
    #: Nodes referenced by any requester / serving path (id space of
    #: ``type_req``, ``edge_src``/``edge_dst``, ``path_src``).
    nodes: tuple[Node, ...]
    #: Items referenced by any request type (id space of ``type_item``).
    items: tuple[Hashable, ...]

    # -- per-type arrays (length R) ------------------------------------
    rates: np.ndarray  # float64 arrival rates lambda_{(i,s)}
    served_prob: np.ndarray  # float64 in [0, 1]: sum of path fractions
    item_sizes: np.ndarray  # float64 b_i of the type's item
    slot_ptr: np.ndarray  # int64, R+1: alias slots of type t
    type_req: np.ndarray  # int64 requester node id
    type_item: np.ndarray  # int64 item id

    # -- alias slots (length S, CSR by type) ---------------------------
    slot_prob: np.ndarray  # float64 acceptance threshold
    slot_path: np.ndarray  # int64 global path id on accept
    slot_alias: np.ndarray  # int64 global path id on reject

    # -- per-path arrays (length P) ------------------------------------
    path_cost: np.ndarray  # float64 sum of link costs along the path
    path_type: np.ndarray  # int64 owning request type
    path_amount: np.ndarray  # float64 raw routing fraction (expected_* uses it)
    path_src: np.ndarray  # int64 node id of the serving source (path[0])
    path_edge_ptr: np.ndarray  # int64, P+1
    path_edges: np.ndarray  # int64 edge ids, CSR by path

    # -- per-edge arrays (length E) ------------------------------------
    edge_src: np.ndarray  # int64 node id of the edge tail
    edge_dst: np.ndarray  # int64 node id of the edge head

    #: Types with no (or zero-fraction) routing.
    unrouted_types: int = 0

    # ------------------------------------------------------------------

    @property
    def num_types(self) -> int:
        return len(self.types)

    @property
    def num_paths(self) -> int:
        return len(self.path_cost)

    @property
    def total_rate(self) -> float:
        return float(self.rates.sum())

    def expected_loads(self) -> dict[Edge, float]:
        """Analytic per-link loads of constraint (1b): ``sum rate * f * b_i``.

        This is the deterministic aggregation path: no sampling, exactly the
        quantity the event simulator reports as ``analytic_loads``.
        """
        weight = (
            self.rates[self.path_type]
            * self.path_amount
            * self.item_sizes[self.path_type]
        )
        per_edge = np.bincount(
            self.path_edges,
            weights=np.repeat(weight, np.diff(self.path_edge_ptr)),
            minlength=len(self.edges),
        )
        return {
            edge: float(load)
            for edge, load in zip(self.edges, per_edge)
            if load > 0.0
        }

    def expected_cost_rate(self) -> float:
        """Expected routing cost per unit time — objective (1a)."""
        return float(
            (self.rates[self.path_type] * self.path_amount) @ self.path_cost
        )

    def expected_served_rate(self) -> float:
        """Expected served demand rate: ``sum rate * f`` over all paths."""
        return float((self.rates[self.path_type] * self.path_amount).sum())

    def node_index(self) -> dict[Node, int]:
        """Label -> id map over ``nodes`` (for failure masking)."""
        return {v: k for k, v in enumerate(self.nodes)}

    # ------------------------------------------------------------------
    # Shared-memory transport (see repro.serving.sharding)
    # ------------------------------------------------------------------

    _ARRAY_FIELDS = (
        "rates",
        "served_prob",
        "item_sizes",
        "slot_ptr",
        "type_req",
        "type_item",
        "slot_prob",
        "slot_path",
        "slot_alias",
        "path_cost",
        "path_type",
        "path_amount",
        "path_src",
        "path_edge_ptr",
        "path_edges",
        "edge_src",
        "edge_dst",
    )

    def as_arrays(self) -> dict[str, np.ndarray]:
        """The numeric payload, as named arrays (for ``BundleBroadcast``)."""
        return {name: getattr(self, name) for name in self._ARRAY_FIELDS}

    def labels(self) -> tuple:
        """The small picklable remainder (labels + the unrouted count)."""
        return (self.types, self.edges, self.nodes, self.items, self.unrouted_types)

    @classmethod
    def from_arrays(
        cls,
        labels: tuple,
        arrays: dict[str, np.ndarray],
    ) -> "RoutingTables":
        types, edges, nodes, items, unrouted = labels
        return cls(
            types=types,
            edges=edges,
            nodes=nodes,
            items=items,
            unrouted_types=unrouted,
            **{name: arrays[name] for name in cls._ARRAY_FIELDS},
        )


def compile_tables(
    problem: ProblemInstance,
    routing: Routing,
    *,
    allow_unrouted: bool = False,
) -> RoutingTables:
    """Build :class:`RoutingTables` for ``routing`` over ``problem``'s demand.

    Raises :class:`InvalidProblemError` on a type with no (or zero-fraction)
    routing unless ``allow_unrouted`` — mirroring ``simulate()``'s contract;
    with ``allow_unrouted`` such types keep generating requests that count
    as unserved (the event simulator skips generating them entirely, which
    parity tests account for by comparing served counts).
    """
    requests = problem.requests
    network = problem.network
    edge_ids: dict[Edge, int] = {}
    edge_cost: list[float] = []
    node_ids: dict[Node, int] = {}
    item_ids: dict[Hashable, int] = {}
    edge_src: list[int] = []
    edge_dst: list[int] = []

    rates = np.empty(len(requests))
    served_prob = np.zeros(len(requests))
    item_sizes = np.empty(len(requests))
    slot_ptr = np.zeros(len(requests) + 1, dtype=np.int64)
    type_req = np.zeros(len(requests), dtype=np.int64)
    type_item = np.zeros(len(requests), dtype=np.int64)
    slot_prob: list[np.ndarray] = []
    slot_path: list[np.ndarray] = []
    slot_alias: list[np.ndarray] = []

    path_cost: list[float] = []
    path_type: list[int] = []
    path_amount: list[float] = []
    path_src: list[int] = []
    path_edge_ptr: list[int] = [0]
    path_edges: list[int] = []
    unrouted = 0

    for t, request in enumerate(requests):
        item, _s = request
        rates[t] = problem.demand[request]
        item_sizes[t] = problem.size_of(item)
        type_req[t] = node_ids.setdefault(_s, len(node_ids))
        type_item[t] = item_ids.setdefault(item, len(item_ids))
        pfs = routing.paths.get(request) or []
        amounts = np.array([pf.amount for pf in pfs], dtype=float)
        total = float(amounts.sum()) if len(amounts) else 0.0
        if total <= _EPS:
            if not allow_unrouted:
                raise InvalidProblemError(f"request {request!r} has no routing")
            unrouted += 1
            slot_ptr[t + 1] = slot_ptr[t]
            continue
        served_prob[t] = min(1.0, total)
        first_path = len(path_cost)
        for pf in pfs:
            if pf.amount <= _EPS:
                continue
            cost = 0.0
            for u, v in pf.edges():
                eid = edge_ids.setdefault((u, v), len(edge_ids))
                if eid == len(edge_cost):
                    edge_cost.append(network.cost(u, v))
                    edge_src.append(node_ids.setdefault(u, len(node_ids)))
                    edge_dst.append(node_ids.setdefault(v, len(node_ids)))
                cost += edge_cost[eid]
                path_edges.append(eid)
            path_cost.append(cost)
            path_type.append(t)
            path_amount.append(pf.amount)
            path_src.append(node_ids.setdefault(pf.source, len(node_ids)))
            path_edge_ptr.append(len(path_edges))
        k = len(path_cost) - first_path
        if k == 0:
            # Positive total but every individual fraction below _EPS.
            if not allow_unrouted:
                raise InvalidProblemError(f"request {request!r} has no routing")
            unrouted += 1
            served_prob[t] = 0.0
            slot_ptr[t + 1] = slot_ptr[t]
            continue
        probs = np.array(path_amount[first_path:], dtype=float)
        probs /= probs.sum()
        accept, alias = _alias_table(probs)
        slot_prob.append(accept)
        slot_path.append(np.arange(first_path, first_path + k, dtype=np.int64))
        slot_alias.append(alias + first_path)
        slot_ptr[t + 1] = slot_ptr[t] + k

    edges = tuple(edge_ids)
    return RoutingTables(
        types=tuple(requests),
        edges=edges,
        nodes=tuple(node_ids),
        items=tuple(item_ids),
        rates=rates,
        served_prob=served_prob,
        item_sizes=item_sizes,
        slot_ptr=slot_ptr,
        type_req=type_req,
        type_item=type_item,
        slot_prob=(
            np.concatenate(slot_prob) if slot_prob else np.zeros(0)
        ),
        slot_path=(
            np.concatenate(slot_path)
            if slot_path
            else np.zeros(0, dtype=np.int64)
        ),
        slot_alias=(
            np.concatenate(slot_alias)
            if slot_alias
            else np.zeros(0, dtype=np.int64)
        ),
        path_cost=np.array(path_cost),
        path_type=np.array(path_type, dtype=np.int64),
        path_amount=np.array(path_amount),
        path_src=np.array(path_src, dtype=np.int64),
        path_edge_ptr=np.array(path_edge_ptr, dtype=np.int64),
        path_edges=np.array(path_edges, dtype=np.int64),
        edge_src=np.array(edge_src, dtype=np.int64),
        edge_dst=np.array(edge_dst, dtype=np.int64),
        unrouted_types=unrouted,
    )
