"""Graph substrate: cache-network model, shortest paths, and topologies."""

from repro.graph.backends import DenseBackend, DistanceBackend, LazyRowBackend, RowStore
from repro.graph.distance_matrix import (
    DistanceMatrix,
    build_distance_matrix,
    dense_bytes_ceiling,
    estimate_dense_bytes,
)
from repro.graph.network import CacheNetwork
from repro.graph.shortest_paths import (
    all_pairs_least_costs,
    k_shortest_paths,
    path_cost,
    reconstruct_path,
    single_source_dijkstra,
)
from repro.graph.topologies import (
    abilene_like,
    abovenet,
    abvt,
    deltacom,
    edge_caching_roles,
    line_topology,
    pop_core_edge_hierarchy,
    random_topology,
    tinet,
    tree_topology,
)

__all__ = [
    "CacheNetwork",
    "DistanceMatrix",
    "DistanceBackend",
    "DenseBackend",
    "LazyRowBackend",
    "RowStore",
    "build_distance_matrix",
    "dense_bytes_ceiling",
    "estimate_dense_bytes",
    "single_source_dijkstra",
    "all_pairs_least_costs",
    "reconstruct_path",
    "k_shortest_paths",
    "path_cost",
    "abovenet",
    "abvt",
    "tinet",
    "deltacom",
    "abilene_like",
    "edge_caching_roles",
    "line_topology",
    "tree_topology",
    "random_topology",
    "pop_core_edge_hierarchy",
]
