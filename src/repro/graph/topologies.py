"""Network topologies used in the paper's evaluation, plus synthetic generators.

The paper evaluates on the Rocketfuel *Abovenet* ISP map (Fig. 3) and on
three Topology-Zoo maps — *Abvt* (23 nodes / 31 links), *Tinet* (53/89) and
*Deltacom* (113/161) — listed in Table 5.  Those datasets are external, so we
substitute:

- :func:`abovenet`: a hand-crafted PoP-level ISP map over Abovenet's real US
  cities with one degree-1 gateway (the origin server in the paper's setup)
  and several low-degree edge PoPs;
- :func:`abvt` / :func:`tinet` / :func:`deltacom`: deterministic ISP-like
  graphs (preferential-attachment backbone plus chords) with exactly the
  node/link counts of Table 5.

All constructors return a :class:`~repro.graph.network.CacheNetwork` whose
links exist in both directions with unit cost and infinite capacity; the
experiment scenarios assign the paper's cost and capacity distributions.
"""

from __future__ import annotations

from collections.abc import Hashable

import networkx as nx
import numpy as np

from repro.exceptions import InvalidNetworkError
from repro.graph.network import CAPACITY, COST, CacheNetwork

Node = Hashable

#: Hand-crafted Abovenet (AS 6461) PoP-level map. Undirected adjacency;
#: "LON" is the single degree-1 PoP and plays the origin-server gateway.
_ABOVENET_EDGES: list[tuple[str, str]] = [
    ("SEA", "SJC"),
    ("SEA", "ORD"),
    ("SJC", "SFO"),
    ("SJC", "LAX"),
    ("SJC", "DEN"),
    ("SJC", "ORD"),
    ("SJC", "IAD"),
    ("SJC", "DFW"),
    ("SFO", "LAX"),
    ("LAX", "PHX"),
    ("LAX", "DFW"),
    ("PHX", "DFW"),
    ("DEN", "ORD"),
    ("DFW", "IAH"),
    ("DFW", "ORD"),
    ("DFW", "ATL"),
    ("IAH", "ATL"),
    ("ORD", "JFK"),
    ("ORD", "IAD"),
    ("ORD", "BOS"),
    ("ATL", "MIA"),
    ("ATL", "IAD"),
    ("MIA", "IAD"),
    ("IAD", "JFK"),
    ("IAD", "EWR"),
    ("JFK", "BOS"),
    ("JFK", "EWR"),
    ("JFK", "LON"),
    ("EWR", "BOS"),
]


def _bidirectional(undirected: nx.Graph) -> CacheNetwork:
    """Turn an undirected map into a CacheNetwork with links both ways."""
    digraph = nx.DiGraph()
    digraph.add_nodes_from(undirected.nodes)
    for u, v in undirected.edges:
        digraph.add_edge(u, v, **{COST: 1.0, CAPACITY: float("inf")})
        digraph.add_edge(v, u, **{COST: 1.0, CAPACITY: float("inf")})
    return CacheNetwork(digraph)


def abovenet() -> CacheNetwork:
    """Abovenet-like ISP topology (16 PoPs, 29 undirected links)."""
    graph = nx.Graph(_ABOVENET_EDGES)
    return _bidirectional(graph)


def _isp_like(num_nodes: int, num_links: int, seed: int) -> CacheNetwork:
    """Deterministic ISP-like map with exact node and (undirected) link counts.

    A preferential-attachment spanning tree gives the hub-and-spoke backbone
    typical of ISP maps; the remaining ``num_links - (num_nodes - 1)`` chords
    are added between non-adjacent pairs, biased toward high-degree hubs.
    """
    if num_links < num_nodes - 1:
        raise InvalidNetworkError("need at least n-1 links for connectivity")
    max_links = num_nodes * (num_nodes - 1) // 2
    if num_links > max_links:
        raise InvalidNetworkError("too many links for a simple graph")
    rng = np.random.default_rng(seed)
    graph = nx.Graph()
    graph.add_node(0)
    for v in range(1, num_nodes):
        degrees = np.array([graph.degree(u) + 1.0 for u in range(v)])
        probs = degrees / degrees.sum()
        u = int(rng.choice(v, p=probs))
        graph.add_edge(u, v)
    while graph.number_of_edges() < num_links:
        degrees = np.array([graph.degree(u) + 1.0 for u in range(num_nodes)])
        probs = degrees / degrees.sum()
        u = int(rng.choice(num_nodes, p=probs))
        v = int(rng.integers(num_nodes))
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return _bidirectional(graph)


def abvt() -> CacheNetwork:
    """Abvt-sized topology: 23 nodes, 31 undirected links (Table 5)."""
    return _isp_like(23, 31, seed=2301)


def tinet() -> CacheNetwork:
    """Tinet-sized topology: 53 nodes, 89 undirected links (Table 5)."""
    return _isp_like(53, 89, seed=5302)


def deltacom() -> CacheNetwork:
    """Deltacom-sized topology: 113 nodes, 161 undirected links (Table 5)."""
    return _isp_like(113, 161, seed=11303)


def abilene_like() -> CacheNetwork:
    """The classic 11-node Abilene research backbone (handy for examples)."""
    edges = [
        ("Seattle", "Sunnyvale"),
        ("Seattle", "Denver"),
        ("Sunnyvale", "LosAngeles"),
        ("Sunnyvale", "Denver"),
        ("LosAngeles", "Houston"),
        ("Denver", "KansasCity"),
        ("KansasCity", "Houston"),
        ("KansasCity", "Indianapolis"),
        ("Houston", "Atlanta"),
        ("Atlanta", "Indianapolis"),
        ("Atlanta", "WashingtonDC"),
        ("Indianapolis", "Chicago"),
        ("Chicago", "NewYork"),
        ("NewYork", "WashingtonDC"),
    ]
    return _bidirectional(nx.Graph(edges))


def line_topology(num_nodes: int) -> CacheNetwork:
    """A path ``0 - 1 - ... - n-1`` (both directions). Useful in unit tests."""
    if num_nodes < 2:
        raise InvalidNetworkError("line topology needs at least 2 nodes")
    return _bidirectional(nx.path_graph(num_nodes))


def tree_topology(branching: int, depth: int) -> CacheNetwork:
    """Balanced tree: the hierarchical shape common in CDN/IPTV studies."""
    if branching < 1 or depth < 1:
        raise InvalidNetworkError("branching and depth must be >= 1")
    return _bidirectional(nx.balanced_tree(branching, depth))


def random_topology(
    num_nodes: int,
    *,
    average_degree: float = 3.0,
    seed: int = 0,
) -> CacheNetwork:
    """Connected Erdos-Renyi-style topology for synthetic sweeps."""
    if num_nodes < 2:
        raise InvalidNetworkError("need at least 2 nodes")
    target_links = max(num_nodes - 1, int(round(num_nodes * average_degree / 2)))
    target_links = min(target_links, num_nodes * (num_nodes - 1) // 2)
    return _isp_like(num_nodes, target_links, seed=seed)


def pop_core_edge_hierarchy(
    n_core: int,
    pops_per_core: int,
    edges_per_pop: int,
    *,
    seed: int = 0,
    core_chords: int | None = None,
    dual_home_fraction: float = 0.25,
) -> CacheNetwork:
    """Large synthetic ISP/CDN hierarchy: PoP and edge trees over a BA core.

    Three layers, mirroring the metro/PoP/edge shape of production CDNs:

    - **core**: ``n_core`` nodes ``c<i>`` wired as a preferential-attachment
      (Barabási–Albert-style) backbone — a spanning tree grown by
      degree-biased attachment plus ``core_chords`` extra chords (default
      ``n_core``, giving average core degree ≈ 4);
    - **PoP**: each core node hangs ``pops_per_core`` PoPs ``p<i>.<j>``; a
      seeded ``dual_home_fraction`` of PoPs get a second uplink to another
      core node (the redundancy real PoPs have);
    - **edge**: each PoP hangs ``edges_per_pop`` leaves ``e<i>.<j>.<k>`` —
      the cache/requester sites.

    Total nodes = ``n_core * (1 + pops_per_core * (1 + edges_per_pop))``,
    e.g. ``(100, 9, 10)`` -> exactly 10,000.  Deterministic under ``seed``
    (same seed -> identical node order and edge list); connected by
    construction.  Links are bidirectional with unit cost and infinite
    capacity, like every other constructor here.
    """
    if n_core < 2 or pops_per_core < 0 or edges_per_pop < 0:
        raise InvalidNetworkError("need n_core >= 2 and nonnegative fan-outs")
    if not 0.0 <= dual_home_fraction <= 1.0:
        raise InvalidNetworkError("dual_home_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    graph = nx.Graph()

    core = [f"c{i}" for i in range(n_core)]
    graph.add_node(core[0])
    for i in range(1, n_core):
        degrees = np.array([graph.degree(core[u]) + 1.0 for u in range(i)])
        u = int(rng.choice(i, p=degrees / degrees.sum()))
        graph.add_edge(core[u], core[i])
    chords = n_core if core_chords is None else core_chords
    max_chords = n_core * (n_core - 1) // 2 - (n_core - 1)
    added = 0
    while added < min(chords, max_chords):
        degrees = np.array([graph.degree(c) + 1.0 for c in core])
        u = int(rng.choice(n_core, p=degrees / degrees.sum()))
        v = int(rng.integers(n_core))
        if u != v and not graph.has_edge(core[u], core[v]):
            graph.add_edge(core[u], core[v])
            added += 1

    for i in range(n_core):
        for j in range(pops_per_core):
            pop = f"p{i}.{j}"
            graph.add_edge(core[i], pop)
            if n_core > 1 and rng.random() < dual_home_fraction:
                other = int(rng.integers(n_core - 1))
                if other >= i:  # uniform over cores != i
                    other += 1
                graph.add_edge(core[other], pop)
            for k in range(edges_per_pop):
                graph.add_edge(pop, f"e{i}.{j}.{k}")
    return _bidirectional(graph)


def edge_caching_roles(
    network: CacheNetwork,
    *,
    num_edge_nodes: int | None = None,
    max_degree: int = 3,
) -> tuple[Node, list[Node]]:
    """Pick the origin server and the edge (cache) nodes as in Section 6.

    The origin is (the gateway to) a lowest-degree node; edge nodes are the
    next-lowest-degree nodes with undirected degree ``<= max_degree``
    (paper default), or simply the ``num_edge_nodes`` lowest-degree nodes
    when a count is requested (Appendix D uses 5).
    """
    nodes = sorted(network.nodes, key=lambda v: (network.undirected_degree(v), str(v)))
    origin = nodes[0]
    rest = nodes[1:]
    if num_edge_nodes is not None:
        if num_edge_nodes > len(rest):
            raise InvalidNetworkError("not enough nodes for requested edge count")
        return origin, rest[:num_edge_nodes]
    edge_nodes = [v for v in rest if network.undirected_degree(v) <= max_degree]
    if not edge_nodes:
        edge_nodes = rest[: max(1, len(rest) // 3)]
    return origin, edge_nodes
