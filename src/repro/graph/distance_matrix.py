"""Dense all-pairs distance matrices for solver hot paths.

The Section 4 machinery (F_RNR greedy, local search, RNR routing, the [3]
candidate-path baseline) consumes the same structure over and over: the
least routing cost ``w_{v->s}`` for every (cache node, requester) pair.
:func:`all_pairs_least_costs` materializes that as nested dicts, which is
convenient but slow to index from inner loops.  This module builds the same
information once as a dense ``float64`` matrix with integer node indices so
numpy can take over the per-request arithmetic.

``scipy.sparse.csgraph.dijkstra`` is used when scipy is importable (it is a
baked-in dependency of the experiment stack); otherwise the pure-python
Dijkstra of :mod:`repro.graph.shortest_paths` fills the matrix row by row.
Both produce ``math.inf`` for unreachable pairs.
"""

from __future__ import annotations

import math
import os
from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.exceptions import InvalidNetworkError, ResourceError
from repro.graph.network import COST
from repro.graph.shortest_paths import single_source_dijkstra

try:  # scipy ships with the experiment stack but stays optional.
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    HAVE_SCIPY = False

Node = Hashable

#: Environment override for the dense-allocation ceiling (bytes).
DENSE_MAX_BYTES_ENV = "REPRO_DENSE_MAX_BYTES"


def estimate_dense_bytes(num_nodes: int) -> int:
    """Upper estimate of the peak allocation of a dense all-pairs build.

    Two ``float64`` ``n x n`` arrays live at once on the scipy path (the
    result matrix plus scipy's working copy); the pure-python path peaks at
    one.  The estimate uses the scipy figure — conservative is the point.
    """
    return 2 * 8 * num_nodes * num_nodes


def dense_bytes_ceiling() -> float:
    """Byte ceiling for dense all-pairs builds.

    ``REPRO_DENSE_MAX_BYTES`` wins when set; otherwise 80% of the machine's
    currently available memory (``/proc/meminfo``), or ``inf`` where that is
    unreadable.  Consulted on every :func:`build_distance_matrix` call, so
    tests can monkeypatch the environment to simulate a small machine.
    """
    override = os.environ.get(DENSE_MAX_BYTES_ENV)
    if override:
        return float(override)
    try:
        with open("/proc/meminfo") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return 0.8 * float(line.split()[1]) * 1024.0
    except OSError:  # pragma: no cover - non-Linux platforms
        pass
    return math.inf  # pragma: no cover - /proc/meminfo always has the key


@dataclass(frozen=True)
class DistanceMatrix:
    """All-pairs least costs as a dense matrix plus node index maps.

    ``matrix[i, j]`` is the least cost of a ``nodes[i] -> nodes[j]`` path
    (``math.inf`` when unreachable).  Row/column order follows ``nodes``,
    which preserves the graph's node insertion order so results are
    deterministic and comparable with the dict-based API.
    """

    nodes: tuple[Node, ...]
    matrix: np.ndarray
    index: dict[Node, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.index:
            object.__setattr__(
                self, "index", {v: k for k, v in enumerate(self.nodes)}
            )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self.index

    def distance(self, source: Node, target: Node) -> float:
        """Least cost ``source -> target`` (``inf`` if unreachable)."""
        return float(self.matrix[self.index[source], self.index[target]])

    def row(self, source: Node) -> np.ndarray:
        """Distances from ``source`` to every node (read-only view)."""
        return self.matrix[self.index[source]]

    def column(self, target: Node) -> np.ndarray:
        """Distances from every node to ``target`` (read-only view)."""
        return self.matrix[:, self.index[target]]

    def w_max(self) -> float:
        """Maximum finite pairwise cost, floored at 1.0 (paper convention)."""
        finite = self.matrix[np.isfinite(self.matrix)]
        if finite.size == 0:
            return 1.0
        top = float(finite.max())
        return top if top > 0 else 1.0

    def to_dict(self) -> dict[Node, dict[Node, float]]:
        """Nested-dict view matching :func:`all_pairs_least_costs` (no infs)."""
        out: dict[Node, dict[Node, float]] = {}
        for i, u in enumerate(self.nodes):
            row = self.matrix[i]
            out[u] = {
                v: float(row[j])
                for j, v in enumerate(self.nodes)
                if math.isfinite(row[j])
            }
        return out


def _sparse_adjacency(
    graph: nx.DiGraph,
    nodes: Sequence[Node],
    index: dict[Node, int],
    weight: str,
):
    """Adjacency of ``graph`` as a scipy CSR matrix, O(|V| + |E|) memory.

    Structurally identical (indptr/indices/data) to what
    ``csgraph_from_dense(dense_adjacency, null_value=inf)`` used to produce
    — including the explicit zero-weight diagonal standing in for
    ``fill_diagonal(adj, 0.0)`` — so every ``csgraph`` routine consuming it
    returns bit-identical distances and predecessors, without the O(|V|²)
    dense staging array that was fatal at 10k nodes.
    """
    n = len(nodes)
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for u, v, edge in graph.edges(data=True):
        w = float(edge.get(weight, 1.0))
        if w < 0:
            raise InvalidNetworkError(f"negative weight on ({u!r}, {v!r})")
        i, j = index[u], index[v]
        if i != j:  # self-loops collapse into the zero diagonal below
            rows.append(i)
            cols.append(j)
            data.append(w)
    rows.extend(range(n))
    cols.extend(range(n))
    data.extend([0.0] * n)
    adj = csr_matrix(
        (
            np.asarray(data, dtype=np.float64),
            (np.asarray(rows, dtype=np.intp), np.asarray(cols, dtype=np.intp)),
        ),
        shape=(n, n),
    )
    adj.sort_indices()
    return adj


def _recompute_rows(
    graph: nx.DiGraph,
    node_list: Sequence[Node],
    index: dict[Node, int],
    weight: str,
    sources: np.ndarray,
    use_scipy: bool,
) -> np.ndarray:
    """Distance-matrix rows for ``sources`` (indices into ``node_list``).

    Mirrors :func:`build_distance_matrix` exactly — same adjacency
    construction and the same per-source Dijkstra backends — so recomputed
    rows are bit-identical to the corresponding rows of a full rebuild.
    """
    n = len(node_list)
    if use_scipy and HAVE_SCIPY:
        csgraph = _sparse_adjacency(graph, node_list, index, weight)
        rows = np.atleast_2d(_csgraph_dijkstra(csgraph, directed=True, indices=sources))
        rows[np.arange(len(sources)), sources] = 0.0
        return rows
    rows = np.full((len(sources), n), math.inf, dtype=np.float64)
    for k, i in enumerate(sources):
        dist, _ = single_source_dijkstra(graph, node_list[i], weight=weight)
        for target, d in dist.items():
            j = index.get(target)
            if j is not None:
                rows[k, j] = d
    return rows


def affected_sources(
    parent: DistanceMatrix,
    removed_edges: Sequence[tuple[Node, Node, float]],
) -> np.ndarray:
    """Boolean mask of rows whose distances may change when edges are removed.

    A source row ``i`` can only change if some removed edge ``(u, v)`` with
    weight ``w`` lies on a shortest path out of ``i`` in the *parent* matrix,
    i.e. ``D[i, u] + w + D[v, t] == D[i, t]`` for some target ``t``.  The
    test is exact in one direction (every row that actually changes is
    flagged) and conservative in the other (a flagged row may be covered by
    an equal-cost surviving path — it is recomputed and comes back equal).
    """
    d = parent.matrix
    n = len(parent)
    affected = np.zeros(n, dtype=bool)
    for u, v, w in removed_edges:
        i = parent.index.get(u)
        j = parent.index.get(v)
        if i is None or j is None:
            continue
        via = d[:, i] + float(w)  # cost source -> u -> (u, v)
        lhs = via[:, None] + d[j][None, :]
        affected |= (np.isfinite(lhs) & (lhs == d)).any(axis=1)
    return affected


def repair_distance_matrix(
    parent: DistanceMatrix,
    degraded_graph: nx.DiGraph,
    *,
    removed_edges: Sequence[tuple[Node, Node, float]],
    removed_nodes: Sequence[Node] = (),
    weight: str = COST,
    use_scipy: bool = True,
    sources: Sequence[Node] | None = None,
) -> DistanceMatrix:
    """Incrementally rebuild ``parent`` after edge/node removals.

    ``removed_edges`` lists every directed edge deleted from the parent
    graph as ``(u, v, weight)`` triples (node removals must list their
    incident edges too, as :func:`repro.robustness.faults.apply_failure`
    records them); ``removed_nodes`` lists deleted nodes.  Rows whose
    shortest paths cannot have used a removed element are copied from the
    parent; the rest are recomputed on ``degraded_graph`` in one batched
    sweep.  The result is bit-identical to
    ``build_distance_matrix(degraded_graph)`` as long as the surviving node
    order matches the degraded graph's insertion order — callers that cannot
    guarantee that should fall back to a full rebuild.

    ``sources`` switches to a **partial** matrix: exactly the listed rows
    are computed (unconditionally, on the degraded graph — bit-identical to
    the same rows of a full rebuild) and every other row is ``NaN`` (loudly
    invalid — reading one is a contract violation, not a stale answer).  On
    small dense graphs a single popular link already dirties most rows, so
    an exact repair cannot beat a full rebuild; a caller that provably reads
    only a few rows (failure recovery reads cache/pinned sources only) names
    them and pays Dijkstra for that handful.  The affected-row analysis is
    skipped outright in this mode: it needs the edge-head rows of the parent
    matrix, which a chained partial parent no longer has.  A partial matrix
    can parent further partial repairs as long as the requested sources
    never grow along the chain.

    Raises
    ------
    InvalidNetworkError
        ``degraded_graph``'s node order is not the parent order minus
        ``removed_nodes`` (the repaired matrix would be misindexed).
    """
    dead = set(removed_nodes)
    node_list = tuple(v for v in parent.nodes if v not in dead)
    if node_list != tuple(degraded_graph.nodes):
        raise InvalidNetworkError(
            "degraded graph nodes do not match the parent order minus "
            "removed nodes; rebuild the distance matrix from scratch"
        )
    index = {v: k for k, v in enumerate(node_list)}
    n = len(node_list)
    if n == 0:
        return DistanceMatrix(nodes=(), matrix=np.zeros((0, 0), dtype=np.float64))
    if sources is not None:
        matrix = np.full((n, n), math.nan, dtype=np.float64)
        wanted = sorted({index[v] for v in sources if v in index})
        dirty = np.asarray(wanted, dtype=np.intp)
    else:
        affected = affected_sources(parent, removed_edges)
        keep = np.fromiter(
            (parent.index[v] for v in node_list), dtype=np.intp, count=n
        )
        matrix = parent.matrix[np.ix_(keep, keep)].copy()
        dirty = np.flatnonzero(affected[keep])
    if dirty.size:
        matrix[dirty] = _recompute_rows(
            degraded_graph, node_list, index, weight, dirty, use_scipy
        )
    matrix.setflags(write=False)
    return DistanceMatrix(nodes=node_list, matrix=matrix, index=index)


def build_distance_matrix(
    graph: nx.DiGraph,
    *,
    weight: str = COST,
    nodes: Sequence[Node] | None = None,
    use_scipy: bool = True,
    max_bytes: float | None = None,
) -> DistanceMatrix:
    """Build the dense all-pairs least-cost matrix of a directed graph.

    ``nodes`` fixes the row/column order (defaults to graph insertion
    order).  Zero-cost edges are handled correctly in both backends: the
    sparse adjacency stores ``0.0`` explicitly, so it is a real edge, not a
    missing one.

    ``max_bytes`` caps the estimated dense allocation
    (:func:`estimate_dense_bytes`); it defaults to
    :func:`dense_bytes_ceiling` (``REPRO_DENSE_MAX_BYTES`` or 80% of
    available memory).  A build that would blow past the ceiling raises
    :class:`~repro.exceptions.ResourceError` *before* allocating, naming
    the byte count and pointing at the lazy row backend
    (:class:`repro.graph.backends.LazyRowBackend`), instead of dying in a
    raw ``MemoryError`` mid-Dijkstra.
    """
    node_list: tuple[Node, ...] = tuple(graph.nodes if nodes is None else nodes)
    index = {v: k for k, v in enumerate(node_list)}
    n = len(node_list)
    if n == 0:
        return DistanceMatrix(nodes=(), matrix=np.zeros((0, 0), dtype=np.float64))
    ceiling = dense_bytes_ceiling() if max_bytes is None else float(max_bytes)
    estimated = estimate_dense_bytes(n)
    if estimated > ceiling:
        raise ResourceError(
            f"dense all-pairs matrix over {n} nodes needs an estimated "
            f"{estimated:,} bytes, above the {ceiling:,.0f}-byte ceiling; "
            "use the lazy row backend (repro.graph.backends.LazyRowBackend, "
            "or SolverContext.from_problem(backend='lazy')) or raise "
            f"{DENSE_MAX_BYTES_ENV}"
        )
    if use_scipy and HAVE_SCIPY:
        csgraph = _sparse_adjacency(graph, node_list, index, weight)
        matrix = _csgraph_dijkstra(csgraph, directed=True)
        np.fill_diagonal(matrix, 0.0)
    else:
        matrix = np.full((n, n), math.inf, dtype=np.float64)
        for i, v in enumerate(node_list):
            dist, _ = single_source_dijkstra(graph, v, weight=weight)
            for target, d in dist.items():
                j = index.get(target)
                if j is not None:
                    matrix[i, j] = d
    matrix.setflags(write=False)
    return DistanceMatrix(nodes=node_list, matrix=matrix, index=index)
