"""Shortest-path primitives (Dijkstra, all-pairs costs, Yen's k-shortest paths).

The paper's algorithms need, for every (cache node ``v``, requester ``s``)
pair, the least routing cost ``w_{v->s}`` of moving one item from ``v`` to
``s`` (Section 4.1.1), plus the actual least-cost paths for building routes,
and k-shortest paths for the candidate-path baseline of [3].

Implemented from scratch on binary heaps; networkx is only used as the graph
container.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Hashable

import networkx as nx

from repro.exceptions import InvalidNetworkError
from repro.graph.network import COST

Node = Hashable


def single_source_dijkstra(
    graph: nx.DiGraph,
    source: Node,
    *,
    weight: str = COST,
) -> tuple[dict[Node, float], dict[Node, Node]]:
    """Least-cost distances and predecessors from ``source`` to all nodes.

    Returns ``(dist, pred)`` where ``dist[v]`` is the least cost of a
    ``source -> v`` path (missing if unreachable) and ``pred[v]`` is ``v``'s
    predecessor on one such path.
    """
    if source not in graph:
        raise InvalidNetworkError(f"source {source!r} not in graph")
    dist: dict[Node, float] = {source: 0.0}
    pred: dict[Node, Node] = {}
    done: set[Node] = set()
    counter = itertools.count()  # tie-breaker so heap never compares nodes
    heap: list[tuple[float, int, Node]] = [(0.0, next(counter), source)]
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        for _, v, data in graph.out_edges(u, data=True):
            if v in done:
                continue
            w = data.get(weight, 1.0)
            if w < 0:
                raise InvalidNetworkError(f"negative weight on ({u!r}, {v!r})")
            nd = d + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd, next(counter), v))
    return dist, pred


def reconstruct_path(pred: dict[Node, Node], source: Node, target: Node) -> list[Node]:
    """Rebuild the ``source -> target`` path from a predecessor map."""
    if target == source:
        return [source]
    if target not in pred:
        raise InvalidNetworkError(f"{target!r} unreachable from {source!r}")
    path = [target]
    while path[-1] != source:
        path.append(pred[path[-1]])
    path.reverse()
    return path


def all_pairs_least_costs(
    graph: nx.DiGraph,
    *,
    weight: str = COST,
) -> tuple[dict[Node, dict[Node, float]], float]:
    """All-pairs least costs plus the maximum finite pairwise cost ``w_max``.

    Returns ``(costs, w_max)`` with ``costs[v][s] = w_{v->s}`` (missing keys
    mean unreachable).  ``w_max`` is the paper's upper bound on the maximum
    pairwise cost; for a single-node graph it degenerates to ``1.0`` so that
    downstream formulas stay well-defined.
    """
    costs: dict[Node, dict[Node, float]] = {}
    w_max = 0.0
    for v in graph.nodes:
        dist, _ = single_source_dijkstra(graph, v, weight=weight)
        costs[v] = dist
        if dist:
            w_max = max(w_max, max(dist.values()))
    return costs, (w_max if w_max > 0 else 1.0)


def all_pairs_shortest_paths(
    graph: nx.DiGraph,
    *,
    weight: str = COST,
) -> dict[Node, tuple[dict[Node, float], dict[Node, Node]]]:
    """For every node ``v``: the Dijkstra ``(dist, pred)`` pair rooted at ``v``."""
    return {v: single_source_dijkstra(graph, v, weight=weight) for v in graph.nodes}


def path_cost(graph: nx.DiGraph, path: list[Node], *, weight: str = COST) -> float:
    """Total cost of a node path under the given edge weight attribute."""
    total = 0.0
    for u, v in zip(path[:-1], path[1:]):
        if not graph.has_edge(u, v):
            raise InvalidNetworkError(f"path uses missing link ({u!r}, {v!r})")
        total += graph.edges[u, v].get(weight, 1.0)
    return total


def k_shortest_paths(
    graph: nx.DiGraph,
    source: Node,
    target: Node,
    k: int,
    *,
    weight: str = COST,
) -> list[list[Node]]:
    """Yen's algorithm: up to ``k`` loopless least-cost ``source -> target`` paths.

    Returns fewer than ``k`` paths when the graph does not contain that many
    distinct loopless paths. Paths are sorted by increasing cost.

    The spur computations run on a private copy of ``graph``: the caller's
    graph is never mutated, so its node/edge insertion order — which
    iteration-order-dependent code like :func:`all_pairs_least_costs`,
    topology dumps, and heap tie-breaking silently relies on — is preserved.
    (The seed implementation removed and re-added nodes/edges of the shared
    graph, permanently permuting that order.)
    """
    if k <= 0:
        return []
    dist, pred = single_source_dijkstra(graph, source, weight=weight)
    if target not in dist:
        return []
    work = graph.copy()  # all removals/re-additions happen on the copy
    paths: list[list[Node]] = [reconstruct_path(pred, source, target)]
    # Candidate heap holds (cost, counter, path).
    candidates: list[tuple[float, int, list[Node]]] = []
    seen: set[tuple[Node, ...]] = {tuple(paths[0])}
    counter = itertools.count()
    for _ in range(1, k):
        prev_path = paths[-1]
        for i in range(len(prev_path) - 1):
            spur_node = prev_path[i]
            root = prev_path[: i + 1]
            removed_edges: list[tuple[Node, Node, dict]] = []
            removed_nodes: list[tuple[Node, list[tuple[Node, Node, dict]]]] = []
            # Remove edges that would recreate an already-found path.
            for p in paths:
                if len(p) > i and p[: i + 1] == root and work.has_edge(p[i], p[i + 1]):
                    data = dict(work.edges[p[i], p[i + 1]])
                    work.remove_edge(p[i], p[i + 1])
                    removed_edges.append((p[i], p[i + 1], data))
            # Remove root nodes (except the spur) to keep paths loopless.
            for node in root[:-1]:
                incident = [
                    (u, v, dict(d))
                    for u, v, d in itertools.chain(
                        work.in_edges(node, data=True), work.out_edges(node, data=True)
                    )
                ]
                work.remove_node(node)
                removed_nodes.append((node, incident))
            try:
                spur_dist, spur_pred = single_source_dijkstra(work, spur_node, weight=weight)
                if target in spur_dist:
                    spur_path = reconstruct_path(spur_pred, spur_node, target)
                    total = root[:-1] + spur_path
                    key = tuple(total)
                    if key not in seen:
                        seen.add(key)
                        # Cost the candidate against the intact input graph.
                        cost = path_cost(graph, total, weight=weight)
                        heapq.heappush(candidates, (cost, next(counter), total))
            finally:
                for node, incident in reversed(removed_nodes):
                    work.add_node(node)
                    for u, v, d in incident:
                        work.add_edge(u, v, **d)
                for u, v, d in removed_edges:
                    work.add_edge(u, v, **d)
        if not candidates:
            break
        _, _, best = heapq.heappop(candidates)
        paths.append(best)
    return paths
