"""Shortest-path primitives (Dijkstra, all-pairs costs, Yen's k-shortest paths).

The paper's algorithms need, for every (cache node ``v``, requester ``s``)
pair, the least routing cost ``w_{v->s}`` of moving one item from ``v`` to
``s`` (Section 4.1.1), plus the actual least-cost paths for building routes,
and k-shortest paths for the candidate-path baseline of [3].

Implemented from scratch on binary heaps; networkx is only used as the graph
container.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Hashable

import networkx as nx

from repro.exceptions import InvalidNetworkError
from repro.graph.network import COST

Node = Hashable


def single_source_dijkstra(
    graph: nx.DiGraph,
    source: Node,
    *,
    weight: str = COST,
) -> tuple[dict[Node, float], dict[Node, Node]]:
    """Least-cost distances and predecessors from ``source`` to all nodes.

    Returns ``(dist, pred)`` where ``dist[v]`` is the least cost of a
    ``source -> v`` path (missing if unreachable) and ``pred[v]`` is ``v``'s
    predecessor on one such path.
    """
    if source not in graph:
        raise InvalidNetworkError(f"source {source!r} not in graph")
    dist: dict[Node, float] = {source: 0.0}
    pred: dict[Node, Node] = {}
    done: set[Node] = set()
    counter = itertools.count()  # tie-breaker so heap never compares nodes
    heap: list[tuple[float, int, Node]] = [(0.0, next(counter), source)]
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        for _, v, data in graph.out_edges(u, data=True):
            if v in done:
                continue
            w = data.get(weight, 1.0)
            if w < 0:
                raise InvalidNetworkError(f"negative weight on ({u!r}, {v!r})")
            nd = d + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd, next(counter), v))
    return dist, pred


def reconstruct_path(pred: dict[Node, Node], source: Node, target: Node) -> list[Node]:
    """Rebuild the ``source -> target`` path from a predecessor map."""
    if target == source:
        return [source]
    if target not in pred:
        raise InvalidNetworkError(f"{target!r} unreachable from {source!r}")
    path = [target]
    while path[-1] != source:
        path.append(pred[path[-1]])
    path.reverse()
    return path


def all_pairs_least_costs(
    graph: nx.DiGraph,
    *,
    weight: str = COST,
) -> tuple[dict[Node, dict[Node, float]], float]:
    """All-pairs least costs plus the maximum finite pairwise cost ``w_max``.

    Returns ``(costs, w_max)`` with ``costs[v][s] = w_{v->s}`` (missing keys
    mean unreachable).  ``w_max`` is the paper's upper bound on the maximum
    pairwise cost; for a single-node graph it degenerates to ``1.0`` so that
    downstream formulas stay well-defined.
    """
    costs: dict[Node, dict[Node, float]] = {}
    w_max = 0.0
    for v in graph.nodes:
        dist, _ = single_source_dijkstra(graph, v, weight=weight)
        costs[v] = dist
        if dist:
            w_max = max(w_max, max(dist.values()))
    return costs, (w_max if w_max > 0 else 1.0)


def all_pairs_shortest_paths(
    graph: nx.DiGraph,
    *,
    weight: str = COST,
) -> dict[Node, tuple[dict[Node, float], dict[Node, Node]]]:
    """For every node ``v``: the Dijkstra ``(dist, pred)`` pair rooted at ``v``."""
    return {v: single_source_dijkstra(graph, v, weight=weight) for v in graph.nodes}


def path_cost(graph: nx.DiGraph, path: list[Node], *, weight: str = COST) -> float:
    """Total cost of a node path under the given edge weight attribute."""
    total = 0.0
    for u, v in zip(path[:-1], path[1:]):
        if not graph.has_edge(u, v):
            raise InvalidNetworkError(f"path uses missing link ({u!r}, {v!r})")
        total += graph.edges[u, v].get(weight, 1.0)
    return total


def k_shortest_paths(
    graph: nx.DiGraph,
    source: Node,
    target: Node,
    k: int,
    *,
    weight: str = COST,
) -> list[list[Node]]:
    """Yen's algorithm: up to ``k`` loopless least-cost ``source -> target`` paths.

    Returns fewer than ``k`` paths when the graph does not contain that many
    distinct loopless paths. Paths are sorted by increasing cost.
    """
    if k <= 0:
        return []
    dist, pred = single_source_dijkstra(graph, source, weight=weight)
    if target not in dist:
        return []
    paths: list[list[Node]] = [reconstruct_path(pred, source, target)]
    # Candidate heap holds (cost, counter, path).
    candidates: list[tuple[float, int, list[Node]]] = []
    seen: set[tuple[Node, ...]] = {tuple(paths[0])}
    counter = itertools.count()
    for _ in range(1, k):
        prev_path = paths[-1]
        for i in range(len(prev_path) - 1):
            spur_node = prev_path[i]
            root = prev_path[: i + 1]
            removed_edges: list[tuple[Node, Node, dict]] = []
            removed_nodes: list[tuple[Node, list[tuple[Node, Node, dict]]]] = []
            # Remove edges that would recreate an already-found path.
            for p in paths:
                if len(p) > i and p[: i + 1] == root and graph.has_edge(p[i], p[i + 1]):
                    data = dict(graph.edges[p[i], p[i + 1]])
                    graph.remove_edge(p[i], p[i + 1])
                    removed_edges.append((p[i], p[i + 1], data))
            # Remove root nodes (except the spur) to keep paths loopless.
            for node in root[:-1]:
                incident = [
                    (u, v, dict(d))
                    for u, v, d in itertools.chain(
                        graph.in_edges(node, data=True), graph.out_edges(node, data=True)
                    )
                ]
                graph.remove_node(node)
                removed_nodes.append((node, incident))
            try:
                spur_dist, spur_pred = single_source_dijkstra(graph, spur_node, weight=weight)
                if target in spur_dist:
                    spur_path = reconstruct_path(spur_pred, spur_node, target)
                    total = root[:-1] + spur_path
                    key = tuple(total)
                    if key not in seen:
                        seen.add(key)
                        cost = path_cost_restored(graph, removed_nodes, removed_edges, total, weight)
                        heapq.heappush(candidates, (cost, next(counter), total))
            finally:
                for node, incident in reversed(removed_nodes):
                    graph.add_node(node)
                    for u, v, d in incident:
                        graph.add_edge(u, v, **d)
                for u, v, d in removed_edges:
                    graph.add_edge(u, v, **d)
        if not candidates:
            break
        _, _, best = heapq.heappop(candidates)
        paths.append(best)
    return paths


def path_cost_restored(
    graph: nx.DiGraph,
    removed_nodes: list[tuple[Node, list[tuple[Node, Node, dict]]]],
    removed_edges: list[tuple[Node, Node, dict]],
    path: list[Node],
    weight: str,
) -> float:
    """Cost of ``path`` accounting for temporarily removed nodes/edges.

    Helper for :func:`k_shortest_paths`: candidate paths are costed while the
    graph is mutilated, so look edge weights up in the removal records first.
    """
    restored: dict[tuple[Node, Node], float] = {}
    for _, incident in removed_nodes:
        for u, v, d in incident:
            restored[(u, v)] = d.get(weight, 1.0)
    for u, v, d in removed_edges:
        restored[(u, v)] = d.get(weight, 1.0)
    total = 0.0
    for u, v in zip(path[:-1], path[1:]):
        if graph.has_edge(u, v):
            total += graph.edges[u, v].get(weight, 1.0)
        elif (u, v) in restored:
            total += restored[(u, v)]
        else:
            raise InvalidNetworkError(f"candidate path uses unknown link ({u!r}, {v!r})")
    return total
