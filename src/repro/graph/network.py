"""Cache-network model.

A :class:`CacheNetwork` is a directed graph where

- every directed link ``(u, v)`` carries a nonnegative routing ``cost``
  (the paper's ``w_uv``) and a positive ``capacity`` (``c_uv``, possibly
  ``math.inf``), and
- every node ``v`` owns a cache of capacity ``c_v >= 0`` (items for the
  homogeneous model of the paper's Sections 2-4, bits/bytes for the
  heterogeneous model of Section 5).

The class is a thin validated wrapper around :class:`networkx.DiGraph` so all
the usual graph tooling remains available through :attr:`CacheNetwork.graph`.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any

import networkx as nx

from repro.exceptions import InvalidNetworkError

Node = Hashable
Edge = tuple[Node, Node]

#: Edge-attribute names used throughout the package.
COST = "cost"
CAPACITY = "capacity"


class CacheNetwork:
    """A directed cache network (topology + link costs/capacities + caches).

    Parameters
    ----------
    graph:
        Directed graph whose edges carry ``cost`` and ``capacity`` attributes.
        Missing attributes default to ``1.0`` cost and infinite capacity.
    cache_capacity:
        Mapping node -> cache capacity ``c_v``. Nodes absent from the mapping
        get capacity ``0`` (no cache).

    Raises
    ------
    InvalidNetworkError
        If any cost is negative, any capacity is nonpositive, or the cache
        mapping references unknown nodes.
    """

    def __init__(
        self,
        graph: nx.DiGraph,
        cache_capacity: Mapping[Node, float] | None = None,
    ) -> None:
        if not isinstance(graph, nx.DiGraph) or isinstance(graph, nx.MultiDiGraph):
            raise InvalidNetworkError("graph must be a plain networkx.DiGraph")
        self._graph = graph
        self._cache: dict[Node, float] = {}
        cache_capacity = cache_capacity or {}
        for node, cap in cache_capacity.items():
            if node not in graph:
                raise InvalidNetworkError(f"cache node {node!r} not in graph")
            if cap < 0:
                raise InvalidNetworkError(f"cache capacity of {node!r} is negative")
            self._cache[node] = float(cap)
        for node in graph.nodes:
            self._cache.setdefault(node, 0.0)
        for u, v, data in graph.edges(data=True):
            cost = float(data.setdefault(COST, 1.0))
            cap = float(data.setdefault(CAPACITY, math.inf))
            if cost < 0:
                raise InvalidNetworkError(f"link ({u!r}, {v!r}) has negative cost")
            if cap <= 0:
                raise InvalidNetworkError(f"link ({u!r}, {v!r}) has nonpositive capacity")
            data[COST] = cost
            data[CAPACITY] = cap

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[Node, Node, float] | tuple[Node, Node, float, float]],
        cache_capacity: Mapping[Node, float] | None = None,
        *,
        symmetric: bool = False,
        default_capacity: float = math.inf,
    ) -> "CacheNetwork":
        """Build a network from ``(u, v, cost)`` or ``(u, v, cost, capacity)`` tuples.

        With ``symmetric=True`` each tuple also adds the reverse link with the
        same cost/capacity (the common way of reading undirected ISP maps).
        """
        graph = nx.DiGraph()
        for item in edges:
            if len(item) == 3:
                u, v, cost = item  # type: ignore[misc]
                cap = default_capacity
            else:
                u, v, cost, cap = item  # type: ignore[misc]
            graph.add_edge(u, v, **{COST: float(cost), CAPACITY: float(cap)})
            if symmetric:
                graph.add_edge(v, u, **{COST: float(cost), CAPACITY: float(cap)})
        return cls(graph, cache_capacity)

    def copy(self) -> "CacheNetwork":
        """Deep-enough copy (graph attributes and cache map are duplicated)."""
        return CacheNetwork(self._graph.copy(), dict(self._cache))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying directed graph (shared, not a copy)."""
        return self._graph

    @property
    def nodes(self) -> list[Node]:
        return list(self._graph.nodes)

    @property
    def edges(self) -> list[Edge]:
        return list(self._graph.edges)

    @property
    def num_nodes(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self._graph.number_of_edges()

    def cost(self, u: Node, v: Node) -> float:
        """Routing cost ``w_uv`` of link ``(u, v)``."""
        return self._graph.edges[u, v][COST]

    def capacity(self, u: Node, v: Node) -> float:
        """Transfer capacity ``c_uv`` of link ``(u, v)``."""
        return self._graph.edges[u, v][CAPACITY]

    def cache_capacity(self, v: Node) -> float:
        """Cache capacity ``c_v`` of node ``v`` (0 means no cache)."""
        return self._cache[v]

    @property
    def cache_capacities(self) -> dict[Node, float]:
        """Mapping of every node to its cache capacity (copy)."""
        return dict(self._cache)

    def cache_nodes(self) -> list[Node]:
        """Nodes with strictly positive cache capacity."""
        return [v for v, c in self._cache.items() if c > 0]

    def costs(self) -> dict[Edge, float]:
        return {(u, v): d[COST] for u, v, d in self._graph.edges(data=True)}

    def capacities(self) -> dict[Edge, float]:
        return {(u, v): d[CAPACITY] for u, v, d in self._graph.edges(data=True)}

    def out_edges(self, v: Node) -> Iterator[Edge]:
        return iter(self._graph.out_edges(v))

    def in_edges(self, v: Node) -> Iterator[Edge]:
        return iter(self._graph.in_edges(v))

    def has_edge(self, u: Node, v: Node) -> bool:
        return self._graph.has_edge(u, v)

    def degree(self, v: Node) -> int:
        """Total (in + out) degree of ``v``."""
        return self._graph.in_degree(v) + self._graph.out_degree(v)

    def undirected_degree(self, v: Node) -> int:
        """Degree in the undirected sense (anti-parallel links count once)."""
        neighbors = set(self._graph.predecessors(v)) | set(self._graph.successors(v))
        return len(neighbors)

    # ------------------------------------------------------------------
    # Mutators used by experiment setups
    # ------------------------------------------------------------------

    def set_cache_capacity(self, v: Node, capacity: float) -> None:
        if v not in self._graph:
            raise InvalidNetworkError(f"node {v!r} not in graph")
        if capacity < 0:
            raise InvalidNetworkError("cache capacity must be nonnegative")
        self._cache[v] = float(capacity)

    def set_all_cache_capacities(self, capacity_by_node: Mapping[Node, float]) -> None:
        for v, c in capacity_by_node.items():
            self.set_cache_capacity(v, c)

    def set_link_capacity(self, u: Node, v: Node, capacity: float) -> None:
        if capacity <= 0:
            raise InvalidNetworkError("link capacity must be positive")
        self._graph.edges[u, v][CAPACITY] = float(capacity)

    def set_uniform_link_capacity(self, capacity: float) -> None:
        """Give every link the same capacity (the paper's default ``kappa``)."""
        for _, _, data in self._graph.edges(data=True):
            if capacity <= 0:
                raise InvalidNetworkError("link capacity must be positive")
            data[CAPACITY] = float(capacity)

    def uncapacitated(self) -> "CacheNetwork":
        """Copy of this network with every link capacity set to infinity."""
        other = self.copy()
        for _, _, data in other.graph.edges(data=True):
            data[CAPACITY] = math.inf
        return other

    def augment_capacity_along_path(self, path: list[Node], extra: float) -> None:
        """Add ``extra`` capacity to each link along ``path``.

        The paper augments capacities along a cycle-free path from the origin
        server to each edge node so serving everything from the origin is
        always feasible (Section 6).
        """
        if extra < 0:
            raise InvalidNetworkError("extra capacity must be nonnegative")
        for u, v in zip(path[:-1], path[1:]):
            data = self._graph.edges[u, v]
            data[CAPACITY] = data[CAPACITY] + extra

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __contains__(self, node: Any) -> bool:
        return node in self._graph

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        caches = sum(1 for c in self._cache.values() if c > 0)
        return (
            f"CacheNetwork(|V|={self.num_nodes}, |E|={self.num_edges}, "
            f"caches={caches})"
        )
