"""Shared-memory broadcast of dense distance matrices across processes.

A parallel Monte Carlo campaign on a fixed topology rebuilds (or unpickles)
the same O(|V|²) distance matrix in every worker.  This module exports a
:class:`~repro.graph.distance_matrix.DistanceMatrix` once into a
``multiprocessing.shared_memory`` segment and lets workers *map* it: the
pool initializer attaches the segment by name and registers the resulting
matrix in a process-local registry keyed by a topology fingerprint
(:func:`graph_signature`).  ``SolverContext.from_problem`` consults the
registry before building a matrix, so any solver running inside a worker
transparently reuses the broadcast copy — and the per-task pickle payload
stays O(1) in the matrix size (only the segment *name* and node labels
cross the process boundary, once per pool, via the initializer).

Lifecycle and cleanup rules (also documented in DESIGN.md):

- the *owner* (the process that called :class:`MatrixBroadcast`) is the
  only one that unlinks the segment; it must call :meth:`MatrixBroadcast.close`
  in a ``finally`` block so the segment never outlives the campaign, even
  when the pool breaks (``BrokenProcessPool``) or a worker is abandoned on
  timeout — POSIX keeps the mapping alive for attached processes after
  unlink, so early unlink is safe;
- workers attach read-only and *never* unlink; on Python 3.11 the
  ``SharedMemory`` constructor has no ``track`` parameter, so
  :func:`attach_matrix` explicitly unregisters the segment from the
  ``resource_tracker`` to keep a worker's exit from destroying the segment
  under the other workers;
- registry lookups are free when nothing is registered (the signature is
  only computed once a broadcast exists), so the serial path pays nothing.

Reuse is sound because the fingerprint pins everything a distance matrix
depends on: the node *order* (rows/columns follow graph insertion order),
the edge set, and the exact link costs (``float.hex``).  Campaigns whose
scenario builder re-draws link costs per seed simply never match the
signature and fall back to a fresh build — correct, just not accelerated.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import networkx as nx
import numpy as np

from repro.graph.distance_matrix import DistanceMatrix, Node
from repro.graph.network import COST

__all__ = [
    "graph_signature",
    "SharedMatrixHandle",
    "MatrixBroadcast",
    "attach_matrix",
    "attach_and_register",
    "register_matrix",
    "unregister_matrix",
    "lookup_matrix",
    "ArraySpec",
    "BundleHandle",
    "BundleBroadcast",
    "attach_bundle",
    "SharedRowsHandle",
    "RowsBroadcast",
    "attach_rows",
    "attach_and_register_rows",
    "register_rows",
    "unregister_rows",
    "lookup_rows",
]


def graph_signature(graph: nx.DiGraph, *, weight: str = COST) -> str:
    """Deterministic fingerprint of (node order, edges, exact link costs).

    Two graphs share a signature only if they produce bit-identical
    distance matrices: node iteration order fixes the row/column layout and
    ``float.hex`` pins the costs exactly.  (Edge insertion order is also
    hashed — distances do not depend on it, so this is conservative: a
    reordered but equal graph misses the reuse, never the correctness.)
    """
    h = hashlib.blake2b(digest_size=16)
    for v in graph.nodes:
        h.update(repr(v).encode())
        h.update(b"\x00")
    h.update(b"\x01")
    for u, v, data in graph.edges(data=True):
        w = float(data.get(weight, 1.0))
        h.update(repr(u).encode())
        h.update(b"\x00")
        h.update(repr(v).encode())
        h.update(b"\x00")
        h.update(w.hex().encode())
        h.update(b"\x00")
    return h.hexdigest()


@dataclass(frozen=True)
class SharedMatrixHandle:
    """Picklable description of an exported matrix segment.

    O(|V|) to pickle (segment name + node labels), independent of the
    O(|V|²) matrix payload; crosses the process boundary once per pool via
    the initializer, not once per task.
    """

    shm_name: str
    shape: tuple[int, int]
    nodes: tuple[Node, ...]
    signature: str
    #: PID of the exporting process — the only one allowed to unlink.
    owner_pid: int = field(default_factory=os.getpid)


class MatrixBroadcast:
    """Owner side of one exported distance-matrix segment.

    Creating the broadcast copies the matrix into a fresh shared-memory
    segment; :attr:`handle` is what the pool initializer needs.  The owner
    must call :meth:`close` (idempotent) when the campaign ends — it both
    closes the local mapping and unlinks the segment from ``/dev/shm``.
    """

    def __init__(self, dm: DistanceMatrix, signature: str) -> None:
        nbytes = int(dm.matrix.nbytes)
        self._shm: shared_memory.SharedMemory | None = shared_memory.SharedMemory(
            create=True, size=max(1, nbytes)
        )
        if nbytes:
            view = np.ndarray(dm.matrix.shape, dtype=np.float64, buffer=self._shm.buf)
            view[...] = dm.matrix
        self.handle = SharedMatrixHandle(
            shm_name=self._shm.name,
            shape=tuple(dm.matrix.shape),
            nodes=dm.nodes,
            signature=signature,
        )

    def close(self) -> None:
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    def __enter__(self) -> "MatrixBroadcast":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Process-local registry (consulted by SolverContext.from_problem)
# ----------------------------------------------------------------------

_REGISTRY: dict[str, DistanceMatrix] = {}
#: Keeps attached segments referenced so their buffers outlive the arrays.
_ATTACHED: list[shared_memory.SharedMemory] = []


def register_matrix(signature: str, dm: DistanceMatrix) -> None:
    """Offer ``dm`` for reuse to every in-process context build."""
    _REGISTRY[signature] = dm


def unregister_matrix(signature: str) -> None:
    _REGISTRY.pop(signature, None)


def lookup_matrix(graph: nx.DiGraph) -> DistanceMatrix | None:
    """Registered matrix for ``graph``, or ``None``.

    Free when the registry is empty — the signature is only computed while
    a broadcast is actually live.
    """
    if not _REGISTRY:
        return None
    return _REGISTRY.get(graph_signature(graph))


def attach_matrix(handle: SharedMatrixHandle) -> DistanceMatrix:
    """Map an exported segment into this process as a read-only matrix.

    In a worker (non-owner) process the segment is unregistered from the
    ``resource_tracker`` (Python 3.11 has no ``track=False``), so a worker
    exiting cannot unlink the owner's segment; in the owner's own process
    the tracker entry is left for :meth:`MatrixBroadcast.close` to consume.
    The mapping itself is kept alive for the process lifetime via a
    module-level reference.
    """
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    if os.getpid() != handle.owner_pid:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    _ATTACHED.append(shm)
    matrix = np.ndarray(handle.shape, dtype=np.float64, buffer=shm.buf)
    matrix.setflags(write=False)
    return DistanceMatrix(nodes=handle.nodes, matrix=matrix)


def attach_and_register(handle: SharedMatrixHandle) -> None:
    """Pool-initializer entry point: attach the segment and register it."""
    register_matrix(handle.signature, attach_matrix(handle))


# ----------------------------------------------------------------------
# Generic array-bundle broadcast
# ----------------------------------------------------------------------
#
# The distance-matrix broadcast above ships exactly one float64 matrix.  The
# serving engine (``repro.serving``) needs the same one-writer/many-reader
# discipline for a *set* of heterogeneous arrays (alias tables, path CSR
# layouts, rate vectors).  ``BundleBroadcast`` packs any named collection of
# numpy arrays into a single segment; ``attach_bundle`` maps them back as
# read-only views.  Lifecycle rules are identical to ``MatrixBroadcast``:
# only the owner unlinks, workers detach from the resource tracker so their
# exit cannot destroy the segment under the others.

#: Segment layout alignment; keeps every array's view aligned for any dtype.
_ALIGN = 64


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one array inside a bundle segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str
    offset: int


@dataclass(frozen=True)
class BundleHandle:
    """Picklable description of an exported array bundle.

    O(#arrays) to pickle, independent of the array payloads; crosses the
    process boundary once per pool via the initializer.
    """

    shm_name: str
    specs: tuple[ArraySpec, ...]
    #: PID of the exporting process — the only one allowed to unlink.
    owner_pid: int = field(default_factory=os.getpid)


class BundleBroadcast:
    """Owner side of one exported array bundle.

    Copies every array of ``arrays`` into a fresh shared-memory segment
    (64-byte aligned so any dtype maps cleanly).  The owner must call
    :meth:`close` (idempotent) when done — it closes the local mapping and
    unlinks the segment.
    """

    def __init__(self, arrays: "dict[str, np.ndarray]") -> None:
        specs: list[ArraySpec] = []
        offset = 0
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            offset = -(-offset // _ALIGN) * _ALIGN  # round up
            specs.append(
                ArraySpec(
                    name=name,
                    shape=tuple(arr.shape),
                    dtype=arr.dtype.str,
                    offset=offset,
                )
            )
            offset += int(arr.nbytes)
        self._shm: shared_memory.SharedMemory | None = shared_memory.SharedMemory(
            create=True, size=max(1, offset)
        )
        for spec, arr in zip(specs, arrays.values()):
            view = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=self._shm.buf,
                offset=spec.offset,
            )
            view[...] = np.ascontiguousarray(arr)
        self.handle = BundleHandle(shm_name=self._shm.name, specs=tuple(specs))

    def close(self) -> None:
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    def __enter__(self) -> "BundleBroadcast":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Lazy-row-store broadcast (tiered backend, see repro.graph.backends)
# ----------------------------------------------------------------------
#
# The dense broadcast above ships the whole O(|V|²) matrix — exactly what the
# lazy tier exists to avoid.  ``RowsBroadcast`` ships only the *materialized*
# rows of a ``LazyRowBackend`` (cache nodes, pinned holders, requesters: the
# rows any solver actually consults) as one ``BundleBroadcast`` segment, plus
# the row-id map.  Workers attach the block read-only and build their own
# ``LazyRowBackend`` on top of it: preloaded rows are zero-copy views into
# the segment, and a row outside the store falls back to a local Dijkstra.
# Lifecycle rules are ``MatrixBroadcast``'s: only the owner unlinks.


@dataclass(frozen=True)
class SharedRowsHandle:
    """Picklable description of an exported row store.

    O(#rows + |V|) to pickle (bundle specs + node labels), independent of
    the O(#rows · |V|) block payload.
    """

    bundle: BundleHandle
    nodes: tuple[Node, ...]
    signature: str


class RowsBroadcast:
    """Owner side of one exported lazy-row store.

    ``store`` is a :class:`repro.graph.backends.RowStore` (typically
    ``backend.row_store()``).  The owner must call :meth:`close`
    (idempotent) when the campaign ends.
    """

    def __init__(self, store, nodes: tuple[Node, ...], signature: str) -> None:
        self._bundle: BundleBroadcast | None = BundleBroadcast(
            {"row_ids": store.row_ids, "rows": store.block}
        )
        self.handle = SharedRowsHandle(
            bundle=self._bundle.handle, nodes=nodes, signature=signature
        )

    def close(self) -> None:
        bundle, self._bundle = self._bundle, None
        if bundle is not None:
            bundle.close()

    def __enter__(self) -> "RowsBroadcast":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Registered row stores keyed by graph signature (process-local).
_ROW_REGISTRY: dict[str, object] = {}


def register_rows(signature: str, store) -> None:
    """Offer a :class:`~repro.graph.backends.RowStore` for in-process reuse."""
    _ROW_REGISTRY[signature] = store


def unregister_rows(signature: str) -> None:
    _ROW_REGISTRY.pop(signature, None)


def lookup_rows(graph: nx.DiGraph):
    """Registered row store for ``graph``, or ``None``.

    Free when nothing is registered — the signature is only computed while
    a broadcast is actually live.
    """
    if not _ROW_REGISTRY:
        return None
    return _ROW_REGISTRY.get(graph_signature(graph))


def attach_rows(handle: SharedRowsHandle):
    """Map an exported row store into this process (read-only views)."""
    from repro.graph.backends import RowStore

    arrays = attach_bundle(handle.bundle)
    return RowStore(arrays["row_ids"], arrays["rows"])


def attach_and_register_rows(handle: SharedRowsHandle) -> None:
    """Pool-initializer entry point: attach the store and register it."""
    register_rows(handle.signature, attach_rows(handle))


def attach_bundle(handle: BundleHandle) -> "dict[str, np.ndarray]":
    """Map an exported bundle into this process as read-only arrays.

    Same tracker discipline as :func:`attach_matrix`: a worker (non-owner)
    unregisters the segment from the ``resource_tracker`` so its exit cannot
    unlink the owner's segment.  The mapping is kept alive for the process
    lifetime via the module-level reference list.
    """
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    if os.getpid() != handle.owner_pid:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    _ATTACHED.append(shm)
    out: dict[str, np.ndarray] = {}
    for spec in handle.specs:
        arr = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=shm.buf,
            offset=spec.offset,
        )
        arr.setflags(write=False)
        out[spec.name] = arr
    return out
