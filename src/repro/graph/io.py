"""Topology I/O: load Topology-Zoo GraphML and simple edge-list files.

The paper's Appendix D uses Internet Topology Zoo maps (via the REPETITA
dataset) with real link bandwidths.  Those files are not bundled here —
the embedded generators in :mod:`repro.graph.topologies` substitute for
them — but when a user *does* have the files, these loaders turn them into
:class:`~repro.graph.network.CacheNetwork` objects with the package's cost
and capacity conventions, and the writers round-trip networks to disk for
reproducible experiment sharing.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import networkx as nx

from repro.exceptions import InvalidNetworkError
from repro.graph.network import CAPACITY, COST, CacheNetwork


def load_graphml(
    path: str | Path,
    *,
    cost_key: str | None = None,
    capacity_key: str | None = None,
    default_cost: float = 1.0,
    default_capacity: float = math.inf,
    symmetric: bool = True,
) -> CacheNetwork:
    """Load a GraphML topology (e.g. from the Internet Topology Zoo).

    ``cost_key`` / ``capacity_key`` name the GraphML edge attributes to map
    onto the package's ``cost`` / ``capacity``; missing attributes fall back
    to the defaults.  ``symmetric=True`` adds both directions for undirected
    inputs (Topology Zoo maps are undirected).
    """
    path = Path(path)
    if not path.exists():
        raise InvalidNetworkError(f"no such topology file: {path}")
    try:
        raw = nx.read_graphml(path)
    except Exception as exc:  # networkx raises several parse error types
        raise InvalidNetworkError(f"cannot parse GraphML {path}: {exc}") from exc
    digraph = nx.DiGraph()
    digraph.add_nodes_from(raw.nodes)
    for u, v, data in raw.edges(data=True):
        cost = float(data.get(cost_key, default_cost)) if cost_key else default_cost
        cap = (
            float(data.get(capacity_key, default_capacity))
            if capacity_key
            else default_capacity
        )
        digraph.add_edge(u, v, **{COST: cost, CAPACITY: cap})
        if symmetric or not raw.is_directed():
            digraph.add_edge(v, u, **{COST: cost, CAPACITY: cap})
    return CacheNetwork(digraph)


def load_edge_list(
    path: str | Path,
    *,
    symmetric: bool = True,
    default_capacity: float = math.inf,
) -> CacheNetwork:
    """Load a whitespace edge list: ``u v cost [capacity]`` per line.

    Lines starting with ``#`` are comments.  Node ids stay strings.
    """
    path = Path(path)
    if not path.exists():
        raise InvalidNetworkError(f"no such topology file: {path}")
    edges = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) not in (3, 4):
            raise InvalidNetworkError(
                f"{path}:{lineno}: expected 'u v cost [capacity]', got {line!r}"
            )
        u, v = parts[0], parts[1]
        try:
            cost = float(parts[2])
            cap = float(parts[3]) if len(parts) == 4 else default_capacity
        except ValueError as exc:
            raise InvalidNetworkError(f"{path}:{lineno}: bad number") from exc
        edges.append((u, v, cost, cap))
    return CacheNetwork.from_edges(edges, symmetric=symmetric)


def save_edge_list(network: CacheNetwork, path: str | Path) -> None:
    """Write a network as a directed edge list (round-trips with the loader)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = ["# u v cost capacity (directed)"]
    for (u, v) in sorted(network.edges, key=repr):
        cap = network.capacity(u, v)
        cap_str = "inf" if math.isinf(cap) else f"{cap!r}"
        lines.append(f"{u} {v} {network.cost(u, v)!r} {cap_str}")
    path.write_text("\n".join(lines) + "\n")


def save_network_json(
    network: CacheNetwork,
    path: str | Path,
) -> None:
    """Serialize topology + caches to JSON (for experiment manifests)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "nodes": [str(v) for v in sorted(network.nodes, key=repr)],
        "cache_capacity": {
            str(v): c for v, c in sorted(network.cache_capacities.items(), key=repr)
        },
        "edges": [
            {
                "u": str(u),
                "v": str(v),
                "cost": network.cost(u, v),
                "capacity": (
                    None if math.isinf(network.capacity(u, v)) else network.capacity(u, v)
                ),
            }
            for (u, v) in sorted(network.edges, key=repr)
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def load_network_json(path: str | Path) -> CacheNetwork:
    """Load a network serialized by :func:`save_network_json`."""
    path = Path(path)
    if not path.exists():
        raise InvalidNetworkError(f"no such file: {path}")
    payload = json.loads(path.read_text())
    digraph = nx.DiGraph()
    digraph.add_nodes_from(payload.get("nodes", []))
    for edge in payload.get("edges", []):
        cap = edge.get("capacity")
        digraph.add_edge(
            edge["u"],
            edge["v"],
            **{COST: float(edge["cost"]), CAPACITY: math.inf if cap is None else float(cap)},
        )
    return CacheNetwork(digraph, payload.get("cache_capacity", {}))
