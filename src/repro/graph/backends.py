"""Tiered distance backends: dense all-pairs vs. lazily-computed rows.

Every Section 4 solver consumes the distance structure through a handful of
row-oriented operations — a single ``d(source, target)`` lookup, one full
row ``d(source, ·)``, a stack of rows for a holder set, and two reductions
(finite max over rows, elementwise min over holder rows).  The
:class:`DistanceBackend` protocol names exactly those operations, and
:class:`~repro.core.context.SolverContext` routes every distance access
through it, so the same solver code runs against either tier:

- :class:`DenseBackend` wraps the existing
  :class:`~repro.graph.distance_matrix.DistanceMatrix` — one O(|V|²)
  Dijkstra sweep up front, O(1) row views afterwards.  Right below a few
  thousand nodes, fatal above (an 80k-node matrix is 51 GiB).
- :class:`LazyRowBackend` computes **only the rows actually consulted**
  (cache nodes, pinned holders, requesters) on demand, memoizes them, and
  never materializes the matrix.  Rows are produced by the same batched
  scipy Dijkstra that :func:`repro.graph.distance_matrix.repair_distance_
  matrix` uses for partial repairs, over the same CSR adjacency — so every
  row is **bit-identical** to the corresponding row of a dense build
  (asserted in ``tests/graph/test_backends.py``).

A lazy backend's materialized rows can be exported once into shared memory
(:meth:`LazyRowBackend.row_store` + :class:`repro.graph.shm.RowsBroadcast`)
and attached zero-copy by pool workers, preserving the broadcast discipline
the dense matrix already enjoys — workers start with the scope rows mapped
read-only and fall back to local computation only for rows outside the
store.

``w_max`` (the paper's bound on pairwise costs) deserves a note: the dense
backend reads it off the full matrix, and the lazy backend reproduces that
value *exactly* by streaming the same Dijkstra sweep in bounded-memory
chunks without retaining the rows — max is order-independent, so the two
tiers agree bit-for-bit while the lazy tier stays O(chunk · |V|) in memory.
The sweep runs only when ``w_max`` is actually read (greedy/local-search
baselines); Algorithm 1 takes its bound from ``finite_max_from`` over
candidate sources and never pays it.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterable, Sequence
from typing import Protocol, runtime_checkable

import networkx as nx
import numpy as np

from repro.exceptions import InvalidNetworkError
from repro.graph.distance_matrix import (
    HAVE_SCIPY,
    DistanceMatrix,
    _sparse_adjacency,
)
from repro.graph.network import COST
from repro.graph.shortest_paths import single_source_dijkstra

Node = Hashable

__all__ = [
    "DistanceBackend",
    "DenseBackend",
    "LazyRowBackend",
    "RowStore",
]

#: Rows per chunk of the streamed ``w_max`` sweep (memory = chunk * |V| * 8).
_WMAX_CHUNK = 256


@runtime_checkable
class DistanceBackend(Protocol):
    """Row-oriented distance oracle shared by every solver.

    Implementations must agree bit-for-bit on all five operations: the
    backends are interchangeable tiers of the same oracle, not approximate
    variants.  ``nodes`` fixes the row/column order (graph insertion order,
    as everywhere in the repo) and ``index`` maps node labels to it.
    """

    nodes: tuple[Node, ...]
    index: dict[Node, int]

    def distance(self, i: int, j: int) -> float:
        """Least cost ``nodes[i] -> nodes[j]`` (``inf`` if unreachable)."""
        ...

    def row(self, i: int) -> np.ndarray:
        """Read-only distance row from ``nodes[i]`` to every node."""
        ...

    def rows(self, idx: np.ndarray) -> np.ndarray:
        """Stacked rows ``(len(idx), |V|)`` for the given source indices."""
        ...

    def finite_max_rows(self, idx: np.ndarray) -> float:
        """Max finite entry over the given rows (0.0 if none)."""
        ...

    def w_max(self) -> float:
        """Max finite pairwise cost over *all* rows, floored at 1.0."""
        ...


class DenseBackend:
    """The classic tier: a fully materialized all-pairs matrix."""

    def __init__(self, dm: DistanceMatrix) -> None:
        self.dm = dm
        self.nodes = dm.nodes
        self.index = dm.index

    def __len__(self) -> int:
        return len(self.nodes)

    def distance(self, i: int, j: int) -> float:
        return float(self.dm.matrix[i, j])

    def row(self, i: int) -> np.ndarray:
        return self.dm.matrix[i]

    def rows(self, idx: np.ndarray) -> np.ndarray:
        return self.dm.matrix[np.asarray(idx, dtype=np.intp)]

    def finite_max_rows(self, idx: np.ndarray) -> float:
        rows = self.rows(idx)
        finite = rows[np.isfinite(rows)]
        return float(finite.max()) if finite.size else 0.0

    def w_max(self) -> float:
        return self.dm.w_max()

    def __repr__(self) -> str:
        return f"DenseBackend(|V|={len(self.nodes)})"


class RowStore:
    """Materialized distance rows as one shm-shareable block.

    ``row_ids[k]`` is the source index of ``block[k]``.  The block is what
    :class:`~repro.graph.shm.RowsBroadcast` exports and what workers attach
    read-only; a :class:`LazyRowBackend` built on an attached store serves
    those rows zero-copy.
    """

    def __init__(self, row_ids: np.ndarray, block: np.ndarray) -> None:
        self.row_ids = np.asarray(row_ids, dtype=np.intp)
        self.block = block
        if self.block.ndim != 2 or len(self.row_ids) != self.block.shape[0]:
            raise ValueError("row_ids must index the block's rows")

    def __len__(self) -> int:
        return len(self.row_ids)


class LazyRowBackend:
    """Compute-and-memoize distance rows on demand; never the full matrix.

    Parameters
    ----------
    graph:
        The network graph; the CSR adjacency is built once (O(|V| + |E|)).
    nodes:
        Row/column order (defaults to graph insertion order, matching
        :func:`~repro.graph.distance_matrix.build_distance_matrix`).
    use_scipy:
        Batched ``scipy.sparse.csgraph.dijkstra`` when available; the
        pure-python Dijkstra otherwise (same fallback, same results, as the
        dense build).
    store:
        Optional preloaded :class:`RowStore` (typically attached from a
        shared-memory broadcast); its rows are served as read-only views
        without any computation or copying.

    Memoized rows are capped only by what callers touch: solvers consult
    cache-node, pinned-holder and requester rows, which is O(relevant)
    instead of O(|V|) — the whole point of the tier.
    """

    def __init__(
        self,
        graph: nx.DiGraph,
        *,
        weight: str = COST,
        nodes: Sequence[Node] | None = None,
        use_scipy: bool = True,
        store: RowStore | None = None,
    ) -> None:
        self.nodes: tuple[Node, ...] = tuple(graph.nodes if nodes is None else nodes)
        self.index: dict[Node, int] = {v: k for k, v in enumerate(self.nodes)}
        self._graph = graph
        self._weight = weight
        self._use_scipy = bool(use_scipy and HAVE_SCIPY)
        self._csgraph = (
            _sparse_adjacency(graph, self.nodes, self.index, weight)
            if self._use_scipy
            else None
        )
        self._rows: dict[int, np.ndarray] = {}
        self._w_max: float | None = None
        if store is not None:
            n = len(self.nodes)
            if store.block.shape[1] != n:
                raise ValueError(
                    f"row store has {store.block.shape[1]} columns, graph has "
                    f"{n} nodes"
                )
            for k, i in enumerate(store.row_ids):
                self._rows[int(i)] = store.block[k]

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def materialized(self) -> int:
        """Number of rows currently memoized (tests/benchmarks)."""
        return len(self._rows)

    # ------------------------------------------------------------------
    # Row computation
    # ------------------------------------------------------------------

    def _compute_rows(self, sources: np.ndarray) -> np.ndarray:
        """Fresh rows for ``sources``, bit-identical to a dense build's."""
        n = len(self.nodes)
        if self._use_scipy:
            from scipy.sparse.csgraph import dijkstra

            rows = np.atleast_2d(
                dijkstra(self._csgraph, directed=True, indices=sources)
            )
            rows[np.arange(len(sources)), sources] = 0.0
            return rows
        rows = np.full((len(sources), n), math.inf, dtype=np.float64)
        for k, i in enumerate(sources):
            dist, _ = single_source_dijkstra(
                self._graph, self.nodes[int(i)], weight=self._weight
            )
            for target, d in dist.items():
                j = self.index.get(target)
                if j is not None:
                    rows[k, j] = d
        return rows

    def ensure_rows(self, idx: Iterable[int]) -> None:
        """Materialize any missing rows in one batched sweep."""
        missing = sorted({int(i) for i in idx} - self._rows.keys())
        if not missing:
            return
        computed = self._compute_rows(np.asarray(missing, dtype=np.intp))
        for k, i in enumerate(missing):
            row = computed[k]
            row.setflags(write=False)
            self._rows[i] = row

    def row(self, i: int) -> np.ndarray:
        i = int(i)
        row = self._rows.get(i)
        if row is None:
            self.ensure_rows((i,))
            row = self._rows[i]
        return row

    def rows(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.intp)
        self.ensure_rows(idx.tolist())
        if idx.size == 0:
            return np.empty((0, len(self.nodes)), dtype=np.float64)
        return np.stack([self._rows[int(i)] for i in idx])

    def distance(self, i: int, j: int) -> float:
        return float(self.row(i)[j])

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------

    def finite_max_rows(self, idx: np.ndarray) -> float:
        rows = self.rows(idx)
        finite = rows[np.isfinite(rows)]
        return float(finite.max()) if finite.size else 0.0

    def w_max(self) -> float:
        """Global max finite pairwise cost, floored at 1.0.

        Streams the full Dijkstra sweep in chunks of ``_WMAX_CHUNK`` rows,
        reducing the max and discarding each chunk — bit-identical to
        ``DistanceMatrix.w_max()`` (max is order-independent) at
        O(chunk · |V|) memory.  Computed once, then cached.
        """
        if self._w_max is None:
            n = len(self.nodes)
            top = 0.0
            for start in range(0, n, _WMAX_CHUNK):
                chunk = np.arange(start, min(start + _WMAX_CHUNK, n), dtype=np.intp)
                # Serve memoized rows from the cache; compute the rest
                # transiently without retaining them.
                cached = [i for i in chunk.tolist() if i in self._rows]
                fresh = np.asarray(
                    [i for i in chunk.tolist() if i not in self._rows],
                    dtype=np.intp,
                )
                for i in cached:
                    row = self._rows[i]
                    finite = row[np.isfinite(row)]
                    if finite.size:
                        top = max(top, float(finite.max()))
                if fresh.size:
                    rows = self._compute_rows(fresh)
                    finite = rows[np.isfinite(rows)]
                    if finite.size:
                        top = max(top, float(finite.max()))
            self._w_max = top if top > 0 else 1.0
        return self._w_max

    # ------------------------------------------------------------------
    # Incremental repair (failure sweeps)
    # ------------------------------------------------------------------

    def repair(
        self,
        degraded_graph: nx.DiGraph,
        *,
        removed_edges: Sequence[tuple[Node, Node, float]],
        removed_nodes: Sequence[Node] = (),
    ) -> "LazyRowBackend":
        """A backend for ``degraded_graph``, reusing unaffected memoized rows.

        The lazy-tier twin of :func:`repro.graph.distance_matrix.
        repair_distance_matrix`: ``removed_edges`` lists every directed edge
        deleted from this backend's graph as ``(u, v, weight)`` triples
        (node removals must list their incident edges too, as
        :func:`repro.robustness.faults.apply_failure` records them), and
        ``removed_nodes`` lists deleted nodes.  Each memoized row is kept
        only if no removed edge can lie on a shortest path out of its
        source — the per-row restriction of :func:`~repro.graph.
        distance_matrix.affected_sources`: row ``i`` is affected when
        ``row[u] + w + D[v, t] == row[t]`` for some removed ``(u, v, w)``
        and some target ``t``.  Surviving rows are column-subset onto the
        surviving node order and carried into the child; affected (and
        never-computed) rows are simply absent and recompute lazily against
        the degraded CSR, so the child is bit-identical to a fresh
        ``LazyRowBackend(degraded_graph)`` on every operation.

        The affected test needs the parent rows of every removed-edge head;
        heads not already memoized are computed transiently on the *parent*
        graph and discarded — O(#removed edges) Dijkstras, never O(|V|).
        ``w_max`` is not carried (the parent's value may hinge on removed
        elements); the child re-streams it on first read.

        Raises
        ------
        InvalidNetworkError
            ``degraded_graph``'s node order is not this backend's order
            minus ``removed_nodes`` (carried rows would be misindexed).
        """
        dead = set(removed_nodes)
        node_list = tuple(v for v in self.nodes if v not in dead)
        if node_list != tuple(degraded_graph.nodes):
            raise InvalidNetworkError(
                "degraded graph nodes do not match the backend order minus "
                "removed nodes; build a fresh LazyRowBackend instead"
            )
        child = LazyRowBackend(
            degraded_graph,
            weight=self._weight,
            use_scipy=self._use_scipy,
        )
        if not self._rows:
            return child
        triples = [
            (self.index[u], self.index[v], float(w))
            for (u, v, w) in removed_edges
            if u in self.index and v in self.index
        ]
        head_rows: dict[int, np.ndarray] = {}
        heads = sorted({j for (_i, j, _w) in triples})
        missing = [j for j in heads if j not in self._rows]
        if missing:
            fresh = self._compute_rows(np.asarray(missing, dtype=np.intp))
            for k, j in enumerate(missing):
                head_rows[j] = fresh[k]
        for j in heads:
            if j not in head_rows:
                head_rows[j] = self._rows[j]
        keep = np.fromiter(
            (self.index[v] for v in node_list),
            dtype=np.intp,
            count=len(node_list),
        )
        for i, row in self._rows.items():
            if self.nodes[i] in dead:
                continue
            affected = False
            for ui, vi, w in triples:
                via = row[ui] + w  # cost source -> u -> (u, v)
                if not math.isfinite(via):
                    continue
                lhs = via + head_rows[vi]
                if bool(np.any(np.isfinite(lhs) & (lhs == row))):
                    affected = True
                    break
            if not affected:
                carried = row[keep].copy()
                carried.setflags(write=False)
                child._rows[child.index[self.nodes[i]]] = carried
        return child

    # ------------------------------------------------------------------
    # Shared-memory export
    # ------------------------------------------------------------------

    def row_store(self) -> RowStore:
        """Snapshot of every materialized row as one contiguous block.

        The block is a fresh copy (safe to hand to
        :class:`~repro.graph.shm.RowsBroadcast`, which copies it into the
        segment); row order follows ascending source index for determinism.
        """
        ids = sorted(self._rows)
        n = len(self.nodes)
        block = np.empty((len(ids), n), dtype=np.float64)
        for k, i in enumerate(ids):
            block[k] = self._rows[i]
        return RowStore(np.asarray(ids, dtype=np.intp), block)

    def __repr__(self) -> str:
        return (
            f"LazyRowBackend(|V|={len(self.nodes)}, "
            f"materialized={len(self._rows)})"
        )
