"""Command-line interface: run scenarios, traces, online loops, simulations.

Examples
--------
python -m repro trace
python -m repro scenario --level chunk --algorithms alternating,sp,ksp10
python -m repro scenario --topology tinet --edge-nodes 5 --runs 2
python -m repro online --hours 6 --algorithm alternating
python -m repro simulate --scale 1e-4 --horizon 2.0
python -m repro serve --algorithm sp --requests 1e6 --shards 4 --parallel
python -m repro predict --video dNCWe_6HAM8 --hours 8
python -m repro adaptive --topology deltacom --requests 2e5 --policies lce,static_alg1
python -m repro robustness --topology gadget
python -m repro robustness --failures single-link --algorithm greedy --repair
python -m repro robustness --topology deltacom --timeline --horizon 50 --flap-prob 0.2
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Joint caching and routing in cache networks (ICDCS'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser("trace", help="print the Table-1 trace statistics")
    trace.add_argument("--seed", type=int, default=0)

    scenario = sub.add_parser("scenario", help="compare algorithms on one scenario")
    _add_scenario_args(scenario)
    scenario.add_argument(
        "--algorithms",
        default="alternating,sp,ksp1,ksp10",
        help="comma list: alternating, sp, ksp<k>, alg1, greedy, fcfr",
    )
    scenario.add_argument("--runs", type=int, default=2)

    online = sub.add_parser("online", help="hourly re-optimization loop")
    _add_scenario_args(online)
    online.add_argument("--hours", type=int, default=6)
    online.add_argument("--algorithm", default="alternating")
    online.add_argument(
        "--predict", action="store_true", help="plan on GPR-predicted demand"
    )

    simulate = sub.add_parser(
        "simulate", help="event-driven validation of a solved scenario"
    )
    _add_scenario_args(simulate)
    simulate.add_argument("--algorithm", default="alternating")
    simulate.add_argument("--scale", type=float, default=1e-4,
                          help="joint demand/capacity scale factor")
    simulate.add_argument("--horizon", type=float, default=1.0)

    serve = sub.add_parser(
        "serve", help="streaming request-level replay of a solved scenario"
    )
    _add_scenario_args(serve)
    serve.add_argument("--algorithm", default="alternating")
    serve.add_argument("--requests", type=float, default=1e6,
                       help="expected number of requests to replay")
    serve.add_argument("--shards", type=int, default=1,
                       help="independent stream shards (results depend on the "
                            "count, not on how they execute)")
    serve.add_argument("--parallel", action="store_true",
                       help="run shards in a process pool over shared tables")

    sweep = sub.add_parser("sweep", help="sweep one scenario knob (figure-style)")
    _add_scenario_args(sweep)
    sweep.add_argument("--parameter", required=True,
                       help="one of: cache_capacity, link_capacity_fraction, "
                            "num_videos, chunk_mb, num_edge_nodes")
    sweep.add_argument("--values", required=True,
                       help="comma list of values, e.g. 6,12,18")
    sweep.add_argument(
        "--algorithms",
        default="alternating,sp",
        help="comma list: alternating, sp, ksp<k>, alg1, greedy, fcfr",
    )
    sweep.add_argument("--runs", type=int, default=2)

    predict = sub.add_parser("predict", help="GPR demand prediction demo")
    predict.add_argument("--video", default="dNCWe_6HAM8")
    predict.add_argument("--hours", type=int, default=8)
    predict.add_argument("--seed", type=int, default=0)

    adaptive = sub.add_parser(
        "adaptive",
        help="online adaptive serving: reactive strategies vs adaptive placement",
    )
    adaptive.add_argument("--topology", default="abovenet",
                          choices=("abovenet", "abvt", "tinet", "deltacom"))
    adaptive.add_argument("--items", type=int, default=30)
    adaptive.add_argument("--alpha", type=float, default=0.8,
                          help="Zipf popularity skew")
    adaptive.add_argument("--rate", type=float, default=500.0,
                          help="total request rate")
    adaptive.add_argument("--cache", type=float, default=4.0)
    adaptive.add_argument("--requests", type=float, default=2e5,
                          help="requests to replay through each policy")
    adaptive.add_argument("--chunk", type=int, default=8192)
    adaptive.add_argument("--replan-every", type=int, default=8,
                          help="periodic planner epoch length in chunks")
    adaptive.add_argument("--eviction", default="lru", choices=("lru", "lfu"))
    adaptive.add_argument("--policies", default=None,
                          help="comma list (default: all); see repro.adaptive")
    adaptive.add_argument("--seed", type=int, default=0)

    robustness = sub.add_parser(
        "robustness",
        help="inject failures, recover, and print a survivability report",
    )
    robustness.add_argument(
        "--topology", default="abovenet",
        choices=("abovenet", "abvt", "tinet", "deltacom", "gadget"),
        help="'gadget' runs the self-contained 4-node Fig. 9 demo",
    )
    robustness.add_argument("--level", default="chunk", choices=("chunk", "file"))
    robustness.add_argument("--videos", type=int, default=5)
    robustness.add_argument("--cache", type=float, default=None)
    robustness.add_argument("--link-fraction", type=float, default=0.0,
                            help="link capacity fraction; 0 = unlimited")
    robustness.add_argument("--edge-nodes", type=int, default=None)
    robustness.add_argument("--seed", type=int, default=0)
    robustness.add_argument("--algorithm", default="greedy")
    robustness.add_argument(
        "--failures", default="single-link",
        choices=("single-link", "single-node", "random"),
    )
    robustness.add_argument("--k", type=int, default=1,
                            help="links per random scenario")
    robustness.add_argument("--samples", type=int, default=10,
                            help="number of random scenarios")
    robustness.add_argument("--repair", action="store_true",
                            help="greedily refill residual cache space")
    robustness.add_argument("--max-scenarios", type=int, default=None,
                            help="truncate the scenario list (big topologies)")
    robustness.add_argument(
        "--timeline", action="store_true",
        help="replay a discrete-event failure timeline instead of a static sweep",
    )
    robustness.add_argument("--horizon", type=float, default=50.0,
                            help="timeline horizon (time units)")
    robustness.add_argument("--link-mtbf", type=float, default=80.0)
    robustness.add_argument("--link-mttr", type=float, default=3.0)
    robustness.add_argument("--node-mtbf", type=float, default=None,
                            help="enable node failures with this MTBF")
    robustness.add_argument("--node-mttr", type=float, default=6.0)
    robustness.add_argument("--flap-prob", type=float, default=0.2,
                            help="probability a link failure is a short flap")
    robustness.add_argument("--detection-delay", type=float, default=0.5,
                            help="controller delay before reacting to a failure")
    robustness.add_argument("--backoff", type=float, default=0.25,
                            help="initial re-check backoff after an absorbed flap")
    robustness.add_argument("--retries", type=int, default=2,
                            help="backoff re-checks before forcing re-optimization")
    robustness.add_argument("--min-dwell", type=float, default=0.0,
                            help="minimum time between re-optimizations (hysteresis)")
    robustness.add_argument(
        "--serve", action="store_true",
        help="with --timeline: also stream sampled requests through the "
        "degraded tables and report streamed vs analytic cost",
    )
    robustness.add_argument("--serve-requests", "--requests", dest="requests",
                            type=float, default=2e5,
                            help="expected request arrivals for --serve")
    robustness.add_argument("--shards", type=int, default=1,
                            help="request-stream shards for --serve")

    return parser


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", default="abovenet",
                        choices=("abovenet", "abvt", "tinet", "deltacom"))
    parser.add_argument("--level", default="chunk", choices=("chunk", "file"))
    parser.add_argument("--videos", type=int, default=10)
    parser.add_argument("--cache", type=float, default=None,
                        help="cache size (chunks / avg-size files); default 12 / 2")
    parser.add_argument("--link-fraction", type=float, default=0.007,
                        help="link capacity as a fraction of total rate; 0 = unlimited")
    parser.add_argument("--edge-nodes", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)


def _scenario_config(args: argparse.Namespace):
    from repro.experiments import ScenarioConfig

    cache = args.cache
    if cache is None:
        cache = 12.0 if args.level == "chunk" else 2.0
    fraction = None if not args.link_fraction else args.link_fraction
    return ScenarioConfig(
        topology=args.topology,
        level=args.level,
        num_videos=args.videos,
        cache_capacity=cache,
        link_capacity_fraction=fraction,
        num_edge_nodes=args.edge_nodes,
        seed=args.seed,
    )


def _resolve_algorithm(name: str):
    from repro.experiments import algorithms as alg

    name = name.strip().lower()
    if name == "alternating":
        return alg.alternating(mmufp_method="best")
    if name == "sp":
        return alg.sp
    if name == "alg1":
        return alg.alg1
    if name == "greedy":
        return alg.greedy
    if name == "fcfr":
        return alg.fcfr
    if name.startswith("ksp"):
        return alg.ksp(int(name[3:] or 10))
    raise SystemExit(f"unknown algorithm {name!r}")


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.experiments import format_sweep
    from repro.workload import TABLE1_VIDEOS, TraceConfig, split_train_eval, synthesize_trace

    config = TraceConfig(seed=args.seed)
    trace = synthesize_trace(config=config)
    _train, evaluation = split_train_eval(trace, config)
    rows = [
        {
            "video_id": v.video_id,
            "size_mb": v.size_mb,
            "chunks": v.num_chunks(),
            "total_views": evaluation.total_views(v.video_id),
        }
        for v in TABLE1_VIDEOS
    ]
    print(format_sweep(rows, ["video_id", "size_mb", "chunks", "total_views"],
                       title="Table 1 (synthetic trace)"))
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.experiments import (
        MonteCarloConfig,
        aggregate,
        format_aggregates,
        run_monte_carlo,
    )

    config = _scenario_config(args)
    algorithms = {
        name.strip(): _resolve_algorithm(name)
        for name in args.algorithms.split(",")
        if name.strip()
    }
    records = run_monte_carlo(config, algorithms, MonteCarloConfig(n_runs=args.runs))
    print(
        format_aggregates(
            aggregate(records),
            title=f"{config.topology} / {config.level} level / {args.runs} runs",
        )
    )
    return 0


def _cmd_online(args: argparse.Namespace) -> int:
    from repro.experiments import PredictionConfig, format_sweep
    from repro.experiments.online import run_online

    config = _scenario_config(args)
    prediction = PredictionConfig() if args.predict else None
    result = run_online(
        config,
        _resolve_algorithm(args.algorithm),
        name=args.algorithm,
        hours=args.hours,
        prediction=prediction,
    )
    rows = [
        {
            "hour": h.hour,
            "cost": h.cost,
            "congestion": h.congestion,
            "planned_rate": h.predicted_total_rate,
            "true_rate": h.true_total_rate,
        }
        for h in result.hours
    ]
    print(
        format_sweep(
            rows,
            ["hour", "cost", "congestion", "planned_rate", "true_rate"],
            title=f"online {args.algorithm} over {args.hours}h "
            f"({'GPR-predicted' if args.predict else 'oracle'} demand)",
        )
    )
    print(f"\ntotal cost {result.total_cost:,.0f}, "
          f"worst congestion {result.worst_congestion:.3f}, "
          f"failures {result.failures}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments import build_scenario
    from repro.simulation import SimulationConfig, scale_problem, simulate

    config = _scenario_config(args)
    scenario = build_scenario(config)
    solution = _resolve_algorithm(args.algorithm)(scenario)
    problem = scale_problem(scenario.problem, args.scale)
    report = simulate(
        problem, solution.routing, SimulationConfig(horizon=args.horizon, seed=args.seed)
    )
    print(f"requests generated/delivered: {report.generated}/{report.delivered}")
    print(f"mean latency: {report.mean_latency:.4f}  p95: {report.p95_latency:.4f}")
    print(f"max link utilization: {report.max_utilization:.3f}")
    print(f"late deliveries (backlog): {report.late_deliveries}")
    worst = sorted(
        report.utilization.items(), key=lambda kv: -kv[1]
    )[:5]
    for edge, util in worst:
        print(f"  {edge}: utilization {util:.3f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.experiments import build_scenario
    from repro.serving import (
        ServingConfig,
        compile_tables,
        horizon_for_requests,
        replay,
        replay_parallel,
    )

    config = _scenario_config(args)
    scenario = build_scenario(config)
    solution = _resolve_algorithm(args.algorithm)(scenario)
    tables = compile_tables(
        scenario.problem, solution.routing, allow_unrouted=True
    )
    horizon = horizon_for_requests(tables, args.requests)
    serving = ServingConfig(
        horizon=horizon, seed=args.seed, n_shards=args.shards
    )
    runner = replay_parallel if args.parallel else replay
    report = runner(tables, serving)
    mode = "parallel" if args.parallel else "serial"
    print(f"replayed {report.generated:,} requests over horizon {horizon:.4g} "
          f"({report.n_shards} shard(s), {mode})")
    print(f"served: {report.served:,} ({report.served_fraction:.2%}), "
          f"unrouted types: {report.unrouted_types}")
    print(f"delivered cost rate: {report.delivered_cost / horizon:,.0f} "
          f"(analytic {tables.expected_cost_rate():,.0f})")
    print(f"throughput: {report.requests_per_sec:,.0f} requests/sec")
    worst = sorted(report.empirical_loads.items(), key=lambda kv: -kv[1])[:5]
    for edge, load in worst:
        print(f"  {edge}: empirical load {load:,.1f}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import (
        MonteCarloConfig,
        format_sweep,
        sweep_parameter,
    )

    config = _scenario_config(args)
    algorithms = {
        name.strip(): _resolve_algorithm(name)
        for name in args.algorithms.split(",")
        if name.strip()
    }
    values = []
    for token in args.values.split(","):
        token = token.strip()
        values.append(int(token) if token.isdigit() else float(token))
    rows = sweep_parameter(
        config,
        args.parameter,
        values,
        algorithms,
        MonteCarloConfig(n_runs=args.runs),
    )
    print(
        format_sweep(
            rows,
            [args.parameter, "algorithm", "cost", "congestion", "occupancy"],
            title=f"sweep {args.parameter} on {config.topology} ({args.runs} runs)",
        )
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.prediction import DemandPredictor
    from repro.workload import TraceConfig, synthesize_trace

    config = TraceConfig(seed=args.seed)
    trace = synthesize_trace(config=config)
    series = trace.series(args.video)
    predictor = DemandPredictor(
        train_hours=config.train_hours, history_window=150, n_restarts=0
    )
    predicted = predictor.predict_series(series, eval_hours=args.hours)
    truth = series[config.train_hours : config.train_hours + args.hours]
    print(f"{'hour':>6}{'truth':>14}{'predicted':>14}{'rel err':>10}")
    for h in range(args.hours):
        rel = abs(predicted[h] - truth[h]) / truth[h]
        print(f"{h:>6}{truth[h]:>14,.0f}{predicted[h]:>14,.0f}{rel:>10.1%}")
    mape = float(np.mean(np.abs(predicted - truth) / truth))
    print(f"\nMAPE over {args.hours}h: {mape:.1%}")
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from repro.experiments import ScenarioConfig, build_scenario
    from repro.robustness import (
        sample_failures,
        single_link_failures,
        single_node_failures,
        survivability_report,
    )

    if args.topology == "gadget":
        from repro.robustness.demo import gadget_placement, gadget_problem

        problem = gadget_problem()
        placement = gadget_placement()
        origin = "vs"
        title = "gadget"
    else:
        cache = args.cache
        if cache is None:
            cache = 12.0 if args.level == "chunk" else 2.0
        config = ScenarioConfig(
            topology=args.topology,
            level=args.level,
            num_videos=args.videos,
            cache_capacity=cache,
            link_capacity_fraction=args.link_fraction or None,
            num_edge_nodes=args.edge_nodes,
            seed=args.seed,
        )
        scenario = build_scenario(config)
        problem = scenario.problem
        placement = _resolve_algorithm(args.algorithm)(scenario).placement
        origin = scenario.origin
        title = f"{args.topology} / {args.algorithm}"

    if args.timeline:
        from repro.core.context import SolverContext
        from repro.robustness import (
            RecoveryPolicy,
            TimelineConfig,
            generate_timeline,
            replay_timeline,
        )

        timeline = generate_timeline(
            problem,
            TimelineConfig(
                horizon=args.horizon,
                link_mtbf=args.link_mtbf,
                link_mttr=args.link_mttr,
                node_mtbf=args.node_mtbf,
                node_mttr=args.node_mttr,
                flap_probability=args.flap_prob,
                exclude_nodes=(origin,),
            ),
            seed=args.seed,
            name=title,
        )
        policy = RecoveryPolicy(
            detection_delay=args.detection_delay,
            flap_backoff=args.backoff,
            max_retries=args.retries,
            min_dwell=args.min_dwell,
            repair=args.repair,
        )
        context = SolverContext.from_problem(problem)
        print(f"timeline: {len(timeline.events)} events over horizon {args.horizon:g}")
        if args.serve:
            from repro.robustness import replay_timeline_streaming
            from repro.serving import ServingConfig

            rate_scale = args.requests / (problem.total_demand * args.horizon)
            streamed = replay_timeline_streaming(
                problem,
                placement,
                timeline,
                policy,
                config=ServingConfig(
                    horizon=args.horizon, seed=args.seed, n_shards=args.shards
                ),
                rate_scale=rate_scale,
                context=context,
            )
            report = streamed.analytic
            print(report.format())
            print(
                f"serve: {streamed.generated} requests over "
                f"{len(streamed.segments)} segments in "
                f"{streamed.elapsed_seconds:.3f}s "
                f"({streamed.requests_per_sec:,.0f} req/s, "
                f"{args.shards} shard{'s' if args.shards != 1 else ''})"
            )
            print(
                "cost integral: streamed "
                f"{streamed.streamed_cost_integral:.6g} vs analytic "
                f"{report.cost_integral:.6g} "
                f"(expected {streamed.expected_cost / streamed.rate_scale:.6g}, "
                f"sampling sigma {streamed.cost_variance ** 0.5 / streamed.rate_scale:.3g})"
            )
            print(
                f"served fraction: streamed {streamed.served_fraction:.4%} "
                f"vs analytic availability {report.availability:.4%}"
            )
            return 0
        report = replay_timeline(
            problem,
            placement,
            timeline,
            policy,
            context=context,
        )
        print(report.format())
        return 0

    if args.failures == "single-link":
        scenarios = single_link_failures(problem)
    elif args.failures == "single-node":
        scenarios = single_node_failures(problem, exclude=(origin,))
    else:
        scenarios = sample_failures(
            problem,
            n_scenarios=args.samples,
            links_per_scenario=args.k,
            seed=args.seed,
        )
    if args.max_scenarios is not None:
        scenarios = scenarios[: args.max_scenarios]

    report = survivability_report(
        problem, placement, scenarios, repair=args.repair
    )
    print(report.format(
        title=f"survivability: {title} under {args.failures} failures"
        f"{' with repair' if args.repair else ''}"
    ))
    return 0


def _cmd_adaptive(args: argparse.Namespace) -> int:
    from repro.adaptive import ALL_POLICIES, run_online_adaptive
    from repro.experiments import build_zipf_scenario, format_sweep

    scenario = build_zipf_scenario(
        topology=args.topology,
        num_items=args.items,
        alpha=args.alpha,
        total_rate=args.rate,
        cache_capacity=args.cache,
        link_capacity_fraction=None,
        seed=args.seed,
    )
    policies = ALL_POLICIES
    if args.policies:
        policies = tuple(
            name.strip() for name in args.policies.split(",") if name.strip()
        )
    report = run_online_adaptive(
        scenario.problem,
        n_requests=int(args.requests),
        chunk_size=args.chunk,
        seed=args.seed,
        policies=policies,
        eviction_policy=args.eviction,
        replan_every=args.replan_every,
    )
    base = report.traces.get("static_alg1")
    rows = [
        {
            "policy": name,
            "cost_rate": trace.cost_rate,
            "vs_static": (
                trace.cost_rate / base.cost_rate if base else float("nan")
            ),
            "edge_hit_ratio": trace.edge_hit_ratio,
            "updates": trace.updates,
        }
        for name, trace in report.traces.items()
    ]
    print(
        format_sweep(
            rows,
            ["policy", "cost_rate", "vs_static", "edge_hit_ratio", "updates"],
            title=(
                f"online adaptive: {args.topology} / Zipf({args.alpha}) / "
                f"{report.n_requests:,} requests, chunk {report.chunk_size}"
            ),
        )
    )
    return 0


_COMMANDS = {
    "trace": _cmd_trace,
    "scenario": _cmd_scenario,
    "online": _cmd_online,
    "simulate": _cmd_simulate,
    "serve": _cmd_serve,
    "sweep": _cmd_sweep,
    "predict": _cmd_predict,
    "adaptive": _cmd_adaptive,
    "robustness": _cmd_robustness,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
