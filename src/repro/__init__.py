"""repro — Joint Caching and Routing in Cache Networks with Arbitrary Topology.

A from-scratch reproduction of Xie, Thakkar, He, McDaniel & Burke
(ICDCS 2022 / journal version): algorithms with approximation guarantees for
jointly optimizing content placement and (un)splittable routing in directed
cache networks, plus the full evaluation substrate (topologies, traces,
Gaussian-process demand prediction, and the benchmarks of [3], [33], [38]).

Typical entry points:

>>> from repro import ProblemInstance, algorithm1, alternating_optimization
>>> from repro.experiments import ScenarioConfig, build_scenario

See README.md for a guided tour and DESIGN.md for the paper-to-module map.
"""

from repro.core import (
    Placement,
    ProblemInstance,
    SolveResult,
    solve,
    Routing,
    Solution,
    algorithm1,
    alternating_optimization,
    check_feasibility,
    congestion,
    greedy_rnr_placement,
    max_cache_occupancy,
    pin_full_catalog,
    route_to_nearest_replica,
    routing_cost,
    solve_fcfr,
    solve_msufp,
)
from repro.exceptions import (
    DecompositionError,
    InfeasibleError,
    InvalidNetworkError,
    InvalidProblemError,
    PredictionError,
    ReproError,
    SolverError,
)
from repro.graph import CacheNetwork

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CacheNetwork",
    "ProblemInstance",
    "Placement",
    "Routing",
    "Solution",
    "pin_full_catalog",
    "solve",
    "SolveResult",
    "algorithm1",
    "alternating_optimization",
    "greedy_rnr_placement",
    "route_to_nearest_replica",
    "solve_msufp",
    "solve_fcfr",
    "routing_cost",
    "congestion",
    "max_cache_occupancy",
    "check_feasibility",
    "ReproError",
    "InvalidNetworkError",
    "InvalidProblemError",
    "InfeasibleError",
    "SolverError",
    "DecompositionError",
    "PredictionError",
]
