"""Edge caching with the YouTube-style trace (the paper's Section 6 scenario).

Reconstructs the default evaluation setting — Abovenet topology, top-10
videos chunked into 100-MB pieces (|C| = 54), edge caches of 12 chunks,
links at 0.7% of the total request rate — and compares the paper's
alternating optimization against the benchmarks of [3] and [38], both with
perfect demand knowledge and with GPR-predicted demand.

Run:  python examples/edge_caching_trace.py          (fast: true demand only)
      python examples/edge_caching_trace.py --predict (adds GPR prediction)
"""

import sys

from repro.core import congestion, routing_cost
from repro.experiments import (
    PredictionConfig,
    ScenarioConfig,
    algorithms as alg,
    build_scenario,
    predicted_rates_for_hour,
)
from repro.workload import TraceConfig, synthesize_trace, top_videos


def main(predict: bool) -> None:
    trace_config = TraceConfig(seed=0)
    trace = synthesize_trace(videos=top_videos(10), config=trace_config)
    predicted = None
    if predict:
        print("fitting GPR demand predictors (one per video) ...")
        predicted = predicted_rates_for_hour(
            trace, hour=0, prediction=PredictionConfig()
        )

    scenario = build_scenario(
        ScenarioConfig(seed=0),
        trace=trace,
        trace_config=trace_config,
        predicted_rates=predicted,
    )
    problem = scenario.problem
    print(
        f"scenario: {problem} on Abovenet; total demand "
        f"{sum(problem.demand.values()):,.0f} chunks/hour"
    )
    if predicted is not None:
        for vid, rate in list(predicted.items())[:3]:
            true_rate = scenario.video_rates[vid]
            print(f"  {vid}: true {true_rate:,.0f}/h, predicted {rate:,.0f}/h")

    algorithms = {
        "alternating (ours)": alg.alternating(mmufp_method="best"),
        "SP [38]": alg.sp,
        "SP + RNR [3]": alg.ksp(1),
        "k-SP + RNR [3]": alg.ksp(10),
    }
    print(f"\n{'algorithm':<22}{'cost':>16}{'congestion':>14}")
    print("-" * 52)
    for name, solver in algorithms.items():
        solution = solver(scenario)
        cost = routing_cost(problem, solution.routing)
        cong = congestion(problem, solution.routing)
        print(f"{name:<22}{cost:>16,.0f}{cong:>14.2f}")
    print(
        "\nExpected shape (paper's Fig 7): the benchmarks overload links by"
        " an order of magnitude; the alternating optimization stays feasible"
        " at competitive cost."
    )


if __name__ == "__main__":
    main(predict="--predict" in sys.argv)
